#!/usr/bin/env python
"""Performance benchmarks for the simulation hot paths.

Two suites, each writing a JSON report so future PRs can track the
performance trajectory:

* ``--suite sweep`` (default, ``BENCH_sweep.json``) — the paper's fig-8
  grid priced with the pre-PR per-step decode loop (``exact=True``,
  pricing caches cleared first) and with the analytical fast path
  (:meth:`OperatorExecutor.time_decode_range`), cold and warm, plus a
  long-decode pricing microbenchmark.
* ``--suite cluster`` (``BENCH_cluster.json``) — a 100k-request,
  three-replica serving run stepped per iteration (``exact=True``) vs.
  the event-horizon fast-forward loop, reporting simulated requests per
  wall-second and the speedup.
* ``--suite fluid`` (merges a ``fluid`` key into
  ``BENCH_cluster.json``) — the analytic steady-state solver vs. exact
  fast-forward simulation on a 10-point provisioning sweep, with the
  per-regime error envelope.

Every suite cross-checks that the fast path agrees with its exact
reference (max relative error is recorded in the JSON), and every
report carries an ``environment`` stamp (host CPUs, git revision) so
wall-clock numbers can be compared across machines and PRs.

Usage::

    PYTHONPATH=src python tools/bench.py
    PYTHONPATH=src python tools/bench.py --suite cluster
    PYTHONPATH=src python tools/bench.py --quick   # tiny runs, smoke tests
"""

import argparse
import contextlib
import json
import os
import sys
import time
import timeit
from types import SimpleNamespace

import repro.engine.backend as _backend_mod
import repro.engine.executor as _executor_mod
import repro.gemm.efficiency as _efficiency_mod
import repro.models.opgraph as _opgraph_mod
from repro.engine.executor import _ELEMENTWISE_COMPUTE_EFFICIENCY, OpTiming
from repro.gemm.efficiency import gemm_efficiency
from repro.engine.inference import InferenceSimulator, MemoryCapacityError
from repro.engine.request import EVALUATED_BATCH_SIZES, InferenceRequest
from repro.experiments._sweeps import clear_caches
from repro.hardware.registry import get_platform
from repro.models.registry import evaluated_models, get_model


def _seed_time_gemm(self, op, memory_s):
    """The seed revision's ``OperatorExecutor._time_gemm``, verbatim.

    Re-derives engine peaks and the elementwise rate per op and builds an
    ``OpTiming`` per candidate engine, exactly as the pre-PR executor did
    (the current one precomputes peaks and constructs only the winner).
    """
    best = None
    for engine in self._engines:
        eff = gemm_efficiency(engine, op.m, op.n, op.k)
        peak = engine.peak(self.dtype) * self.compute_scale
        compute_s = op.gemm_flops / (peak * eff)
        if op.extra_flops:
            compute_s += op.extra_flops / (
                self._vector_like.peak(self.dtype) * self.compute_scale
                * _ELEMENTWISE_COMPUTE_EFFICIENCY)
        overhead_s = engine.launch_overhead_s * op.kernel_launches
        timing = OpTiming(
            op=op,
            time_s=max(compute_s, memory_s) + overhead_s,
            compute_s=compute_s,
            memory_s=memory_s,
            overhead_s=overhead_s,
            engine_name=engine.name,
            efficiency=eff,
            memory_bound=memory_s >= compute_s,
        )
        if best is None or timing.time_s < best.time_s:
            best = timing
    assert best is not None
    return best


def _seed_time_bandwidth_op(self, op, memory_s):
    """The seed revision's ``OperatorExecutor._time_bandwidth_op``."""
    engine = self._vector_like
    compute_s = 0.0
    if op.extra_flops:
        compute_s = op.extra_flops / (
            engine.peak(self.dtype) * self.compute_scale
            * _ELEMENTWISE_COMPUTE_EFFICIENCY)
    overhead_s = engine.launch_overhead_s * op.kernel_launches
    return OpTiming(
        op=op,
        time_s=max(compute_s, memory_s) + overhead_s,
        compute_s=compute_s,
        memory_s=memory_s,
        overhead_s=overhead_s,
        engine_name=engine.name,
        efficiency=_ELEMENTWISE_COMPUTE_EFFICIENCY,
        memory_bound=memory_s >= compute_s,
    )


@contextlib.contextmanager
def pre_pr_baseline():
    """Reproduce the pre-PR cost model for an honest speedup baseline.

    The seed code rebuilt operator graphs, re-evaluated GEMM efficiency
    curves, and re-derived engine peaks on every decode step; timing the
    ``exact=True`` loop with the memoization layers swapped out for their
    unmemoized originals and the seed pricing loops restored measures
    exactly that baseline (cross-checked against a checkout of the seed
    revision: both price the fig-8 grid in ~0.43 s on the reference box).
    """
    patched = [
        (_opgraph_mod, "_decode_step_ops_cached"),
        (_opgraph_mod, "_prefill_ops_cached"),
        (_efficiency_mod, "_gemm_efficiency_cached"),
        (_executor_mod, "_gemm_efficiency_cached"),
        # The baseline backend sources its op graphs through these names.
        (_backend_mod, "_decode_step_ops_cached"),
        (_backend_mod, "_prefill_ops_cached"),
    ]
    saved = [(mod, name, getattr(mod, name)) for mod, name in patched]
    executor_cls = _executor_mod.OperatorExecutor
    seed_methods = [
        (executor_cls, "_time_gemm", _seed_time_gemm),
        (executor_cls, "_time_bandwidth_op", _seed_time_bandwidth_op),
    ]
    saved_methods = [(cls, name, getattr(cls, name))
                     for cls, name, _ in seed_methods]
    try:
        for mod, name, fn in saved:
            setattr(mod, name, fn.__wrapped__)
        for cls, name, fn in seed_methods:
            setattr(cls, name, fn)
        yield
    finally:
        for mod, name, fn in saved:
            setattr(mod, name, fn)
        for cls, name, fn in saved_methods:
            setattr(cls, name, fn)


def _grid_cells(quick: bool):
    models = evaluated_models()
    batches = list(EVALUATED_BATCH_SIZES)
    platforms = ["icl", "spr"]
    if quick:
        models = models[:2]
        batches = batches[:2]
        platforms = ["spr"]
    cells = []
    for model in models:
        for name in platforms:
            sim = InferenceSimulator(get_platform(name))
            for batch in batches:
                cells.append((sim, model, InferenceRequest(batch_size=batch)))
    return cells


def _run_grid(cells, exact: bool):
    results = []
    for sim, model, request in cells:
        try:
            results.append(sim.run(model, request, exact=exact))
        except MemoryCapacityError:
            results.append(None)
    return results


def _max_rel_err(exact_results, fast_results) -> float:
    worst = 0.0
    for e, f in zip(exact_results, fast_results):
        if e is None or f is None:
            continue
        for key, want in e.summary().items():
            got = f.summary()[key]
            worst = max(worst,
                        abs(got - want) / max(abs(got), abs(want), 1e-300))
    return worst


def bench_fig8_sweep(quick: bool, repeat: int) -> dict:
    """Time the fig-8 grid: per-step loop vs analytical decode pricing."""
    cells = _grid_cells(quick)
    _run_grid(cells, exact=False)  # warm imports and code paths

    def baseline():
        with pre_pr_baseline():
            _run_grid(cells, exact=True)

    def cold_fast():
        clear_caches()
        _run_grid(cells, exact=False)

    # The fast legs finish in tens of milliseconds, so scheduler noise
    # distorts them far more than the ~half-second baseline; they are
    # cheap enough to repeat heavily instead.
    exact_s = min(timeit.repeat(baseline, number=1, repeat=repeat))
    fast_cold_s = min(timeit.repeat(cold_fast, number=1, repeat=5 * repeat))
    fast_warm_s = min(timeit.repeat(
        lambda: _run_grid(cells, exact=False), number=1, repeat=5 * repeat))

    clear_caches()
    exact_results = _run_grid(cells, exact=True)
    fast_results = _run_grid(cells, exact=False)
    return {
        "cells": len(cells),
        "rows": sum(1 for r in fast_results if r is not None),
        "exact_s": exact_s,
        "fast_cold_s": fast_cold_s,
        "fast_warm_s": fast_warm_s,
        "speedup_cold": exact_s / fast_cold_s,
        "speedup_warm": exact_s / fast_warm_s,
        "max_rel_err": _max_rel_err(exact_results, fast_results),
    }


def bench_decode_micro(quick: bool, repeat: int) -> dict:
    """Time one long-decode request: per-step loop vs time_decode_range."""
    model = get_model("opt-6.7b")
    sim = InferenceSimulator(get_platform("spr"))
    request = InferenceRequest(batch_size=4, input_len=128,
                               output_len=64 if quick else 512)

    def baseline():
        with pre_pr_baseline():
            sim.run(model, request, exact=True)

    def cold_fast():
        clear_caches()
        sim.run(model, request, exact=False)

    exact_s = min(timeit.repeat(baseline, number=1, repeat=repeat))
    fast_s = min(timeit.repeat(cold_fast, number=1, repeat=5 * repeat))
    clear_caches()
    err = _max_rel_err([sim.run(model, request, exact=True)],
                       [sim.run(model, request, exact=False)])
    return {
        "model": model.name,
        "platform": "SPR-Max-9468",
        "batch_size": request.batch_size,
        "decode_steps": request.decode_steps,
        "exact_s": exact_s,
        "fast_s": fast_s,
        "speedup": exact_s / fast_s,
        "max_rel_err": err,
    }


# Decode-heavy request mix for the cluster suite: short prompts, long
# generations, so pure-decode stretches dominate — the regime the
# event-horizon fast-forward targets (and the worst case for the
# per-iteration loop).
CLUSTER_SPEC = SimpleNamespace(input_len_range=(16, 64),
                               output_len_range=(96, 192))
CLUSTER_REPLICAS = 3
CLUSTER_MAX_BATCH = 8
CLUSTER_RATE_PER_S = 2.0  # saturates the 3-replica SPR fleet
CLUSTER_SEED = 7


def _cluster_run(count: int, exact: bool, mixed: bool = False):
    """One cold cluster run; returns (wall seconds, ClusterReport)."""
    from repro.cluster import ClusterSimulator, RoundRobinRouter
    from repro.workloads.streams import stream_workload

    clear_caches()
    simulator = ClusterSimulator(
        _mixed_fleet() if mixed else _plain_fleet(),
        RoundRobinRouter(), exact=exact)
    arrivals = stream_workload(CLUSTER_SPEC, CLUSTER_RATE_PER_S,
                               count=count, seed=CLUSTER_SEED)
    begin = time.perf_counter()
    report = simulator.run(arrivals)
    return time.perf_counter() - begin, report


def _plain_fleet():
    from repro.cluster import ReplicaNode

    model = get_model("llama2-7b")
    return [ReplicaNode(f"spr-{i}", get_platform("spr"), model,
                        max_batch=CLUSTER_MAX_BATCH)
            for i in range(CLUSTER_REPLICAS)]


def _mixed_fleet():
    """2x BF16 + 2x INT8-over-TP2 SPR replicas (heterogeneous backends)."""
    from repro.cluster import ClusterConfig, ReplicaSpec
    from repro.engine.backend import parse_backend

    model = get_model("llama2-7b")
    spr = get_platform("spr")
    return ClusterConfig([
        ReplicaSpec(spr, model, count=2, max_batch=CLUSTER_MAX_BATCH),
        ReplicaSpec(spr, model, count=2, max_batch=CLUSTER_MAX_BATCH,
                    backend=parse_backend("int8-tp2")),
    ]).build_fleet()


def _cluster_rel_err(exact_report, fast_report) -> float:
    """Worst relative disagreement across report and per-request fields."""
    worst = 0.0

    def update(want, got):
        nonlocal worst
        worst = max(worst,
                    abs(got - want) / max(abs(got), abs(want), 1e-300))

    for field in ("makespan_s", "throughput", "mean_ttft_s"):
        update(getattr(exact_report, field), getattr(fast_report, field))
    for want, got in zip(exact_report.node_stats, fast_report.node_stats):
        update(want.busy_s, got.busy_s)
        if (want.iterations, want.completed, want.generated_tokens) != \
                (got.iterations, got.completed, got.generated_tokens):
            return float("inf")
    by_id = lambda reports: sorted(reports, key=lambda r: r.request_id)
    for want, got in zip(by_id(exact_report.completed),
                         by_id(fast_report.completed)):
        update(want.ttft_s, got.ttft_s)
        update(want.finish_s, got.finish_s)
    return worst


def bench_cluster(quick: bool, repeat: int) -> dict:
    """Time a saturated cluster run: per-iteration loop vs fast-forward.

    The exact leg is O(total scheduler iterations) and takes minutes at
    full scale, so it runs once; the fast leg is repeated (cold each
    time — the run includes building its step-cost tables).
    """
    count = 2_000 if quick else 100_000
    fast_s = None
    fast_report = None
    for _ in range(repeat):
        elapsed, report = _cluster_run(count, exact=False)
        if fast_s is None or elapsed < fast_s:
            fast_s, fast_report = elapsed, report
    exact_s, exact_report = _cluster_run(count, exact=True)
    return {
        "requests": count,
        "replicas": CLUSTER_REPLICAS,
        "max_batch": CLUSTER_MAX_BATCH,
        "rate_per_s": CLUSTER_RATE_PER_S,
        "iterations": sum(s.iterations for s in fast_report.node_stats),
        "sim_makespan_s": fast_report.makespan_s,
        "exact_s": exact_s,
        "fast_s": fast_s,
        "speedup": exact_s / fast_s,
        "requests_per_s": count / fast_s,
        "max_rel_err": _cluster_rel_err(exact_report, fast_report),
    }


def bench_cluster_mixed(quick: bool, repeat: int) -> dict:
    """Time the heterogeneous fleet: 2x BF16 + 2x INT8-TP2 replicas.

    Exercises per-backend cost tables under fast-forward: each replica's
    coalesced decode windows must price through its own backend's
    tables, and the exact reference must agree bit-for-bit on the
    integer trajectory.
    """
    count = 500 if quick else 20_000
    fast_s = None
    fast_report = None
    for _ in range(repeat):
        elapsed, report = _cluster_run(count, exact=False, mixed=True)
        if fast_s is None or elapsed < fast_s:
            fast_s, fast_report = elapsed, report
    exact_s, exact_report = _cluster_run(count, exact=True, mixed=True)
    return {
        "requests": count,
        "fleet": "2x bf16 + 2x int8-tp2 (SPR)",
        "max_batch": CLUSTER_MAX_BATCH,
        "rate_per_s": CLUSTER_RATE_PER_S,
        "iterations": sum(s.iterations for s in fast_report.node_stats),
        "sim_makespan_s": fast_report.makespan_s,
        "exact_s": exact_s,
        "fast_s": fast_s,
        "speedup": exact_s / fast_s,
        "requests_per_s": count / fast_s,
        "max_rel_err": _cluster_rel_err(exact_report, fast_report),
    }


# Sharded-simulation case: a fleet large enough that the global loop's
# O(fleet) per-event advance scan dominates, sharded into groups whose
# per-group loops scan only O(group) replicas. That algorithmic saving —
# not core count — is what the speedup floor rides on, so it holds even
# time-sliced onto a single core. The workload is decode-heavy (long
# generations) because that is where the gap is widest: every foreign
# interruption forces the single-process loop to split a long coalesced
# decode stretch, and its per-node event rate is ``groups``× higher.
SHARDED_REPLICAS = 16
SHARDED_GROUPS = 16
SHARDED_WORKERS = 4
SHARDED_SPEC = SimpleNamespace(input_len_range=(16, 64),
                               output_len_range=(256, 512))
SHARDED_RATE_PER_S = 3.75  # saturates the 16-replica SPR fleet


def _sharded_run(arrivals, workers: int):
    """One cold sharded cluster run; returns (wall seconds, report)."""
    from repro.cluster import (
        ClusterConfig,
        ReplicaSpec,
        ShardRouter,
        run_sharded,
    )

    clear_caches()
    config = ClusterConfig([ReplicaSpec(get_platform("spr"),
                                        get_model("llama2-7b"),
                                        count=SHARDED_REPLICAS,
                                        max_batch=CLUSTER_MAX_BATCH)])
    begin = time.perf_counter()
    report = run_sharded(config, ShardRouter(SHARDED_GROUPS), arrivals,
                         workers=workers)
    return time.perf_counter() - begin, report


def bench_cluster_sharded(quick: bool, repeat: int) -> dict:
    """Time the sharded runner against the single-process fleet loop.

    Both legs run the identical ShardRouter(16) simulation over 16
    replicas, from the same materialized arrival list (with the fork
    start method, list arguments reach workers as copy-on-write pages,
    so neither leg pays stream regeneration); only the execution
    strategy differs. The legs alternate (single, sharded, single,
    sharded, ...) and each keeps its minimum wall time — timeit-style:
    this single-core container shares its core with noisy neighbors
    and individual runs swing by ±25-40%, so min-of-cold-runs is the
    standard interference-free estimate, and alternating keeps either
    leg from systematically landing in the hotter tail of the suite.
    The sharded leg's minimum still pays fork, transfer, and merge
    every time. Parity is checked exactly like the exact/fast pair: a
    single bit of integer drift is a failure.
    """
    from repro.workloads.streams import ShardableStream

    count = 20_000 if quick else 1_000_000
    repeat = repeat if quick else 3
    arrivals = list(ShardableStream(rate_per_s=SHARDED_RATE_PER_S,
                                    count=count, spec=SHARDED_SPEC,
                                    seed=CLUSTER_SEED).full())
    base_s = None
    base_report = None
    sharded_s = None
    sharded_report = None
    for _ in range(repeat):
        elapsed, report = _sharded_run(arrivals, workers=1)
        if base_s is None or elapsed < base_s:
            base_s, base_report = elapsed, report
        elapsed, report = _sharded_run(arrivals, workers=SHARDED_WORKERS)
        if sharded_s is None or elapsed < sharded_s:
            sharded_s, sharded_report = elapsed, report
    return {
        "requests": count,
        "replicas": SHARDED_REPLICAS,
        "groups": SHARDED_GROUPS,
        "workers": SHARDED_WORKERS,
        "max_batch": CLUSTER_MAX_BATCH,
        "rate_per_s": SHARDED_RATE_PER_S,
        "output_len_range": list(SHARDED_SPEC.output_len_range),
        # Sharding's win on one core is algorithmic (group-local event
        # horizons); with real cores it compounds with workers-fold
        # parallelism, so the host's core count is part of the record.
        "host_cpus": os.cpu_count(),
        "iterations": sum(s.iterations for s in sharded_report.node_stats),
        "sim_makespan_s": sharded_report.makespan_s,
        "single_process_s": base_s,
        "sharded_s": sharded_s,
        "speedup": base_s / sharded_s,
        "requests_per_s": count / sharded_s,
        "max_rel_err": _cluster_rel_err(base_report, sharded_report),
    }


# Vectorized-exact case: long generations (the workload class exact-mode
# validation actually targets — pure-decode stretches of hundreds of
# steps), where pricing a whole stretch with one numpy series call
# amortizes the per-call overhead that dominates per-step pricing.
VEC_SPEC = SimpleNamespace(input_len_range=(16, 64),
                           output_len_range=(256, 512))
VEC_RATE_PER_S = 0.5


def _exact_mode_run(count: int, exact: str):
    """One cold exact-mode cluster run; returns (wall seconds, report)."""
    from repro.cluster import ClusterSimulator, RoundRobinRouter
    from repro.workloads.streams import stream_workload

    clear_caches()
    simulator = ClusterSimulator(_plain_fleet(), RoundRobinRouter(),
                                 exact=exact)
    arrivals = stream_workload(VEC_SPEC, VEC_RATE_PER_S, count=count,
                               seed=CLUSTER_SEED)
    begin = time.perf_counter()
    report = simulator.run(arrivals)
    return time.perf_counter() - begin, report


def bench_exact_vectorized(quick: bool, repeat: int) -> dict:
    """Time vectorized exact mode against the per-step reference loop.

    Both are *exact* modes — neither touches the memoized fast path's
    shared tables — so this measures pure pricing strategy: one fresh
    ``time_decode_series`` call per pure-decode stretch plus a numpy
    prefix-sum horizon search, versus one scalar pricing call per
    iteration. Batch-membership changes and prefill legs stay scalar in
    both, hence the decode-heavy workload.
    """
    count = 300 if quick else 4_000
    vectorized_s = None
    vectorized_report = None
    for _ in range(repeat):
        elapsed, report = _exact_mode_run(count, exact="vectorized")
        if vectorized_s is None or elapsed < vectorized_s:
            vectorized_s, vectorized_report = elapsed, report
    step_s, step_report = _exact_mode_run(count, exact="step")
    return {
        "requests": count,
        "replicas": CLUSTER_REPLICAS,
        "max_batch": CLUSTER_MAX_BATCH,
        "rate_per_s": VEC_RATE_PER_S,
        "output_len_range": list(VEC_SPEC.output_len_range),
        "iterations": sum(s.iterations for s in vectorized_report.node_stats),
        "sim_makespan_s": vectorized_report.makespan_s,
        "step_s": step_s,
        "vectorized_s": vectorized_s,
        "speedup": step_s / vectorized_s,
        "requests_per_s": count / vectorized_s,
        "max_rel_err": _cluster_rel_err(step_report, vectorized_report),
    }


# Fairness-scheduler overhead case: run NEAR capacity (~0.9x the rate
# that saturates the fleet), not at overload. The VTC pick scans the
# ready prefix of the queue, so its cost is O(ready backlog); at
# overload the figure would measure backlog length, not the steady-state
# overhead a provisioned fleet actually pays. Shallow queues are the
# honest operating point for "what does fairness cost".
FAIRNESS_USERS = 12
FAIRNESS_RATE_PER_S = 1.8  # ~0.9x the 3-replica saturation point


def _fairness_run(arrivals, scheduler):
    """One cold cluster run under the named admission scheduler."""
    from repro.cluster import (
        ClusterConfig,
        ClusterSimulator,
        ReplicaSpec,
        RoundRobinRouter,
    )

    clear_caches()
    fleet = ClusterConfig([ReplicaSpec(
        get_platform("spr"), get_model("llama2-7b"),
        count=CLUSTER_REPLICAS, max_batch=CLUSTER_MAX_BATCH,
        scheduler=scheduler)]).build_fleet()
    simulator = ClusterSimulator(fleet, RoundRobinRouter())
    begin = time.perf_counter()
    report = simulator.run(iter(arrivals))
    return time.perf_counter() - begin, report


def bench_fairness(quick: bool, repeat: int) -> dict:
    """Time admission schedulers against the built-in admission loop.

    Four legs over the identical materialized tenant stream: the
    built-in loop (scheduler=None), the explicit FCFS scheduler (must
    agree bit-for-bit — the parity contract the refactor pins), and the
    VTC/WSC fairness schedulers (whose pick/charge bookkeeping is the
    overhead being measured, reported as a ratio over the built-in
    loop). Legs alternate and keep their minimum wall time, like the
    sharded benchmark, to ride out neighbor noise.
    """
    from repro.workloads import TenantStream, TenantWorkloadSpec

    count = 2_000 if quick else 100_000
    spec = TenantWorkloadSpec(users=FAIRNESS_USERS, apps=2, zipf_s=1.2,
                              input_len_range=(16, 64),
                              output_len_range=(96, 192))
    arrivals = list(TenantStream(spec=spec, rate_per_s=FAIRNESS_RATE_PER_S,
                                 count=count, seed=CLUSTER_SEED).full())
    schedulers = (None, "fcfs", "vtc", "wsc")
    best = {}
    reports = {}
    for _ in range(repeat):
        for scheduler in schedulers:
            key = scheduler or "none"
            elapsed, report = _fairness_run(arrivals, scheduler)
            if key not in best or elapsed < best[key]:
                best[key], reports[key] = elapsed, report
    return {
        "requests": count,
        "users": FAIRNESS_USERS,
        "replicas": CLUSTER_REPLICAS,
        "max_batch": CLUSTER_MAX_BATCH,
        "rate_per_s": FAIRNESS_RATE_PER_S,
        "baseline_s": best["none"],
        "fcfs_s": best["fcfs"],
        "vtc_s": best["vtc"],
        "wsc_s": best["wsc"],
        "fcfs_overhead": best["fcfs"] / best["none"],
        "vtc_overhead": best["vtc"] / best["none"],
        "wsc_overhead": best["wsc"] / best["none"],
        "requests_per_s": count / best["vtc"],
        "fcfs_max_rel_err": _cluster_rel_err(reports["none"],
                                             reports["fcfs"]),
    }


# Same operating point as ext_tiering: the 2x ICL-7B tier runs hot
# enough to spill bursts upward while every class still clears its bar.
TIERING_RATE_PER_S = 1.5


def _tiering_run(count: int, fleet: str, exact: bool):
    """One cold classified-workload run; returns (wall s, report, tiering)."""
    from repro.cluster import (
        ClusterConfig,
        ClusterSimulator,
        JoinShortestQueueRouter,
        ReplicaSpec,
        TieredRouter,
        tiering_report,
    )
    from repro.workloads import ClassMixStream

    clear_caches()
    stream = ClassMixStream(rate_per_s=TIERING_RATE_PER_S, count=count,
                            seed=CLUSTER_SEED)
    if fleet == "tiered":
        config = ClusterConfig([
            ReplicaSpec(get_platform("icl"), get_model("llama2-7b"),
                        count=2, max_batch=CLUSTER_MAX_BATCH),
            ReplicaSpec(get_platform("spr"), get_model("llama2-13b"),
                        count=2, max_batch=CLUSTER_MAX_BATCH),
        ])
        router = TieredRouter(stream.classifier())
    else:
        config = ClusterConfig([ReplicaSpec(
            get_platform("spr"), get_model("llama2-13b"), count=4,
            max_batch=CLUSTER_MAX_BATCH)])
        router = JoinShortestQueueRouter()
    simulator = ClusterSimulator(config.build_fleet(), router, exact=exact)
    begin = time.perf_counter()
    report = simulator.run(stream.full())
    elapsed = time.perf_counter() - begin
    return elapsed, report, tiering_report(report, stream.full(),
                                           stream.classifier())


def bench_tiering(quick: bool, repeat: int) -> dict:
    """Tiered routing: fast-path parity and the $/Mtok claim.

    Three legs over the identical classified stream: the tiered
    heterogeneous fleet on the event-horizon fast path, the same fleet
    stepped per iteration (``exact=True`` — the parity reference, so
    mixed-model tier accounting inherits the cluster suite's 1e-9
    contract), and the one-size 4x SPR-13B fleet the experiment
    benchmarks against. Records the tiered-vs-one-size $/Mtok ratio at
    their respective class-SLO attainments.
    """
    count = 600 if quick else 5_000
    legs = (("tiered", False), ("tiered", True), ("onesize", False))
    best = {}
    results = {}
    for _ in range(repeat):
        for fleet, exact in legs:
            key = f"{fleet}_{'exact' if exact else 'fast'}"
            elapsed, report, tiering = _tiering_run(count, fleet, exact)
            if key not in best or elapsed < best[key]:
                best[key] = elapsed
                results[key] = (report, tiering)
    fast_report, fast_tiering = results["tiered_fast"]
    exact_report, _ = results["tiered_exact"]
    onesize_report, onesize_tiering = results["onesize_fast"]
    return {
        "requests": count,
        "rate_per_s": TIERING_RATE_PER_S,
        "max_batch": CLUSTER_MAX_BATCH,
        "tiered_fast_s": best["tiered_fast"],
        "tiered_exact_s": best["tiered_exact"],
        "speedup": best["tiered_exact"] / best["tiered_fast"],
        "requests_per_s": count / best["tiered_fast"],
        "max_rel_err": _cluster_rel_err(exact_report, fast_report),
        "counters_match": (fast_report.router_counters
                           == exact_report.router_counters),
        "tiered_fleet_usd": fast_report.fleet_price_usd,
        "tiered_dollars_per_mtok": fast_tiering.dollars_per_mtok,
        "tiered_attainment": fast_tiering.attainment,
        "tiered_spills": fast_tiering.spills,
        "onesize_fleet_usd": onesize_report.fleet_price_usd,
        "onesize_dollars_per_mtok": onesize_tiering.dollars_per_mtok,
        "onesize_attainment": onesize_tiering.attainment,
        "dpm_ratio": (onesize_tiering.dollars_per_mtok
                      / fast_tiering.dollars_per_mtok),
    }


# Provisioning sweep for the fluid suite: how many SPR replicas serve a
# fixed offered load? The rate is pinned well above one replica's
# saturation so the ten fleet sizes cross all three regimes —
# overloaded (small k), near-saturation (the knee), stable (large k).
FLUID_POINTS = 10
FLUID_OVERPROVISION = 5.5


def _fluid_configs():
    from repro.cluster import ClusterConfig, ReplicaSpec

    model = get_model("llama2-7b")
    spr = get_platform("spr")
    return [ClusterConfig([ReplicaSpec(spr, model, count=k,
                                       max_batch=CLUSTER_MAX_BATCH)])
            for k in range(1, FLUID_POINTS + 1)]


def bench_fluid(quick: bool, repeat: int) -> dict:
    """Fluid steady-state solver vs exact fast-forward on a sweep.

    The tentpole claim: a 10-point provisioning what-if (1..10 SPR
    replicas at one offered load) answered analytically in milliseconds
    instead of simulated minutes. Both legs start cold (the fluid leg's
    cold time includes building its shared cost tables; the warm time
    is what every subsequent what-if costs). The error envelope vs the
    exact simulator is recorded per regime: stable points carry the
    accuracy contract, near-saturation is reported but not trusted,
    overload is checked to be *flagged*, not extrapolated.
    """
    from repro.cluster import fluid
    from repro.optim.advisor import measure_fleet
    from repro.serving.slo import SLO

    count = 1_500 if quick else 20_000
    slo = SLO()
    configs = _fluid_configs()
    rate = FLUID_OVERPROVISION * fluid.saturation_rate(
        configs[0], spec=CLUSTER_SPEC, slo=slo)
    scenarios = [fluid.FluidScenario(config=config, rate_per_s=rate,
                                     label=f"{k + 1}x SPR")
                 for k, config in enumerate(configs)]

    def solve_all():
        return fluid.solve_grid(scenarios, spec=CLUSTER_SPEC, slo=slo,
                                router="uniform")

    clear_caches()
    begin = time.perf_counter()
    reports = solve_all()
    fluid_cold_s = time.perf_counter() - begin
    fluid_warm_s = None
    for _ in range(repeat):
        begin = time.perf_counter()
        solve_all()
        elapsed = time.perf_counter() - begin
        if fluid_warm_s is None or elapsed < fluid_warm_s:
            fluid_warm_s = elapsed

    clear_caches()
    sim_s = 0.0
    measured = []
    for config in configs:
        begin = time.perf_counter()
        attainment, goodput, throughput, dollars = measure_fleet(
            config, rate, spec=CLUSTER_SPEC, slo=slo, count=count,
            seed=CLUSTER_SEED)
        sim_s += time.perf_counter() - begin
        measured.append((attainment, goodput, throughput, dollars))

    def rel_err(fluid_value, sim_value):
        return abs(fluid_value - sim_value) / max(abs(sim_value), 1e-300)

    envelope = {}
    points = []
    for k, (report, (attainment, goodput, throughput, dollars)) in \
            enumerate(zip(reports, measured)):
        errors = {
            "throughput": rel_err(report.throughput_tokens_per_s,
                                  throughput),
            "goodput": rel_err(report.goodput_tokens_per_s, goodput),
            "dollars_per_mtok": rel_err(report.dollars_per_mtok, dollars),
        }
        bucket = envelope.setdefault(
            report.regime, {"points": 0, "throughput": 0.0,
                            "goodput": 0.0, "dollars_per_mtok": 0.0,
                            "max_sim_attainment": 0.0})
        bucket["points"] += 1
        bucket["max_sim_attainment"] = max(bucket["max_sim_attainment"],
                                           attainment)
        for metric, err in errors.items():
            bucket[metric] = max(bucket[metric], err)
        points.append({
            "replicas": k + 1,
            "regime": report.regime,
            "rho": report.max_rho,
            "fluid_throughput": report.throughput_tokens_per_s,
            "sim_throughput": throughput,
            "fluid_attainment": report.attainment,
            "sim_attainment": attainment,
            "fluid_dollars_per_mtok": report.dollars_per_mtok,
            "sim_dollars_per_mtok": dollars,
        })
    # Overload must be flagged, never silently extrapolated: every
    # fluid-overloaded point should also drown the simulator.
    overloaded = [p for p in points if p["regime"] == "overloaded"]
    overload_flag_agrees = all(p["sim_attainment"] < 0.5
                               for p in overloaded)
    return {
        "points": FLUID_POINTS,
        "rate_per_s": rate,
        "max_batch": CLUSTER_MAX_BATCH,
        "sim_requests": count,
        "fluid_cold_s": fluid_cold_s,
        "fluid_warm_s": fluid_warm_s,
        "sim_s": sim_s,
        "speedup": sim_s / fluid_cold_s,
        "speedup_warm": sim_s / fluid_warm_s,
        "overload_flag_agrees": overload_flag_agrees,
        "envelope": envelope,
        "sweep": points,
    }


# Fleet-mix suite: the ext_fleetmix fleet shape — CPU, GPU, and hybrid
# replicas mixed in one fleet — at a load the mix comfortably sustains.
FLEETMIX_RATE_PER_S = 2.5
FLEETMIX_MIX = (("simple", 0.5), ("standard", 0.35), ("reasoning", 0.15))


def _fleetmix_config():
    from repro.analysis.cost import list_price
    from repro.cluster import ClusterConfig, ReplicaSpec
    from repro.engine.backend import HybridBackend

    spr, a100 = get_platform("spr"), get_platform("a100")
    model = get_model("llama2-13b")
    return ClusterConfig([
        ReplicaSpec(spr, model, count=2, max_batch=CLUSTER_MAX_BATCH),
        ReplicaSpec(a100, model, count=1, max_batch=CLUSTER_MAX_BATCH),
        ReplicaSpec(spr, model, count=1, max_batch=CLUSTER_MAX_BATCH,
                    backend=HybridBackend(gpu=a100),
                    price_usd=(list_price(spr.name)
                               + list_price(a100.name))),
    ])


def _fleetmix_run(count: int, exact: bool):
    """One cold mixed CPU/GPU/hybrid run; returns (wall s, report)."""
    from repro.cluster import ClusterSimulator, TieredRouter
    from repro.workloads import ClassMixStream

    clear_caches()
    stream = ClassMixStream(rate_per_s=FLEETMIX_RATE_PER_S, count=count,
                            mix=FLEETMIX_MIX, seed=CLUSTER_SEED)
    simulator = ClusterSimulator(_fleetmix_config().build_fleet(),
                                 TieredRouter(stream.classifier()),
                                 exact=exact)
    begin = time.perf_counter()
    report = simulator.run(stream.full())
    return time.perf_counter() - begin, report


def bench_fleetmix(quick: bool, repeat: int) -> dict:
    """Mixed CPU/GPU/hybrid fleet: fast-path parity and fluid envelope.

    Two legs over the identical classified stream on the ext_fleetmix
    fleet shape (2x SPR + 1x A100 + 1x SPR+A100 hybrid, all serving
    LLaMA2-13B): event-horizon fast-forward vs per-iteration stepping
    (``exact=True``), extending the cluster suite's 1e-9 parity
    contract to fleets whose replicas price prefill on a GPU executor
    with PCIe streaming (the hybrid backend's comm term). A third leg
    checks the fluid steady-state solver against the fast simulator on
    the same mixed fleet — the envelope ``recommend_fleet`` relies on
    when ranking CPU/GPU/hybrid mixes.
    """
    from repro.cluster import fluid
    from repro.optim.advisor import measure_fleet

    count = 600 if quick else 5_000
    best = {}
    reports = {}
    for _ in range(repeat):
        for exact in (False, True):
            key = "exact" if exact else "fast"
            elapsed, report = _fleetmix_run(count, exact)
            if key not in best or elapsed < best[key]:
                best[key], reports[key] = elapsed, report

    clear_caches()
    scenario = fluid.FluidScenario(config=_fleetmix_config(),
                                   rate_per_s=FLEETMIX_RATE_PER_S,
                                   label="2xspr+1xa100+1xhybrid")
    begin = time.perf_counter()
    fluid_report = fluid.solve_grid([scenario], mix=FLEETMIX_MIX)[0]
    fluid_s = time.perf_counter() - begin
    attainment, goodput, throughput, dollars = measure_fleet(
        _fleetmix_config(), FLEETMIX_RATE_PER_S, mix=FLEETMIX_MIX,
        count=count, seed=CLUSTER_SEED)

    def rel_err(fluid_value, sim_value):
        return abs(fluid_value - sim_value) / max(abs(sim_value), 1e-300)

    return {
        "requests": count,
        "rate_per_s": FLEETMIX_RATE_PER_S,
        "max_batch": CLUSTER_MAX_BATCH,
        "fleet": "2xspr+1xa100+1xhybrid(spr+a100)",
        "fast_s": best["fast"],
        "exact_s": best["exact"],
        "speedup": best["exact"] / best["fast"],
        "requests_per_s": count / best["fast"],
        "max_rel_err": _cluster_rel_err(reports["exact"], reports["fast"]),
        "counters_match": (reports["fast"].router_counters
                           == reports["exact"].router_counters),
        "fleet_usd": reports["fast"].fleet_price_usd,
        "fluid_s": fluid_s,
        "fluid_envelope": {
            "throughput": rel_err(fluid_report.throughput_tokens_per_s,
                                  throughput),
            "goodput": rel_err(fluid_report.goodput_tokens_per_s, goodput),
            "dollars_per_mtok": rel_err(fluid_report.dollars_per_mtok,
                                        dollars),
        },
        "fluid_attainment": fluid_report.attainment,
        "sim_attainment": attainment,
        "fluid_regime": fluid_report.regime,
    }


def _environment() -> dict:
    """Host facts that contextualize wall-clock numbers across PRs."""
    import subprocess

    revision = None
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        revision = proc.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        revision = None
    return {"host_cpus": os.cpu_count(), "git_revision": revision}


def _print_cluster(cluster: dict) -> None:
    print(f"cluster ({cluster['requests']:,} requests, "
          f"{cluster['replicas']} replicas): "
          f"exact {cluster['exact_s']:.1f}s, "
          f"fast {cluster['fast_s']:.2f}s "
          f"({cluster['speedup']:.1f}x, "
          f"{cluster['requests_per_s']:,.0f} req/s), "
          f"max rel err {cluster['max_rel_err']:.2e}")


def _print_cluster_mixed(mixed: dict) -> None:
    print(f"mixed fleet ({mixed['requests']:,} requests, "
          f"{mixed['fleet']}): "
          f"exact {mixed['exact_s']:.1f}s, "
          f"fast {mixed['fast_s']:.2f}s "
          f"({mixed['speedup']:.1f}x, "
          f"{mixed['requests_per_s']:,.0f} req/s), "
          f"max rel err {mixed['max_rel_err']:.2e}")


def _print_cluster_sharded(sharded: dict) -> None:
    print(f"sharded ({sharded['requests']:,} requests, "
          f"{sharded['replicas']} replicas, "
          f"{sharded['workers']} workers): "
          f"single-process {sharded['single_process_s']:.1f}s, "
          f"sharded {sharded['sharded_s']:.1f}s "
          f"({sharded['speedup']:.1f}x, "
          f"{sharded['requests_per_s']:,.0f} req/s), "
          f"max rel err {sharded['max_rel_err']:.2e}")


def _print_fairness(fairness: dict) -> None:
    print(f"fairness ({fairness['requests']:,} requests, "
          f"{fairness['users']} users): "
          f"builtin {fairness['baseline_s']:.2f}s, "
          f"fcfs {fairness['fcfs_overhead']:.2f}x, "
          f"vtc {fairness['vtc_overhead']:.2f}x, "
          f"wsc {fairness['wsc_overhead']:.2f}x, "
          f"fcfs max rel err {fairness['fcfs_max_rel_err']:.2e}")


def _print_tiering(tiering: dict) -> None:
    print(f"tiering ({tiering['requests']:,} requests, "
          f"rate {tiering['rate_per_s']}/s): "
          f"exact {tiering['tiered_exact_s']:.1f}s, "
          f"fast {tiering['tiered_fast_s']:.2f}s "
          f"({tiering['speedup']:.1f}x), "
          f"max rel err {tiering['max_rel_err']:.2e}; "
          f"tiered {tiering['tiered_dollars_per_mtok']:.2f} $/Mtok "
          f"@ att {tiering['tiered_attainment']:.3f} vs "
          f"one-size {tiering['onesize_dollars_per_mtok']:.2f} "
          f"@ att {tiering['onesize_attainment']:.3f} "
          f"({tiering['dpm_ratio']:.2f}x)")


def _print_exact_vectorized(vec: dict) -> None:
    print(f"vectorized exact ({vec['requests']:,} requests, "
          f"out {vec['output_len_range'][0]}-{vec['output_len_range'][1]}): "
          f"per-step {vec['step_s']:.1f}s, "
          f"vectorized {vec['vectorized_s']:.1f}s "
          f"({vec['speedup']:.1f}x), "
          f"max rel err {vec['max_rel_err']:.2e}")


def _print_fluid(fluid: dict) -> None:
    stable = fluid["envelope"].get("stable", {})
    print(f"fluid ({fluid['points']} provisioning points, "
          f"{fluid['sim_requests']:,} sim requests/point): "
          f"sim {fluid['sim_s']:.1f}s, "
          f"fluid cold {fluid['fluid_cold_s'] * 1e3:.0f}ms "
          f"({fluid['speedup']:.0f}x), "
          f"warm {fluid['fluid_warm_s'] * 1e3:.1f}ms "
          f"({fluid['speedup_warm']:.0f}x); "
          f"stable envelope: throughput "
          f"{stable.get('throughput', 0.0):.1%}, "
          f"$/Mtok {stable.get('dollars_per_mtok', 0.0):.1%}; "
          f"overload flagged: {fluid['overload_flag_agrees']}")


def _print_fleetmix(fleetmix: dict) -> None:
    envelope = fleetmix["fluid_envelope"]
    print(f"fleetmix ({fleetmix['requests']:,} requests, "
          f"{fleetmix['fleet']}): "
          f"exact {fleetmix['exact_s']:.1f}s, "
          f"fast {fleetmix['fast_s']:.2f}s "
          f"({fleetmix['speedup']:.1f}x, "
          f"{fleetmix['requests_per_s']:,.0f} req/s), "
          f"max rel err {fleetmix['max_rel_err']:.2e}; "
          f"fluid {fleetmix['fluid_s'] * 1e3:.0f}ms, envelope: "
          f"throughput {envelope['throughput']:.1%}, "
          f"$/Mtok {envelope['dollars_per_mtok']:.1%}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite",
                        choices=("sweep", "cluster", "fairness", "tiering",
                                 "fluid", "fleetmix"),
                        default="sweep",
                        help="benchmark suite to run (default: sweep)")
    parser.add_argument("--json", default=None,
                        help="output path for the JSON report (default: "
                             "BENCH_<suite>.json; the fairness suite "
                             "merges into BENCH_cluster.json)")
    parser.add_argument("--repeat", type=int, default=5,
                        help="timing repetitions (best is reported)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny runs for smoke testing")
    args = parser.parse_args(argv)
    if args.json:
        destination = args.json
    elif args.suite in ("fairness", "tiering", "fluid", "fleetmix"):
        destination = "BENCH_cluster.json"
    else:
        destination = f"BENCH_{args.suite}.json"

    if args.suite in ("fairness", "tiering", "fluid", "fleetmix"):
        # Merge into the cluster report rather than replacing it: the
        # fairness/tiering/fluid figures extend the same
        # simulation-throughput record. Merged suites carry their own
        # environment stamp (the top-level one dates the cluster run).
        report = {}
        if os.path.exists(destination):
            with open(destination) as fh:
                report = json.load(fh)
        if args.suite == "fairness":
            report["fairness"] = bench_fairness(args.quick,
                                                min(args.repeat, 3))
        elif args.suite == "tiering":
            report["tiering"] = bench_tiering(args.quick,
                                              min(args.repeat, 3))
        elif args.suite == "fleetmix":
            report["fleetmix"] = bench_fleetmix(args.quick,
                                                min(args.repeat, 3))
        else:
            report["fluid"] = bench_fluid(args.quick, min(args.repeat, 3))
        report[args.suite]["environment"] = _environment()
    elif args.suite == "cluster":
        report = {
            "benchmark": "cluster event-horizon fast-forward",
            "quick": args.quick,
            "environment": _environment(),
            "cluster": bench_cluster(args.quick, min(args.repeat, 3)),
            "cluster_mixed": bench_cluster_mixed(args.quick,
                                                 min(args.repeat, 3)),
            "cluster_sharded": bench_cluster_sharded(args.quick,
                                                     min(args.repeat, 3)),
            "exact_vectorized": bench_exact_vectorized(args.quick,
                                                       min(args.repeat, 3)),
        }
    else:
        report = {
            "benchmark": "fig8-grid + decode-pricing microbenchmark",
            "quick": args.quick,
            "environment": _environment(),
            "fig8_sweep": bench_fig8_sweep(args.quick, args.repeat),
            "decode_micro": bench_decode_micro(args.quick, args.repeat),
        }
    with open(destination, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    if args.suite == "fairness":
        _print_fairness(report["fairness"])
    elif args.suite == "tiering":
        _print_tiering(report["tiering"])
    elif args.suite == "fluid":
        _print_fluid(report["fluid"])
    elif args.suite == "fleetmix":
        _print_fleetmix(report["fleetmix"])
    elif args.suite == "cluster":
        _print_cluster(report["cluster"])
        _print_cluster_mixed(report["cluster_mixed"])
        _print_cluster_sharded(report["cluster_sharded"])
        _print_exact_vectorized(report["exact_vectorized"])
    else:
        sweep = report["fig8_sweep"]
        micro = report["decode_micro"]
        print(f"fig-8 grid ({sweep['rows']} rows): "
              f"exact {sweep['exact_s']:.3f}s, "
              f"fast cold {sweep['fast_cold_s']:.3f}s "
              f"({sweep['speedup_cold']:.1f}x), "
              f"warm {sweep['fast_warm_s']:.3f}s "
              f"({sweep['speedup_warm']:.1f}x), "
              f"max rel err {sweep['max_rel_err']:.2e}")
        print(f"decode micro ({micro['decode_steps']} steps): "
              f"exact {micro['exact_s']*1e3:.2f}ms, "
              f"fast {micro['fast_s']*1e3:.2f}ms "
              f"({micro['speedup']:.1f}x), "
              f"max rel err {micro['max_rel_err']:.2e}")
    print(f"wrote {destination}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
