#!/usr/bin/env python
"""Performance benchmark for the simulation hot path.

Times two things and writes the results as JSON (``BENCH_sweep.json`` by
default) so future PRs can track the performance trajectory:

* **fig-8 grid** — the paper's 8 models x {ICL, SPR} x batches 1-32 sweep,
  priced with the pre-PR per-step decode loop (``exact=True``, pricing
  caches cleared first) and with the analytical fast path
  (:meth:`OperatorExecutor.time_decode_range`), cold and warm.
* **decode-pricing microbenchmark** — one long-decode request priced per
  step vs. analytically.

Both modes also cross-check that fast-path metrics agree with the exact
loop (max relative error is recorded in the JSON).

Usage::

    PYTHONPATH=src python tools/bench.py --json BENCH_sweep.json
    PYTHONPATH=src python tools/bench.py --quick   # tiny grid, smoke tests
"""

import argparse
import contextlib
import json
import sys
import timeit

import repro.engine.executor as _executor_mod
import repro.gemm.efficiency as _efficiency_mod
import repro.models.opgraph as _opgraph_mod
from repro.engine.executor import _ELEMENTWISE_COMPUTE_EFFICIENCY, OpTiming
from repro.gemm.efficiency import gemm_efficiency
from repro.engine.inference import InferenceSimulator, MemoryCapacityError
from repro.engine.request import EVALUATED_BATCH_SIZES, InferenceRequest
from repro.experiments._sweeps import clear_caches
from repro.hardware.registry import get_platform
from repro.models.registry import evaluated_models, get_model


def _seed_time_gemm(self, op, memory_s):
    """The seed revision's ``OperatorExecutor._time_gemm``, verbatim.

    Re-derives engine peaks and the elementwise rate per op and builds an
    ``OpTiming`` per candidate engine, exactly as the pre-PR executor did
    (the current one precomputes peaks and constructs only the winner).
    """
    best = None
    for engine in self._engines:
        eff = gemm_efficiency(engine, op.m, op.n, op.k)
        peak = engine.peak(self.dtype) * self.compute_scale
        compute_s = op.gemm_flops / (peak * eff)
        if op.extra_flops:
            compute_s += op.extra_flops / (
                self._vector_like.peak(self.dtype) * self.compute_scale
                * _ELEMENTWISE_COMPUTE_EFFICIENCY)
        overhead_s = engine.launch_overhead_s * op.kernel_launches
        timing = OpTiming(
            op=op,
            time_s=max(compute_s, memory_s) + overhead_s,
            compute_s=compute_s,
            memory_s=memory_s,
            overhead_s=overhead_s,
            engine_name=engine.name,
            efficiency=eff,
            memory_bound=memory_s >= compute_s,
        )
        if best is None or timing.time_s < best.time_s:
            best = timing
    assert best is not None
    return best


def _seed_time_bandwidth_op(self, op, memory_s):
    """The seed revision's ``OperatorExecutor._time_bandwidth_op``."""
    engine = self._vector_like
    compute_s = 0.0
    if op.extra_flops:
        compute_s = op.extra_flops / (
            engine.peak(self.dtype) * self.compute_scale
            * _ELEMENTWISE_COMPUTE_EFFICIENCY)
    overhead_s = engine.launch_overhead_s * op.kernel_launches
    return OpTiming(
        op=op,
        time_s=max(compute_s, memory_s) + overhead_s,
        compute_s=compute_s,
        memory_s=memory_s,
        overhead_s=overhead_s,
        engine_name=engine.name,
        efficiency=_ELEMENTWISE_COMPUTE_EFFICIENCY,
        memory_bound=memory_s >= compute_s,
    )


@contextlib.contextmanager
def pre_pr_baseline():
    """Reproduce the pre-PR cost model for an honest speedup baseline.

    The seed code rebuilt operator graphs, re-evaluated GEMM efficiency
    curves, and re-derived engine peaks on every decode step; timing the
    ``exact=True`` loop with the memoization layers swapped out for their
    unmemoized originals and the seed pricing loops restored measures
    exactly that baseline (cross-checked against a checkout of the seed
    revision: both price the fig-8 grid in ~0.43 s on the reference box).
    """
    patched = [
        (_opgraph_mod, "_decode_step_ops_cached"),
        (_opgraph_mod, "_prefill_ops_cached"),
        (_efficiency_mod, "_gemm_efficiency_cached"),
        (_executor_mod, "_gemm_efficiency_cached"),
        (_executor_mod, "_decode_step_ops_cached"),
    ]
    saved = [(mod, name, getattr(mod, name)) for mod, name in patched]
    executor_cls = _executor_mod.OperatorExecutor
    seed_methods = [
        (executor_cls, "_time_gemm", _seed_time_gemm),
        (executor_cls, "_time_bandwidth_op", _seed_time_bandwidth_op),
    ]
    saved_methods = [(cls, name, getattr(cls, name))
                     for cls, name, _ in seed_methods]
    try:
        for mod, name, fn in saved:
            setattr(mod, name, fn.__wrapped__)
        for cls, name, fn in seed_methods:
            setattr(cls, name, fn)
        yield
    finally:
        for mod, name, fn in saved:
            setattr(mod, name, fn)
        for cls, name, fn in saved_methods:
            setattr(cls, name, fn)


def _grid_cells(quick: bool):
    models = evaluated_models()
    batches = list(EVALUATED_BATCH_SIZES)
    platforms = ["icl", "spr"]
    if quick:
        models = models[:2]
        batches = batches[:2]
        platforms = ["spr"]
    cells = []
    for model in models:
        for name in platforms:
            sim = InferenceSimulator(get_platform(name))
            for batch in batches:
                cells.append((sim, model, InferenceRequest(batch_size=batch)))
    return cells


def _run_grid(cells, exact: bool):
    results = []
    for sim, model, request in cells:
        try:
            results.append(sim.run(model, request, exact=exact))
        except MemoryCapacityError:
            results.append(None)
    return results


def _max_rel_err(exact_results, fast_results) -> float:
    worst = 0.0
    for e, f in zip(exact_results, fast_results):
        if e is None or f is None:
            continue
        for key, want in e.summary().items():
            got = f.summary()[key]
            worst = max(worst,
                        abs(got - want) / max(abs(got), abs(want), 1e-300))
    return worst


def bench_fig8_sweep(quick: bool, repeat: int) -> dict:
    """Time the fig-8 grid: per-step loop vs analytical decode pricing."""
    cells = _grid_cells(quick)
    _run_grid(cells, exact=False)  # warm imports and code paths

    def baseline():
        with pre_pr_baseline():
            _run_grid(cells, exact=True)

    def cold_fast():
        clear_caches()
        _run_grid(cells, exact=False)

    # The fast legs finish in tens of milliseconds, so scheduler noise
    # distorts them far more than the ~half-second baseline; they are
    # cheap enough to repeat heavily instead.
    exact_s = min(timeit.repeat(baseline, number=1, repeat=repeat))
    fast_cold_s = min(timeit.repeat(cold_fast, number=1, repeat=5 * repeat))
    fast_warm_s = min(timeit.repeat(
        lambda: _run_grid(cells, exact=False), number=1, repeat=5 * repeat))

    clear_caches()
    exact_results = _run_grid(cells, exact=True)
    fast_results = _run_grid(cells, exact=False)
    return {
        "cells": len(cells),
        "rows": sum(1 for r in fast_results if r is not None),
        "exact_s": exact_s,
        "fast_cold_s": fast_cold_s,
        "fast_warm_s": fast_warm_s,
        "speedup_cold": exact_s / fast_cold_s,
        "speedup_warm": exact_s / fast_warm_s,
        "max_rel_err": _max_rel_err(exact_results, fast_results),
    }


def bench_decode_micro(quick: bool, repeat: int) -> dict:
    """Time one long-decode request: per-step loop vs time_decode_range."""
    model = get_model("opt-6.7b")
    sim = InferenceSimulator(get_platform("spr"))
    request = InferenceRequest(batch_size=4, input_len=128,
                               output_len=64 if quick else 512)

    def baseline():
        with pre_pr_baseline():
            sim.run(model, request, exact=True)

    def cold_fast():
        clear_caches()
        sim.run(model, request, exact=False)

    exact_s = min(timeit.repeat(baseline, number=1, repeat=repeat))
    fast_s = min(timeit.repeat(cold_fast, number=1, repeat=5 * repeat))
    clear_caches()
    err = _max_rel_err([sim.run(model, request, exact=True)],
                       [sim.run(model, request, exact=False)])
    return {
        "model": model.name,
        "platform": "SPR-Max-9468",
        "batch_size": request.batch_size,
        "decode_steps": request.decode_steps,
        "exact_s": exact_s,
        "fast_s": fast_s,
        "speedup": exact_s / fast_s,
        "max_rel_err": err,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default="BENCH_sweep.json",
                        help="output path for the JSON report")
    parser.add_argument("--repeat", type=int, default=5,
                        help="timing repetitions (best is reported)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny grid for smoke testing")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "fig8-grid + decode-pricing microbenchmark",
        "quick": args.quick,
        "fig8_sweep": bench_fig8_sweep(args.quick, args.repeat),
        "decode_micro": bench_decode_micro(args.quick, args.repeat),
    }
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    sweep = report["fig8_sweep"]
    micro = report["decode_micro"]
    print(f"fig-8 grid ({sweep['rows']} rows): "
          f"exact {sweep['exact_s']:.3f}s, "
          f"fast cold {sweep['fast_cold_s']:.3f}s "
          f"({sweep['speedup_cold']:.1f}x), "
          f"warm {sweep['fast_warm_s']:.3f}s "
          f"({sweep['speedup_warm']:.1f}x), "
          f"max rel err {sweep['max_rel_err']:.2e}")
    print(f"decode micro ({micro['decode_steps']} steps): "
          f"exact {micro['exact_s']*1e3:.2f}ms, "
          f"fast {micro['fast_s']*1e3:.2f}ms "
          f"({micro['speedup']:.1f}x), "
          f"max rel err {micro['max_rel_err']:.2e}")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
