"""Bench: Fig. 19 — CPU vs GPU end-to-end at batch 16."""


def test_fig19_cpu_gpu_batch16(run_report):
    report = run_report("fig19")
    rows = {row[0]: row for row in report.rows}
    # GPUs dominate in-memory models, wider than at batch 1.
    for model in ("OPT-6.7B", "LLaMA2-7B", "OPT-13B", "LLaMA2-13B"):
        assert rows[model][3] < 0.6, f"H100 advantage should widen: {model}"
    # A100-offloaded models: CPU still wins at batch 16 (paper).
    assert rows["OPT-30B"][2] == "off"
    assert rows["OPT-30B"][1] > 1.0
    assert rows["LLaMA2-70B"][1] > 1.0
