"""Bench: tracing must cost nothing when disabled.

Every hot loop in the scheduler/cluster layer now carries trace emission
guarded by ``if tracer.enabled:``. The contract is that the default
(:data:`~repro.trace.NOOP_TRACER`) path pays only that attribute read —
no span construction, no argument dicts. This bench runs the
continuous-batching scheduler over a sizeable arrival stream with an
explicit :class:`~repro.trace.NoopTracer` and compares against the
default call (the same noop path — defaults *are* the noop tracer, so
this guards the guard: if someone makes emission unconditional or puts
work ahead of the ``enabled`` check, both legs inherit it and the
recording comparison below catches the cost).

Two assertions:

* explicit NoopTracer within **2%** of the default call (ISSUE bound;
  identical code path, so only a broken guard or pathological tracer
  dispatch can trip it);
* a :class:`~repro.trace.RecordingTracer` run stays within a loose
  informational factor — recording is allowed to cost real time, but a
  blowup here means emission crept inside an inner loop it should not
  be in.

Run with::

    pytest benchmarks/test_trace_overhead.py --benchmark-only
"""

import timeit

from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.serving.arrivals import poisson_arrivals
from repro.serving.scheduler import BatchingSimulator
from repro.trace import NoopTracer, RecordingTracer
from repro.workloads.generator import chatbot_workload

MAX_NOOP_OVERHEAD = 0.02     # the ISSUE's bound: <2% vs the untraced call
MAX_RECORDING_FACTOR = 5.0   # informational ceiling for full recording

REQUESTS = 48
RATE = 4.0
SEED = 7


def _scheduler_and_arrivals():
    simulator = BatchingSimulator(get_platform("spr"),
                                  get_model("llama2-7b"), max_batch=8)
    arrivals = poisson_arrivals(RATE, REQUESTS, chatbot_workload(),
                                seed=SEED)
    return simulator, arrivals


def _interleaved_mins(fn_a, fn_b, rounds=15):
    """Min-of-rounds for both callables, alternating A/B each round.

    Comparing a long benchmark-fixture run against a short timeit run
    biases the ratio (thermal/allocator drift lands on one leg only);
    interleaving gives both legs the same noise environment, and the
    mins of identical code paths then agree to well under a percent.
    """
    best_a = best_b = float("inf")
    for _ in range(rounds):
        best_a = min(best_a, timeit.timeit(fn_a, number=1))
        best_b = min(best_b, timeit.timeit(fn_b, number=1))
    return best_a, best_b


def test_noop_tracer_overhead(benchmark):
    simulator, arrivals = _scheduler_and_arrivals()
    simulator.run_continuous(arrivals)  # warm caches and code paths

    noop = NoopTracer()
    benchmark(lambda: simulator.run_continuous(arrivals, tracer=noop))

    noop_s, default_s = _interleaved_mins(
        lambda: simulator.run_continuous(arrivals, tracer=noop),
        lambda: simulator.run_continuous(arrivals))
    overhead = noop_s / default_s - 1.0
    assert overhead <= MAX_NOOP_OVERHEAD, (
        f"NoopTracer costs {overhead:+.1%} over the untraced scheduler "
        f"(bound {MAX_NOOP_OVERHEAD:.0%}): a tracer guard is broken or "
        "emission work moved ahead of the `tracer.enabled` check")

    # Both runs must produce identical simulation outcomes.
    untraced = simulator.run_continuous(arrivals)
    traced = simulator.run_continuous(arrivals, tracer=NoopTracer())
    assert untraced.makespan_s == traced.makespan_s
    assert len(untraced.completed) == len(traced.completed)


def test_recording_tracer_stays_sane(benchmark):
    simulator, arrivals = _scheduler_and_arrivals()
    simulator.run_continuous(arrivals)  # warm

    benchmark(lambda: simulator.run_continuous(arrivals,
                                               tracer=RecordingTracer()))

    recording_s, default_s = _interleaved_mins(
        lambda: simulator.run_continuous(arrivals,
                                         tracer=RecordingTracer()),
        lambda: simulator.run_continuous(arrivals),
        rounds=7)
    factor = recording_s / default_s
    assert factor <= MAX_RECORDING_FACTOR, (
        f"recording costs {factor:.1f}x the untraced run (ceiling "
        f"{MAX_RECORDING_FACTOR}x): span emission has crept into an "
        "inner loop")

    tracer = RecordingTracer()
    report = simulator.run_continuous(arrivals, tracer=tracer)
    # Every completed request recorded a root span.
    assert len(tracer.trace.request_ids()) == len(report.completed)
