"""Bench: tracing must cost nothing when disabled.

Every hot loop in the scheduler/cluster layer now carries trace emission
guarded by ``if tracer.enabled:``. The contract is that the default
(:data:`~repro.trace.NOOP_TRACER`) path pays only that attribute read —
no span construction, no argument dicts. This bench runs the
continuous-batching scheduler over a sizeable arrival stream with an
explicit :class:`~repro.trace.NoopTracer` and compares against the
default call (the same noop path — defaults *are* the noop tracer, so
this guards the guard: if someone makes emission unconditional or puts
work ahead of the ``enabled`` check, both legs inherit it and the
recording comparison below catches the cost).

Two assertions:

* explicit NoopTracer within **2%** of the default call (ISSUE bound;
  identical code path, so only a broken guard or pathological tracer
  dispatch can trip it);
* a :class:`~repro.trace.RecordingTracer` run stays within a loose
  informational factor — recording is allowed to cost real time, but a
  blowup here means emission crept inside an inner loop it should not
  be in.

Run with::

    pytest benchmarks/test_trace_overhead.py --benchmark-only
"""

import timeit

from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.serving.arrivals import poisson_arrivals
from repro.serving.scheduler import BatchingSimulator
from repro.trace import NoopTracer, RecordingTracer
from repro.workloads.generator import chatbot_workload

MAX_NOOP_OVERHEAD = 0.02     # the ISSUE's bound: <2% vs the untraced call
# Informational ceiling for full recording, relative to the *untraced*
# run. The event-horizon fast-forward cut the untraced denominator ~40x
# (a 48-request run now simulates in ~1 ms), so recording's fixed
# ~7 µs/span cost reads as ~8x rather than the pre-fast-forward ~2x.
# The ceiling guards the failure mode, not the ratio's absolute value:
# emission moving inside the per-step loop multiplies the span count by
# the coalesced-run length (10-60 here) and blows far past 20x.
MAX_RECORDING_FACTOR = 20.0

REQUESTS = 48
RATE = 4.0
SEED = 7


def _scheduler_and_arrivals():
    simulator = BatchingSimulator(get_platform("spr"),
                                  get_model("llama2-7b"), max_batch=8)
    arrivals = poisson_arrivals(RATE, REQUESTS, chatbot_workload(),
                                seed=SEED)
    return simulator, arrivals


def _paired_min_ratio(fn_a, fn_b, rounds=15, number=40):
    """min over rounds of time(fn_a)/time(fn_b), legs timed back-to-back.

    Comparing a long benchmark-fixture run against a short timeit run
    biases the ratio (thermal/allocator drift lands on one leg only).
    Pairing the legs within each round means bursty host noise (CPU
    steal, frequency excursions) hits both legs of a round together and
    cancels in that round's ratio; taking the *min* ratio then picks the
    quietest round. A real systematic overhead inflates every round's
    ratio and survives the min — noise does not. Each round times
    *number* back-to-back runs: the fast-forward cut a single untraced
    run to ~1 ms, where scheduler jitter alone is a few percent.
    """
    best = float("inf")
    for _ in range(rounds):
        t_a = timeit.timeit(fn_a, number=number)
        t_b = timeit.timeit(fn_b, number=number)
        best = min(best, t_a / t_b)
    return best


def test_noop_tracer_overhead(benchmark):
    simulator, arrivals = _scheduler_and_arrivals()
    simulator.run_continuous(arrivals)  # warm caches and code paths

    noop = NoopTracer()
    benchmark(lambda: simulator.run_continuous(arrivals, tracer=noop))

    overhead = _paired_min_ratio(
        lambda: simulator.run_continuous(arrivals, tracer=noop),
        lambda: simulator.run_continuous(arrivals)) - 1.0
    assert overhead <= MAX_NOOP_OVERHEAD, (
        f"NoopTracer costs {overhead:+.1%} over the untraced scheduler "
        f"(bound {MAX_NOOP_OVERHEAD:.0%}): a tracer guard is broken or "
        "emission work moved ahead of the `tracer.enabled` check")

    # Both runs must produce identical simulation outcomes.
    untraced = simulator.run_continuous(arrivals)
    traced = simulator.run_continuous(arrivals, tracer=NoopTracer())
    assert untraced.makespan_s == traced.makespan_s
    assert len(untraced.completed) == len(traced.completed)


def test_recording_tracer_stays_sane(benchmark):
    simulator, arrivals = _scheduler_and_arrivals()
    simulator.run_continuous(arrivals)  # warm

    benchmark(lambda: simulator.run_continuous(arrivals,
                                               tracer=RecordingTracer()))

    factor = _paired_min_ratio(
        lambda: simulator.run_continuous(arrivals,
                                         tracer=RecordingTracer()),
        lambda: simulator.run_continuous(arrivals),
        rounds=7, number=3)
    assert factor <= MAX_RECORDING_FACTOR, (
        f"recording costs {factor:.1f}x the untraced run (ceiling "
        f"{MAX_RECORDING_FACTOR}x): span emission has crept into an "
        "inner loop")

    tracer = RecordingTracer()
    report = simulator.run_continuous(arrivals, tracer=tracer)
    # Every completed request recorded a root span.
    assert len(tracer.trace.request_ids()) == len(report.completed)
