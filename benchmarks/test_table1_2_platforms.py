"""Bench: Tables I and II — platform configurations."""


def test_table1_cpu_platforms(run_report):
    report = run_report("table1")
    names = [row[0] for row in report.rows]
    assert names == ["ICL-8352Y", "SPR-Max-9468"]
    # SPR row must advertise both AVX-512 and AMX engines.
    assert "AMX" in report.rows[1][3]
    assert "HBM" in report.rows[1][5]


def test_table2_gpu_platforms(run_report):
    report = run_report("table2")
    names = [row[0] for row in report.rows]
    assert names == ["A100-40GB", "H100-80GB"]
    assert report.rows[0][1] == 108 and report.rows[1][1] == 132
