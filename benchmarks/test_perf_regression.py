"""Bench: simulator performance regression guard.

Times the analytical decode pricing against the pre-PR per-step loop on
the paper's fig-8 grid and on one long-decode request, and fails if the
fast path loses its advantage. The authoritative speedup record lives in
``BENCH_sweep.json`` (regenerate with ``make bench``); these tests exist
so a perf regression shows up in the benchmark harness, with generous
floors to stay robust against machine noise.

Run with::

    pytest benchmarks/test_perf_regression.py --benchmark-only
"""

import pathlib
import sys
import timeit

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tools"))

import bench  # noqa: E402  (tools/bench.py)

from repro.engine.inference import InferenceSimulator  # noqa: E402
from repro.engine.request import InferenceRequest  # noqa: E402
from repro.experiments._sweeps import clear_caches  # noqa: E402
from repro.hardware.registry import get_platform  # noqa: E402
from repro.models.registry import get_model  # noqa: E402

# Floors deliberately far below the measured speedups (~11x cold grid,
# >100x micro on the reference box) so only a real regression trips them.
MIN_GRID_SPEEDUP = 4.0
MIN_MICRO_SPEEDUP = 20.0


def _baseline_seconds(fn, repeat=3):
    return min(timeit.repeat(fn, number=1, repeat=repeat))


def test_fig8_grid_fast_path(benchmark):
    cells = bench._grid_cells(quick=False)
    bench._run_grid(cells, exact=False)  # warm imports and code paths

    def cold_fast():
        clear_caches()
        bench._run_grid(cells, exact=False)

    benchmark(cold_fast)

    def baseline():
        with bench.pre_pr_baseline():
            bench._run_grid(cells, exact=True)

    exact_s = _baseline_seconds(baseline)
    fast_s = benchmark.stats.stats.min
    assert exact_s / fast_s >= MIN_GRID_SPEEDUP, (
        f"fig-8 grid fast path regressed: {exact_s / fast_s:.1f}x "
        f"(floor {MIN_GRID_SPEEDUP}x)")

    # The fast path must stay numerically indistinguishable from the loop.
    clear_caches()
    err = bench._max_rel_err(bench._run_grid(cells, exact=True),
                             bench._run_grid(cells, exact=False))
    assert err <= 1e-9


def test_decode_pricing_micro(benchmark):
    model = get_model("opt-6.7b")
    sim = InferenceSimulator(get_platform("spr"))
    request = InferenceRequest(batch_size=4, input_len=128, output_len=512)
    sim.run(model, request)  # warm

    def cold_fast():
        clear_caches()
        sim.run(model, request)

    benchmark(cold_fast)

    def baseline():
        with bench.pre_pr_baseline():
            sim.run(model, request, exact=True)

    exact_s = _baseline_seconds(baseline)
    fast_s = benchmark.stats.stats.min
    assert exact_s / fast_s >= MIN_MICRO_SPEEDUP, (
        f"decode pricing fast path regressed: {exact_s / fast_s:.1f}x "
        f"(floor {MIN_MICRO_SPEEDUP}x)")
