"""Bench: what-if studies (GH200, cost efficiency)."""


def test_whatif_gh200(run_report):
    report = run_report("whatif_gh200")
    rows = {row[0]: row for row in report.rows}
    # NVLink beats PCIe offloading by a wide margin (paper Section V-B).
    assert rows["GH200-96GB"][2] < rows["H100-80GB"][2] / 3
    # GH200 beats the CPU absolutely...
    assert rows["GH200-96GB"][2] < rows["SPR-Max-9468"][2]
    # ...but the CPU keeps the throughput-per-dollar lead ("~4x the cost").
    assert rows["SPR-Max-9468"][4] > rows["GH200-96GB"][4]


def test_whatif_cost(run_report):
    report = run_report("whatif_cost")
    def cell(model, platform):
        return next(row for row in report.rows
                    if row[0] == model and row[1] == platform)
    # Offloaded models: CPU dominates per dollar by an order of magnitude.
    assert cell("OPT-66B", "SPR-Max-9468")[4] > \
        5 * cell("OPT-66B", "H100-80GB")[4]
    # In-memory OPT-13B: the GPU's absolute win compresses per dollar.
    gpu_absolute = cell("OPT-13B", "H100-80GB")[3] / \
        cell("OPT-13B", "SPR-Max-9468")[3]
    gpu_per_dollar = cell("OPT-13B", "H100-80GB")[4] / \
        cell("OPT-13B", "SPR-Max-9468")[4]
    assert gpu_per_dollar < gpu_absolute / 2
