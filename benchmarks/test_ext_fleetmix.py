"""Bench: CPU/GPU/hybrid fleet-mix search, fluid-ranked, exact-confirmed.

Gates the headline claims of ``ext_fleetmix`` — the cheapest feasible
mix is load-dependent (all-CPU at moderate load, GPU-heavy at high
load) and every shipped winner is confirmed by the exact simulator —
plus a quick-mode run of the ``tools/bench.py --suite fleetmix`` legs
pinning the fast-path parity contract for fleets that mix plain CPU,
GPU, and hybrid (GPU-prefill/CPU-decode) replicas.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tools"))

import bench  # noqa: E402  (tools/bench.py)

# Mixed CPU/GPU/hybrid event-horizon fast-forward vs per-iteration
# stepping: same contract as the homogeneous cluster suite.
MAX_REL_ERR = 1e-9


def test_ext_fleetmix(run_report):
    report = run_report("ext_fleetmix")
    winners = [row for row in report.rows if row[6] == "winner (confirmed)"]
    # One confirmed winner per operating point, each with an exact
    # attainment measurement backing the fluid ranking.
    assert len(winners) == 2
    low, high = winners
    assert low[0] == "2.5" and high[0] == "6"
    for row in winners:
        assert float(row[5]) >= 0.90  # confirmed attainment, not "-"

    # The load-dependence claim: the moderate-load winner is all-CPU,
    # the high-load winner needs GPU slots.
    assert low[1] == "4xspr"
    assert "a100" in high[1] or "hybrid" in high[1]

    # The confirmation loop earns its keep at high load: a fluid
    # favorite measured below target and was rejected.
    rejected = [row for row in report.rows
                if row[6] == "rejected by exact sim"]
    assert rejected and all(row[0] == "6" for row in rejected)
    # The rejected mix looked cheaper analytically than what shipped —
    # exactly the false-positive the exact pass exists to catch.
    assert float(rejected[0][3]) < float(high[3])


def test_fleetmix_fast_path_parity(benchmark):
    """Hybrid-bearing fleets must keep the 1e-9 fast-forward contract."""
    result = benchmark(bench.bench_fleetmix, quick=True, repeat=1)
    assert result["max_rel_err"] <= MAX_REL_ERR, (
        f"mixed CPU/GPU/hybrid fast path diverged: "
        f"{result['max_rel_err']:.2e}")
    # Routing is timing-blind to the stepping mode: identical counters.
    assert result["counters_match"]
    assert result["speedup"] > 1.0
    # The fluid solver stays inside its documented stable-regime
    # envelope on the mixed fleet (hybrid prefill comm included).
    assert result["fluid_regime"] == "stable"
    for metric, err in result["fluid_envelope"].items():
        assert err <= 0.15, f"fluid {metric} envelope blew out: {err:.1%}"
