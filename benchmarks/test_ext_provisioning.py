"""Bench: fleet provisioning under SLOs."""


def test_ext_provisioning(run_report):
    report = run_report("ext_provisioning")
    def option(model, platform):
        return next(row for row in report.rows
                    if row[0] == model and row[2] == platform)
    # Small in-memory model: GPU fleet is cheapest.
    small_gpu = option("LLaMA2-7B", "H100-80GB")
    small_cpu = option("LLaMA2-7B", "SPR-Max-9468")
    assert small_gpu[5] < small_cpu[5]
    # Over-capacity model: only the CPU option is feasible at this SLO.
    big_cpu = option("OPT-66B", "SPR-Max-9468")
    big_gpu = option("OPT-66B", "H100-80GB")
    assert big_cpu[4] != "-"
    assert big_gpu[4] == "-"
