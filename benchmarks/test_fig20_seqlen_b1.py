"""Bench: Fig. 20 — sequence-length sensitivity at batch 1."""


def test_fig20_seqlen_batch1(run_report):
    report = run_report("fig20")
    seventy = [row for row in report.rows if row[0] == "LLaMA2-70B"]
    # Paper: CPU wins at ALL sequence lengths for LLaMA2-70B at batch 1.
    assert all(row[5] == "SPR" for row in seventy)
    # GPU latency nearly flat with input length (weight streaming bound).
    h100 = [row[4] for row in seventy]
    assert max(h100) / min(h100) < 1.2
    # CPU latency grows with input length (prefill compute).
    spr = [row[2] for row in seventy]
    assert spr == sorted(spr)
