"""Bench: multi-tenant fairness & admission control extension.

Gates the headline claims of ``ext_fairness`` — the fairness schedulers
beat FCFS on the Jain index under skewed overload, and the
interaction-level door strictly reduces wasted work — plus a regression
guard on the admission-scheduler overhead itself (quick-mode run of the
``tools/bench.py --suite fairness`` legs).
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tools"))

import bench  # noqa: E402  (tools/bench.py)

# The measured overheads hover around 1.0-1.2x (the pick/charge
# bookkeeping is tiny next to pricing); the ceiling is generous so only
# a real regression — e.g. the pick going superlinear — trips it.
MAX_SCHEDULER_OVERHEAD = 3.0


def test_ext_fairness(run_report):
    report = run_report("ext_fairness")
    by_scenario = {}
    for row in report.rows:
        by_scenario.setdefault(row[0], []).append(row)

    # Scheduling: under 2x-overload Zipf demand, both fairness
    # schedulers raise the Jain index over FCFS admission.
    jain = {row[1]: float(row[2]) for row in by_scenario["scheduler"]}
    assert jain["VTC"] > jain["FCFS"]
    assert jain["WSC"] > jain["FCFS"]
    # FCFS mirrors the demand skew, far from max-min.
    assert jain["FCFS"] < 0.7
    assert jain["VTC"] > 0.7

    # Throttling: at equal per-user limits, the interaction-level door
    # wastes strictly less than no door, and less than the per-request
    # policy (whose mid-chain aborts waste completed stages).
    wasted = {row[1]: int(row[5]) for row in by_scenario["throttling"]}
    assert wasted["door: interaction"] < wasted["no door"]
    assert wasted["door: interaction"] <= wasted["door: per-request"]
    assert wasted["door: per-request"] < wasted["no door"]
    # The doors actually refused something.
    rates = {row[1]: float(row[4]) for row in by_scenario["throttling"]}
    assert rates["no door"] == 0.0
    assert rates["door: interaction"] > 0.0


def test_fairness_scheduler_overhead(benchmark):
    """Admission schedulers must stay cheap next to the built-in loop."""
    result = benchmark(bench.bench_fairness, quick=True, repeat=3)
    # Parity contract: the explicit FCFS scheduler reproduces the
    # built-in loop bit-for-bit.
    assert result["fcfs_max_rel_err"] == 0.0
    for key in ("fcfs_overhead", "vtc_overhead", "wsc_overhead"):
        assert result[key] <= MAX_SCHEDULER_OVERHEAD, (
            f"{key} regressed: {result[key]:.2f}x "
            f"(ceiling {MAX_SCHEDULER_OVERHEAD}x)")
