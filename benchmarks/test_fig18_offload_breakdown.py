"""Bench: Fig. 18 — offloading execution-time breakdown."""


def test_fig18_offload_breakdown(run_report):
    report = run_report("fig18")
    for gpu, model in (("A100-40GB", "OPT-30B"), ("H100-80GB", "OPT-66B")):
        series = [(row[2], row[3]) for row in report.rows
                  if row[0] == gpu and row[1] == model]
        series.sort()
        shares = [s for _, s in series]
        # Declines monotonically with batch (zig-zag amortization).
        assert shares == sorted(shares, reverse=True)
        # Paper bands: A100 67-95%, H100 59-92%; accept shifted-but-similar.
        assert shares[0] > 90.0        # batch 1 dominated by loading
        assert shares[-1] < 80.0       # batch 32 recovers compute share
        assert shares[0] - shares[-1] > 15.0
