"""Bench: the fluid solver must stay instant and stay honest.

The mean-field steady-state solver answers provisioning what-ifs
analytically — no event loop at all — which is what makes wide sweep
grids and the fleet advisor's outer loop free. This gate runs the quick
variant of ``tools/bench.py --suite fluid`` (a 10-point provisioning
sweep cross-checked against the exact simulator at 1.5k requests per
point) and asserts the contract from both sides:

* the whole sweep, solved cold (cost-table warmup included), beats the
  simulated sweep by a generous floor — the full 20k-request record in
  ``BENCH_cluster.json`` is far higher, and the warm per-point cost is
  microseconds;
* stable-regime throughput/goodput/$-per-Mtok stay inside a loose
  envelope of the simulator (the full-scale record is ~0.2%; the quick
  bound only catches a broken model, not sampling noise);
* every overloaded point is *flagged* (the simulator's attainment
  collapses there too) — the solver never extrapolates through
  saturation.

Run with::

    pytest benchmarks/test_fluid.py --benchmark-only
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tools"))

import bench  # noqa: E402  (tools/bench.py)

MIN_FLUID_SPEEDUP = 8.0
MAX_STABLE_REL_ERR = 0.06


def test_fluid_sweep_speed_and_envelope(benchmark):
    result = {}

    def run():
        result.update(bench.bench_fluid(quick=True, repeat=1))

    benchmark.pedantic(run, rounds=1, iterations=1)

    assert result["speedup"] >= MIN_FLUID_SPEEDUP, (
        f"fluid solver regressed: {result['speedup']:.1f}x over the "
        f"simulated sweep (floor {MIN_FLUID_SPEEDUP}x)")

    stable = result["envelope"].get("stable")
    assert stable is not None and stable["points"] >= 2, (
        "the provisioning sweep no longer reaches the stable regime — "
        "the operating point drifted")
    for metric in ("throughput", "goodput", "dollars_per_mtok"):
        assert stable[metric] <= MAX_STABLE_REL_ERR, (
            f"stable-regime {metric} error {stable[metric]:.1%} exceeds "
            f"{MAX_STABLE_REL_ERR:.0%} vs the exact simulator")

    assert result["overload_flag_agrees"], (
        "a fluid-overloaded point kept high simulated attainment — the "
        "overload flag is lying")
