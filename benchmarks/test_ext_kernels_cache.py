"""Bench: fused attention, prefix caching, quantization matrix."""


def test_ablation_fused_attention(run_report):
    report = run_report("ablation_fused_attention")
    speedups = {row[0]: row[3] for row in report.rows}
    # Gain grows with prompt length; negligible at 128.
    assert speedups[128] < 1.05
    assert speedups[4096] > speedups[1024] > speedups[128]
    assert speedups[4096] > 1.1


def test_ext_prefix_cache(run_report):
    report = run_report("ext_prefix_cache")
    for row in report.rows:
        prefix, unique, cold, warm, speedup, amortized, break_even = row
        assert warm < cold
        assert warm < amortized < cold
        assert break_even < 4.0
    # Speedup grows with the shared-prefix share of the prompt.
    speedups = [row[4] for row in report.rows]
    assert speedups == sorted(speedups)


def test_ext_quant_matrix(run_report):
    report = run_report("ext_quant_matrix")
    def gain(model, context, scheme):
        return next(row[5] for row in report.rows
                    if row[0] == model and row[1] == context
                    and row[2] == scheme)
    # W4 beats W8 everywhere (bytes rule decode).
    assert gain("LLaMA2-13B", 128, "w4") > gain("LLaMA2-13B", 128, "w8")
    assert gain("OPT-66B", 128, "w4") > gain("OPT-66B", 128, "w8")
    # KV8 helps at long context, is noise at short context.
    long_delta = gain("OPT-66B", 2048, "w8+kv8") - gain("OPT-66B", 2048, "w8")
    short_delta = gain("OPT-66B", 128, "w8+kv8") - gain("OPT-66B", 128, "w8")
    assert long_delta > short_delta
