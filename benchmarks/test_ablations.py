"""Bench: ablation studies for the design factors DESIGN.md calls out."""


def test_ablation_amx_vs_hbm(run_report):
    report = run_report("ablation_amx_hbm")
    rows = {row[0]: row for row in report.rows}
    stock, no_amx, no_hbm = (rows["SPR (stock)"], rows["SPR -AMX"],
                             rows["SPR -HBM"])
    # AMX is the prefill feature: removing it inflates TTFT >3x while TPOT
    # barely moves.
    assert no_amx[1] > 3 * stock[1]
    assert abs(no_amx[2] - stock[2]) / stock[2] < 0.1
    # HBM is the decode feature: removing it inflates TPOT >2x while TTFT
    # moves far less.
    assert no_hbm[2] > 2 * stock[2]
    assert no_hbm[1] / stock[1] < no_hbm[2] / stock[2]
    # Both ablated variants still beat ICL.
    assert no_amx[3] < rows["ICL"][3]
    assert no_hbm[3] < rows["ICL"][3]


def test_ablation_quantization(run_report):
    report = run_report("ablation_quant")
    for row in report.rows:
        decode_gain = row[4]
        assert decode_gain > 1.5, row
    spilled = [row for row in report.rows if row[0] == "OPT-66B"]
    resident = [row for row in report.rows if row[0] == "LLaMA2-13B"]
    # DDR-spilling models gain more: quantization also fixes placement.
    assert min(r[4] for r in spilled) > max(r[4] for r in resident)


def test_ablation_zigzag_slope(run_report):
    report = run_report("ablation_zigzag")
    b1_shares = [row[1] for row in report.rows]
    b32_shares = [row[2] for row in report.rows]
    # Batch-1 share is slope-independent; batch-32 share falls with slope.
    assert max(b1_shares) - min(b1_shares) < 1.0
    assert b32_shares == sorted(b32_shares, reverse=True)
