"""Bench: mixture-of-experts decode study."""


def test_ext_moe(run_report):
    report = run_report("ext_moe")
    rows = {row[0]: row for row in report.rows}
    # Big advantage at batch 1, near parity once every expert activates.
    assert rows[1][4] > 2.5
    assert rows[32][4] < 1.5
    # Active-expert fraction saturates monotonically.
    fractions = [row[1] for row in report.rows]
    assert fractions == sorted(fractions)
    assert fractions[0] == 0.25 and fractions[-1] > 0.99
