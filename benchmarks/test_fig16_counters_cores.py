"""Bench: Fig. 16 — counters vs core count (LLaMA2-7B, batch 8)."""


def test_fig16_counters_cores(run_report):
    report = run_report("fig16")
    rows = {row[0]: row for row in report.rows}
    # UPI utilization negligible within one socket, spikes at 96 cores.
    assert rows[12][3] < 10.0
    assert rows[48][3] < 10.0
    assert rows[96][3] > 30.0
    # 96 cores slower than 48 (E2E column).
    assert rows[96][4] > rows[48][4]
    # Within a socket, more cores = faster.
    assert rows[48][4] < rows[24][4] < rows[12][4]
