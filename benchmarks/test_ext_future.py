"""Bench: batch knees and future-CPU sweep."""


def test_ext_batch_knee(run_report):
    report = run_report("ext_batch_knee")
    rows = {row[0]: row for row in report.rows}
    # Asymptotes ordered by platform capability.
    assert rows["H100-80GB"][1] > rows["SPR-Max-9468"][1] > \
        rows["ICL-8352Y"][1]
    # Fits are tight.
    for row in report.rows:
        assert row[4] < 10.0  # < 10% mean relative error


def test_whatif_future_cpu(run_report):
    report = run_report("whatif_future_cpu")
    rows = {row[0]: row for row in report.rows}
    stock = rows["1x AMX, 1x BW"][3]
    # Compute scaling alone does nothing for batch-1 E2E (decode-bound).
    assert rows["4x AMX, 1x BW"][3] == stock
    # Bandwidth scaling closes most of the gap.
    assert rows["1x AMX, 3x BW"][3] < stock / 2
    assert rows["1x AMX, 3x BW"][3] < 1.3  # near H100 parity
