"""Bench: Fig. 11 — LLaMA2-13B hardware counters vs batch on SPR."""


def test_fig11_counters(run_report):
    report = run_report("fig11")
    mpki = [row[1] for row in report.rows]
    util = [row[2] for row in report.rows]
    ls_norm = [row[3] for row in report.rows]
    # Paper trends: MPKI down, core utilization up, load/stores up.
    assert mpki == sorted(mpki, reverse=True)
    assert util == sorted(util)
    assert ls_norm == sorted(ls_norm)
    assert abs(ls_norm[0] - 1.0) < 1e-9  # normalized to batch 1
