"""Bench: Fig. 12 — OPT-66B hardware counters vs batch on SPR."""


def test_fig12_counters(run_report):
    report = run_report("fig12")
    mpki = [row[1] for row in report.rows]
    util = [row[2] for row in report.rows]
    assert mpki == sorted(mpki, reverse=True)
    assert util == sorted(util)
    # OPT-66B spills HBM: utilization stays lower than a fully-HBM-resident
    # model would reach, but the trend direction is identical to Fig. 11.
    assert util[-1] > util[0] * 2
