"""Bench: Fig. 6 — FP16 model-weight footprints."""


def test_fig6_model_footprint(run_report):
    report = run_report("fig6")
    by_model = {row[0]: row for row in report.rows}
    # Paper: OPT-175B ~350 GB FP16.
    assert abs(by_model["OPT-175B"][1] - 350) < 10
    # Paper: LLaMA2-70B needs at least two H100s; GPT-3-class needs five.
    assert by_model["LLaMA2-70B"][3] >= 2
    assert by_model["OPT-175B"][3] >= 5
    # Footprints ordered with model scale.
    sizes = [row[1] for row in report.rows]
    assert sizes == sorted(sizes)
