"""Bench: Fig. 8 — ICL vs SPR end-to-end latency/throughput."""


def test_fig8_icl_vs_spr(run_report):
    report = run_report("fig8")
    # SPR must win every (model, batch) cell: normalized E2E < 1.
    assert all(row[2] < 1.0 for row in report.rows)
    # Per-cell latency reductions bracket the paper's 68.4%-84.1% band
    # (per-model averages; individual cells range wider).
    reductions = [row[4] for row in report.rows]
    assert 55.0 < min(reductions)
    assert max(reductions) < 90.0
    # Throughput gains grow with batch for any fixed model (AMX pays off
    # more as prefill grows).
    by_model = {}
    for row in report.rows:
        by_model.setdefault(row[0], []).append((row[1], row[3]))
    for model, series in by_model.items():
        series.sort()
        gains = [g for _, g in series]
        assert gains[-1] >= gains[0], model
