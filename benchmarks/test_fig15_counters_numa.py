"""Bench: Fig. 15 — counters per NUMA config (LLaMA2-13B, batch 8)."""


def test_fig15_counters_numa(run_report):
    report = run_report("fig15")
    rows = {row[0]: row for row in report.rows}
    # SNC suffers frequent remote LLC accesses; quad does not.
    assert rows["snc_flat"][3] > 10 * rows["quad_flat"][3]
    assert rows["snc_cache"][3] > 10 * rows["quad_cache"][3]
    # flat slightly outperforms cache (E2E column).
    assert rows["quad_flat"][4] < rows["quad_cache"][4]
    assert rows["snc_flat"][4] < rows["snc_cache"][4]
