"""Bench: Fig. 9 — prefill/decode latency, ICL vs SPR."""


def test_fig9_phase_latency(run_report):
    report = run_report("fig9")
    # SPR wins both phases in every cell.
    assert all(row[2] < 1.0 and row[3] < 1.0 for row in report.rows)
    # At batch >= 8, prefill gains (AMX) exceed decode gains (HBM):
    # normalized TTFT < normalized TPOT.
    big_batch = [row for row in report.rows if row[1] >= 8]
    better_prefill = sum(1 for row in big_batch if row[2] < row[3])
    assert better_prefill == len(big_batch)
