"""Bench: the cluster fast-forward must keep its speed and its parity.

The event-horizon fast-forward prices whole pure-decode stretches in
closed form instead of stepping every scheduler iteration, which is
what makes million-request cluster traces tractable. This gate runs the
quick (2k-request) variant of ``tools/bench.py --suite cluster`` and
asserts both halves of that contract:

* the fast loop beats the per-iteration reference (``exact=True``) by a
  generous floor — the measured quick-scale speedup is ~40x, the full
  100k-request record in ``BENCH_cluster.json`` is higher still, and
  the floor sits far below both so only a real regression trips it;
* every report field (per-replica integers exactly; times to 1e-9
  relative) agrees between the two modes, so the speed never comes at
  the price of a different simulation outcome.

Run with::

    pytest benchmarks/test_cluster_fastforward.py --benchmark-only
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tools"))

import bench  # noqa: E402  (tools/bench.py)

MIN_CLUSTER_SPEEDUP = 12.0
MAX_CLUSTER_REL_ERR = 1e-9
QUICK_REQUESTS = 2_000


def test_cluster_fastforward_speed_and_parity(benchmark):
    bench._cluster_run(QUICK_REQUESTS, exact=False)  # warm imports

    fast_report = None

    def fast():
        nonlocal fast_report
        _, fast_report = bench._cluster_run(QUICK_REQUESTS, exact=False)

    benchmark.pedantic(fast, rounds=3, iterations=1)
    fast_s = benchmark.stats.stats.min

    exact_s, exact_report = bench._cluster_run(QUICK_REQUESTS, exact=True)

    speedup = exact_s / fast_s
    assert speedup >= MIN_CLUSTER_SPEEDUP, (
        f"cluster fast-forward regressed: {speedup:.1f}x "
        f"(floor {MIN_CLUSTER_SPEEDUP}x)")

    err = bench._cluster_rel_err(exact_report, fast_report)
    assert err <= MAX_CLUSTER_REL_ERR, (
        f"fast-forward diverged from the per-iteration loop: "
        f"max rel err {err:.2e} (bound {MAX_CLUSTER_REL_ERR:.0e})")
