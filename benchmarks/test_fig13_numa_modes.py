"""Bench: Fig. 13 — NUMA memory/clustering mode comparison."""


def test_fig13_numa_modes(run_report):
    report = run_report("fig13")
    rows = {row[0]: row for row in report.rows}
    e2e = {label: row[1] for label, row in rows.items()}
    thpt = {label: row[4] for label, row in rows.items()}
    # Key Finding #2: quad_flat best on latency and throughput.
    assert min(e2e, key=e2e.get) == "quad_flat"
    assert max(thpt, key=thpt.get) == "quad_flat"
    # Orderings the paper reports: flat > cache, quad > snc.
    assert e2e["quad_flat"] < e2e["quad_cache"]
    assert e2e["snc_flat"] < e2e["snc_cache"]
    assert e2e["quad_flat"] < e2e["snc_flat"]
    assert e2e["quad_cache"] < e2e["snc_cache"]
    # Baseline row normalizes to exactly 1.0.
    assert abs(rows["quad_cache"][1] - 1.0) < 1e-9
