"""Bench: Fig. 1 — GEMM throughput across platforms and matrix sizes."""


def test_fig1_gemm_throughput(run_report):
    report = run_report("fig1")
    # Paper shape at large dims: H100 > A100 > SPR (AMX) >> ICL (AVX-512).
    largest = report.rows[-1]
    icl, spr, a100, h100 = largest[1:5]
    assert h100 > a100 > spr > icl
    assert spr / icl > 6.0           # AMX transforms CPU GEMM throughput
    assert a100 / spr < 2.5          # SPR lands within GPU striking distance
    # Small GEMMs: every platform far from peak (launch/ramp effects).
    smallest = report.rows[0]
    assert smallest[4] < 0.05 * largest[4]
