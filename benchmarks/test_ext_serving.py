"""Bench: batching-policy extension (static vs continuous)."""


def test_ext_serving(run_report):
    report = run_report("ext_serving")
    for row in report.rows:
        rate, s_thpt, c_thpt, s_ttft, c_ttft, s_p95, c_p95, c_p99 = row
        # Continuous batching wins TTFT at every load level...
        assert c_ttft < s_ttft, row
        assert c_p95 <= s_p95, row
        # Interpolated percentiles are ordered (shared stats helper).
        assert c_p95 <= c_p99
        # ...and never loses throughput.
        assert c_thpt >= s_thpt * 0.99, row
    # The TTFT gap widens under load (queueing compounds for static).
    first_gap = report.rows[0][3] / report.rows[0][4]
    last_gap = report.rows[-1][3] / report.rows[-1][4]
    assert last_gap > first_gap
