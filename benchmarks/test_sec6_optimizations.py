"""Bench: Section VI optimization studies."""


def test_sec6_optimizations(run_report):
    report = run_report("sec6")
    kinds = [row[0] for row in report.rows]
    assert "numa-aware snc" in kinds
    assert "hot/cold placement" in kinds
    assert kinds.count("hybrid cpu-gpu") == 2
    # Every studied optimization shows a gain (the "gain" column leads
    # with a multiplier like "1.20x ...").
    for row in report.rows:
        multiplier = float(row[2].split("x")[0])
        assert multiplier > 1.0, row
