"""Shared helpers for the per-figure benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark executes one registered experiment (a full figure/table
regeneration), prints the paper-shaped rows, and asserts the figure's
qualitative claims.
"""

import pytest


@pytest.fixture
def run_report(benchmark):
    """Benchmark one experiment by id and print its rendered table."""
    from repro.experiments import run_experiment

    def _run(experiment_id: str):
        report = benchmark(run_experiment, experiment_id)
        print()
        print(report.render())
        return report

    return _run
