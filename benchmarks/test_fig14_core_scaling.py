"""Bench: Fig. 14 — metrics vs core count, normalized to 12 cores."""


def test_fig14_core_scaling(run_report):
    report = run_report("fig14")
    rows = {row[0]: row for row in report.rows}
    e2e = {cores: row[1] for cores, row in rows.items()}
    # Key Finding #3: 48 cores best; 96 regress.
    assert min(e2e, key=e2e.get) == 48
    assert e2e[96] > e2e[48]
    # Paper anchor: 48 cores reduce E2E ~59.8% vs 12 (accept 50-65%).
    reduction = (1 - e2e[48]) * 100
    assert 50.0 < reduction < 65.0
    # Prefill scales better than decode (compute vs bandwidth scaling).
    assert rows[48][2] < rows[48][3]
    # Throughput at 48 cores roughly doubles (paper: 1.8x overall).
    assert 1.6 < rows[48][4] < 2.6
