"""Bench: tensor parallelism, chunked prefill, sensitivity, advisor."""


def test_ext_tensor_parallel(run_report):
    report = run_report("ext_tp")
    for row in report.rows:
        model, batch, single, naive96, tp2, speedup = row
        assert naive96 > single          # KF#3: naive 2-socket loses
        assert tp2 < single              # TP: disciplined 2-socket wins
        assert 1.5 < speedup < 2.2


def test_ext_chunked_prefill(run_report):
    report = run_report("ext_chunked")
    rows = {row[0]: row for row in report.rows}
    continuous, chunked = rows["continuous"], rows["chunked-128"]
    assert chunked[3] < continuous[3]            # bounded worst stall
    assert chunked[1] > 0.85 * continuous[1]     # modest throughput cost


def test_sensitivity(run_report):
    report = run_report("sensitivity")
    assert all(row[3] == "holds" for row in report.rows)
    knobs = {row[0] for row in report.rows}
    assert knobs == {"pcie_efficiency", "spr_stream_efficiency",
                     "zigzag_amortization_slope"}


def test_advisor(run_report):
    report = run_report("advisor")
    by_scenario = {(row[0], row[2]): row[4] for row in report.rows}
    # Small in-memory model, latency-critical -> GPU.
    assert "H100" in by_scenario[("OPT-13B", "chatbot")]
    # Over-capacity model -> CPU configuration.
    assert "SPR" in by_scenario[("OPT-66B", "translation")]
