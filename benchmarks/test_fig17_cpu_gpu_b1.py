"""Bench: Fig. 17 — CPU vs GPU end-to-end at batch 1."""


def test_fig17_cpu_gpu_batch1(run_report):
    report = run_report("fig17")
    rows = {row[0]: row for row in report.rows}
    # Small models: GPUs faster (normalized E2E < 1 means GPU beats CPU).
    for model in ("OPT-6.7B", "LLaMA2-7B", "OPT-13B", "LLaMA2-13B"):
        assert rows[model][1] < 1.0, f"A100 should beat CPU on {model}"
        assert rows[model][3] < 1.0, f"H100 should beat CPU on {model}"
    # OPT-30B: A100 offloads and loses big (paper: 12.7x); H100 fits, wins.
    assert rows["OPT-30B"][2] == "off"
    assert rows["OPT-30B"][1] > 8.0
    assert rows["OPT-30B"][4] == "fit"
    assert rows["OPT-30B"][3] < 1.0
    # OPT-66B / LLaMA2-70B: both GPUs offload, CPU wins (paper: ~5x on H100).
    for model in ("OPT-66B", "LLaMA2-70B"):
        assert rows[model][2] == "off" and rows[model][4] == "off"
        assert rows[model][1] > 1.0 and rows[model][3] > 1.0
    assert 3.0 < rows["OPT-66B"][3] < 7.0
