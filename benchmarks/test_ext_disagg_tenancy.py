"""Bench: disaggregation, multi-tenancy, long-context extensions."""


def test_ext_disagg(run_report):
    report = run_report("ext_disagg")
    for row in report.rows:
        model, input_len, gpu_only, cpu_only, disagg, busy_pct, per_dollar = row
        assert gpu_only < disagg < cpu_only     # between the two devices
        assert busy_pct < 15.0                  # GPU mostly released
        assert 0.6 < per_dollar < 1.2           # per-dollar roughly a wash


def test_ext_tenancy(run_report):
    report = run_report("ext_tenancy")
    rows = {row[0]: row for row in report.rows}
    assert rows[1][3] == 1.0
    # Slowdowns grow with tenants; prefill gentler than decode.
    for n in (2, 4, 8):
        assert rows[n][1] < rows[n][2]
        assert rows[n][3] > rows[n // 2][3] if n > 2 else True
    # Aggregate throughput roughly conserved (bandwidth already saturated).
    for n in (2, 4, 8):
        assert 0.8 < rows[n][4] <= 1.05


def test_ext_longcontext(run_report):
    report = run_report("ext_longcontext")
    llama = {row[1]: row for row in report.rows if row[0] == "LLaMA2-70B"}
    opt = {row[1]: row for row in report.rows if row[0] == "OPT-66B"}
    # GQA KV is far smaller at equal context.
    assert llama[8192][3] < opt[8192][3] / 6
    # TPOT grows with context for both (KV reads), faster for MHA.
    assert opt[8192][4] > opt[2048][4]
    assert llama[32768][4] > llama[2048][4]
    opt_growth = opt[8192][4] / opt[2048][4]
    llama_growth = llama[8192][4] / llama[2048][4]
    assert opt_growth > llama_growth
