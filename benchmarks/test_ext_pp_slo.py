"""Bench: TP-vs-PP comparison and SLO capacity."""


def test_ext_pp_vs_tp(run_report):
    report = run_report("ext_pp_vs_tp")
    for row in report.rows:
        model, batch, single, tp2, pp_lat, tp_gain, pp_gain = row
        assert tp2 < single                      # TP cuts latency
        assert 1.5 < tp_gain < 2.2
        assert pp_gain > 1.8                     # PP doubles throughput
    resident = next(row for row in report.rows
                    if row[0] == "LLaMA2-13B" and row[1] == 1)
    # PP gives no latency gain for an HBM-resident model.
    assert abs(resident[4] - resident[2]) / resident[2] < 0.1
    spilled = next(row for row in report.rows if row[0] == "OPT-66B")
    assert spilled[6] > 2.5                      # super-linear when un-spilled


def test_ext_slo(run_report):
    report = run_report("ext_slo")
    rates = {row[0]: row[3] for row in report.rows}
    # Iteration-level policies sustain strictly more load than static.
    assert rates["continuous"] > rates["static"]
    assert rates["chunked"] > rates["static"]
    assert rates["continuous"] > 1.0
