"""Bench: heterogeneous multi-model fleets with tiered routing.

Gates the headline claims of ``ext_tiering`` — the tiered portfolio
fleet beats the best single-model fleet on $/Mtok at equal-or-better
class-SLO attainment, and the 7B monoculture is disqualified by the
reasoning capability floor — plus a quick-mode run of the
``tools/bench.py --suite tiering`` legs pinning the fast-path parity
contract for mixed-model fleets.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tools"))

import bench  # noqa: E402  (tools/bench.py)

# Mixed-model event-horizon fast-forward vs per-iteration stepping:
# same contract as the homogeneous cluster suite.
MAX_REL_ERR = 1e-9


def test_ext_tiering(run_report):
    report = run_report("ext_tiering")
    by_fleet = {row[0]: row for row in report.rows}
    tiered = by_fleet["2x ICL-7B + 2x SPR-13B"]
    onesize_13b = by_fleet["4x SPR-13B (one-size)"]
    onesize_7b = by_fleet["4x ICL-7B (one-size)"]

    def dpm(row):
        return float(row[3])

    def attainment(row):
        return float(row[4])

    # The tentpole claim: cheaper per Mtok than the best single-model
    # fleet at equal-or-better class-SLO attainment.
    assert dpm(tiered) < dpm(onesize_13b)
    assert attainment(tiered) >= attainment(onesize_13b)
    assert attainment(tiered) >= 0.99

    # The cheap monoculture is not a valid comparator: its raw latency
    # is fine but the reasoning capability floor zeroes that class.
    assert attainment(onesize_7b) < attainment(tiered)

    # Goodput per fleet dollar: the portfolio also beats the 13B
    # monoculture on what the fleet price actually buys.
    assert float(tiered[6]) > float(onesize_13b[6])

    # Spill is the mechanism, not an anomaly: the interactive tier
    # sheds bursts upward instead of blowing its bars; nothing fell
    # below a capability floor (no tier outages in this scenario).
    assert int(tiered[7]) > 0
    assert int(tiered[8]) == 0


def test_tiering_fast_path_parity(benchmark):
    """Mixed-model fast-forward must match exact stepping and stay a win."""
    result = benchmark(bench.bench_tiering, quick=True, repeat=1)
    assert result["max_rel_err"] <= MAX_REL_ERR, (
        f"mixed-model fast path diverged: {result['max_rel_err']:.2e}")
    # Routing is timing-blind to the stepping mode: identical counters.
    assert result["counters_match"]
    assert result["dpm_ratio"] > 1.0
    # Matched attainment within a point: long Poisson runs contain
    # bursts that momentarily saturate every tier, which the router
    # resolves by degrading latency rather than correctness.
    assert result["tiered_attainment"] >= result["onesize_attainment"] - 0.01
