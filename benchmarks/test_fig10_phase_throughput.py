"""Bench: Fig. 10 — prefill/decode throughput gains, SPR over ICL."""


def test_fig10_phase_throughput(run_report):
    report = run_report("fig10")
    prefill_gains = [row[2] for row in report.rows]
    decode_gains = [row[3] for row in report.rows]
    # Paper bands: prefill 6.3x-9.1x, decode 2.7x-5.5x (per-model averages;
    # cells bracket slightly wider).
    assert max(prefill_gains) < 11.0
    assert min(decode_gains) > 1.8
    # Decode gain is bandwidth-limited: never exceeds prefill's best.
    assert max(decode_gains) < max(prefill_gains)
    # All gains favor SPR.
    assert min(prefill_gains) > 1.0 and min(decode_gains) > 1.0
