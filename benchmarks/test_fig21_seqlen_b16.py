"""Bench: Fig. 21 — sequence-length sensitivity at batch 16."""


def test_fig21_seqlen_batch16(run_report):
    report = run_report("fig21")
    seventy = {row[1]: row for row in report.rows if row[0] == "LLaMA2-70B"}
    # Paper: CPU wins at 128; H100 overtakes at >= 256; A100 never wins.
    assert seventy[128][5] == "SPR"
    assert seventy[256][5] == "H100"
    assert seventy[512][5] == "H100"
    assert seventy[1024][5] == "H100"
    for input_len, row in seventy.items():
        assert row[3] > row[2] or row[3] > row[4], \
            f"A100 must not win at {input_len}"
    # Small in-memory models: GPUs keep winning at batch 16.
    opt13 = {row[1]: row for row in report.rows if row[0] == "OPT-13B"}
    assert opt13[128][4] < opt13[128][2]
