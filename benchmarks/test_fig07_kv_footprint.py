"""Bench: Fig. 7 — KV-cache footprint vs sequence length and batch."""


def test_fig7_kv_footprint(run_report):
    report = run_report("fig7")
    # Linear growth in seq (rows) and batch (columns).
    col_b1 = [row[1] for row in report.rows]
    assert col_b1 == sorted(col_b1)
    for row in report.rows:
        assert abs(row[5] - 32 * row[1]) < 1e-6 * row[5]
    # Paper's point: KV eventually exceeds the ~26 GB model size.
    largest = report.rows[-1][5]  # seq 32768, batch 32
    assert largest > 26.0
