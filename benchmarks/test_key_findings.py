"""Bench: the five Key Findings, end to end."""


def test_key_findings(run_report):
    report = run_report("findings")
    verdicts = {row[0]: row[2] for row in report.rows}
    assert verdicts == {f"KF#{i}": "HOLDS" for i in range(1, 6)}
