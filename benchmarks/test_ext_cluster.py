"""Bench: multi-replica cluster serving extension."""


def test_ext_cluster(run_report):
    report = run_report("ext_cluster")
    by_scenario = {}
    for row in report.rows:
        by_scenario.setdefault(row[0], []).append(row)

    # Planner cross-validation: the statically sized fleet attains the
    # SLO when the arrival process is actually simulated.
    planner_row = by_scenario["planner-check"][0]
    assert planner_row[2] == 1.0

    # Heterogeneous routing: cost/SLO-aware routing beats round-robin
    # goodput on the bursty, phase-mixed trace.
    routing = {row[1].split(", ")[1]: row for row in by_scenario["routing"]}
    assert routing["phase_aware"][3] >= routing["round_robin"][3]
    # The phase-aware fleet is also no more expensive per token.
    assert routing["phase_aware"][4] <= routing["round_robin"][4] * 1.05

    # Node failure: work is requeued, nothing is lost.
    failure_row = by_scenario["failure"][0]
    assert "requeued=" in failure_row[5]
    requeued = int(failure_row[5].split("requeued=")[1].split()[0])
    assert requeued >= 1
    assert failure_row[5].endswith("completed=24/24")

    # Autoscaling: shorter provisioning lag serves the burst better.
    lags = {row[1].split("lag=")[1]: row for row in by_scenario["autoscale"]}
    assert lags["5s"][2] >= lags["40s"][2]   # attainment
    assert lags["5s"][3] >= lags["40s"][3]   # goodput
