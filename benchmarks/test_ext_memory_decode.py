"""Bench: paged-KV, speculative-decoding, and energy extensions."""


def test_ext_paged_kv(run_report):
    report = run_report("ext_paged_kv")
    for row in report.rows:
        prompt, max_seq, reserved, paged, gain, r_util, p_util = row
        assert paged >= reserved
        assert p_util > r_util
    # Short prompts against long reservations: order-of-magnitude gains.
    short = report.rows[0]
    assert short[4] > 10.0


def test_ext_specdecode(run_report):
    report = run_report("ext_specdecode")
    assert all(row[4] > 1.0 for row in report.rows)
    # Bigger targets amortize more weight traffic per verified token.
    def best_speedup(model):
        return max(row[4] for row in report.rows if row[0] == model)
    assert best_speedup("OPT-66B") > best_speedup("OPT-13B")


def test_whatif_energy(run_report):
    report = run_report("whatif_energy")
    def cell(model, platform):
        return next(row for row in report.rows
                    if row[0] == model and row[1] == platform)
    # In-memory OPT-13B: GPU more energy-efficient than the CPU.
    assert cell("OPT-13B", "H100-80GB")[3] > cell("OPT-13B", "SPR-Max-9468")[3]
    # Offloaded OPT-66B: CPU more energy-efficient than the stalled GPU.
    assert cell("OPT-66B", "SPR-Max-9468")[3] > cell("OPT-66B", "H100-80GB")[3]


def test_calibration_targets(run_report):
    report = run_report("calibration")
    verdicts = [row[5] for row in report.rows]
    assert verdicts.count("OK") == len(verdicts)
    assert len(report.rows) >= 16
