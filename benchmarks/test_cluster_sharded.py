"""Bench: sharded execution and vectorized exact mode must keep winning.

Two gates over the quick variants of ``tools/bench.py --suite cluster``,
mirroring the fast-forward gate's structure (speed floor + bit-parity):

* ``cluster_sharded`` — ``run_sharded(workers=4)`` against the
  single-process fleet loop on the identical ShardRouter(16) workload.
  The win is algorithmic even time-sliced onto one core: each worker
  advances one replica per arrival instead of scanning the fleet, so
  the interruption overhead that splits coalesced decode stretches
  drops by the group count. On this single-core container the quick
  (20k-request) ratio measures ~1.6-2.2x (fork and merge amortize
  further at the 1M-request scale recorded in ``BENCH_cluster.json``);
  the floor sits below the observed band so only a real regression —
  not scheduler jitter — trips it. On multi-core hosts the workers run
  concurrently and the ratio compounds with true parallelism.
* ``exact_vectorized`` — exact mode pricing pure-decode stretches with
  one numpy series call per stretch against the per-iteration scalar
  reference. Measured ~4.6-5.2x at quick scale, higher at the full
  4k-request record.

Both gates also assert parity: integers exactly, times to 1e-9
relative. The speed never comes at the price of a different outcome.

Run with::

    pytest benchmarks/test_cluster_sharded.py --benchmark-only
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tools"))

import bench  # noqa: E402  (tools/bench.py)

MIN_SHARDED_SPEEDUP = 1.3
MIN_VECTORIZED_SPEEDUP = 3.5
MAX_REL_ERR = 1e-9
QUICK_REQUESTS = 20_000


def test_sharded_speed_and_parity(benchmark):
    from repro.workloads.streams import ShardableStream

    arrivals = list(ShardableStream(rate_per_s=bench.SHARDED_RATE_PER_S,
                                    count=QUICK_REQUESTS,
                                    spec=bench.SHARDED_SPEC,
                                    seed=bench.CLUSTER_SEED).full())
    _, base_report = bench._sharded_run(arrivals, workers=1)
    base_s, _ = bench._sharded_run(arrivals, workers=1)  # timed, warm

    sharded_report = None

    def sharded():
        nonlocal sharded_report
        _, sharded_report = bench._sharded_run(
            arrivals, workers=bench.SHARDED_WORKERS)

    benchmark.pedantic(sharded, rounds=3, iterations=1)
    sharded_s = benchmark.stats.stats.min

    speedup = base_s / sharded_s
    assert speedup >= MIN_SHARDED_SPEEDUP, (
        f"sharded runner regressed: {speedup:.2f}x "
        f"(floor {MIN_SHARDED_SPEEDUP}x)")

    err = bench._cluster_rel_err(base_report, sharded_report)
    assert err <= MAX_REL_ERR, (
        f"sharded report diverged from single-process: "
        f"max rel err {err:.2e} (bound {MAX_REL_ERR:.0e})")


def test_vectorized_exact_speed_and_parity(benchmark):
    quick_requests = 300
    _, step_report = bench._exact_mode_run(quick_requests, exact="step")
    step_s, _ = bench._exact_mode_run(quick_requests, exact="step")

    vec_report = None

    def vectorized():
        nonlocal vec_report
        _, vec_report = bench._exact_mode_run(quick_requests,
                                              exact="vectorized")

    benchmark.pedantic(vectorized, rounds=3, iterations=1)
    vec_s = benchmark.stats.stats.min

    speedup = step_s / vec_s
    assert speedup >= MIN_VECTORIZED_SPEEDUP, (
        f"vectorized exact mode regressed: {speedup:.2f}x "
        f"(floor {MIN_VECTORIZED_SPEEDUP}x)")

    err = bench._cluster_rel_err(step_report, vec_report)
    assert err <= MAX_REL_ERR, (
        f"vectorized exact diverged from the per-step loop: "
        f"max rel err {err:.2e} (bound {MAX_REL_ERR:.0e})")
