"""Thin setup shim.

The project is configured via pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation --no-use-pep517`` works on offline
machines lacking the ``wheel`` package (legacy editable installs go through
``setup.py develop``, which needs only setuptools).
"""

from setuptools import setup

setup()
