"""Offloading-based LLM inference substrate (FlexGen substitute)."""

from repro.offload.engine import OffloadResult, OffloadSimulator
from repro.offload.policy import (
    DEFAULT_OFFLOAD_CALIBRATION,
    OffloadCalibration,
    Placement,
    make_placement,
    needs_offloading,
)
from repro.offload.transfer import TransferModel, transfer_model_for
from repro.offload.zigzag import (
    amortization_factor,
    amortized_transfer_time,
    exposed_transfer_time,
    step_time,
)

__all__ = [
    "DEFAULT_OFFLOAD_CALIBRATION",
    "OffloadCalibration",
    "OffloadResult",
    "OffloadSimulator",
    "Placement",
    "TransferModel",
    "amortization_factor",
    "amortized_transfer_time",
    "exposed_transfer_time",
    "make_placement",
    "needs_offloading",
    "step_time",
    "transfer_model_for",
]
