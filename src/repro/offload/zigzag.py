"""FlexGen zig-zag block scheduling model (Section V-B, Fig. 18).

FlexGen traverses the (layer x batch-block) grid in a zig-zag order so a
weight block fetched over PCIe is reused by multiple micro-batches before
being evicted. Two consequences, both visible in the paper:

* per-step *transferred* bytes shrink as batch size grows — modeled as an
  amortization factor ``1 + slope * (batch - 1)``;
* transfers are double-buffered against compute, so a calibrated fraction
  of compute time hides transfer time.

The paper: "FlexGen's zig-zag block scheduling technique, which overlaps
data transfer with computation, reduces the time spent on data loading via
the PCIe bus as the batch size increases."
"""

from repro.offload.policy import DEFAULT_OFFLOAD_CALIBRATION, OffloadCalibration
from repro.utils.validation import require_positive


def amortization_factor(batch_size: int,
                        calibration: OffloadCalibration = DEFAULT_OFFLOAD_CALIBRATION) -> float:
    """How many times one streamed weight block is reused per decode step."""
    require_positive(batch_size, "batch_size")
    return 1.0 + calibration.zigzag_amortization_slope * (batch_size - 1)


def amortized_transfer_time(raw_transfer_s: float, batch_size: int,
                            calibration: OffloadCalibration = DEFAULT_OFFLOAD_CALIBRATION) -> float:
    """Per-step transfer time after zig-zag reuse across the batch."""
    if raw_transfer_s < 0:
        raise ValueError(f"raw_transfer_s must be >= 0, got {raw_transfer_s}")
    return raw_transfer_s / amortization_factor(batch_size, calibration)


def exposed_transfer_time(transfer_s: float, compute_s: float,
                          calibration: OffloadCalibration = DEFAULT_OFFLOAD_CALIBRATION) -> float:
    """Transfer time left on the critical path after overlap with compute.

    Double buffering hides up to ``overlap_efficiency * compute_s`` of the
    transfer; the remainder stalls the GPU.
    """
    if transfer_s < 0 or compute_s < 0:
        raise ValueError("times must be >= 0")
    hidden = calibration.overlap_efficiency * compute_s
    return max(0.0, transfer_s - hidden)


def step_time(transfer_s: float, compute_s: float,
              calibration: OffloadCalibration = DEFAULT_OFFLOAD_CALIBRATION) -> float:
    """Critical-path time of one offloaded step: compute + exposed transfer."""
    return compute_s + exposed_transfer_time(transfer_s, compute_s, calibration)
