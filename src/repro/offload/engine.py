"""Offloading-based LLM inference engine (the FlexGen substitute).

Simulates a GPU serving a model larger than its memory: resident weights
compute from HBM, non-resident weights stream over PCIe every pass, the KV
cache optionally lives in host memory with attention computed host-side.
Produces the same headline metrics as the in-memory engine plus the
execution-time breakdown of Fig. 18 (compute vs. data loading).
"""

import dataclasses
from typing import Dict, List

from repro.engine.executor import OperatorExecutor
from repro.engine.request import InferenceRequest
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.layers import Op, OpKind
from repro.models.opgraph import decode_step_ops, prefill_ops
from repro.offload.policy import (
    DEFAULT_OFFLOAD_CALIBRATION,
    OffloadCalibration,
    Placement,
    make_placement,
)
from repro.offload.transfer import TransferModel, transfer_model_for
from repro.offload.zigzag import amortized_transfer_time, exposed_transfer_time

_ATTENTION_KINDS = (OpKind.ATTN_QK, OpKind.ATTN_PV, OpKind.SOFTMAX)


@dataclasses.dataclass(frozen=True)
class OffloadResult:
    """Simulated offloaded execution of one request.

    Exposes the same metric surface as
    :class:`~repro.engine.results.InferenceResult` (ttft_s, tpot_s, e2e_s,
    throughputs) plus the loading/compute breakdown of Fig. 18.

    Attributes:
        prefill_time_s / decode_time_s: Critical-path phase times.
        loading_time_s: Total PCIe busy time (overlapped or not — how a
            profiler's "data loading" bucket counts it).
        compute_time_s: Total GPU + host-attention busy time.
    """

    model_name: str
    platform_name: str
    request: InferenceRequest
    placement: Placement
    prefill_time_s: float
    decode_time_s: float
    loading_time_s: float
    compute_time_s: float

    @property
    def ttft_s(self) -> float:
        """Time to first token."""
        return self.prefill_time_s

    @property
    def tpot_s(self) -> float:
        """Mean time per output token during decode."""
        if self.request.decode_steps == 0:
            return 0.0
        return self.decode_time_s / self.request.decode_steps

    @property
    def e2e_s(self) -> float:
        """End-to-end latency."""
        return self.prefill_time_s + self.decode_time_s

    @property
    def e2e_throughput(self) -> float:
        """Generated tokens per second."""
        return self.request.total_generated_tokens / self.e2e_s

    @property
    def prefill_throughput(self) -> float:
        """Prompt tokens processed per second during prefill."""
        return self.request.batch_size * self.request.input_len / self.ttft_s

    @property
    def decode_throughput(self) -> float:
        """Tokens generated per second during decode."""
        if self.decode_time_s == 0:
            return 0.0
        return (self.request.batch_size * self.request.decode_steps
                / self.decode_time_s)

    @property
    def loading_share(self) -> float:
        """Fraction of (loading + compute) time spent on PCIe data loading.

        This is Fig. 18's y-axis: the breakdown buckets PCIe busy time
        against computation time.
        """
        total = self.loading_time_s + self.compute_time_s
        return self.loading_time_s / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline metrics (matches InferenceResult.summary)."""
        return {
            "ttft_s": self.ttft_s,
            "tpot_s": self.tpot_s,
            "e2e_s": self.e2e_s,
            "e2e_throughput": self.e2e_throughput,
            "prefill_throughput": self.prefill_throughput,
            "decode_throughput": self.decode_throughput,
        }


class OffloadSimulator:
    """Simulates offloading-based inference on one GPU.

    Args:
        gpu: GPU platform (must define a host link).
        calibration: Offloading behaviour constants.
    """

    def __init__(self, gpu: Platform,
                 calibration: OffloadCalibration = DEFAULT_OFFLOAD_CALIBRATION):
        if not gpu.is_gpu:
            raise ValueError(f"{gpu.name} is not a GPU")
        self.gpu = gpu
        self.calibration = calibration
        self.transfer: TransferModel = transfer_model_for(gpu, calibration)

    def _gpu_executor(self, request: InferenceRequest) -> OperatorExecutor:
        bandwidth = (self.gpu.peak_memory_bandwidth
                     * self.gpu.stream_efficiency)
        return OperatorExecutor(self.gpu, request.dtype, bandwidth)

    def _split_ops(self, ops: List[Op]):
        attention = [op for op in ops if op.kind in _ATTENTION_KINDS]
        other = [op for op in ops if op.kind not in _ATTENTION_KINDS]
        return attention, other

    def _host_attention_time(self, attention_ops: List[Op]) -> float:
        """Host-side attention over the offloaded KV cache (bandwidth-bound)."""
        total_bytes = sum(op.memory_bytes for op in attention_ops)
        return total_bytes / self.calibration.host_attention_bw

    def _activation_hop_bytes(self, model: ModelConfig,
                              request: InferenceRequest) -> float:
        """Per-step activation round trips when attention runs on the host.

        The hidden state crosses PCIe twice per layer (GPU -> host before
        attention, host -> GPU after).
        """
        nb = request.dtype.nbytes
        return float(2 * model.n_layers * request.batch_size
                     * model.d_model * nb)

    def run(self, model: ModelConfig,
            request: InferenceRequest) -> OffloadResult:
        """Simulate the full offloaded request."""
        placement = make_placement(model, request, self.gpu, self.calibration)
        executor = self._gpu_executor(request)
        layers = model.n_layers

        # --- prefill: stream non-resident weights once, overlap with compute.
        p_ops = prefill_ops(model, request.batch_size, request.input_len,
                            request.dtype)
        p_attention, p_other = self._split_ops(p_ops)
        prefill_compute = sum(t.time_s for t in executor.time_ops(p_ops))
        prefill_transfer = self.transfer.time(
            placement.streamed_weight_bytes, layer_transfers=layers)
        if not placement.kv_on_gpu:
            # Freshly produced prompt K/V moves to host memory.
            kv_written = sum(op.kv_write_bytes for op in p_ops)
            prefill_transfer += self.transfer.time(kv_written, layers)
        prefill_time = prefill_compute + exposed_transfer_time(
            prefill_transfer, prefill_compute, self.calibration)

        loading_total = prefill_transfer
        compute_total = prefill_compute

        # --- decode: stream weights every step, amortized by zig-zag reuse.
        decode_time = 0.0
        for step in range(request.decode_steps):
            kv_len = request.input_len + step
            ops = decode_step_ops(model, request.batch_size, kv_len,
                                  request.dtype)
            attention, other = self._split_ops(ops)
            gpu_compute = sum(t.time_s for t in executor.time_ops(other))
            step_transfer_raw = self.transfer.time(
                placement.streamed_weight_bytes, layer_transfers=layers)
            if placement.kv_on_gpu:
                gpu_compute += sum(
                    t.time_s for t in executor.time_ops(attention))
                host_compute = 0.0
            else:
                host_compute = self._host_attention_time(attention)
                step_transfer_raw += self.transfer.time(
                    self._activation_hop_bytes(model, request),
                    layer_transfers=2 * layers)
            step_transfer = amortized_transfer_time(
                step_transfer_raw, request.batch_size, self.calibration)
            compute = gpu_compute + host_compute
            decode_time += compute + exposed_transfer_time(
                step_transfer, compute, self.calibration)
            loading_total += step_transfer
            compute_total += compute

        return OffloadResult(
            model_name=model.name,
            platform_name=self.gpu.name,
            request=request,
            placement=placement,
            prefill_time_s=prefill_time,
            decode_time_s=decode_time,
            loading_time_s=loading_total,
            compute_time_s=compute_total,
        )
