"""Offloading-based LLM inference engine (the FlexGen substitute).

Simulates a GPU serving a model larger than its memory: resident weights
compute from HBM, non-resident weights stream over PCIe every pass, the KV
cache optionally lives in host memory with attention computed host-side.
Produces the same headline metrics as the in-memory engine plus the
execution-time breakdown of Fig. 18 (compute vs. data loading).
"""

import dataclasses
from typing import Dict, List, Tuple

try:  # Vectorizes the closed-form decode path; loop fallback below.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

from repro.engine.executor import OperatorExecutor
from repro.engine.request import InferenceRequest
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.layers import Op, OpKind
from repro.models.opgraph import decode_step_ops, prefill_ops
from repro.offload.policy import (
    DEFAULT_OFFLOAD_CALIBRATION,
    OffloadCalibration,
    Placement,
    make_placement,
)
from repro.offload.transfer import TransferModel, transfer_model_for
from repro.offload.zigzag import amortized_transfer_time, exposed_transfer_time

_ATTENTION_KINDS = (OpKind.ATTN_QK, OpKind.ATTN_PV, OpKind.SOFTMAX)


def gpu_prefill_leg(executor: OperatorExecutor, transfer: TransferModel,
                    calibration: OffloadCalibration, model: ModelConfig,
                    batch_size: int, input_len: int, dtype,
                    streamed_weight_bytes: float,
                    kv_to_host: bool) -> Tuple[float, float, float]:
    """Price one GPU prefill pass with streamed weights.

    The shared prefill leg of offloaded *and* hybrid execution: GPU
    compute over the dense prefill graph, non-resident weights streamed
    over PCIe once (overlapped with compute), and — when *kv_to_host*
    is set — the freshly produced prompt K/V moved to host memory.
    Returns ``(critical_path_s, transfer_s, compute_s)``; both
    :meth:`OffloadSimulator.run` and
    :meth:`repro.engine.backend.HybridBackend.prefill_comm_s` delegate
    here, so the two paths price the leg identically by construction.
    """
    ops = prefill_ops(model, batch_size, input_len, dtype)
    compute = sum(t.time_s for t in executor.time_ops(ops))
    xfer = transfer.time(streamed_weight_bytes,
                         layer_transfers=model.n_layers)
    if kv_to_host:
        kv_written = sum(op.kv_write_bytes for op in ops)
        xfer += transfer.time(kv_written, model.n_layers)
    time_s = compute + exposed_transfer_time(xfer, compute, calibration)
    return time_s, xfer, compute


@dataclasses.dataclass(frozen=True)
class OffloadResult:
    """Simulated offloaded execution of one request.

    Exposes the same metric surface as
    :class:`~repro.engine.results.InferenceResult` (ttft_s, tpot_s, e2e_s,
    throughputs) plus the loading/compute breakdown of Fig. 18.

    Attributes:
        prefill_time_s / decode_time_s: Critical-path phase times.
        loading_time_s: Total PCIe busy time (overlapped or not — how a
            profiler's "data loading" bucket counts it).
        compute_time_s: Total GPU + host-attention busy time.
    """

    model_name: str
    platform_name: str
    request: InferenceRequest
    placement: Placement
    prefill_time_s: float
    decode_time_s: float
    loading_time_s: float
    compute_time_s: float

    @property
    def ttft_s(self) -> float:
        """Time to first token."""
        return self.prefill_time_s

    @property
    def tpot_s(self) -> float:
        """Mean time per output token during decode."""
        if self.request.decode_steps == 0:
            return 0.0
        return self.decode_time_s / self.request.decode_steps

    @property
    def e2e_s(self) -> float:
        """End-to-end latency."""
        return self.prefill_time_s + self.decode_time_s

    @property
    def e2e_throughput(self) -> float:
        """Generated tokens per second."""
        return self.request.total_generated_tokens / self.e2e_s

    @property
    def prefill_throughput(self) -> float:
        """Prompt tokens processed per second during prefill."""
        return self.request.batch_size * self.request.input_len / self.ttft_s

    @property
    def decode_throughput(self) -> float:
        """Tokens generated per second during decode."""
        if self.decode_time_s == 0:
            return 0.0
        return (self.request.batch_size * self.request.decode_steps
                / self.decode_time_s)

    @property
    def loading_share(self) -> float:
        """Fraction of (loading + compute) time spent on PCIe data loading.

        This is Fig. 18's y-axis: the breakdown buckets PCIe busy time
        against computation time.
        """
        total = self.loading_time_s + self.compute_time_s
        return self.loading_time_s / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline metrics (matches InferenceResult.summary)."""
        return {
            "ttft_s": self.ttft_s,
            "tpot_s": self.tpot_s,
            "e2e_s": self.e2e_s,
            "e2e_throughput": self.e2e_throughput,
            "prefill_throughput": self.prefill_throughput,
            "decode_throughput": self.decode_throughput,
        }


class OffloadSimulator:
    """Simulates offloading-based inference on one GPU.

    Args:
        gpu: GPU platform (must define a host link).
        calibration: Offloading behaviour constants.
    """

    def __init__(self, gpu: Platform,
                 calibration: OffloadCalibration = DEFAULT_OFFLOAD_CALIBRATION):
        if not gpu.is_gpu:
            raise ValueError(f"{gpu.name} is not a GPU")
        self.gpu = gpu
        self.calibration = calibration
        self.transfer: TransferModel = transfer_model_for(gpu, calibration)

    def _gpu_executor(self, request: InferenceRequest) -> OperatorExecutor:
        bandwidth = (self.gpu.peak_memory_bandwidth
                     * self.gpu.stream_efficiency)
        return OperatorExecutor(self.gpu, request.dtype, bandwidth)

    def _split_ops(self, ops: List[Op]):
        attention = [op for op in ops if op.kind in _ATTENTION_KINDS]
        other = [op for op in ops if op.kind not in _ATTENTION_KINDS]
        return attention, other

    def _host_attention_time(self, attention_ops: List[Op]) -> float:
        """Host-side attention over the offloaded KV cache (bandwidth-bound)."""
        total_bytes = sum(op.memory_bytes for op in attention_ops)
        return total_bytes / self.calibration.host_attention_bw

    def _activation_hop_bytes(self, model: ModelConfig,
                              request: InferenceRequest) -> float:
        """Per-step activation round trips when attention runs on the host.

        The hidden state crosses PCIe twice per layer (GPU -> host before
        attention, host -> GPU after).
        """
        nb = request.dtype.nbytes
        return float(2 * model.n_layers * request.batch_size
                     * model.d_model * nb)

    def run(self, model: ModelConfig, request: InferenceRequest,
            exact: bool = False) -> OffloadResult:
        """Simulate the full offloaded request.

        By default the decode phase is priced in closed form: the GPU
        compute series comes from the probe-verified
        :meth:`~repro.engine.executor.OperatorExecutor.time_decode_series`
        analysis and the host-attention byte curve is affine in the KV
        length (verified against the op graph at the endpoints, with a
        per-step fallback if the affine assumption ever breaks).
        ``exact=True`` keeps the original per-step loop; the two agree
        to ≤1e-9 relative (pinned by ``tests/test_backend_numa_hybrid.py``).
        """
        placement = make_placement(model, request, self.gpu, self.calibration)
        executor = self._gpu_executor(request)
        layers = model.n_layers

        # --- prefill: stream non-resident weights once, overlap with compute.
        prefill_time, prefill_transfer, prefill_compute = gpu_prefill_leg(
            executor, self.transfer, self.calibration, model,
            request.batch_size, request.input_len, request.dtype,
            placement.streamed_weight_bytes,
            kv_to_host=not placement.kv_on_gpu)

        loading_total = prefill_transfer
        compute_total = prefill_compute

        # --- decode: stream weights every step, amortized by zig-zag reuse.
        if exact or request.decode_steps == 0:
            decode_time, decode_loading, decode_compute = \
                self._decode_stepped(model, request, placement, executor)
        else:
            decode_time, decode_loading, decode_compute = \
                self._decode_closed_form(model, request, placement, executor)
        loading_total += decode_loading
        compute_total += decode_compute

        return OffloadResult(
            model_name=model.name,
            platform_name=self.gpu.name,
            request=request,
            placement=placement,
            prefill_time_s=prefill_time,
            decode_time_s=decode_time,
            loading_time_s=loading_total,
            compute_time_s=compute_total,
        )

    def _decode_stepped(self, model: ModelConfig, request: InferenceRequest,
                        placement: Placement, executor: OperatorExecutor):
        """The original per-step decode loop (``exact=True`` reference)."""
        layers = model.n_layers
        decode_time = 0.0
        loading_total = 0.0
        compute_total = 0.0
        for step in range(request.decode_steps):
            kv_len = request.input_len + step
            ops = decode_step_ops(model, request.batch_size, kv_len,
                                  request.dtype)
            attention, other = self._split_ops(ops)
            gpu_compute = sum(t.time_s for t in executor.time_ops(other))
            step_transfer_raw = self.transfer.time(
                placement.streamed_weight_bytes, layer_transfers=layers)
            if placement.kv_on_gpu:
                gpu_compute += sum(
                    t.time_s for t in executor.time_ops(attention))
                host_compute = 0.0
            else:
                host_compute = self._host_attention_time(attention)
                step_transfer_raw += self.transfer.time(
                    self._activation_hop_bytes(model, request),
                    layer_transfers=2 * layers)
            step_transfer = amortized_transfer_time(
                step_transfer_raw, request.batch_size, self.calibration)
            compute = gpu_compute + host_compute
            decode_time += compute + exposed_transfer_time(
                step_transfer, compute, self.calibration)
            loading_total += step_transfer
            compute_total += compute
        return decode_time, loading_total, compute_total

    def _decode_closed_form(self, model: ModelConfig,
                            request: InferenceRequest,
                            placement: Placement,
                            executor: OperatorExecutor):
        """Whole-phase decode pricing without the per-step loop.

        Per-step PCIe transfer is KV-independent (the streamed weight
        block and, host case, the activation hops are fixed), so only
        the compute series varies with the KV length:

        * ``kv_on_gpu`` — every op runs on the GPU; the per-step series
          is exactly what ``time_decode_series`` prices in closed form;
        * KV on host — the non-attention GPU time is KV-independent
          (priced once) and the host-attention bytes are affine in kv
          (slope/intercept fitted from the first two steps and verified
          at the last; any mismatch falls back to the step loop).

        The exposed-transfer max() then vectorizes over the series.
        """
        steps = request.decode_steps
        batch = request.batch_size
        layers = model.n_layers
        kv_start = request.input_len
        step_transfer_raw = self.transfer.time(
            placement.streamed_weight_bytes, layer_transfers=layers)

        if placement.kv_on_gpu:
            ts, _, _ = executor.time_decode_series(model, batch, kv_start,
                                                   kv_start + steps)
            compute = _np.asarray(ts) if _np is not None else ts
        else:
            ops = decode_step_ops(model, batch, kv_start, request.dtype)
            attention, other = self._split_ops(ops)
            other_time = sum(t.time_s for t in executor.time_ops(other))

            def attn_bytes(kv_len: int) -> float:
                step_ops = decode_step_ops(model, batch, kv_len,
                                           request.dtype)
                return sum(op.memory_bytes for op in step_ops
                           if op.kind in _ATTENTION_KINDS)

            b0 = sum(op.memory_bytes for op in attention)
            if steps > 1:
                slope = attn_bytes(kv_start + 1) - b0
                predicted_last = b0 + slope * (steps - 1)
                actual_last = attn_bytes(kv_start + steps - 1)
                if abs(predicted_last - actual_last) > \
                        1e-9 * max(actual_last, 1.0):
                    # Affine assumption broke (a model whose attention
                    # byte curve has breakpoints): price honestly.
                    return self._decode_stepped(model, request, placement,
                                                executor)
            else:
                slope = 0.0
            host_bw = self.calibration.host_attention_bw
            if _np is not None:
                host = (b0 + slope * _np.arange(steps)) / host_bw
                compute = other_time + host
            else:
                compute = [other_time + (b0 + slope * i) / host_bw
                           for i in range(steps)]
            step_transfer_raw += self.transfer.time(
                self._activation_hop_bytes(model, request),
                layer_transfers=2 * layers)

        step_transfer = amortized_transfer_time(step_transfer_raw, batch,
                                                self.calibration)
        eta = self.calibration.overlap_efficiency
        if _np is not None:
            compute = _np.asarray(compute)
            exposed = _np.maximum(0.0, step_transfer - eta * compute)
            decode_time = float((compute + exposed).sum())
            compute_total = float(compute.sum())
        else:  # pragma: no cover - numpy ships with the toolchain
            exposed = [max(0.0, step_transfer - eta * c) for c in compute]
            decode_time = sum(c + e for c, e in zip(compute, exposed))
            compute_total = sum(compute)
        return decode_time, steps * step_transfer, compute_total
