"""Offloading placement policy (FlexGen-style, Section III / V).

When a model's inference footprint exceeds GPU memory, weights, KV cache,
and activations are split between GPU and CPU memory. The policy here
mirrors FlexGen's practical behaviour:

* a conservative fraction of GPU memory holds *resident* weights (the rest
  of GPU memory is workspace: activation buffers, fragmentation headroom,
  CUDA context — FlexGen's percent configs routinely leave half the card
  for these);
* the remaining weights live in CPU memory and must stream over PCIe
  **every decode step** (and once for prefill);
* the KV cache stays on GPU only while small; past a threshold it moves to
  CPU memory and attention is computed host-side (the paper notes FlexGen
  "typically underutilizes CPU computation resources, using them only for
  attention score calculations").
"""

import dataclasses

from repro.engine.request import InferenceRequest
from repro.hardware.datatypes import DType
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.memory import (
    inference_footprint_bytes,
    kv_cache_bytes,
    weight_bytes,
)
from repro.utils.validation import require_positive


@dataclasses.dataclass(frozen=True)
class OffloadCalibration:
    """Calibration constants for the offloading engine.

    Attributes:
        weight_residency_fraction: Fraction of GPU memory usable for
            resident weights (rest is workspace/KV/fragmentation).
        kv_gpu_capacity_fraction: KV cache stays on GPU while it fits in
            this fraction of GPU memory; beyond it, KV moves to host.
        pcie_efficiency: Achieved fraction of nominal PCIe bandwidth for
            offloading traffic (small per-layer blocks, pageable staging;
            well under bulk-copy rates).
        zigzag_amortization_slope: FlexGen's zig-zag block schedule reuses
            a streamed weight block across more compute as batch grows;
            per-step transferred bytes shrink by ``1 + slope*(batch-1)``.
        overlap_efficiency: Fraction of compute time that successfully
            hides concurrent PCIe transfer (double-buffered blocks).
        host_attention_bw: Effective host-memory bandwidth for CPU-side
            attention over the offloaded KV cache, bytes/s. FlexGen's CPU
            attention kernels are far from STREAM-optimal.
        gpu_fit_headroom: A model is served *without* offloading only if
            its footprint fits in this fraction of GPU memory.
    """

    weight_residency_fraction: float = 0.35
    kv_gpu_capacity_fraction: float = 0.20
    pcie_efficiency: float = 0.35
    zigzag_amortization_slope: float = 0.21
    overlap_efficiency: float = 0.9
    host_attention_bw: float = 50e9
    gpu_fit_headroom: float = 0.92

    def __post_init__(self) -> None:
        for name in ("weight_residency_fraction", "kv_gpu_capacity_fraction",
                     "pcie_efficiency", "overlap_efficiency",
                     "gpu_fit_headroom"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        require_positive(self.zigzag_amortization_slope + 1.0,
                         "zigzag_amortization_slope + 1")
        require_positive(self.host_attention_bw, "host_attention_bw")


DEFAULT_OFFLOAD_CALIBRATION = OffloadCalibration()


@dataclasses.dataclass(frozen=True)
class Placement:
    """Resolved data placement for one (model, request, GPU) triple.

    Attributes:
        resident_weight_bytes: Weights pinned in GPU memory.
        streamed_weight_bytes: Weights streamed over PCIe per full pass.
        kv_on_gpu: Whether the KV cache lives in GPU memory.
        kv_bytes_peak: Peak KV-cache size over the request.
    """

    resident_weight_bytes: float
    streamed_weight_bytes: float
    kv_on_gpu: bool
    kv_bytes_peak: float

    @property
    def weight_bytes_total(self) -> float:
        """All model weight bytes."""
        return self.resident_weight_bytes + self.streamed_weight_bytes

    @property
    def resident_fraction(self) -> float:
        """Fraction of weights resident on the GPU."""
        total = self.weight_bytes_total
        return self.resident_weight_bytes / total if total else 0.0


def needs_offloading(model: ModelConfig, request: InferenceRequest,
                     gpu: Platform,
                     calibration: OffloadCalibration = DEFAULT_OFFLOAD_CALIBRATION) -> bool:
    """Whether the request's footprint exceeds usable GPU memory."""
    if not gpu.is_gpu:
        raise ValueError(f"{gpu.name} is not a GPU")
    footprint = inference_footprint_bytes(
        model, request.max_seq_len, request.batch_size, request.dtype)
    return footprint > gpu.memory_capacity * calibration.gpu_fit_headroom


def hybrid_streamed_weight_bytes(
        weight_bytes_total: float, gpu: Platform,
        calibration: OffloadCalibration = DEFAULT_OFFLOAD_CALIBRATION
) -> float:
    """Weight bytes a hybrid prefill must stream over PCIe per pass.

    The CPU–GPU hybrid backend keeps a resident fraction of the weights
    pinned in GPU memory across requests (the same residency budget the
    offload policy uses) and streams the remainder each prefill. Unlike
    :func:`make_placement` there is no KV deduction: the KV cache never
    stays on the GPU — decode runs on the CPU, so prompt K/V is handed
    off to host memory every pass.
    """
    if not gpu.is_gpu:
        raise ValueError(f"{gpu.name} is not a GPU")
    budget = gpu.memory_capacity * calibration.weight_residency_fraction
    return max(0.0, weight_bytes_total - budget)


def make_placement(model: ModelConfig, request: InferenceRequest,
                   gpu: Platform,
                   calibration: OffloadCalibration = DEFAULT_OFFLOAD_CALIBRATION) -> Placement:
    """Resolve the GPU/CPU split for an offloaded request."""
    if not gpu.is_gpu:
        raise ValueError(f"{gpu.name} is not a GPU")
    weights = weight_bytes(model, request.dtype)
    kv_peak = kv_cache_bytes(model, request.max_seq_len, request.batch_size,
                             request.dtype)
    kv_on_gpu = kv_peak <= gpu.memory_capacity * calibration.kv_gpu_capacity_fraction
    weight_budget = gpu.memory_capacity * calibration.weight_residency_fraction
    if kv_on_gpu:
        weight_budget = max(0.0, weight_budget - kv_peak)
    resident = min(weights, weight_budget)
    return Placement(
        resident_weight_bytes=resident,
        streamed_weight_bytes=weights - resident,
        kv_on_gpu=kv_on_gpu,
        kv_bytes_peak=kv_peak,
    )
