"""PCIe transfer model for offloading traffic.

Wraps the platform's host link with the offload-specific achieved
efficiency: offloading moves weights layer-by-layer in modest blocks with
staging through pinned buffers, so it sustains a calibrated fraction of
nominal PCIe bandwidth — far less than a single huge cudaMemcpy would.
"""

import dataclasses

from repro.hardware.interconnect import Interconnect
from repro.hardware.platform import Platform
from repro.offload.policy import DEFAULT_OFFLOAD_CALIBRATION, OffloadCalibration
from repro.utils.validation import require_non_negative


@dataclasses.dataclass(frozen=True)
class TransferModel:
    """Prices PCIe transfers for one GPU's host link.

    Attributes:
        link: The platform's host interconnect.
        efficiency: Achieved fraction of nominal bandwidth.
        per_layer_latency_s: Fixed cost per layer-granular transfer
            (submission + completion signaling).
    """

    link: Interconnect
    efficiency: float
    per_layer_latency_s: float = 15e-6

    @property
    def effective_bw(self) -> float:
        """Achieved offloading bandwidth, bytes/s."""
        return self.link.nominal_bw * self.efficiency

    def time(self, nbytes: float, layer_transfers: int = 1) -> float:
        """Seconds to move *nbytes* split across *layer_transfers* blocks."""
        require_non_negative(nbytes, "nbytes")
        require_non_negative(layer_transfers, "layer_transfers")
        if nbytes == 0:
            return 0.0
        return (nbytes / self.effective_bw
                + layer_transfers * self.per_layer_latency_s)


def transfer_model_for(gpu: Platform,
                       calibration: OffloadCalibration = DEFAULT_OFFLOAD_CALIBRATION) -> TransferModel:
    """Build the transfer model from a GPU platform's host link."""
    if gpu.host_link is None:
        raise ValueError(f"{gpu.name} has no host link configured")
    return TransferModel(link=gpu.host_link,
                         efficiency=calibration.pcie_efficiency)
