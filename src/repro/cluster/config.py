"""Declarative fleet construction, including mixed-backend fleets.

A :class:`ClusterConfig` is a list of :class:`ReplicaSpec` groups —
"2 SPR replicas running BF16, 2 running INT8 over both sockets" — that
expands into named :class:`~repro.cluster.node.ReplicaNode` instances.
Replicas in one fleet may run different
:class:`~repro.engine.backend.ExecutionBackend` configurations; each
prices through its own backend-keyed cost table
(:func:`repro.engine.stepcost.decode_cost_table`), so router cost
projections, event-horizon fast-forward, and ``exact=True`` stepping all
see the same per-replica numbers regardless of how the fleet is mixed.
"""

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.cluster.admission import make_scheduler
from repro.cluster.node import ReplicaNode
from repro.engine.backend import ExecutionBackend
from repro.engine.inference import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.trace.tracer import NOOP_TRACER, Tracer
from repro.utils.validation import require_positive


@dataclasses.dataclass(frozen=True)
class ReplicaSpec:
    """One homogeneous replica group within a fleet.

    Attributes:
        platform: Device the group's replicas run on.
        model: Served model.
        count: Replicas in the group.
        backend: Execution backend (``None`` = plain BF16).
        max_batch: Per-replica batching limit.
        config: CPU engine configuration.
        name: Base name for the group's replicas; defaults to
            ``<platform>[-<backend label>]``. Replicas are numbered
            across the whole fleet (``spr-0``, ``spr-int8-tp2-1``, ...),
            matching the CLI's ``--fail-node`` style addressing.
        scheduler: Admission policy spelling ("fcfs", "vtc", "wsc");
            ``None`` keeps the node's built-in FCFS loop. Each replica
            gets its own scheduler instance (service counters are
            per-node state).
        scheduler_weights: Per-tenant ``(user_id, weight)`` pairs for
            ``scheduler="wsc"``; a tuple-of-pairs (not a dict) so the
            spec stays hashable/frozen.
        price_usd: Listing-price override per replica. ``None`` means
            look the platform up in
            :data:`repro.analysis.cost.LIST_PRICE_USD`; unknown
            platforms then price at the median with a one-time warning,
            so fleets on unlisted hardware should set this explicitly.
    """

    platform: Platform
    model: ModelConfig
    count: int = 1
    backend: Optional[ExecutionBackend] = None
    max_batch: int = 8
    config: EngineConfig = DEFAULT_ENGINE_CONFIG
    name: Optional[str] = None
    scheduler: Optional[str] = None
    scheduler_weights: Optional[Tuple[Tuple[int, float], ...]] = None
    price_usd: Optional[float] = None

    def __post_init__(self) -> None:
        require_positive(self.count, "count")
        if self.price_usd is not None:
            require_positive(self.price_usd, "price_usd")
        # Validate the spelling eagerly (build-time instances are fresh
        # per node; this throwaway one just checks the name).
        make_scheduler(self.scheduler, dict(self.scheduler_weights or ()))

    def make_admission(self):
        """A fresh per-node admission scheduler (or ``None`` for FCFS)."""
        return make_scheduler(self.scheduler,
                              dict(self.scheduler_weights or ()))

    @property
    def base_name(self) -> str:
        if self.name is not None:
            return self.name
        key = self.platform.name.split("-")[0].lower()
        if self.backend is not None:
            return f"{key}-{self.backend.label}"
        return key


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """A whole fleet as data: replica groups, possibly mixed-backend."""

    replicas: Tuple[ReplicaSpec, ...]

    def __init__(self, replicas: Sequence[ReplicaSpec]):
        if not replicas:
            raise ValueError("ClusterConfig needs at least one ReplicaSpec")
        object.__setattr__(self, "replicas", tuple(replicas))

    @property
    def size(self) -> int:
        """Total replica count across all groups."""
        return sum(spec.count for spec in self.replicas)

    def build_fleet(self, tracer: Tracer = NOOP_TRACER,
                    exact: bool = False) -> List[ReplicaNode]:
        """Instantiate every replica, numbered across the fleet.

        Fleet-wide numbering keeps names unique even when two groups
        share a base name (e.g. two BF16 SPR groups with different
        batch limits).
        """
        fleet: List[ReplicaNode] = []
        index = 0
        for spec in self.replicas:
            for _ in range(spec.count):
                fleet.append(ReplicaNode(
                    f"{spec.base_name}-{index}", spec.platform, spec.model,
                    spec.max_batch, spec.config, spec.backend,
                    tracer=tracer, exact=exact,
                    admission=spec.make_admission(),
                    price_usd=spec.price_usd))
                index += 1
        return fleet

    def _flat_specs(self) -> List[ReplicaSpec]:
        """One spec per replica, in fleet order."""
        flat: List[ReplicaSpec] = []
        for spec in self.replicas:
            flat.extend([spec] * spec.count)
        return flat

    def replica_names(self) -> List[str]:
        """The fleet's replica names in fleet order, without building it."""
        return [f"{spec.base_name}-{index}"
                for index, spec in enumerate(self._flat_specs())]

    def build_subset(self, indices: Sequence[int],
                     tracer: Tracer = NOOP_TRACER,
                     exact: bool = False) -> List[ReplicaNode]:
        """Instantiate only the replicas at the given fleet positions.

        Names carry the *fleet-wide* index, identical to what
        :meth:`build_fleet` would have assigned — a sharded worker's
        group of replicas is indistinguishable from the same replicas
        inside the full fleet.
        """
        flat = self._flat_specs()
        subset: List[ReplicaNode] = []
        for index in indices:
            if not 0 <= index < len(flat):
                raise IndexError(f"replica index {index} out of range for "
                                 f"a fleet of {len(flat)}")
            spec = flat[index]
            subset.append(ReplicaNode(
                f"{spec.base_name}-{index}", spec.platform, spec.model,
                spec.max_batch, spec.config, spec.backend,
                tracer=tracer, exact=exact,
                admission=spec.make_admission(),
                price_usd=spec.price_usd))
        return subset
