"""Request routing across serving replicas.

A :class:`Router` picks a replica for each arriving request; the cluster
event loop calls it once per request at its arrival time. Policies:

* :class:`RoundRobinRouter` — the classic baseline: cycles through
  routable replicas, blind to load and device speed.
* :class:`JoinShortestQueueRouter` — fewest in-system requests
  (queued + running).
* :class:`LeastOutstandingTokensRouter` — fewest outstanding tokens,
  the token-aware refinement of JSQ (requests are wildly different
  sizes, so counting requests mis-weighs long prompts).
* :class:`ShardRouter` — a stateless *door* over per-group policies: a
  pure hash of the request id picks a fixed replica group, and a local
  policy instance (any of the above) routes within the group. Because
  the door never reads fleet state and each local policy only ever sees
  its own group, the fleet partitions into independent simulations —
  the property :func:`repro.cluster.shard.run_sharded` exploits to run
  replica groups in parallel worker processes with bit-identical
  results for any worker count.
* :class:`PhaseAwareRouter` — cost/SLO-aware heterogeneous routing:
  prices each candidate's prefill + decode for *this* request with the
  replica's own cost model, discards replicas whose projected TTFT
  (backlog + prefill) would break the SLO, and picks the cheapest
  feasible dollar-occupancy. The effect is the fleet-level version of
  :mod:`repro.optim.disaggregation`'s phase split: long-prefill requests
  land on compute-rich replicas (GPUs, AMX) whose speed advantage beats
  their price, decode-heavy requests land on bandwidth-rich CPU replicas
  that win per dollar on memory-bound work.
"""

import math
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.cost import price_rate
from repro.optim.disaggregation import phase_affinity
from repro.cluster.node import ReplicaNode
from repro.serving.arrivals import ArrivingRequest
from repro.serving.slo import SLO


class Router:
    """Routing-policy interface."""

    name = "base"

    @staticmethod
    def routable(nodes: Sequence[ReplicaNode]) -> List[ReplicaNode]:
        """Replicas accepting new work (alive and not draining)."""
        candidates = [n for n in nodes if n.active and not n.draining]
        if not candidates:
            raise RuntimeError("no routable replica (all failed/draining)")
        return candidates

    def select(self, request: ArrivingRequest,
               nodes: Sequence[ReplicaNode], now: float) -> ReplicaNode:
        """Choose the replica that will serve *request*."""
        raise NotImplementedError

    def counters(self) -> Dict[str, int]:
        """Integer decision counters this policy accumulated.

        Stateless policies report nothing. Policies that make
        *classified* decisions (:class:`repro.cluster.tiering.
        TieredRouter`'s routed/spill/fallback counts) report them here;
        the event loop snapshots the dict into
        :attr:`~repro.cluster.metrics.ClusterReport.router_counters`,
        and the sharded merge sums per-group counters — integer sums
        are order-free, so the merged counts are bit-identical for any
        worker count.
        """
        return {}


class RoundRobinRouter(Router):
    """Cycle through routable replicas in order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, request: ArrivingRequest,
               nodes: Sequence[ReplicaNode], now: float) -> ReplicaNode:
        candidates = self.routable(nodes)
        chosen = candidates[self._next % len(candidates)]
        self._next += 1
        return chosen


class JoinShortestQueueRouter(Router):
    """Fewest in-system requests (queued + running); ties go in order."""

    name = "jsq"

    def select(self, request: ArrivingRequest,
               nodes: Sequence[ReplicaNode], now: float) -> ReplicaNode:
        return min(self.routable(nodes),
                   key=lambda n: n.queue_len + len(n.running))


class LeastOutstandingTokensRouter(Router):
    """Fewest outstanding (prompt + remaining output) tokens."""

    name = "least_tokens"

    def select(self, request: ArrivingRequest,
               nodes: Sequence[ReplicaNode], now: float) -> ReplicaNode:
        return min(self.routable(nodes), key=lambda n: n.outstanding_tokens)


class ShardRouter(Router):
    """Stateless door over per-group local routing policies.

    The fleet is partitioned *striped* by fleet position — replica
    ``i`` belongs to group ``i % num_groups``, so a mixed-backend fleet
    spreads each backend across groups — and every request is doored by
    a pure hash of its id, ``request_id % num_groups``. Requests rescued
    from a failed replica keep their id, so they re-door to the same
    group and requeue locally. Each group gets its own instance of the
    local policy (built once, up front, by *local*), which only ever
    observes its own group's replicas.

    Those two properties — a door that reads nothing but the request,
    and local state confined to one group — make the groups
    *independent*: simulating each group alone, against its own
    sub-stream of arrivals and its own slice of the failure/drain
    schedule, reproduces the global simulation bit-for-bit. That is the
    contract :func:`repro.cluster.shard.run_sharded` runs worker
    processes against, and why this router requires a **static fleet**:
    an autoscaler growing the fleet mid-run would re-stripe the groups
    (and global queue-depth scaling decisions are inherently
    cross-group), so a fleet-size change raises instead.

    Cost/SLO-aware routing (:class:`PhaseAwareRouter`) is shard-safe
    only in this grouped form — as the *local* policy, comparing
    replicas within one group. A fleet-global cost-SLO router is not
    partitionable: its choice depends on every replica's projected
    backlog, which couples all groups' queues into one decision.

    Args:
        num_groups: Number of independent replica groups.
        local: Zero-arg factory for the per-group policy (default
            :class:`RoundRobinRouter`). Called ``num_groups`` times at
            construction; the instances are pickled along to workers.
    """

    def __init__(self, num_groups: int,
                 local: Callable[[], Router] = RoundRobinRouter):
        if num_groups < 1:
            raise ValueError(f"num_groups must be >= 1, got {num_groups}")
        self.num_groups = num_groups
        self.locals: List[Router] = [local() for _ in range(num_groups)]
        self.name = f"shard({self.locals[0].name}x{num_groups})"
        self._fleet_size: Optional[int] = None

    def door(self, request: ArrivingRequest) -> int:
        """The group serving *request* — a pure function of the id."""
        return request.request_id % self.num_groups

    def group_indices(self, fleet_size: int, group: int) -> List[int]:
        """Fleet positions belonging to *group* (striped partition)."""
        return list(range(group, fleet_size, self.num_groups))

    def select(self, request: ArrivingRequest,
               nodes: Sequence[ReplicaNode], now: float) -> ReplicaNode:
        if self._fleet_size is None:
            if len(nodes) < self.num_groups:
                raise ValueError(
                    f"ShardRouter with {self.num_groups} groups needs at "
                    f"least {self.num_groups} replicas, got {len(nodes)}")
            self._fleet_size = len(nodes)
        elif len(nodes) != self._fleet_size:
            raise RuntimeError(
                "ShardRouter requires a static fleet (group striping is "
                f"fixed at first routing): started with {self._fleet_size} "
                f"replicas, now {len(nodes)}")
        group = self.door(request)
        members = [nodes[i] for i in
                   range(group, len(nodes), self.num_groups)]
        return self.locals[group].select(request, members, now)

    def counters(self) -> Dict[str, int]:
        """Sum of the per-group locals' counters (order-free)."""
        total: Dict[str, int] = {}
        for local in self.locals:
            for key, value in local.counters().items():
                total[key] = total.get(key, 0) + value
        return total


class PhaseAwareRouter(Router):
    """Cost/SLO-aware routing for heterogeneous fleets.

    For each candidate the router projects, with that replica's own cost
    primitives, the request's prefill time, decode time, and queueing
    backlog. Replicas whose projected TTFT misses the SLO are set aside;
    among the feasible ones the cheapest *dollar-occupancy* — busy
    seconds times the device's listing-price proxy — wins, with the
    compute-to-bandwidth :func:`~repro.optim.disaggregation.phase_affinity`
    breaking ties toward the phase-matched device (compute-rich for
    prefill-dominated requests, bandwidth-rich for decode-dominated). If
    no replica is feasible, the earliest projected finish wins — degrade
    latency, not correctness.

    Dollar-occupancies within ``cost_band`` of each other are treated as
    equal before the affinity tie-break: listing prices are proxies with
    easily 15% uncertainty, and for in-memory models the SPR/H100 speed
    and price ratios land within a few percent of parity (the paper's
    footnote-1 observation), so insisting on the raw minimum would turn
    routing into noise-chasing. Banding lets the phase match decide
    whenever the economics are a wash.

    Args:
        slo: Target SLO (``None`` disables the feasibility cut and
            routes purely by projected finish + cost).
        cost_band: Relative width of a cost-equivalence band (0.15 =
            dollar-occupancies within 15% compare equal).
    """

    name = "phase_aware"

    def __init__(self, slo: Optional[SLO] = None, cost_band: float = 0.15):
        if not 0 <= cost_band < 1:
            raise ValueError(f"cost_band must be in [0, 1), got {cost_band}")
        self.slo = slo
        self.cost_band = cost_band

    def _band(self, cost: float) -> int:
        """Geometric cost band; equal bands defer to phase affinity."""
        if self.cost_band == 0 or cost <= 0:
            return 0
        return int(math.log(cost) / math.log1p(self.cost_band))

    @staticmethod
    def _price_rate(node: ReplicaNode) -> float:
        """Listing-price proxy for *node*.

        A :class:`~repro.cluster.config.ReplicaSpec` ``price_usd``
        override wins; otherwise the platform's listing price. Unknown
        platforms fall back to the median price *with a one-time
        warning* (:func:`repro.analysis.cost.price_rate`) — a silently
        mispriced device would quietly re-band every cost comparison.
        """
        return price_rate(node.platform.name,
                          getattr(node, "price_usd", None))

    def select(self, request: ArrivingRequest,
               nodes: Sequence[ReplicaNode], now: float) -> ReplicaNode:
        prefill_heavy = request.input_len >= request.output_len
        best = None
        best_key = None
        for index, node in enumerate(self.routable(nodes)):
            prefill = node.prefill_cost_s(request.input_len)
            decode = node.decode_cost_s(request.input_len, request.output_len)
            ttft_projected = node.backlog_s(now) + prefill
            finish_projected = ttft_projected + decode
            dollar_occupancy = (prefill + decode) * self._price_rate(node)
            feasible = self.slo is None or ttft_projected <= self.slo.ttft_s
            affinity = phase_affinity(node.platform)
            # Feasible replicas sort by banded cost, then phase match
            # (compute-rich for prefill-dominated requests,
            # bandwidth-rich for decode-dominated); infeasible ones
            # (rank 1) by projected finish.
            key = (0 if feasible else 1,
                   self._band(dollar_occupancy) if feasible
                   else finish_projected,
                   -affinity if prefill_heavy else affinity,
                   dollar_occupancy,
                   index)
            if best_key is None or key < best_key:
                best, best_key = node, key
        return best
