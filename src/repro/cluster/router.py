"""Request routing across serving replicas.

A :class:`Router` picks a replica for each arriving request; the cluster
event loop calls it once per request at its arrival time. Policies:

* :class:`RoundRobinRouter` — the classic baseline: cycles through
  routable replicas, blind to load and device speed.
* :class:`JoinShortestQueueRouter` — fewest in-system requests
  (queued + running).
* :class:`LeastOutstandingTokensRouter` — fewest outstanding tokens,
  the token-aware refinement of JSQ (requests are wildly different
  sizes, so counting requests mis-weighs long prompts).
* :class:`PhaseAwareRouter` — cost/SLO-aware heterogeneous routing:
  prices each candidate's prefill + decode for *this* request with the
  replica's own cost model, discards replicas whose projected TTFT
  (backlog + prefill) would break the SLO, and picks the cheapest
  feasible dollar-occupancy. The effect is the fleet-level version of
  :mod:`repro.optim.disaggregation`'s phase split: long-prefill requests
  land on compute-rich replicas (GPUs, AMX) whose speed advantage beats
  their price, decode-heavy requests land on bandwidth-rich CPU replicas
  that win per dollar on memory-bound work.
"""

import math
from typing import List, Optional, Sequence

from repro.analysis.cost import LIST_PRICE_USD, list_price
from repro.optim.disaggregation import phase_affinity
from repro.cluster.node import ReplicaNode
from repro.serving.arrivals import ArrivingRequest
from repro.serving.slo import SLO


class Router:
    """Routing-policy interface."""

    name = "base"

    @staticmethod
    def routable(nodes: Sequence[ReplicaNode]) -> List[ReplicaNode]:
        """Replicas accepting new work (alive and not draining)."""
        candidates = [n for n in nodes if n.active and not n.draining]
        if not candidates:
            raise RuntimeError("no routable replica (all failed/draining)")
        return candidates

    def select(self, request: ArrivingRequest,
               nodes: Sequence[ReplicaNode], now: float) -> ReplicaNode:
        """Choose the replica that will serve *request*."""
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through routable replicas in order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, request: ArrivingRequest,
               nodes: Sequence[ReplicaNode], now: float) -> ReplicaNode:
        candidates = self.routable(nodes)
        chosen = candidates[self._next % len(candidates)]
        self._next += 1
        return chosen


class JoinShortestQueueRouter(Router):
    """Fewest in-system requests (queued + running); ties go in order."""

    name = "jsq"

    def select(self, request: ArrivingRequest,
               nodes: Sequence[ReplicaNode], now: float) -> ReplicaNode:
        return min(self.routable(nodes),
                   key=lambda n: n.queue_len + len(n.running))


class LeastOutstandingTokensRouter(Router):
    """Fewest outstanding (prompt + remaining output) tokens."""

    name = "least_tokens"

    def select(self, request: ArrivingRequest,
               nodes: Sequence[ReplicaNode], now: float) -> ReplicaNode:
        return min(self.routable(nodes), key=lambda n: n.outstanding_tokens)


class PhaseAwareRouter(Router):
    """Cost/SLO-aware routing for heterogeneous fleets.

    For each candidate the router projects, with that replica's own cost
    primitives, the request's prefill time, decode time, and queueing
    backlog. Replicas whose projected TTFT misses the SLO are set aside;
    among the feasible ones the cheapest *dollar-occupancy* — busy
    seconds times the device's listing-price proxy — wins, with the
    compute-to-bandwidth :func:`~repro.optim.disaggregation.phase_affinity`
    breaking ties toward the phase-matched device (compute-rich for
    prefill-dominated requests, bandwidth-rich for decode-dominated). If
    no replica is feasible, the earliest projected finish wins — degrade
    latency, not correctness.

    Dollar-occupancies within ``cost_band`` of each other are treated as
    equal before the affinity tie-break: listing prices are proxies with
    easily 15% uncertainty, and for in-memory models the SPR/H100 speed
    and price ratios land within a few percent of parity (the paper's
    footnote-1 observation), so insisting on the raw minimum would turn
    routing into noise-chasing. Banding lets the phase match decide
    whenever the economics are a wash.

    Args:
        slo: Target SLO (``None`` disables the feasibility cut and
            routes purely by projected finish + cost).
        cost_band: Relative width of a cost-equivalence band (0.15 =
            dollar-occupancies within 15% compare equal).
    """

    name = "phase_aware"

    def __init__(self, slo: Optional[SLO] = None, cost_band: float = 0.15):
        if not 0 <= cost_band < 1:
            raise ValueError(f"cost_band must be in [0, 1), got {cost_band}")
        self.slo = slo
        self.cost_band = cost_band

    def _band(self, cost: float) -> int:
        """Geometric cost band; equal bands defer to phase affinity."""
        if self.cost_band == 0 or cost <= 0:
            return 0
        return int(math.log(cost) / math.log1p(self.cost_band))

    @staticmethod
    def _price_rate(node: ReplicaNode) -> float:
        """Listing-price proxy; unknown devices priced at the median."""
        try:
            return list_price(node.platform.name)
        except KeyError:
            prices = sorted(LIST_PRICE_USD.values())
            return prices[len(prices) // 2]

    def select(self, request: ArrivingRequest,
               nodes: Sequence[ReplicaNode], now: float) -> ReplicaNode:
        prefill_heavy = request.input_len >= request.output_len
        best = None
        best_key = None
        for index, node in enumerate(self.routable(nodes)):
            prefill = node.prefill_cost_s(request.input_len)
            decode = node.decode_cost_s(request.input_len, request.output_len)
            ttft_projected = node.backlog_s(now) + prefill
            finish_projected = ttft_projected + decode
            dollar_occupancy = (prefill + decode) * self._price_rate(node)
            feasible = self.slo is None or ttft_projected <= self.slo.ttft_s
            affinity = phase_affinity(node.platform)
            # Feasible replicas sort by banded cost, then phase match
            # (compute-rich for prefill-dominated requests,
            # bandwidth-rich for decode-dominated); infeasible ones
            # (rank 1) by projected finish.
            key = (0 if feasible else 1,
                   self._band(dollar_occupancy) if feasible
                   else finish_projected,
                   -affinity if prefill_heavy else affinity,
                   dollar_occupancy,
                   index)
            if best_key is None or key < best_key:
                best, best_key = node, key
        return best
