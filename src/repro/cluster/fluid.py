"""Fluid/mean-field steady-state solver for instant cluster what-ifs.

The last rung of the raw-speed ladder: per-step simulation, closed-form
fast-forward, sharded execution — and now no event loop at all. Given a
:class:`~repro.cluster.config.ClusterConfig`, an arrival rate, and a
request-shape (or class) mix, :func:`solve` computes the steady state of
the fleet analytically: per-replica batch-occupancy distribution,
throughput, queueing delay, TTFT/TPOT percentiles, SLO attainment,
goodput, and $/Mtok — in microseconds once the cost tables are warm,
versus seconds-to-minutes for the discrete-event simulator.

**The model.** Each tier — a group of interchangeable replicas with one
(model, platform, backend) triple — is a pooled birth–death chain in the
total number of in-system requests ``n``:

* A replica serving a batch of ``b`` sequences advances all of them one
  token per fused iteration, so ``b`` requests complete every
  ``b * Tp + D(b)`` seconds, where ``Tp`` is the mixture-mean prefill
  (prefills run exclusively) and ``D(b)`` is the mixture-mean
  whole-batch decode demand of one request at occupancy ``b`` — the
  exact expectation of the piecewise-affine prefix curves in
  :class:`~repro.engine.stepcost.DecodeCostTable` over the request-shape
  distribution (:meth:`~repro.engine.stepcost.DecodeCostTable.
  expected_decode_time`). The per-request spacing at occupancy ``b`` is
  therefore ``S(b) = Tp + D(b) / b``, and a tier of ``k`` replicas
  completes requests at rate ``min(n, k) / S(n / min(n, k))`` —
  batching efficiency enters through ``S`` falling with occupancy.
* Above the full-batch state the queue is geometric with ratio
  ``rho = rate * S(B) / k`` — the tier's load; ``k / S(B)`` is its
  capacity.  Queue waits get an M/G/k-style correction: the M/M mean
  wait is scaled by ``(1 + cv^2) / 2`` with ``cv^2`` the service-demand
  variability of the shape mixture, and the conditional wait keeps an
  exponential tail (so TTFT percentiles are closed-form).
* TPOT is the token-weighted mean inter-token gap over the occupancy
  distribution, inflated by the prefill-stall share ``1 / (1 - rate *
  Tp / k)`` — decode gaps stretch when admissions interpose exclusive
  prefills.

**Router composition.** With a class mix the solver reproduces the
:class:`~repro.cluster.tiering.TieredRouter` flow logic as a damped
fixed point over class→tier admission shares: each class starts at its
home tier (cheapest eligible tier whose unloaded service clears the
class bar — the same rule, priced off the same tables) and the share
that would see its TTFT bar broken spills upward, until flows converge.
Without classes, flows split in proportion to tier capacity — exact for
homogeneous fleets under round-robin/JSQ, and the resource-pooled chain
approximates join-shortest-queue balancing within a tier.

**Validity envelope** (see ``docs/fluid.md`` and the recorded error
envelope in ``BENCH_cluster.json``): in the stable regime (``rho <=
0.85``) throughput, goodput, and $/Mtok track the exact simulator to
~2%; near saturation (``0.85 < rho < 1``) queue-length statistics grow
sensitive to arrival details and errors widen; overloaded tiers
(``rho >= 1``) are *flagged* — throughput pins to capacity, waits are
infinite, attainment is zero — rather than silently extrapolated. TTFT
tail percentiles inherit the M/G/k approximation and are indicative,
not bit-accurate; use the simulator to confirm a winner
(:func:`repro.optim.advisor.recommend_fleet` automates that).
"""

import dataclasses
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.cost import price_rate
from repro.cluster.config import ClusterConfig
from repro.cluster.metrics import DEFAULT_AMORTIZATION_YEARS, \
    _SECONDS_PER_YEAR
from repro.cluster.node import ReplicaNode
from repro.cluster.tiering import Tier, tier_label
from repro.serving.arrivals import _spec_ranges
from repro.serving.slo import SLO
from repro.workloads.classes import REQUEST_CLASSES, RequestClass

#: Load-regime labels, in increasing order of distress.
REGIME_STABLE = "stable"
REGIME_NEAR_SATURATION = "near-saturation"
REGIME_OVERLOADED = "overloaded"

#: Documented edge of the validated envelope: below this load the
#: recorded error bounds apply; above it, expect drift.
STABLE_RHO = 0.85

_FIXED_POINT_DAMPING = 0.5
_FIXED_POINT_TOL = 1e-4
_FIXED_POINT_MAX_ITERS = 200
#: Prefill-stall inflation is clamped so a prefill-dominated overload
#: degrades gracefully instead of dividing by ~zero.
_MAX_PREFILL_SHARE = 0.95


def _regime(rho: float) -> str:
    if rho >= 1.0:
        return REGIME_OVERLOADED
    if rho > STABLE_RHO:
        return REGIME_NEAR_SATURATION
    return REGIME_STABLE


# -- workload resolution ---------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _Flow:
    """One resolved request class: shape ranges, share, and its bar."""

    name: str
    share: float
    input_range: Tuple[int, int]
    output_range: Tuple[int, int]
    slo: SLO
    min_model_params: float

    @property
    def mean_input(self) -> float:
        lo, hi = self.input_range
        return (lo + hi) / 2.0

    @property
    def mean_output(self) -> float:
        lo, hi = self.output_range
        return (lo + hi) / 2.0

    @property
    def mean_steps(self) -> float:
        """Expected decode iterations (the first token comes from prefill)."""
        return max(0.0, self.mean_output - 1.0)


def _resolve_flows(mix, spec, slo,
                   classes: Optional[Mapping[str, RequestClass]]
                   ) -> List[_Flow]:
    if mix is None:
        input_range, output_range = _spec_ranges(spec)
        return [_Flow(name="all", share=1.0,
                      input_range=tuple(input_range),
                      output_range=tuple(output_range),
                      slo=slo if slo is not None else SLO(),
                      min_model_params=0.0)]
    table = dict(classes if classes is not None else REQUEST_CLASSES)
    total = sum(share for _, share in mix)
    if total <= 0:
        raise ValueError("class mix shares must sum to a positive value")
    flows = []
    for name, share in mix:
        if share <= 0:
            continue
        rc = table[name]
        flows.append(_Flow(name=name, share=share / total,
                           input_range=tuple(rc.input_len_range),
                           output_range=tuple(rc.output_len_range),
                           slo=rc.slo,
                           min_model_params=rc.min_model_params))
    if not flows:
        raise ValueError("class mix resolved to no positive shares")
    return flows


# -- stations --------------------------------------------------------------


class _Station:
    """One tier of interchangeable replicas, with memoized demands."""

    def __init__(self, nodes: Sequence[ReplicaNode]):
        node = nodes[0]
        self.tier: Tier = node.tier
        self.count = len(nodes)
        self.table = node.cost_table
        self.max_batch = node.max_batch
        self.param_count = node.model.param_count()
        self.price_usd = sum(price_rate(n.platform.name, n.price_usd)
                             for n in nodes)

    def prefill_s(self, flow: _Flow) -> float:
        # Includes backend comm time (TP allreduce, hybrid GPU leg):
        # DecodeCostTable.prefill_time folds prefill_comm_s in, so
        # hybrid stations price their PCIe/GPU prefill here for free.
        return self.table.expected_prefill_time(flow.input_range)

    def decode_s(self, flow: _Flow, batch: int) -> float:
        return self.table.expected_decode_time(batch, flow.input_range,
                                               flow.output_range)

    def per_token_s(self, flow: _Flow) -> float:
        """Unloaded per-token decode — the router's home-tier probe.

        Mirrors :meth:`~repro.cluster.node.ReplicaNode.decode_cost_s`
        (single sequence, mid-KV iteration cost) at the class's mean
        shape, so fluid home tiers agree with the router's.
        """
        mean_out = int(round(flow.mean_output))
        if mean_out <= 1:
            return 0.0
        mid_kv = int(round(flow.mean_input)) + mean_out // 2
        return self.table.step_time(1, max(1, mid_kv))


def _group_stations(config: ClusterConfig) -> List[_Station]:
    fleet = config.build_fleet()
    by_tier: Dict[Tier, List[ReplicaNode]] = {}
    for node in fleet:
        by_tier.setdefault(node.tier, []).append(node)
    return [_Station(nodes) for nodes in by_tier.values()]


# -- the per-station chain -------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _ClassAtStation:
    """Per-(class, station) steady-state latency components."""

    flow: _Flow
    rate_per_s: float
    t0_s: float          # deterministic TTFT floor: boundary wait + prefill
    p_wait: float
    theta: float         # exponential wait-tail rate (inf when no wait)
    mean_ttft_s: float
    tpot_s: float
    attainment: float
    overloaded: bool

    def ttft_cdf(self, t: float) -> float:
        if self.overloaded:
            return 0.0
        if t < self.t0_s:
            return 0.0
        if not math.isfinite(self.theta):
            return 1.0
        return 1.0 - self.p_wait * math.exp(-self.theta * (t - self.t0_s))


class _StationSolution:
    """Solved chain for one station under a given flow assignment."""

    def __init__(self, station: _Station, flows: List[Tuple[_Flow, float]]):
        self.station = station
        self.flows = [(flow, rate) for flow, rate in flows if rate > 0.0]
        self.rate_per_s = sum(rate for _, rate in self.flows)
        self.capacity_req_per_s = 0.0
        self.classes: List[_ClassAtStation] = []
        if not self.flows:
            self._solve_idle()
        else:
            self._solve()

    # An idle station: keep capacity so flow redistribution can use it.
    def _solve_idle(self) -> None:
        station = self.station
        big_b = station.max_batch
        # Demand at full batch for the *default* shape envelope is not
        # defined without a flow; report capacity as 0-rate placeholder
        # and a fully-idle occupancy.
        self.rho = 0.0
        self.regime = REGIME_STABLE
        self.utilization = 0.0
        self.mean_batch = 0.0
        self.occupancy = tuple([1.0] + [0.0] * big_b)
        self.p_wait = 0.0
        self.mean_wait_s = 0.0
        self.throughput_tokens_per_s = 0.0
        self.tpot_s = 0.0

    def _solve(self) -> None:
        station = self.station
        k, big_b = station.count, station.max_batch
        rate = self.rate_per_s
        weights = [(flow, r / rate) for flow, r in self.flows]

        prefill = sum(w * station.prefill_s(flow) for flow, w in weights)
        decode = [0.0] * (big_b + 1)  # decode[b] = mixture D(b), b >= 1
        for b in range(1, big_b + 1):
            decode[b] = sum(w * station.decode_s(flow, b)
                            for flow, w in weights)
        steps = sum(w * flow.mean_steps for flow, w in weights)
        mean_out = sum(w * flow.mean_output for flow, w in weights)

        def spacing(q: float) -> float:
            """Per-request completion spacing S(q) at occupancy q."""
            q = min(max(q, 1.0), float(big_b))
            lo = int(math.floor(q))
            hi = min(lo + 1, big_b)
            frac = q - lo
            d = decode[lo] + (decode[hi] - decode[lo]) * frac
            return prefill + d / q

        def gap(q: float) -> float:
            """Mixture inter-token gap at occupancy q."""
            if steps <= 0.0:
                return 0.0
            q = min(max(q, 1.0), float(big_b))
            lo = int(math.floor(q))
            hi = min(lo + 1, big_b)
            frac = q - lo
            return (decode[lo] + (decode[hi] - decode[lo]) * frac) / steps

        s_full = spacing(float(big_b))
        capacity = k / s_full
        self.capacity_req_per_s = capacity
        rho = rate / capacity
        self.rho = rho
        self.regime = _regime(rho)
        overloaded = rho >= 1.0
        served = min(rate, capacity)
        self.throughput_tokens_per_s = served * mean_out

        # Pooled birth-death chain over n in [0, k*B]; geometric tail.
        top = k * big_b
        if overloaded:
            pi = [0.0] * (top + 1)
            pi[top] = 1.0
            p_wait, mean_wait = 1.0, math.inf
        else:
            # Accumulate the chain in log-space: the un-normalized
            # running product overflows for large fleets (k*B in the
            # thousands) long before normalization.
            logs = [0.0]
            for n in range(1, top + 1):
                busy = min(n, k)
                mu = busy / spacing(n / busy)
                logs.append(logs[-1] + math.log(rate / mu))
            peak = max(logs)
            raw = [math.exp(v - peak) for v in logs]
            tail = raw[top] * rho / (1.0 - rho)  # mass beyond n = k*B
            norm = sum(raw) + tail
            pi = [p / norm for p in raw]
            p_wait = (raw[top] / (1.0 - rho)) / norm
            queue_len = (raw[top] / norm) * rho / (1.0 - rho) ** 2
            mean_wait = queue_len / rate
            # M/G/k-style correction: scale the M/M wait by the
            # service-demand variability of the shape mixture.
            mean_wait *= (1.0 + self._service_cv2(weights, big_b)) / 2.0
        self.p_wait = p_wait
        self.mean_wait_s = mean_wait
        theta = math.inf if mean_wait <= 0.0 \
            else (0.0 if not math.isfinite(mean_wait)
                  else p_wait / mean_wait)

        # Per-replica batch-occupancy histogram (the tail sits at B).
        occupancy = [0.0] * (big_b + 1)
        for n, p in enumerate(pi):
            if p <= 0.0:
                continue
            if n == 0:
                occupancy[0] += p
                continue
            busy = min(n, k)
            occupancy[0] += p * (k - busy) / k
            q = n / busy
            lo = int(math.floor(q))
            hi = min(lo + 1, big_b)
            frac = q - lo
            occupancy[lo] += p * (busy / k) * (1.0 - frac)
            occupancy[hi] += p * (busy / k) * frac
        if overloaded:
            occupancy = [0.0] * big_b + [1.0]
        self.occupancy = tuple(occupancy)
        self.utilization = 1.0 if overloaded else \
            min(1.0, sum(p * min(n, k) / k for n, p in enumerate(pi)))
        self.mean_batch = sum(b * p for b, p in enumerate(occupancy))

        # Token-weighted occupancy: states produce tokens at n / gap(q),
        # so heavier batches dominate what a *token* experiences.
        token_states: List[Tuple[float, float]] = []  # (weight, q)
        if steps > 0.0:
            if overloaded:
                token_states.append((1.0, float(big_b)))
            else:
                for n, p in enumerate(pi):
                    if n == 0 or p <= 0.0:
                        continue
                    q = n / min(n, k)
                    g = gap(q)
                    if g > 0.0:
                        token_states.append((p * n / g, q))
                tail_mass = 1.0 - sum(p for p in pi)
                g = gap(float(big_b))
                if tail_mass > 0.0 and g > 0.0:
                    token_states.append((tail_mass * top / g, float(big_b)))
        token_norm = sum(w for w, _ in token_states)

        prefill_share = min(served / k * prefill, _MAX_PREFILL_SHARE)
        inflation = 1.0 / (1.0 - prefill_share)
        if token_norm > 0.0:
            mean_gap = sum(w * gap(q) for w, q in token_states) / token_norm
        else:
            mean_gap = 0.0
        self.tpot_s = mean_gap * inflation

        # Admission-boundary wait: residual of the in-flight iteration
        # plus the residual of an in-flight exclusive prefill.
        boundary = self.utilization * mean_gap / 2.0 \
            + (served / k * prefill) * prefill / 2.0

        self.classes = []
        for flow, rate_c in self.flows:
            t0 = boundary + station.prefill_s(flow)
            if overloaded:
                self.classes.append(_ClassAtStation(
                    flow=flow, rate_per_s=rate_c, t0_s=t0, p_wait=1.0,
                    theta=0.0, mean_ttft_s=math.inf, tpot_s=self.tpot_s,
                    attainment=0.0, overloaded=True))
                continue
            flow_steps = flow.mean_steps
            if flow_steps > 0.0 and token_norm > 0.0:
                def class_gap(q: float) -> float:
                    q = min(max(q, 1.0), float(big_b))
                    lo = int(math.floor(q))
                    hi = min(lo + 1, big_b)
                    frac = q - lo
                    d_lo = station.decode_s(flow, lo)
                    d_hi = station.decode_s(flow, hi)
                    return (d_lo + (d_hi - d_lo) * frac) / flow_steps
                tpot_c = sum(w * class_gap(q) for w, q in token_states) \
                    / token_norm * inflation
                tpot_ok = sum(w for w, q in token_states
                              if class_gap(q) * inflation
                              <= flow.slo.tpot_s) / token_norm
            else:
                tpot_c = 0.0
                tpot_ok = 1.0
            entry = _ClassAtStation(
                flow=flow, rate_per_s=rate_c, t0_s=t0, p_wait=p_wait,
                theta=theta, mean_ttft_s=t0 + mean_wait, tpot_s=tpot_c,
                attainment=0.0, overloaded=False)
            ttft_ok = entry.ttft_cdf(flow.slo.ttft_s)
            self.classes.append(dataclasses.replace(
                entry, attainment=ttft_ok * tpot_ok))

    def _service_cv2(self, weights, big_b) -> float:
        """Squared CV of the per-slot service demand across the mixture.

        Uses the affine shape approximation: within a class the demand
        varies chiefly with the output length (uniform, known variance)
        at the class's per-step slope; across classes the means spread.
        Demands are priced per flow so heterogeneous class mixes
        actually contribute the cross-class spread to the second moment.
        """
        station = self.station
        mean = 0.0
        second = 0.0
        for flow, w in weights:
            per_slot = station.decode_s(flow, big_b) / big_b
            x = station.prefill_s(flow) + per_slot
            var = 0.0
            if flow.mean_steps > 0.0:
                slope = per_slot / flow.mean_steps
                lo, hi = flow.output_range
                n = hi - lo + 1
                var = slope * slope * (n * n - 1) / 12.0
            mean += w * x
            second += w * (x * x + var)
        if mean <= 0.0:
            return 0.0
        return max(0.0, second / (mean * mean) - 1.0)


# -- flow assignment -------------------------------------------------------


def _uniform_flows(stations: List[_Station], flows: List[_Flow],
                   rate: float) -> Dict[int, List[Tuple[_Flow, float]]]:
    """Split every class across all stations by full-batch capacity.

    Exact for homogeneous fleets under round-robin/JSQ; for mixed
    non-tiered fleets it equalizes load, approximating the balancing
    routers.
    """
    caps = []
    for station in stations:
        prefill = sum(f.share * station.prefill_s(f) for f in flows)
        decode = sum(f.share * station.decode_s(f, station.max_batch)
                     for f in flows)
        caps.append(station.count
                    / (prefill + decode / station.max_batch))
    total = sum(caps)
    return {i: [(f, rate * f.share * caps[i] / total) for f in flows]
            for i in range(len(stations))}


def _order_stations(stations: List[_Station]) -> List[int]:
    """Router tier order: price ascending, faster decode breaking ties."""
    def key(i: int) -> tuple:
        station = stations[i]
        return (station.price_usd / station.count,
                station.table.step_time(1, 128), station.tier)
    return sorted(range(len(stations)), key=key)


def _tiered_flows(stations: List[_Station], flows: List[_Flow],
                  rate: float
                  ) -> Tuple[Dict[int, List[Tuple[_Flow, float]]],
                             int, bool, Dict[str, float]]:
    """Damped fixed point over class→tier admission shares.

    Mirrors the :class:`~repro.cluster.tiering.TieredRouter`: each class
    homes on the cheapest eligible tier whose unloaded service clears
    its bar, and the share of arrivals that would see the TTFT bar
    broken (the stationary spill probability) cascades to pricier
    eligible tiers; saturated leftovers spread capacity-proportionally,
    matching the router's earliest-finish degrade.
    """
    order = _order_stations(stations)
    eligible: Dict[str, List[int]] = {}
    home: Dict[str, int] = {}
    for flow in flows:
        elig = [i for i in order
                if stations[i].param_count >= flow.min_model_params]
        if not elig:  # tier outage semantics: fall below the floor
            elig = list(order)
        eligible[flow.name] = elig
        pos = next((p for p, i in enumerate(elig)
                    if stations[i].prefill_s(flow) <= flow.slo.ttft_s
                    and stations[i].per_token_s(flow) <= flow.slo.tpot_s),
                   None)
        if pos is None:
            pos = min(range(len(elig)),
                      key=lambda p: (stations[elig[p]].per_token_s(flow), p))
        home[flow.name] = pos

    # flows_by_station[i][flow.name] = rate routed to station i
    current: Dict[int, Dict[str, float]] = \
        {i: {f.name: 0.0 for f in flows} for i in range(len(stations))}
    for flow in flows:
        current[eligible[flow.name][home[flow.name]]][flow.name] = \
            rate * flow.share
    by_name = {f.name: f for f in flows}

    def assignment(table: Dict[int, Dict[str, float]]
                   ) -> Dict[int, List[Tuple[_Flow, float]]]:
        return {i: [(by_name[name], r) for name, r in rates.items()
                    if r > 0.0]
                for i, rates in table.items()}

    converged = False
    iterations = 0
    spill_rate: Dict[str, float] = {f.name: 0.0 for f in flows}
    for iterations in range(1, _FIXED_POINT_MAX_ITERS + 1):
        solutions = {i: _StationSolution(stations[i], flow_list)
                     for i, flow_list in assignment(current).items()}
        proposal: Dict[int, Dict[str, float]] = \
            {i: {f.name: 0.0 for f in flows} for i in range(len(stations))}
        spill_rate = {f.name: 0.0 for f in flows}
        for flow in flows:
            remaining = rate * flow.share
            elig = eligible[flow.name]
            for pos in range(home[flow.name], len(elig)):
                if remaining <= 0.0:
                    break
                i = elig[pos]
                sol = solutions.get(i)
                if sol is None or sol.rho >= 1.0:
                    p_stay = 0.0
                else:
                    entry = next((c for c in sol.classes
                                  if c.flow.name == flow.name), None)
                    if entry is not None:
                        p_stay = entry.ttft_cdf(flow.slo.ttft_s)
                    else:
                        # No current flow here: probe with the station's
                        # present wait statistics.
                        t0 = stations[i].prefill_s(flow)
                        budget = flow.slo.ttft_s - t0
                        if budget < 0.0:
                            p_stay = 0.0
                        elif not math.isfinite(sol.mean_wait_s) \
                                or sol.mean_wait_s <= 0.0:
                            p_stay = 0.0 if not math.isfinite(
                                sol.mean_wait_s) else 1.0
                        else:
                            theta = sol.p_wait / sol.mean_wait_s
                            p_stay = 1.0 - sol.p_wait * math.exp(
                                -theta * budget)
                take = remaining * p_stay
                proposal[i][flow.name] += take
                if pos > home[flow.name]:
                    spill_rate[flow.name] += take
                remaining -= take
            if remaining > 1e-12:
                # Every eligible tier saturated for this class: spread
                # the rest capacity-proportionally (earliest-finish).
                caps = []
                for i in elig:
                    sol = solutions.get(i)
                    caps.append(sol.capacity_req_per_s
                                if sol is not None
                                and sol.capacity_req_per_s > 0.0
                                else stations[i].count)
                total = sum(caps)
                for i, cap in zip(elig, caps):
                    extra = remaining * cap / total
                    proposal[i][flow.name] += extra
                    if i != elig[home[flow.name]]:
                        spill_rate[flow.name] += extra

        delta = 0.0
        for i in current:
            for name in current[i]:
                new = (1.0 - _FIXED_POINT_DAMPING) * current[i][name] \
                    + _FIXED_POINT_DAMPING * proposal[i][name]
                delta = max(delta, abs(new - current[i][name]))
                current[i][name] = new
        if delta <= _FIXED_POINT_TOL * max(rate, 1e-12):
            converged = True
            break
    return assignment(current), iterations, converged, spill_rate


# -- reports ---------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StationReport:
    """Steady state of one tier under the solved admission shares."""

    tier: Tier
    replicas: int
    rate_per_s: float
    capacity_req_per_s: float
    rho: float
    regime: str
    utilization: float
    mean_batch: float
    occupancy: Tuple[float, ...]
    p_wait: float
    mean_wait_s: float
    tpot_s: float
    throughput_tokens_per_s: float
    class_rates: Dict[str, float]

    @property
    def label(self) -> str:
        return tier_label(self.tier)


@dataclasses.dataclass(frozen=True)
class ClassReport:
    """One request class aggregated across the tiers that serve it."""

    name: str
    share: float
    rate_per_s: float
    attainment: float
    goodput_tokens_per_s: float
    mean_ttft_s: float
    tpot_s: float
    spill_rate_per_s: float
    tier_rates: Dict[str, float]


@dataclasses.dataclass(frozen=True)
class FluidReport:
    """The fleet's analytic steady state at one (config, rate, mix) point."""

    rate_per_s: float
    throughput_tokens_per_s: float
    goodput_tokens_per_s: float
    attainment: float
    mean_ttft_s: float
    ttft_percentiles: Dict[float, float]
    tpot_s: float
    capacity_req_per_s: float
    max_rho: float
    regime: str
    fleet_price_usd: float
    dollars_per_mtok: float
    stations: Tuple[StationReport, ...]
    classes: Tuple[ClassReport, ...]
    iterations: int
    converged: bool
    tenant_shares: Optional[Dict[str, float]] = None
    label: Optional[str] = None

    @property
    def overloaded(self) -> bool:
        return self.regime == REGIME_OVERLOADED


def _mixture_quantile(components: List[Tuple[float, _ClassAtStation]],
                      q: float) -> float:
    """Quantile of the TTFT mixture across (class, station) components."""
    total = sum(w for w, _ in components)
    if total <= 0.0:
        return 0.0
    reachable = sum(w for w, c in components if not c.overloaded) / total
    if reachable < q:
        return math.inf
    lo = min(c.t0_s for _, c in components if not c.overloaded)
    hi = max(c.t0_s for _, c in components if not c.overloaded) + 1e-9

    def cdf(t: float) -> float:
        return sum(w * c.ttft_cdf(t) for w, c in components) / total

    for _ in range(200):
        if cdf(hi) >= q:
            break
        hi *= 2.0
    else:
        return math.inf
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if cdf(mid) >= q:
            hi = mid
        else:
            lo = mid
    return hi


# -- public API ------------------------------------------------------------


def solve(config: ClusterConfig, rate_per_s: float, *,
          mix: Optional[Sequence[Tuple[str, float]]] = None,
          classes: Optional[Mapping[str, RequestClass]] = None,
          spec: Optional[object] = None,
          slo: Optional[SLO] = None,
          router: str = "auto",
          percentiles: Sequence[float] = (0.5, 0.9, 0.99),
          tenant_weights: Optional[Mapping[str, float]] = None,
          amortization_years: float = DEFAULT_AMORTIZATION_YEARS,
          label: Optional[str] = None,
          _stations: Optional[List[_Station]] = None) -> FluidReport:
    """Solve a fleet's steady state analytically at one operating point.

    Args:
        config: The fleet, as the simulator declares it.
        rate_per_s: Fleet-wide Poisson arrival rate.
        mix: Optional class mix ``((name, share), ...)`` — engages the
            tiered flow fixed point with per-class SLOs from *classes*
            (default: the stock matrix).
        spec: Shape spec for class-less workloads (any object with
            ``input_len_range`` / ``output_len_range``; defaults match
            :func:`repro.serving.arrivals.iter_poisson_arrivals`).
        slo: Latency bar for class-less workloads (default stock
            :class:`~repro.serving.slo.SLO`).
        router: ``auto`` (tiered iff a mix is given), ``uniform``
            (capacity-proportional split), or ``tiered``.
        percentiles: TTFT quantiles to report.
        tenant_weights: Optional weighted-fair tenant weights; reported
            as each tenant's guaranteed share of served capacity.
        amortization_years: Hardware amortization horizon for $/Mtok.

    Returns:
        A :class:`FluidReport`. Overload is *flagged* — throughput pins
        to capacity, waits are infinite, attainment zero — never
        silently extrapolated.
    """
    if rate_per_s <= 0.0:
        raise ValueError(f"rate_per_s must be positive, got {rate_per_s}")
    flows = _resolve_flows(mix, spec, slo, classes)
    stations = _stations if _stations is not None \
        else _group_stations(config)
    if not stations:
        raise ValueError("the cluster config has no replicas")

    if router == "auto":
        router = "tiered" if mix is not None else "uniform"
    if router == "tiered":
        table, iterations, converged, spill = \
            _tiered_flows(stations, flows, rate_per_s)
    elif router == "uniform":
        table = _uniform_flows(stations, flows, rate_per_s)
        iterations, converged = 1, True
        spill = {f.name: 0.0 for f in flows}
    else:
        raise ValueError(f"unknown fluid router {router!r}; "
                         f"expected auto, uniform, or tiered")

    solutions = [(_StationSolution(stations[i], flow_list), i)
                 for i, flow_list in sorted(table.items())
                 ]

    station_reports = []
    components: List[Tuple[float, _ClassAtStation]] = []
    per_class: Dict[str, List[_ClassAtStation]] = {f.name: [] for f in flows}
    throughput = 0.0
    max_rho = 0.0
    for sol, i in solutions:
        station = stations[i]
        throughput += sol.throughput_tokens_per_s
        if sol.rate_per_s > 0.0:
            max_rho = max(max_rho, sol.rho)
        station_reports.append(StationReport(
            tier=station.tier, replicas=station.count,
            rate_per_s=sol.rate_per_s,
            capacity_req_per_s=sol.capacity_req_per_s,
            rho=sol.rho, regime=sol.regime,
            utilization=sol.utilization, mean_batch=sol.mean_batch,
            occupancy=sol.occupancy, p_wait=sol.p_wait,
            mean_wait_s=sol.mean_wait_s, tpot_s=sol.tpot_s,
            throughput_tokens_per_s=sol.throughput_tokens_per_s,
            class_rates={c.flow.name: c.rate_per_s for c in sol.classes}))
        for entry in sol.classes:
            components.append((entry.rate_per_s, entry))
            per_class[entry.flow.name].append(entry)

    class_reports = []
    goodput = 0.0
    attained = 0.0
    ttft_num = 0.0
    tpot_num = 0.0
    for flow in flows:
        entries = per_class[flow.name]
        rate_c = sum(e.rate_per_s for e in entries)
        if rate_c <= 0.0:
            continue
        att = sum(e.rate_per_s * e.attainment for e in entries) / rate_c
        mean_ttft = sum(e.rate_per_s * e.mean_ttft_s for e in entries) \
            / rate_c
        tpot = sum(e.rate_per_s * e.tpot_s for e in entries) / rate_c
        good = rate_c * att * flow.mean_output
        goodput += good
        attained += rate_c * att
        ttft_num += rate_c * mean_ttft
        tpot_num += rate_c * tpot
        class_reports.append(ClassReport(
            name=flow.name, share=flow.share, rate_per_s=rate_c,
            attainment=att, goodput_tokens_per_s=good,
            mean_ttft_s=mean_ttft, tpot_s=tpot,
            spill_rate_per_s=spill.get(flow.name, 0.0),
            tier_rates={tier_label(s.station.tier):
                        next((c.rate_per_s for c in s.classes
                              if c.flow.name == flow.name), 0.0)
                        for s, _ in solutions}))

    fleet_price = sum(s.price_usd for s in stations)
    dollars_per_s = fleet_price / (amortization_years * _SECONDS_PER_YEAR)
    dollars_per_mtok = math.inf if throughput <= 0.0 \
        else dollars_per_s / throughput * 1e6
    capacity = sum(s.capacity_req_per_s for s, _ in solutions
                   if s.capacity_req_per_s > 0.0)

    shares = None
    if tenant_weights:
        total_w = sum(tenant_weights.values())
        if total_w <= 0:
            raise ValueError("tenant weights must sum to a positive value")
        # Work-conserving weighted-fair admission: in steady state each
        # tenant is guaranteed this share of the *served* request rate;
        # slack unused by one tenant redistributes to the others.
        shares = {tenant: w / total_w
                  for tenant, w in tenant_weights.items()}

    return FluidReport(
        rate_per_s=rate_per_s,
        throughput_tokens_per_s=throughput,
        goodput_tokens_per_s=goodput,
        attainment=attained / rate_per_s,
        mean_ttft_s=ttft_num / rate_per_s if rate_per_s else 0.0,
        ttft_percentiles={q: _mixture_quantile(components, q)
                          for q in percentiles},
        tpot_s=tpot_num / rate_per_s if rate_per_s else 0.0,
        capacity_req_per_s=capacity,
        max_rho=max_rho,
        regime=_regime(max_rho),
        fleet_price_usd=fleet_price,
        dollars_per_mtok=dollars_per_mtok,
        stations=tuple(station_reports),
        classes=tuple(class_reports),
        iterations=iterations,
        converged=converged,
        tenant_shares=shares,
        label=label,
    )


@dataclasses.dataclass(frozen=True)
class FluidScenario:
    """One (fleet, rate, mix) grid point for :func:`solve_grid`."""

    config: ClusterConfig
    rate_per_s: float
    mix: Optional[Sequence[Tuple[str, float]]] = None
    spec: Optional[object] = None
    slo: Optional[SLO] = None
    label: Optional[str] = None


def solve_grid(scenarios: Sequence[Union[FluidScenario,
                                         Tuple[ClusterConfig, float]]],
               **common) -> List[FluidReport]:
    """Solve many what-if points, amortizing cost-table warmup.

    Demand expectations live on the shared
    :class:`~repro.engine.stepcost.DecodeCostTable` registry, so every
    grid point after the first with the same (platform, model, backend,
    shape mix) reuses warmed prefix curves and demand integrals;
    station groupings are reused per distinct config within the call.
    Extra keyword arguments pass through to :func:`solve` and apply to
    every scenario that does not override them.
    """
    # Keyed by object identity: configs need not be hashable, and the
    # scenario list keeps them alive for the duration of the call.
    station_cache: Dict[int, List[_Station]] = {}
    reports = []
    for scenario in scenarios:
        if isinstance(scenario, FluidScenario):
            config, rate = scenario.config, scenario.rate_per_s
            overrides = {key: value for key, value in (
                ("mix", scenario.mix), ("spec", scenario.spec),
                ("slo", scenario.slo), ("label", scenario.label))
                if value is not None}
        else:
            config, rate = scenario
            overrides = {}
        stations = station_cache.get(id(config))
        if stations is None:
            stations = _group_stations(config)
            station_cache[id(config)] = stations
        kwargs = dict(common)
        kwargs.update(overrides)
        reports.append(solve(config, rate, _stations=stations, **kwargs))
    return reports


def saturation_rate(config: ClusterConfig, *,
                    mix: Optional[Sequence[Tuple[str, float]]] = None,
                    classes: Optional[Mapping[str, RequestClass]] = None,
                    spec: Optional[object] = None,
                    slo: Optional[SLO] = None,
                    router: str = "auto",
                    rel_tol: float = 1e-4) -> float:
    """The fleet's saturation arrival rate (requests/s).

    For uniform routing this is closed-form (the capacity sum); for
    tiered routing the class→tier flows shift with load, so the edge is
    found by bisection on the solved ``max_rho``.
    """
    flows = _resolve_flows(mix, spec, slo, classes)
    stations = _group_stations(config)
    caps = []
    for station in stations:
        prefill = sum(f.share * station.prefill_s(f) for f in flows)
        decode = sum(f.share * station.decode_s(f, station.max_batch)
                     for f in flows)
        caps.append(station.count / (prefill + decode / station.max_batch))
    uniform_cap = sum(caps)
    if router == "auto":
        router = "tiered" if mix is not None else "uniform"
    if router == "uniform":
        return uniform_cap

    def max_rho(rate: float) -> float:
        return solve(config, rate, mix=mix, classes=classes, spec=spec,
                     slo=slo, router=router, _stations=stations).max_rho

    lo, hi = uniform_cap * 1e-3, uniform_cap
    while max_rho(hi) < 1.0:
        lo, hi = hi, hi * 2.0
        if hi > uniform_cap * 64:
            # No saturating bracket found within 64x the uniform
            # capacity: signal "not found" rather than return an
            # arbitrary non-saturating rate.
            return math.inf
    while (hi - lo) > rel_tol * hi:
        mid = (lo + hi) / 2.0
        if max_rho(mid) >= 1.0:
            hi = mid
        else:
            lo = mid
    return hi
