"""Tiered request routing for heterogeneous multi-model fleets.

The jarvis-style 3-tier matrix from the ROADMAP, made executable: each
replica in a mixed fleet serves a **tier** — its (model, platform,
backend) triple — and each request carries a **class**
(:mod:`repro.workloads.classes`) with a latency bar and a
model-capability floor. :class:`TieredRouter` maps every class to the
cheapest tier whose *measured* speed clears the class's bar:

1. **Classify** — the deterministic classifier recovers the request's
   class from its id alone (no tag on the wire).
2. **Capability cut** — tiers whose model is below the class's
   ``min_model_params`` floor are ineligible: a 1.3B model answering a
   reasoning request fast is still a wrong answer.
3. **Home tier** — among eligible tiers in ascending price order, the
   first whose *unloaded* service clears the class's bar (single-
   sequence prefill within TTFT, per-token decode within TPOT) — all
   priced off the replica's own :class:`~repro.engine.stepcost.
   DecodeCostTable`, so routing agrees bit-for-bit across fast-forward
   and exact modes.
4. **Upward spill on saturation** — if the home tier's projected TTFT
   (backlog + prefill) would break the bar, the request spills to the
   next-priciest eligible tier that is feasible *now*; if every
   eligible tier is saturated, the earliest projected finish wins
   (degrade latency, not correctness).
5. **Downward fallback on tier outage** — only when *no* capable
   replica is routable (failures/drains took the tier out) does the
   request fall below its floor, to the earliest projected finish among
   the survivors. Spills and fallbacks are counted per class and
   surface in :attr:`~repro.cluster.metrics.ClusterReport.
   router_counters`.

:func:`tiering_report` turns a finished run into per-class SLO
attainment/goodput and per-tier $/Mtok — the accounting behind the
``ext_tiering`` experiment's tiered-vs-one-size-fits-all comparison.

Shard safety: the router's only state is integer counters; decisions
read the request, the candidate replicas, and the pure classifier. As a
:class:`~repro.cluster.router.ShardRouter` local it therefore
partitions cleanly, and per-group counters merge by summation —
bit-identical for any worker count.
"""

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cost import price_rate
from repro.cluster.metrics import (
    DEFAULT_AMORTIZATION_YEARS,
    _SECONDS_PER_YEAR,
    ClusterReport,
)
from repro.cluster.node import ReplicaNode
from repro.cluster.router import Router
from repro.serving.arrivals import ArrivingRequest
from repro.serving.slo import SLO, meets
from repro.workloads.classes import (
    REQUEST_CLASSES,
    MixClassifier,
    RequestClass,
)

#: A tier identity: (model name, platform name, backend label). The
#: backend label distinguishes NUMA-placed (``bf16-snc_flat-aware``)
#: and hybrid CPU–GPU (``bf16-hyb.a100``) replicas from plain ones, so
#: mixed CPU/GPU/hybrid fleets route and account per placement.
Tier = Tuple[str, str, str]


def tier_label(tier: Tier) -> str:
    """Human/counter spelling of a tier triple."""
    model, platform, backend = tier
    return f"{model}@{platform}/{backend}"


class TieredRouter(Router):
    """Class-aware routing across a heterogeneous (multi-model) fleet.

    Args:
        classifier: Deterministic request→class hook; defaults to the
            stock mix classifier
            (:class:`repro.workloads.classes.MixClassifier`). Must be
            the same classifier the workload generated shapes with.
        classes: Class table (name → :class:`~repro.workloads.classes.
            RequestClass`); defaults to the stock 3-class matrix.

    Counters (see :meth:`counters`): ``routed:<class>`` per decision,
    ``served:<class>:<tier>`` per chosen tier, ``spill:<class>`` when
    the choice lands above the class's home tier, ``fallback:<class>``
    when a tier outage forces routing below the capability floor.
    """

    name = "tiered"

    def __init__(self, classifier: Optional[MixClassifier] = None,
                 classes: Optional[Dict[str, RequestClass]] = None):
        self.classifier = classifier if classifier is not None \
            else MixClassifier()
        self.classes = dict(classes if classes is not None
                            else REQUEST_CLASSES)
        for mixed, _ in self.classifier.mix:
            if mixed not in self.classes:
                raise ValueError(f"classifier mixes class {mixed!r} with no "
                                 f"entry in the class table "
                                 f"{sorted(self.classes)}")
        self._counters: Dict[str, int] = {}

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def _bump(self, key: str) -> None:
        self._counters[key] = self._counters.get(key, 0) + 1

    @staticmethod
    def _tier_price(node: ReplicaNode) -> float:
        return price_rate(node.platform.name, node.price_usd)

    def select(self, request: ArrivingRequest,
               nodes: Sequence[ReplicaNode], now: float) -> ReplicaNode:
        class_name = self.classifier(request)
        try:
            rc = self.classes[class_name]
        except KeyError:
            raise KeyError(f"classifier produced unknown class "
                           f"{class_name!r}; table: {sorted(self.classes)}")
        candidates = self.routable(nodes)
        self._bump(f"routed:{class_name}")

        tiers: Dict[Tier, List[Tuple[int, ReplicaNode]]] = {}
        for index, node in enumerate(candidates):
            tiers.setdefault(node.tier, []).append((index, node))

        steps = max(1, request.output_len - 1)

        def per_token(node: ReplicaNode) -> float:
            decode = node.decode_cost_s(request.input_len,
                                        request.output_len)
            return decode / steps if decode else 0.0

        # Tiers in ascending price (ties: faster per-token first, then
        # the tier key — all deterministic).
        ordered = sorted(
            tiers.items(),
            key=lambda item: (self._tier_price(item[1][0][1]),
                              per_token(item[1][0][1]), item[0]))
        eligible = [item for item in ordered
                    if item[1][0][1].model.param_count()
                    >= rc.min_model_params]

        if not eligible:
            # Downward fallback: every capable tier is out. Serve on
            # the earliest projected finish among the survivors rather
            # than drop traffic; the per-class fallback counter is the
            # operator's outage signal.
            self._bump(f"fallback:{class_name}")
            chosen = self._earliest_finish(ordered, request, now)
            self._bump(f"served:{class_name}:{tier_label(chosen.tier)}")
            return chosen

        home = self._home_position(eligible, rc, request, per_token)

        # Home tier first, then spill upward (pricier eligible tiers)
        # while the projected TTFT would break the class's bar.
        for position in range(home, len(eligible)):
            _, members = eligible[position]
            index, node = min(
                members, key=lambda pair: (pair[1].backlog_s(now), pair[0]))
            projected_ttft = (node.backlog_s(now)
                              + node.prefill_cost_s(request.input_len))
            if projected_ttft <= rc.slo.ttft_s:
                if position != home:
                    self._bump(f"spill:{class_name}")
                self._bump(f"served:{class_name}:{tier_label(node.tier)}")
                return node

        # Every eligible tier saturated: degrade latency, not
        # correctness — earliest projected finish among capable tiers.
        chosen = self._earliest_finish(eligible, request, now)
        if chosen.tier != eligible[home][0]:
            self._bump(f"spill:{class_name}")
        self._bump(f"served:{class_name}:{tier_label(chosen.tier)}")
        return chosen

    def _home_position(self, eligible, rc: RequestClass,
                       request: ArrivingRequest, per_token) -> int:
        """Cheapest eligible tier whose unloaded service clears the bar.

        When no tier clears it even unloaded (the class's SLO outruns
        the fleet), home becomes the fastest-decoding eligible tier —
        the least-bad latency degrade.
        """
        for position, (_, members) in enumerate(eligible):
            node = members[0][1]
            if (node.prefill_cost_s(request.input_len) <= rc.slo.ttft_s
                    and per_token(node) <= rc.slo.tpot_s):
                return position
        return min(range(len(eligible)),
                   key=lambda pos: (per_token(eligible[pos][1][0][1]), pos))

    @staticmethod
    def _earliest_finish(tier_items, request: ArrivingRequest,
                         now: float) -> ReplicaNode:
        best = None
        best_key = None
        for _, members in tier_items:
            for index, node in members:
                finish = (node.backlog_s(now)
                          + node.prefill_cost_s(request.input_len)
                          + node.decode_cost_s(request.input_len,
                                               request.output_len))
                key = (finish, index)
                if best_key is None or key < best_key:
                    best, best_key = node, key
        return best


# -- per-class / per-tier accounting ---------------------------------------


@dataclasses.dataclass(frozen=True)
class ClassStats:
    """One request class's share of a cluster run.

    Attributes:
        name: Class name.
        slo: The class's latency bar.
        completed: Requests of this class that finished.
        met: Of those, how many met the class's SLO.
        attainment: ``met / completed`` (1.0 for an empty class).
        goodput: SLO-compliant tokens/s of this class over the makespan.
        mean_ttft_s: Mean arrival-to-first-token latency.
        spills: Requests routed above the class's home tier.
        fallbacks: Requests routed below the capability floor (outage).
    """

    name: str
    slo: SLO
    completed: int
    met: int
    attainment: float
    goodput: float
    mean_ttft_s: float
    spills: int
    fallbacks: int


@dataclasses.dataclass(frozen=True)
class TierStats:
    """One (model, platform, backend) tier's share of a cluster run.

    Attributes:
        tier: The tier triple.
        replicas: Replica count in the tier.
        price_usd: Listing-price total over the tier's replicas
            (per-replica overrides honored).
        generated_tokens: Useful tokens the tier produced.
        busy_s: Summed busy seconds across the tier's replicas.
        utilization: Tier busy share of ``replicas x makespan``.
        dollars_per_mtok: The tier's amortized hardware $ per million
            of *its own* tokens (``inf`` for a tier that produced none).
    """

    tier: Tier
    replicas: int
    price_usd: float
    generated_tokens: int
    busy_s: float
    utilization: float
    dollars_per_mtok: float

    @property
    def label(self) -> str:
        return tier_label(self.tier)


@dataclasses.dataclass(frozen=True)
class TieringReport:
    """Per-class and per-tier breakdown of a tiered cluster run.

    Attributes:
        classes: Per-class stats, classifier mix order.
        tiers: Per-tier stats, ascending price order.
        attainment: Fleet-wide fraction of requests meeting *their own
            class's* SLO (unlike :meth:`ClusterReport.attainment`,
            which scores one SLO for everything).
        goodput: Fleet-wide SLO-compliant tokens/s.
        dollars_per_mtok: Whole-fleet amortized $ per million useful
            tokens.
        spills / fallbacks: Fleet totals of the router's counters.
    """

    classes: List[ClassStats]
    tiers: List[TierStats]
    attainment: float
    goodput: float
    dollars_per_mtok: float
    spills: int
    fallbacks: int

    def class_stats(self, name: str) -> ClassStats:
        for stats in self.classes:
            if stats.name == name:
                return stats
        raise KeyError(f"no class {name!r} in this report; classes: "
                       f"{[s.name for s in self.classes]}")

    def render(self) -> str:
        """Two plain-text tables: classes, then tiers."""
        lines = ["class        completed  attain  goodput   spill  fallback"]
        for s in self.classes:
            lines.append(f"{s.name:<12} {s.completed:>9}  {s.attainment:>6.3f}"
                         f"  {s.goodput:>7.1f}  {s.spills:>6}  {s.fallbacks:>8}")
        lines.append("")
        lines.append("tier                                    replicas  "
                     "tokens     util   $/Mtok")
        for t in self.tiers:
            dpm = ("inf" if math.isinf(t.dollars_per_mtok)
                   else f"{t.dollars_per_mtok:.2f}")
            lines.append(f"{t.label:<40} {t.replicas:>7}  {t.generated_tokens:>9}"
                         f"  {t.utilization:>5.2f}  {dpm:>7}")
        return "\n".join(lines)


def tiering_report(report: ClusterReport, arrivals, classifier,
                   classes: Optional[Dict[str, RequestClass]] = None,
                   amortization_years: float = DEFAULT_AMORTIZATION_YEARS,
                   ) -> TieringReport:
    """Score a finished run per class and per tier.

    *arrivals* is the request stream (list or regenerable iterator —
    the per-class SLO check needs each request's shape), *classifier*
    the deterministic class hook shared with the workload/router.
    Works for any run over a mixed-class stream, whatever the router:
    scoring a JSQ one-size-fits-all fleet with the same classifier is
    exactly how ``ext_tiering`` builds its matched-SLO baseline.
    """
    table = dict(classes if classes is not None else REQUEST_CLASSES)
    by_id = {request.request_id: request for request in arrivals}

    per_class: Dict[str, Dict[str, float]] = {
        name: {"completed": 0, "met": 0, "tokens_met": 0, "ttft_sum": 0.0}
        for name in table}
    for record in report.completed:
        request = by_id[record.request_id]
        name = classifier(request)
        rc = table[name]
        bucket = per_class[name]
        bucket["completed"] += 1
        bucket["ttft_sum"] += record.ttft_s
        if meets(record, request, rc.slo):
            bucket["met"] += 1
            bucket["tokens_met"] += request.output_len

    makespan = report.makespan_s
    counters = report.router_counters
    class_stats: List[ClassStats] = []
    for name, rc in table.items():
        bucket = per_class[name]
        completed = int(bucket["completed"])
        met = int(bucket["met"])
        class_stats.append(ClassStats(
            name=name, slo=rc.slo, completed=completed, met=met,
            attainment=met / completed if completed else 1.0,
            goodput=bucket["tokens_met"] / makespan if makespan else 0.0,
            mean_ttft_s=(bucket["ttft_sum"] / completed
                         if completed else 0.0),
            spills=counters.get(f"spill:{name}", 0),
            fallbacks=counters.get(f"fallback:{name}", 0),
        ))

    dollars_per_second = lambda price: price / (amortization_years
                                                * _SECONDS_PER_YEAR)
    tier_groups: Dict[Tier, List] = {}
    for stats in report.node_stats:
        tier_groups.setdefault(stats.tier, []).append(stats)
    tier_stats: List[TierStats] = []
    for tier, members in tier_groups.items():
        price = sum(price_rate(s.platform, s.price_usd) for s in members)
        tokens = sum(s.generated_tokens for s in members)
        busy = sum(s.busy_s for s in members)
        dpm = (dollars_per_second(price) * makespan / tokens * 1e6
               if tokens else math.inf)
        tier_stats.append(TierStats(
            tier=tier, replicas=len(members), price_usd=price,
            generated_tokens=tokens, busy_s=busy,
            utilization=(busy / (len(members) * makespan)
                         if makespan else 0.0),
            dollars_per_mtok=dpm))
    tier_stats.sort(key=lambda t: (t.price_usd / t.replicas, t.tier))

    total_completed = sum(s.completed for s in class_stats)
    total_met = sum(s.met for s in class_stats)
    return TieringReport(
        classes=class_stats,
        tiers=tier_stats,
        attainment=total_met / total_completed if total_completed else 1.0,
        goodput=sum(s.goodput for s in class_stats),
        dollars_per_mtok=report.dollars_per_million_tokens(
            amortization_years),
        spills=sum(s.spills for s in class_stats),
        fallbacks=sum(s.fallbacks for s in class_stats),
    )
