"""Pluggable admission scheduling: who gets the next batch slot.

A :class:`~repro.cluster.node.ReplicaNode` admits queued requests into
its continuous batch whenever a slot frees; *which* queued request it
admits is this module's policy seam. FCFS (the default, and the exact
behavior of nodes built without a scheduler) admits in readiness order;
the fairness schedulers pick by per-tenant service counters so a heavy
tenant's backlog cannot starve light tenants' requests — the
virtual-token-counter (VTC) discipline of fair LLM serving, plus a
weighted variant (WSC).

**Work-conserving contract.** The node's event-horizon fast-forward
coalesces pure-decode stretches under the assumption that
``pending[0].ready_s`` (the queue is kept sorted by readiness) is the
earliest instant the batch could change. A scheduler may reorder *which*
ready request is admitted, but it must admit **some** request whenever
one is ready and a slot is free — :meth:`AdmissionScheduler.pick` must
not return ``None`` in that situation. Every scheduler here is
work-conserving, which is also why scheduler choice composes with
fast-forward unchanged: decisions only happen at batch-membership
events.

Schedulers are per-node and stateful (service counters survive across
iterations); build one per replica via :func:`make_scheduler` — sharing
an instance between nodes would pool their counters.
"""

from typing import Dict, Mapping, Optional, Sequence

from repro.serving.arrivals import ArrivingRequest

#: Spelling accepted by :func:`make_scheduler` and the CLI.
SCHEDULER_NAMES = ("fcfs", "vtc", "wsc")


def _tenant(request: ArrivingRequest) -> int:
    """Tenant key: ``user_id`` for tenant-tagged requests, else one pool."""
    return getattr(request, "user_id", 0)


class AdmissionScheduler:
    """Queue-ordering policy for one replica's admission loop.

    Subclasses override :meth:`pick`; the bookkeeping hooks are no-ops
    by default. The node calls them as follows:

    * :meth:`on_arrival` — request routed to this node's queue,
    * :meth:`pick` — a slot is free; choose an index into *pending*
      (kept sorted by ``ready_s``) or return ``None`` if nothing is
      admissible at *now* (only legal when nothing is ready),
    * :meth:`on_admit` — the picked request entered the batch,
    * :meth:`on_finish` — a request completed and left the batch.
    """

    name = "base"

    def on_arrival(self, request: ArrivingRequest, now: float) -> None:
        """A request joined this node's queue."""

    def pick(self, pending: Sequence, now: float) -> Optional[int]:
        """Index of the next request to admit, or ``None`` if none ready.

        *pending* holds ``_QueuedRequest``-shaped entries (``ready_s``,
        ``request``) sorted ascending by ``ready_s``.
        """
        raise NotImplementedError

    def on_admit(self, request: ArrivingRequest, now: float) -> None:
        """The picked request entered the running batch."""

    def on_finish(self, request: ArrivingRequest) -> None:
        """A running request completed."""


class FCFSScheduler(AdmissionScheduler):
    """Readiness-order admission — the node's built-in behavior.

    Exists so ``scheduler="fcfs"`` is a real object with a name rather
    than a magic ``None``: it reproduces the legacy admission loop
    bit-exactly (pinned by the parity suite), because the queue is
    already sorted by readiness and the head is the FCFS choice.
    """

    name = "fcfs"

    def pick(self, pending: Sequence, now: float) -> Optional[int]:
        if pending and pending[0].ready_s <= now:
            return 0
        return None


class VirtualTokenCounterScheduler(AdmissionScheduler):
    """VTC fair admission: serve the tenant with the least service.

    Each tenant accrues a virtual-token counter — prefill tokens
    (weighted *prefill_weight*) charged at admission, decode tokens
    (weighted *decode_weight*, dearer per token) at completion — and a
    free slot goes to the ready request whose tenant has the smallest
    counter. Under backlog this converges to max-min fair token service
    regardless of demand skew.

    The *lift* rule keeps the counter meaningful across idleness: a
    tenant re-entering the system (no queued or running requests here)
    has its counter raised to the smallest counter among tenants
    currently in the system, so sitting idle banks no credit with which
    to later monopolize the batch.

    ``pick`` scans the ready prefix of the queue — O(ready backlog) per
    admission. Fine at the shallow queues of near-capacity operation;
    under sustained 2x overload with a 100k-request backlog you are
    measuring the backlog, not the scheduler (the fairness bench runs
    near capacity for exactly this reason).
    """

    name = "vtc"

    def __init__(self, prefill_weight: float = 1.0,
                 decode_weight: float = 2.0):
        self.prefill_weight = prefill_weight
        self.decode_weight = decode_weight
        self.counters: Dict[int, float] = {}
        self._in_system: Dict[int, int] = {}

    def _weight(self, tenant: int) -> float:
        """Per-tenant service weight; 1.0 for plain VTC."""
        return 1.0

    def on_arrival(self, request: ArrivingRequest, now: float) -> None:
        tenant = _tenant(request)
        count = self._in_system.get(tenant, 0)
        if count == 0:
            # Lift: a tenant returning from idle starts from the least
            # served active tenant, never from stale credit.
            active = [self.counters[t] for t, n in self._in_system.items()
                      if n > 0]
            floor = min(active) if active else 0.0
            self.counters[tenant] = max(self.counters.get(tenant, 0.0),
                                        floor)
        self._in_system[tenant] = count + 1

    def pick(self, pending: Sequence, now: float) -> Optional[int]:
        best_index: Optional[int] = None
        best_counter = 0.0
        for index, queued in enumerate(pending):
            if queued.ready_s > now:
                break  # sorted by ready_s: nothing further is ready
            counter = self.counters.get(_tenant(queued.request), 0.0)
            # Deterministic total order: counter, then readiness order
            # (the enumerate order already encodes ready_s then FIFO).
            if best_index is None or counter < best_counter:
                best_index = index
                best_counter = counter
        return best_index

    def on_admit(self, request: ArrivingRequest, now: float) -> None:
        tenant = _tenant(request)
        charge = (self.prefill_weight * request.input_len
                  / self._weight(tenant))
        self.counters[tenant] = self.counters.get(tenant, 0.0) + charge

    def on_finish(self, request: ArrivingRequest) -> None:
        tenant = _tenant(request)
        charge = (self.decode_weight * request.output_len
                  / self._weight(tenant))
        self.counters[tenant] = self.counters.get(tenant, 0.0) + charge
        remaining = self._in_system.get(tenant, 0) - 1
        if remaining <= 0:
            self._in_system.pop(tenant, None)
        else:
            self._in_system[tenant] = remaining


class WeightedServiceCounterScheduler(VirtualTokenCounterScheduler):
    """WSC: VTC with per-tenant service weights.

    A tenant of weight *w* accrues counter at ``1/w`` the rate per
    token, so the max-min allocation the scheduler converges to gives
    weight-proportional token service — the knob for paid tiers or
    app-level capacity contracts. Unlisted tenants get weight 1.0.
    """

    name = "wsc"

    def __init__(self, weights: Optional[Mapping[int, float]] = None,
                 prefill_weight: float = 1.0, decode_weight: float = 2.0):
        super().__init__(prefill_weight=prefill_weight,
                         decode_weight=decode_weight)
        weights = dict(weights or {})
        for tenant, weight in weights.items():
            if weight <= 0:
                raise ValueError(f"tenant weight must be > 0, got "
                                 f"{weight!r} for tenant {tenant}")
        self.weights = weights

    def _weight(self, tenant: int) -> float:
        return self.weights.get(tenant, 1.0)


def make_scheduler(spec: Optional[str],
                   weights: Optional[Mapping[int, float]] = None
                   ) -> Optional[AdmissionScheduler]:
    """Build a fresh per-node scheduler from its CLI spelling.

    ``None`` and ``"fcfs"`` both mean FCFS, but ``None`` returns ``None``
    (the node's built-in loop — zero overhead) while ``"fcfs"`` returns
    an explicit :class:`FCFSScheduler` (bit-identical results, exercised
    by the parity suite). *weights* only applies to ``"wsc"``.
    """
    if spec is None:
        return None
    if spec == "fcfs":
        return FCFSScheduler()
    if spec == "vtc":
        return VirtualTokenCounterScheduler()
    if spec == "wsc":
        return WeightedServiceCounterScheduler(weights=weights)
    raise ValueError(f"unknown admission scheduler {spec!r}; expected one "
                     f"of {SCHEDULER_NAMES}")
