"""Structured cluster lifecycle events.

The event loop used to keep a prose log (``List[str]``); these records
are the structured replacement. Each carries the machine-readable facts
(kind, time, node, details) and knows how to :meth:`render` itself into
exactly the strings the old log contained, which is what keeps
``ClusterReport.events`` backward compatible.
"""

import dataclasses
from typing import Mapping

#: The event kinds the cluster loop emits.
FAILURE = "failure"
DRAIN = "drain"
ONLINE = "online"
SCALE_UP = "scale_up"
SCALE_DOWN = "scale_down"


@dataclasses.dataclass(frozen=True)
class ClusterEvent:
    """One administrative event observed by the cluster event loop.

    Attributes:
        kind: One of ``failure``/``drain``/``online``/``scale_up``/
            ``scale_down``.
        time_s: Simulation time the event fired.
        node: Replica the event concerns.
        details: Kind-specific payload — ``failure`` carries ``requeued``
            and ``wasted_tokens``; ``online`` carries ``platform``;
            ``scale_up`` carries ``online_at_s``.
    """

    kind: str
    time_s: float
    node: str
    details: Mapping[str, object] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        """The human-readable log line for this event."""
        stamp = f"t={self.time_s:.2f}s"
        if self.kind == FAILURE:
            return (f"{stamp} {self.node} FAILED: "
                    f"{self.details['requeued']} requests requeued, "
                    f"{self.details['wasted_tokens']} tokens wasted")
        if self.kind == DRAIN:
            return f"{stamp} {self.node} draining"
        if self.kind == ONLINE:
            return f"{stamp} {self.node} online ({self.details['platform']})"
        if self.kind == SCALE_UP:
            return (f"{stamp} scale-up ordered ({self.node}, online at "
                    f"t={self.details['online_at_s']:.2f}s)")
        if self.kind == SCALE_DOWN:
            return f"{stamp} scale-down: {self.node} draining"
        raise ValueError(f"unknown cluster event kind {self.kind!r}")
