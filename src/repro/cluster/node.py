"""Iteration-steppable serving replica.

:class:`ReplicaNode` is the continuous-batching loop of
:meth:`repro.serving.scheduler.BatchingSimulator.run_continuous`
refactored into an event-steppable object: instead of consuming a whole
arrival trace in one call, the node exposes

* :meth:`submit` — route one request to the node's local queue,
* :meth:`next_event_time` — when the node's next scheduler iteration
  would start (``None`` while idle),
* :meth:`advance` — execute exactly one scheduler iteration
  (admissions, retirements, one fused decode step), and
* :meth:`advance_to` — run every iteration starting strictly before a
  horizon, *fast-forwarding* stretches where the batch cannot change.

which is what a multi-replica event loop needs to interleave
heterogeneous nodes (:class:`repro.cluster.simulator.ClusterSimulator`).
``run_continuous`` itself drives a single node with the same
``advance_to``-at-each-arrival sequence the cluster loop uses, so the
single-node policy and a one-replica cluster produce bit-identical
per-request timings by construction.

One iteration is atomic: its admission prefills and decode step are
priced as a block and the node clock jumps to the block's end. A request
routed *into* the middle of an in-flight iteration is considered at the
next iteration boundary.

**Event-horizon fast-forward.** Between two external events (the next
arrival's readiness and the caller's horizon), a batch that admits
nothing and retires nothing is a pure decode run whose mean KV length
advances by exactly +1 per iteration — so the whole run prices in closed
form off the shared prefix-sum step-cost curves
(:class:`repro.engine.stepcost.DecodeCostTable`), emitting one coalesced
trace span per track instead of one per iteration. ``exact=True``
restores per-iteration stepping with unmemoized pricing; the two agree
on every report field to ≤1e-9 relative (pinned by the parity suite).

**Exact-mode flavors.** ``exact`` accepts three truthy spellings:
``True`` and ``"step"`` are the classic reference loop — every
iteration stepped and priced individually, no memo tables anywhere.
``"vectorized"`` keeps the reference property (prefills and
batch-boundary iterations still price scalar and unmemoized, nothing is
read from the shared :class:`~repro.engine.stepcost.DecodeCostTable`
registry) but prices each pure-decode stretch in one fresh
piecewise-affine series call
(:meth:`~repro.engine.executor.OperatorExecutor.time_decode_series`)
and finds the horizon cutoff with a numpy prefix-sum search — closing
most of the ~50x step-exact vs fast gap while remaining an independent
cross-check of the memoized fast path.
"""

import bisect
import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.admission import AdmissionScheduler
from repro.engine.backend import ExecutionBackend
from repro.engine.inference import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.serving.arrivals import ArrivingRequest
from repro.serving.scheduler import BatchingSimulator, CompletedRequest, _Running
from repro.trace.spans import replica_track, request_track
from repro.trace.tracer import NOOP_TRACER, Tracer


@dataclasses.dataclass(frozen=True)
class _QueuedRequest:
    """A routed request waiting for admission.

    ``ready_s`` is when the node may admit it: the arrival time for a
    normally routed request, or the requeue time for a request rescued
    from a failed node (its ``request.arrival_s`` stays original so TTFT
    keeps charging the lost time).
    """

    ready_s: float
    request: ArrivingRequest


class ReplicaNode:
    """One continuous-batching serving replica with a steppable clock.

    Args:
        name: Replica identifier within the fleet ("spr-0", "h100-0").
        platform: Device the replica runs on.
        model: Served model.
        max_batch: Maximum concurrent sequences.
        config: Engine configuration for CPU platforms.
        backend: Execution backend for this replica (quantized / TP /
            ...); ``None`` is plain BF16. Replicas in one fleet may use
            different backends — each prices through its own
            backend-keyed cost table, so fast-forward coalescing stays
            exact per replica.
        simulator: Pre-built cost model; built from the other arguments
            when omitted (the single-node runner passes its own).
        tracer: Span sink for this node's request/replica timeline; the
            default no-op discards everything (the cluster simulator
            re-points this at its own tracer when it adopts a node).
        exact: ``False`` (default) prices off the shared step-cost
            table and coalesces pure-decode runs. ``True`` / ``"step"``
            price every iteration individually with unmemoized cost
            primitives (the reference step loop). ``"vectorized"`` is
            the fast reference: same unmemoized scalar pricing at batch
            boundaries, but pure-decode stretches priced per-stretch
            with one closed-form series call instead of stepped.
        collect_gaps: Record per-iteration inter-token gaps (coalesced
            runs are expanded back into individual gaps). Off by default
            — a million-request fleet run should not grow an unused list.
        admission: Queue-ordering policy
            (:class:`~repro.cluster.admission.AdmissionScheduler`);
            ``None`` keeps the built-in FCFS loop untouched. Must be a
            fresh per-node instance (schedulers carry per-tenant service
            counters) and work-conserving — fast-forward coalescing
            assumes a ready request plus a free slot always admits.
        price_usd: Listing-price override for cost-aware routing and
            fleet $/Mtok accounting; ``None`` looks the platform up in
            :data:`repro.analysis.cost.LIST_PRICE_USD` (median fallback
            with a one-time warning for unknown devices).
    """

    def __init__(self, name: str, platform: Optional[Platform] = None,
                 model: Optional[ModelConfig] = None, max_batch: int = 8,
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG,
                 backend: Optional[ExecutionBackend] = None,
                 simulator: Optional[BatchingSimulator] = None,
                 tracer: Tracer = NOOP_TRACER,
                 exact: Union[bool, str] = False,
                 collect_gaps: bool = False,
                 admission: Optional[AdmissionScheduler] = None,
                 price_usd: Optional[float] = None):
        if simulator is None:
            if platform is None or model is None:
                raise ValueError("ReplicaNode needs platform+model or a "
                                 "pre-built BatchingSimulator")
            simulator = BatchingSimulator(platform, model, max_batch, config,
                                          backend)
        self.name = name
        self.tracer = tracer
        self.exact = exact
        self.collect_gaps = collect_gaps
        self.admission = admission
        self.price_usd = price_usd
        self._track = replica_track(name)
        self._sim = simulator
        self._cost = simulator.cost_table
        self.clock = 0.0
        self.pending: List[_QueuedRequest] = []
        self.running: List[_Running] = []
        self.completed: List[CompletedRequest] = []
        self.decode_gaps: List[float] = []
        self.generated_tokens = 0
        self.busy_s = 0.0
        self.iterations = 0
        self.peak_queue = 0
        self.draining = False
        self.active = True
        # Vectorized exact mode's estimate of one decode step's cost
        # near the node's current kv frontier — sizes how much of a
        # stretch to price, never what the priced steps cost.
        self._step_cost_hint: Optional[float] = None
        # Optional shard-merge hook (see repro.cluster.shard): when a
        # list is attached, every iteration that admits requests appends
        # one (iteration_start_s, admitted_count) entry. Admissions are
        # atomic per iteration, so per-request start stamps cannot
        # reconstruct when the fleet queue actually shrank — this can.
        self.admission_log: Optional[List[Tuple[float, int]]] = None

    # -- identification -------------------------------------------------------

    @property
    def platform(self) -> Platform:
        """Device this replica models."""
        return self._sim.platform

    @property
    def model(self) -> ModelConfig:
        """Model this replica serves."""
        return self._sim.model

    @property
    def max_batch(self) -> int:
        """Maximum concurrent sequences."""
        return self._sim.max_batch

    @property
    def backend_label(self) -> str:
        """Execution-backend label ("bf16" for the plain default)."""
        backend = getattr(self._sim, "backend", None)
        return backend.label if backend is not None else "bf16"

    @property
    def tier(self) -> Tuple[str, str, str]:
        """The (model, platform, backend) triple this replica serves.

        Two replicas with equal tiers are interchangeable to the tiered
        router: same cost table, same capability, same price class.
        """
        return (self.model.name, self.platform.name, self.backend_label)

    @property
    def cost_table(self):
        """The shared :class:`~repro.engine.stepcost.DecodeCostTable`.

        Exposed for steady-state analyses (the fluid solver) that price
        off the same memoized primitives the node executes with.
        """
        return self._cost

    @property
    def scheduler_name(self) -> str:
        """Admission policy spelling ("fcfs" for the built-in loop)."""
        return self.admission.name if self.admission is not None else "fcfs"

    # -- routing-facing state -------------------------------------------------

    @property
    def has_work(self) -> bool:
        """Whether any queued or running request remains."""
        return bool(self.pending or self.running)

    @property
    def queue_len(self) -> int:
        """Requests routed here but not yet admitted."""
        return len(self.pending)

    @property
    def outstanding_tokens(self) -> int:
        """Prompt + remaining output tokens across queued and running."""
        queued = sum(q.request.input_len + q.request.output_len
                     for q in self.pending)
        running = sum(seq.request.input_len
                      + (seq.request.output_len - seq.generated)
                      for seq in self.running)
        return queued + running

    def prefill_cost_s(self, input_len: int) -> float:
        """This replica's single-sequence prefill time for a prompt.

        Always priced off the shared step-cost table (bit-identical to
        the direct primitive, memoized) so routing decisions stay the
        same in exact and fast modes.
        """
        return self._cost.prefill_time(1, input_len)

    def decode_cost_s(self, input_len: int, output_len: int) -> float:
        """Single-sequence decode-phase estimate (mid-KV iteration cost)."""
        steps = max(0, output_len - 1)
        if steps == 0:
            return 0.0
        mid_kv = input_len + output_len // 2
        return steps * self._cost.step_time(1, mid_kv)

    def backlog_s(self, now: float) -> float:
        """Projected work ahead of a request routed at *now*.

        The in-flight iteration's remainder, plus every queued prompt's
        prefill, plus the running set's remaining decode iterations at
        the current batch geometry. An estimate (the true schedule
        depends on future admissions), but deterministic and computed
        with the same cost primitives the node executes with.
        """
        backlog = max(0.0, self.clock - now)
        backlog += sum(self.prefill_cost_s(q.request.input_len)
                       for q in self.pending)
        if self.running:
            remaining = max(seq.request.output_len - seq.generated
                            for seq in self.running)
            mean_kv = int(sum(seq.kv_len for seq in self.running)
                          / len(self.running))
            backlog += remaining * self._cost.step_time(
                len(self.running), max(1, mean_kv))
        return backlog

    # -- cost primitives (exact vs memoized) ----------------------------------

    def _prefill_cost(self, input_len: int) -> float:
        if self.exact:
            return self._sim._prefill_time(1, input_len)
        return self._cost.prefill_time(1, input_len)

    def _prefill_legs(self, input_len: int):
        if self.exact:
            return self._sim._prefill_split(1, input_len)
        return self._cost.prefill_split(1, input_len)

    def _iteration_cost(self, batch: int, mean_kv: int) -> float:
        if self.exact:
            return self._sim._decode_iteration_time(batch, mean_kv)
        return self._cost.step_time(batch, mean_kv)

    def _iteration_legs(self, batch: int, mean_kv: int):
        if self.exact:
            return self._sim._decode_split(batch, mean_kv)
        return self._cost.step_split(batch, mean_kv)

    # -- event-loop interface -------------------------------------------------

    def submit(self, request: ArrivingRequest,
               ready_s: Optional[float] = None) -> None:
        """Queue *request*; admissible from ``ready_s`` (default arrival)."""
        if ready_s is None:
            ready_s = request.arrival_s
        entry = _QueuedRequest(ready_s=max(ready_s, request.arrival_s),
                               request=request)
        # Keep the queue ordered by readiness; stable for equal stamps.
        keys = [q.ready_s for q in self.pending]
        self.pending.insert(bisect.bisect_right(keys, entry.ready_s), entry)
        self.peak_queue = max(self.peak_queue, len(self.pending))
        if self.admission is not None:
            self.admission.on_arrival(request, entry.ready_s)

    def next_event_time(self) -> Optional[float]:
        """Start time of the next scheduler iteration; None while idle."""
        if self.running:
            return self.clock
        if self.pending:
            return max(self.clock, self.pending[0].ready_s)
        return None

    def _pop_admission(self) -> Optional[_QueuedRequest]:
        """Remove and return the next request to admit, or ``None``.

        Only called when the head of the (readiness-sorted) queue is
        ready and a slot is free, so the built-in FCFS path is exactly
        the legacy ``pending.pop(0)``. With a scheduler attached, the
        scheduler chooses among the ready prefix; ``None`` from a
        (contract-violating, non-work-conserving) scheduler falls back
        to admitting nothing this iteration.
        """
        if self.admission is None:
            return self.pending.pop(0)
        index = self.admission.pick(self.pending, self.clock)
        if index is None:
            return None
        return self.pending.pop(index)

    def advance(self, now: Optional[float] = None) -> List[CompletedRequest]:
        """Run one scheduler iteration; return requests completed by it.

        The iteration replays ``run_continuous``'s loop body exactly:
        admit every ready request up to capacity (each paying its prefill
        serially, stalling already-running sequences), retire finished
        sequences, then run one fused decode step for the running set.
        *now* is advisory (the cluster loop's current time); the
        iteration actually starts at :meth:`next_event_time`.
        """
        start = self.next_event_time()
        if start is None:
            return []
        self.clock = start
        tracer = self.tracer
        stall = 0.0
        admitted = 0
        while (self.pending and len(self.running) < self.max_batch
               and self.pending[0].ready_s <= self.clock):
            queued = self._pop_admission()
            if queued is None:
                break
            admitted += 1
            request = queued.request
            start_s = self.clock
            if self.admission is not None:
                self.admission.on_admit(request, start_s)
            prefill = self._prefill_cost(request.input_len)
            self.clock += prefill
            self.busy_s += prefill
            if self.running:
                stall += prefill
            self.running.append(_Running(request=request, start_s=start_s,
                                         first_token_s=self.clock,
                                         generated=1,
                                         last_event_s=self.clock))
            if tracer.enabled:
                # queue_wait starts at ready_s (== arrival for normal
                # routes, the requeue stamp for failure-rescued work) so
                # a requeued request's spans stay non-overlapping.
                track = request_track(request.request_id)
                tracer.span(track, "queue_wait", queued.ready_s, start_s,
                            category="request", args={"replica": self.name})
                compute_s, memory_s = self._prefill_legs(request.input_len)
                tracer.span(track, "prefill", start_s, self.clock,
                            category="request",
                            args={"replica": self.name,
                                  "input_len": request.input_len,
                                  "compute_s": compute_s,
                                  "memory_s": memory_s})
                tracer.span(self._track, "prefill", start_s, self.clock,
                            category="replica",
                            args={"request_id": request.request_id,
                                  "input_len": request.input_len,
                                  "batch_size": len(self.running),
                                  "compute_s": compute_s,
                                  "memory_s": memory_s})
        if admitted and self.admission_log is not None:
            self.admission_log.append((start, admitted))
        completed_now: List[CompletedRequest] = []
        # Most iterations retire nobody; scan before paying _retire's
        # list rebuild.
        retired: Sequence[_Running] = ()
        for seq in self.running:
            if seq.done:
                self.running, retired = BatchingSimulator._retire(
                    self.running, self.clock)
                break
        for seq in retired:
            record = BatchingSimulator._complete(seq, self.clock)
            self.completed.append(record)
            completed_now.append(record)
            self.generated_tokens += seq.request.output_len
            if self.admission is not None:
                self.admission.on_finish(seq.request)
            if tracer.enabled:
                track = request_track(seq.request.request_id)
                if self.clock > seq.last_event_s:
                    # Retirement happens at the next iteration boundary;
                    # admission prefills in that iteration delay it.
                    tracer.span(track, "finalize", seq.last_event_s,
                                self.clock, category="request",
                                args={"replica": self.name})
                tracer.span(track, "request", record.arrival_s,
                            record.finish_s, category="request",
                            args={"replica": self.name,
                                  "input_len": seq.request.input_len,
                                  "output_len": seq.request.output_len})
        if self.running:
            total_kv = 0
            for seq in self.running:
                total_kv += seq.request.input_len + seq.generated
            mean_kv = int(total_kv / len(self.running))
            iteration = self._iteration_cost(len(self.running), mean_kv)
            decode_start = self.clock
            self.clock += iteration
            self.busy_s += iteration
            if self.collect_gaps:
                self.decode_gaps.append(stall + iteration)
            if tracer.enabled:
                compute_s, memory_s = self._iteration_legs(
                    len(self.running), mean_kv)
                tracer.span(self._track, "decode", decode_start, self.clock,
                            category="replica",
                            args={"batch_size": len(self.running),
                                  "mean_kv": mean_kv,
                                  "compute_s": compute_s,
                                  "memory_s": memory_s})
                tracer.counter(self._track, "batch_size", decode_start,
                               len(self.running))
            for seq in self.running:
                seq.generated += 1
                if tracer.enabled:
                    # The token span starts at this sequence's previous
                    # token (covering any admission-prefill stall), so a
                    # request's decode spans tile first-token→last-token.
                    tracer.span(request_track(seq.request.request_id),
                                f"decode[{seq.generated - 1}]",
                                seq.last_event_s, self.clock,
                                category="request",
                                args={"replica": self.name,
                                      "kv_len": seq.kv_len,
                                      "batch_size": len(self.running)})
                seq.last_event_s = self.clock
        self.iterations += 1
        return completed_now

    def advance_to(self, horizon: Optional[float] = None
                   ) -> List[CompletedRequest]:
        """Run every iteration starting strictly before *horizon*.

        ``None`` runs the node to completion. Iterations starting at or
        after the horizon are left for the caller's next call — the same
        strict ordering the cluster loop's admin-before-iteration
        tie-break gives per-iteration stepping.

        In the default (fast) mode, stretches where the batch provably
        cannot change — nothing admissible before the horizon, nobody
        finishing — are priced in one closed-form range lookup
        (:meth:`_fast_forward`) instead of stepped; with
        ``exact="vectorized"`` the same stretches are priced by a fresh
        per-stretch series call (no shared memo tables); with
        ``exact=True`` / ``"step"`` every iteration is stepped and
        priced individually.
        """
        completed: List[CompletedRequest] = []
        vectorized = self.exact == "vectorized"
        while True:
            start = self.next_event_time()
            if start is None or (horizon is not None and start >= horizon):
                return completed
            if vectorized:
                window = self._vectorized_steps(start, horizon)
                if window is not None:
                    self._fast_forward(*window)
                    continue
            elif not self.exact:
                steps, mean_kv = self._coalescible_steps(start, horizon)
                if steps >= 2:
                    batch = len(self.running)
                    if self.collect_gaps or self.tracer.enabled:
                        step_times = self._cost.step_times(batch, mean_kv,
                                                           mean_kv + steps)
                        split = lambda: self._cost.range_cost(
                            batch, mean_kv, mean_kv + steps)[1:]
                        self._fast_forward(steps, mean_kv, step_times, split)
                    else:
                        self._fast_forward_fused(batch, steps, mean_kv)
                    continue
            completed.extend(self.advance())

    def _coalescible_window(self, start: float, horizon: Optional[float]
                            ) -> Tuple[int, int, Optional[float]]:
        """(step limit, batch mean KV, time budget) of a pure-decode run.

        The limit is zero unless the running set is non-empty, nobody
        retires within the window (bounded by the closest sequence to
        finishing), and no admission can happen at or before the
        window's iterations begin. The budget is the time available
        against the earlier of *horizon* and the head-of-queue
        readiness (``None`` = unbounded); converting it to a step count
        is mode-specific — a prefix-curve binary search in fast mode, a
        numpy prefix-sum search in vectorized exact mode.
        """
        running = self.running
        if not running:
            return 0, 0, None
        limit = None
        total_kv = 0
        for seq in running:
            request = seq.request
            remaining = request.output_len - seq.generated
            if limit is None or remaining < limit:
                limit = remaining
            total_kv += request.input_len + seq.generated
        if limit < 2:
            return 0, 0, None
        batch = len(running)
        mean_kv = total_kv // batch
        if mean_kv < 1:
            mean_kv = 1
        bound = horizon
        if self.pending and batch < self.max_batch:
            ready = self.pending[0].ready_s
            if ready <= start:
                return 0, 0, None  # admissible right now: step normally
            if bound is None or ready < bound:
                bound = ready
        if bound is None:
            return limit, mean_kv, None
        return limit, mean_kv, bound - start

    def _coalescible_steps(self, start: float,
                           horizon: Optional[float]) -> Tuple[int, int]:
        """(pure-decode iterations runnable from *start*, batch mean KV).

        Fast-mode step counting: the window's time budget resolves to a
        step count with one binary search over the shared prefix-sum
        cost curve, using the invariant that a pure-decode run's mean KV
        length advances by exactly +1 per iteration (integer floor of a
        sum that grows by the batch size each step).
        """
        limit, mean_kv, budget = self._coalescible_window(start, horizon)
        if limit == 0:
            return 0, 0
        if budget is None:
            return limit, mean_kv
        return self._cost.steps_within(len(self.running), mean_kv,
                                       budget, limit), mean_kv

    def _vectorized_steps(self, start: float, horizon: Optional[float]):
        """Vectorized exact mode's coalescing window, or ``None`` to step.

        Prices the whole candidate stretch with one fresh
        ``time_decode_series`` call — the same closed-form
        piecewise-affine analysis the fast path's tables are built from,
        but per-stretch and unmemoized, so this mode never reads the
        shared table registry. The horizon cutoff is the count of
        iterations whose start offset (numpy prefix sum of the per-step
        times, the same left-to-right additions the step loop performs)
        lands strictly inside the budget — mirroring
        ``DecodeCostTable.steps_within``'s strict-start rule.
        """
        limit, mean_kv, budget = self._coalescible_window(start, horizon)
        if limit < 2:
            return None
        batch = len(self.running)
        if budget is None:
            priced = limit
        else:
            # Price only what the budget can plausibly consume,
            # estimating the step count from the last stretch's step
            # cost (a probe pricing when there is none yet). The
            # estimate only affects how much gets priced: a shortfall
            # re-prices a doubled range — always as one fresh series
            # from mean_kv, so the step values used are a consistent
            # single pricing.
            hint = self._step_cost_hint
            if hint is None:
                hint = self._sim._decode_series(batch, mean_kv,
                                                mean_kv + 1)[0][0]
            priced = min(limit, int(budget / hint) + 2)
        while True:
            times, compute, memory = self._sim._decode_series(
                batch, mean_kv, mean_kv + priced)
            if budget is None:
                steps = priced
                break
            starts = np.empty(priced)
            starts[0] = 0.0
            np.cumsum(times[:priced - 1], out=starts[1:])
            steps = int(np.searchsorted(starts, budget, side="left"))
            if steps < priced or priced == limit:
                break
            priced = min(limit, priced * 2)
        self._step_cost_hint = times[steps - 1]
        if steps < 2:
            return None
        split = lambda: (sum(compute[:steps]), sum(memory[:steps]))
        return steps, mean_kv, times[:steps], split

    def _fast_forward_fused(self, batch: int, steps: int,
                            mean_kv: int) -> None:
        """:meth:`_fast_forward` specialized for the no-observer case.

        With no gap collection and no tracer attached, nothing ever
        reads the per-step time list — so this path differences the
        shared prefix curve in place instead of materializing it. The
        step values and their addition order are identical to the list
        path (``prefix[kv] - prefix[kv - 1]``, accumulated
        left-to-right), keeping the clock bit-equal between the two.
        """
        prefix = self._cost.prefix_times(batch, mean_kv + steps)
        clock = self.clock
        busy = self.busy_s
        prev = prefix[mean_kv - 1]
        for cur in prefix[mean_kv:mean_kv + steps]:
            step_s = cur - prev
            clock += step_s
            busy += step_s
            prev = cur
        self.clock = clock
        self.busy_s = busy
        self.iterations += steps
        for seq in self.running:
            seq.generated += steps
            seq.last_event_s = clock

    def _fast_forward(self, steps: int, mean_kv: int,
                      step_times: Sequence[float],
                      split: Callable[[], Tuple[float, float]]) -> None:
        """Execute *steps* pure-decode iterations as one coalesced block.

        *step_times* is the block's per-iteration cost sequence (a
        prefix-curve slice in fast mode, a fresh series in vectorized
        exact mode) and *split* lazily supplies the block's
        (compute_s, memory_s) attribution legs — only evaluated while a
        recording tracer is attached. The clock (and busy time) advance
        by adding the step costs *one at a time*, in the same order the
        per-iteration loop would: a request's TTFT is a tiny difference
        of huge timestamps, so even the one-ulp-per-run drift of adding
        a range sum instead of the step sequence would amplify past 1e-9
        over a 100k-request trace. The float additions are two per step
        (into locals, stored once — same value sequence, same rounding)
        — the per-step work the fast path actually avoids is the
        *pricing*, which is three orders of magnitude dearer. The trace
        receives one replica ``decode`` span carrying ``steps`` and one
        request ``decode[a..b]`` span per sequence, so attribution still
        tiles each request's ``e2e_s``.
        """
        running = self.running
        batch = len(running)
        run_start = self.clock
        clock = run_start
        busy = self.busy_s
        for step_s in step_times:
            clock += step_s
            busy += step_s
        self.clock = clock
        self.busy_s = busy
        self.iterations += steps
        if self.collect_gaps:
            self.decode_gaps.extend(step_times)
        tracer = self.tracer
        if tracer.enabled:
            compute_s, memory_s = split()
            tracer.span(self._track, "decode", run_start, self.clock,
                        category="replica",
                        args={"batch_size": batch, "mean_kv": mean_kv,
                              "steps": steps, "coalesced": True,
                              "compute_s": compute_s,
                              "memory_s": memory_s})
            tracer.counter(self._track, "batch_size", run_start, batch)
        for seq in running:
            first = seq.generated
            seq.generated += steps
            if tracer.enabled:
                tracer.span(request_track(seq.request.request_id),
                            f"decode[{first}..{seq.generated - 1}]",
                            seq.last_event_s, self.clock,
                            category="request",
                            args={"replica": self.name,
                                  "kv_len": seq.kv_len,
                                  "batch_size": batch,
                                  "steps": steps})
            seq.last_event_s = self.clock

    # -- fleet lifecycle ------------------------------------------------------

    def drain(self) -> None:
        """Stop accepting new routes; in-flight work runs to completion."""
        self.draining = True

    def fail(self) -> Tuple[List[ArrivingRequest], int]:
        """Kill the node; return (requests to requeue, wasted tokens).

        Every queued and in-flight request is handed back for rerouting
        with its original arrival stamp (so TTFT keeps charging the lost
        time); tokens already generated by in-flight sequences are the
        wasted work.
        """
        self.active = False
        self.draining = True
        lost = [q.request for q in self.pending]
        lost += [seq.request for seq in self.running]
        wasted = sum(seq.generated for seq in self.running)
        self.pending.clear()
        self.running.clear()
        return lost, wasted
