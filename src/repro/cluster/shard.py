"""Sharded cluster simulation: replica groups in worker processes.

A fleet routed by :class:`~repro.cluster.router.ShardRouter` decomposes
into independent simulations, one per replica group: the router's door
is a pure function of the request id, each group's local policy only
ever observes its own replicas, and a replica's iteration timing depends
only on its own queue — so simulating each group alone, against its own
sub-stream of arrivals and its own slice of the failure/drain schedule,
runs exactly the iterations the global event loop would have run, at the
same timestamps (splitting a coalesced decode run at different horizon
boundaries is bit-identical; see
:meth:`repro.cluster.node.ReplicaNode._fast_forward`).
:func:`run_sharded` exploits that: worker processes (``multiprocessing``,
fork when available) simulate the groups from pickled
:class:`~repro.cluster.config.ReplicaSpec`\\ s, warm their per-process
memo caches up front (:func:`warm_caches`), and a deterministic merge
reassembles one :class:`~repro.cluster.metrics.ClusterReport` that is
bit-identical (integers, event stamps) to the single-process run for
any worker count.

**The merge protocol.** Every externally dispatched event owns a global
total-order key ``(time_s, rank, index)`` — rank is the single-process
loop's administrative-before-arrival tie-break
(:data:`~repro.cluster.simulator._RANK_SCHEDULED` <
:data:`~repro.cluster.simulator._RANK_ARRIVAL`) and index is the
event's position in the globally sorted schedule (scheduled events) or
the full arrival stream (arrivals). Within one group, scheduled events
dispatch in global sorted order and arrivals in stream order, so a
group run consumes its pre-computed key sequences in order
(:class:`ShardMergeLog`) and the parent merges per-group streams by
key: cluster events merge-sort directly; per-request records
concatenate per node in fleet order and stable-sort by finish time
(reproducing the single loop's sort); node stats reorder by fleet index
with utilization recomputed against the global makespan.

The fleet queue-depth timeline needs more than concatenation — its
depth at each dispatch sums *every* group's unadmitted queue, which no
single group observed. Each group therefore reports a delta log: its
own dispatches ``(key, group depth after)`` plus every admission
``(iteration start, count)`` (the hook
:attr:`~repro.cluster.node.ReplicaNode.admission_log`; admissions are
atomic per iteration, so per-request start stamps cannot stand in).
Replaying dispatches in key order while applying admissions strictly
earlier than the dispatch time reconstructs each group's queue length
exactly as the global loop's ``advance_fleet(now)`` (which runs
iterations starting strictly before ``now``) would have left it.
"""

import dataclasses
import gc
import heapq
import multiprocessing
import traceback
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.config import ClusterConfig
from repro.cluster.events import ClusterEvent
from repro.cluster.metrics import ClusterReport, NodeStats
from repro.cluster.router import ShardRouter
from repro.cluster.simulator import (
    _RANK_ARRIVAL,
    _RANK_SCHEDULED,
    ClusterSimulator,
    ProgressFn,
)
from repro.serving.arrivals import ArrivingRequest, _spec_ranges
from repro.serving.scheduler import BatchingSimulator, CompletedRequest

#: A global dispatch key: (time_s, rank, global index).
Key = Tuple[float, int, int]


class ShardMergeLog:
    """Stamps one group's dispatches with their global total-order keys.

    Built by the group runner with the group's key sequences — the
    global indices of its scheduled events (in globally sorted order)
    and of its arrivals (in stream order). The group's event loop
    reports each dispatch (:meth:`on_dispatch`) and each recorded
    cluster event (:meth:`on_event`); because dispatch order within a
    group equals global order restricted to the group, keys are simply
    consumed front to back.
    """

    def __init__(self, scheduled_indices: Iterable[int],
                 arrival_indices: "deque"):
        self._scheduled = deque(scheduled_indices)
        self._arrivals = arrival_indices
        #: (key, group queue depth after the dispatch), in key order.
        self.dispatches: List[Tuple[Key, int]] = []
        #: (key, event) for every recorded ClusterEvent, in key order.
        self.events: List[Tuple[Key, ClusterEvent]] = []
        self._pending_events: List[ClusterEvent] = []

    def on_event(self, event: ClusterEvent) -> None:
        """A cluster event recorded while dispatching; keyed next."""
        self._pending_events.append(event)

    def on_dispatch(self, rank: int, now: float, depth: int) -> None:
        """One event dispatched at *now*; assign its global key."""
        if rank == _RANK_SCHEDULED:
            index = self._scheduled.popleft()
        elif rank == _RANK_ARRIVAL:
            index = self._arrivals.popleft()
        else:
            raise RuntimeError(
                "sharded runs cannot dispatch autoscaler events "
                f"(rank {rank})")
        key = (now, rank, index)
        self.dispatches.append((key, depth))
        for event in self._pending_events:
            self.events.append((key, event))
        self._pending_events.clear()


@dataclasses.dataclass
class _GroupResult:
    """Everything a worker reports back for one replica group."""

    group: int
    indices: List[int]
    node_stats: List[NodeStats]
    completed_per_node: List[List[CompletedRequest]]
    dispatches: List[Tuple[Key, int]]
    admissions: List[Tuple[float, int]]
    events: List[Tuple[Key, ClusterEvent]]
    generated_tokens: int
    wasted_tokens: int
    requeued: int
    arrived: int
    #: The group-local routing policy's integer decision counters
    #: (e.g. tiered routed/spill/fallback counts); merged by summation.
    counters: Dict[str, int] = dataclasses.field(default_factory=dict)


#: Column layout for shipping CompletedRequest records between
#: processes. int64/float64 round-trip Python ints and floats
#: bit-exactly, and numpy arrays pickle as raw buffers — microseconds
#: for a column a dataclass-instance pickle would spend seconds on.
_COMPLETED_COLUMNS = (("request_id", np.int64), ("arrival_s", np.float64),
                      ("start_s", np.float64), ("first_token_s", np.float64),
                      ("finish_s", np.float64))


def _pack_result(result: _GroupResult) -> tuple:
    """Flatten a group result into numpy columns for the result queue.

    A large run's payload is dominated by per-request records and
    per-dispatch tuples; as object graphs they pickle one instance at a
    time, as columns they serialize buffer-at-once. Inverted bit-exactly
    by :func:`_unpack_result` in the parent.
    """
    completed_cols = []
    for completed in result.completed_per_node:
        count = len(completed)
        completed_cols.append(tuple(
            np.fromiter((getattr(record, field) for record in completed),
                        dtype, count)
            for field, dtype in _COMPLETED_COLUMNS))
    count = len(result.dispatches)
    dispatch_cols = (
        np.fromiter((key[0] for key, _ in result.dispatches),
                    np.float64, count),
        np.fromiter((key[1] for key, _ in result.dispatches),
                    np.int64, count),
        np.fromiter((key[2] for key, _ in result.dispatches),
                    np.int64, count),
        np.fromiter((depth for _, depth in result.dispatches),
                    np.int64, count))
    count = len(result.admissions)
    admission_cols = (
        np.fromiter((time_s for time_s, _ in result.admissions),
                    np.float64, count),
        np.fromiter((admitted for _, admitted in result.admissions),
                    np.int64, count))
    return (result.group, result.indices, result.node_stats, completed_cols,
            dispatch_cols, admission_cols, result.events,
            result.generated_tokens, result.wasted_tokens, result.requeued,
            result.arrived, result.counters)


def _unpack_result(payload: tuple) -> _GroupResult:
    """Rebuild a :class:`_GroupResult` from :func:`_pack_result` columns."""
    (group, indices, node_stats, completed_cols, dispatch_cols,
     admission_cols, events, generated_tokens, wasted_tokens, requeued,
     arrived, counters) = payload
    completed_per_node = [
        [CompletedRequest(*row) for row in zip(*(col.tolist()
                                                 for col in cols))]
        for cols in completed_cols]
    d_time, d_rank, d_index, d_depth = (col.tolist()
                                        for col in dispatch_cols)
    dispatches = [((time_s, rank, index), depth)
                  for time_s, rank, index, depth
                  in zip(d_time, d_rank, d_index, d_depth)]
    admissions = list(zip(admission_cols[0].tolist(),
                          admission_cols[1].tolist()))
    return _GroupResult(group=group, indices=indices, node_stats=node_stats,
                        completed_per_node=completed_per_node,
                        dispatches=dispatches, admissions=admissions,
                        events=events, generated_tokens=generated_tokens,
                        wasted_tokens=wasted_tokens, requeued=requeued,
                        arrived=arrived, counters=counters)


def warm_caches(config: ClusterConfig, kv_horizon: int = 256) -> None:
    """Warm this process's pricing memo caches for *config*'s fleet.

    Memo tables — op-graph construction, GEMM-efficiency interpolation,
    and the :class:`~repro.engine.stepcost.DecodeCostTable` prefix
    curves — are **per process**: a freshly forked/spawned worker starts
    cold, and the first events it dispatches would pay the build cost,
    skewing shard timing. Workers call this on startup: for each
    distinct replica flavor in the fleet it builds the cost model and
    prices one decode series per batch size out to *kv_horizon*, which
    populates the shared table registry and every cache underneath it.
    (Prefill memos stay lazy — they are keyed by request-specific prompt
    lengths.) Cheap when the caches are already warm, so calling it in
    an already-hot parent is harmless.
    """
    seen = set()
    for spec in config.replicas:
        key = (spec.platform.name, spec.model.name,
               spec.backend.label if spec.backend is not None else None,
               spec.max_batch)
        if key in seen:
            continue
        seen.add(key)
        simulator = BatchingSimulator(spec.platform, spec.model,
                                      spec.max_batch, spec.config,
                                      spec.backend)
        table = simulator.cost_table
        for batch in range(1, spec.max_batch + 1):
            table.step_times(batch, 1, 1 + kv_horizon)


def _warmup_horizon(arrivals_by_group: Dict[int, object]) -> int:
    """The KV horizon that covers every request in the workload.

    Warming the decode-cost curves out to the longest request's final
    context length means a forked worker never extends a curve mid-run —
    extension is per-process work, and with W workers the same segment
    would otherwise be rebuilt W times. Materialized partitions are
    scanned for the true maximum; splittable stream specs are read off
    their shape ranges; defaults fall back to :func:`warm_caches`'s
    stock horizon.
    """
    horizon = 0
    for entries in arrivals_by_group.values():
        if hasattr(entries, "shard"):
            input_range, output_range = _spec_ranges(
                getattr(entries, "spec", None))
            horizon = max(horizon, input_range[1] + output_range[1])
        else:
            for _, request in entries:
                length = request.input_len + request.output_len
                if length > horizon:
                    horizon = length
    return horizon or 256


def _group_stream(arrivals: object, group: int, num_groups: int,
                  positions: "deque") -> Iterator[ArrivingRequest]:
    """The group's arrival sub-stream, recording global positions.

    *arrivals* is either a list of ``(position, request)`` pairs the
    parent partitioned, or a splittable stream spec (an object with a
    ``shard(group, num_groups)`` method whose generated requests are
    numbered by stream position, e.g.
    :class:`repro.workloads.streams.ShardableStream`) the worker
    regenerates locally. Each yielded request's global stream position
    is appended to *positions* just before the yield — the simulator
    buffers at most one unrouted arrival, and dispatches them in yield
    order, so the merge log pops positions in lock-step.
    """
    if hasattr(arrivals, "shard"):
        for request in arrivals.shard(group, num_groups):
            positions.append(request.request_id)
            yield request
    else:
        for position, request in arrivals:
            positions.append(position)
            yield request


def _run_group(config: ClusterConfig, router: ShardRouter, group: int,
               schedule: Sequence[Tuple[int, object]], arrivals: object,
               exact: object, progress: Optional[ProgressFn],
               progress_every: int) -> _GroupResult:
    """Simulate one replica group and package its merge streams."""
    indices = router.group_indices(config.size, group)
    nodes = config.build_subset(indices, exact=exact)
    names = {node.name for node in nodes}
    group_schedule = [(index, event) for index, event in schedule
                      if event.node in names]
    positions: deque = deque()
    merge_log = ShardMergeLog((index for index, _ in group_schedule),
                              positions)
    admissions: List[Tuple[float, int]] = []
    for node in nodes:
        node.admission_log = admissions
    simulator = ClusterSimulator(nodes, router.locals[group],
                                 events=[event for _, event
                                         in group_schedule],
                                 exact=exact)
    report = simulator.run(
        _group_stream(arrivals, group, router.num_groups, positions),
        progress=progress, progress_every=progress_every,
        merge_log=merge_log)
    # Nodes advance in fleet order, so one node's late-iteration
    # admissions can be appended after another's earlier ones; the
    # merge needs the group's admissions in time order (stable — equal
    # stamps only ever sum).
    admissions.sort(key=lambda entry: entry[0])
    return _GroupResult(
        group=group,
        indices=list(indices),
        node_stats=report.node_stats,
        completed_per_node=[node.completed for node in nodes],
        dispatches=merge_log.dispatches,
        admissions=admissions,
        events=merge_log.events,
        generated_tokens=report.generated_tokens,
        wasted_tokens=report.wasted_tokens,
        requeued=report.requeued_requests,
        arrived=len(report.completed),
        counters=report.router_counters,
    )


def _worker_main(worker: int, groups: Sequence[int], config: ClusterConfig,
                 router: ShardRouter, schedule: Sequence[Tuple[int, object]],
                 arrivals_by_group: Dict[int, object], exact: object,
                 progress_every: int, wants_progress: bool,
                 warm_kv_horizon: Optional[int],
                 queue: "multiprocessing.Queue") -> None:
    """Worker entry point: warm caches, run each owned group, report.

    *warm_kv_horizon* is None when the parent pre-warmed its caches
    before forking — the child inherits the hot memo tables as
    copy-on-write pages, so warming again would only duplicate the
    build work in every worker. Spawned workers (no inherited state)
    warm themselves out to the given horizon.
    """
    try:
        # Re-freeze covers the spawn path (fresh interpreter) and any
        # objects the parent allocated between its freeze and this
        # worker's fork (earlier workers' Process machinery).
        gc.freeze()
        if warm_kv_horizon is not None:
            warm_caches(config, kv_horizon=warm_kv_horizon)
        for group in groups:
            if wants_progress:
                def forward(events: int, time_s: float, completed: int,
                            _group: int = group) -> None:
                    queue.put(("progress", _group, events, time_s,
                               completed))
            else:
                forward = None
            result = _run_group(config, router, group, schedule,
                                arrivals_by_group[group], exact,
                                forward, progress_every)
            queue.put(("result", _pack_result(result)))
    except BaseException:
        queue.put(("error", worker, traceback.format_exc()))


def _merged_timeline(results: Sequence[_GroupResult]
                     ) -> List[Tuple[float, int]]:
    """Reconstruct the fleet queue-depth timeline from group delta logs.

    Replays every dispatch in global key order. Before each dispatch at
    time ``t``, admissions with iteration start strictly before ``t``
    are applied (the global loop's ``advance_fleet`` would have run
    them); the dispatching group's depth then snaps to its reported
    post-dispatch value, which folds in that dispatch's own submits,
    failure clears, and requeues.
    """
    dispatches = heapq.merge(*[
        [(key, result.group, depth) for key, depth in result.dispatches]
        for result in results])
    admission_stream = heapq.merge(*[
        [(time_s, result.group, count)
         for time_s, count in result.admissions]
        for result in results])
    depths = {result.group: 0 for result in results}
    total = 0
    head = next(admission_stream, None)
    timeline: List[Tuple[float, int]] = []
    for key, group, depth_after in dispatches:
        now = key[0]
        while head is not None and head[0] < now:
            _, admitted_group, count = head
            depths[admitted_group] -= count
            total -= count
            head = next(admission_stream, None)
        total += depth_after - depths[group]
        depths[group] = depth_after
        timeline.append((now, total))
    return timeline


def _merge_reports(results: List[_GroupResult], router_name: str,
                   fleet_size: int) -> ClusterReport:
    """Combine per-group results into the global ClusterReport."""
    by_index: Dict[int, Tuple[NodeStats, List[CompletedRequest]]] = {}
    for result in results:
        for index, stats, completed in zip(result.indices,
                                           result.node_stats,
                                           result.completed_per_node):
            by_index[index] = (stats, completed)
    ordered = [by_index[index] for index in range(fleet_size)]

    completed = [record for _, node_completed in ordered
                 for record in node_completed]
    completed.sort(key=lambda r: r.finish_s)
    arrived = sum(result.arrived for result in results)
    if not completed:
        raise ValueError("no arrivals to serve")
    if len(completed) != arrived:
        raise RuntimeError(f"cluster lost requests: {arrived} arrived, "
                           f"{len(completed)} completed")
    makespan = max(record.finish_s for record in completed)

    node_stats = [dataclasses.replace(stats,
                                      utilization=stats.busy_s / makespan)
                  for stats, _ in ordered]
    events = [event for _, event in heapq.merge(
        *[result.events for result in results],
        key=lambda pair: pair[0])]
    counters: Dict[str, int] = {}
    for result in results:
        for counter_key, value in result.counters.items():
            counters[counter_key] = counters.get(counter_key, 0) + value
    return ClusterReport(
        router=router_name,
        completed=completed,
        node_stats=node_stats,
        makespan_s=makespan,
        generated_tokens=sum(r.generated_tokens for r in results),
        wasted_tokens=sum(r.wasted_tokens for r in results),
        requeued_requests=sum(r.requeued for r in results),
        queue_depth_timeline=_merged_timeline(results),
        cluster_events=events,
        router_counters=counters,
    )


def _partition_arrivals(arrivals: object, router: ShardRouter
                        ) -> Dict[int, object]:
    """Per-group arrival payloads for the workers.

    A sequence is sorted (stable, by arrival time — the single-process
    loop's rule), enumerated for global stream positions, and doored;
    a splittable stream spec is handed to every group verbatim (each
    worker regenerates only its own slice).
    """
    if hasattr(arrivals, "shard"):
        return {group: arrivals for group in range(router.num_groups)}
    if not isinstance(arrivals, Sequence):
        raise TypeError(
            "run_sharded needs arrivals it can partition determinis"
            "tically: a sequence, or a splittable stream spec with a "
            ".shard(group, num_groups) method (e.g. ShardableStream); "
            f"got {type(arrivals).__name__}. Materialize one-shot "
            "iterators into a list first.")
    ordered = sorted(arrivals, key=lambda r: r.arrival_s)
    per_group: Dict[int, List[Tuple[int, ArrivingRequest]]] = {
        group: [] for group in range(router.num_groups)}
    for position, request in enumerate(ordered):
        per_group[router.door(request)].append((position, request))
    return per_group


def run_sharded(config: ClusterConfig, router: ShardRouter,
                arrivals: object, workers: int = 1,
                events: Sequence[object] = (), exact: object = False,
                progress: Optional[ProgressFn] = None,
                progress_every: int = 4096) -> ClusterReport:
    """Simulate *config*'s fleet over *arrivals*, sharded by group.

    ``workers=1`` is the current single-process path — one
    :class:`~repro.cluster.simulator.ClusterSimulator` over the whole
    fleet, with *router* routing globally. ``workers>1`` runs each
    replica group's independent simulation in a worker process and
    merges the results; the merged report is bit-identical (integer
    counters, event stamps, queue-depth timeline) to ``workers=1`` —
    the only permitted daylight is the ≤1e-9-relative float noise the
    fast/exact parity contract already allows, and in practice the
    per-group runs execute the very same float operations.

    Args:
        config: The fleet (pickled to workers spec-by-spec).
        router: A :class:`~repro.cluster.router.ShardRouter`; its group
            count fixes the sharding. (Autoscaling is rejected by
            construction — the router requires a static fleet.)
        arrivals: A sequence, or a splittable stream spec with
            ``shard(group, num_groups)`` (see
            :class:`repro.workloads.streams.ShardableStream`).
        workers: Worker process count; capped at the group count.
        events: :class:`~repro.cluster.simulator.NodeFailure` /
            :class:`~repro.cluster.simulator.NodeDrain` schedule.
        exact: Forwarded to every replica (``False`` / ``True`` /
            ``"step"`` / ``"vectorized"``).
        progress: Optional callback, fired with fleet-wide aggregates
            ``(events dispatched, merge-frontier time, completed)`` as
            shard progress reports arrive.
        progress_every: Per-group dispatch cadence of those reports.

    For the duration of the call the pre-existing heap is moved to the
    cyclic GC's permanent generation (``gc.freeze``/``gc.unfreeze``),
    so collections scan only run-allocated objects — and, under fork,
    never dirty the workers' copy-on-write pages.
    """
    if not isinstance(router, ShardRouter):
        raise TypeError("run_sharded requires a ShardRouter (stateless "
                        f"door + per-group locals), got {type(router)}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if config.size < router.num_groups:
        raise ValueError(f"fleet of {config.size} cannot fill "
                         f"{router.num_groups} shard groups")
    names = set(config.replica_names())
    for event in events:
        if event.node not in names:
            raise KeyError(f"no replica named {event.node!r} in the fleet")

    if workers == 1:
        fleet = config.build_fleet(exact=exact)
        stream = arrivals.full() if hasattr(arrivals, "full") else arrivals
        simulator = ClusterSimulator(fleet, router, events=list(events),
                                     exact=exact)
        # Million-record runs drown in cyclic-GC drag otherwise: every
        # full collection re-traverses the (huge, immortal-for-the-run)
        # arrival list and fleet. Freeze the pre-existing heap so
        # collections during the run only scan what the run allocates.
        gc.freeze()
        try:
            return simulator.run(stream, progress=progress,
                                 progress_every=progress_every)
        finally:
            gc.unfreeze()

    schedule = list(enumerate(sorted(events, key=lambda e: e.time_s)))
    arrivals_by_group = _partition_arrivals(arrivals, router)
    num_groups = router.num_groups
    workers = min(workers, num_groups)
    owned = {worker: [group for group in range(num_groups)
                      if group % workers == worker]
             for worker in range(workers)}

    forked = "fork" in multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if forked else None)
    horizon = _warmup_horizon(arrivals_by_group)
    if forked:
        # Fork-inherited memo tables are copy-on-write: one warmup here
        # serves every worker; each spawned worker warms itself instead.
        # Warming to the workload's full KV horizon matters: a curve
        # segment left cold would be rebuilt once per worker.
        warm_caches(config, kv_horizon=horizon)
    queue: multiprocessing.Queue = context.Queue()
    # Freeze the pre-existing heap (arrival partitions, warm memo
    # tables) before forking — the documented prefork idiom: a child's
    # cyclic-GC pass writes to the GC header of every inherited tracked
    # object, which would copy-on-write-duplicate the parent heap into
    # each worker and make collections scan millions of objects the
    # workers never free. Frozen state is inherited, so child
    # collections only ever scan what the child itself allocates. The
    # parent stays frozen through unpack/merge (those allocate millions
    # of young objects; collections during them should not re-traverse
    # the arrival partitions either) and unfreezes on the way out.
    gc.freeze()
    try:
        processes = []
        for worker, groups in owned.items():
            process = context.Process(
                target=_worker_main,
                args=(worker, groups, config, router, schedule,
                      {group: arrivals_by_group[group] for group in groups},
                      exact, progress_every, progress is not None,
                      None if forked else horizon, queue),
                daemon=True)
            process.start()
            processes.append(process)

        payloads: List[tuple] = []
        shard_state: Dict[int, Tuple[int, float, int]] = {}
        try:
            while len(payloads) < num_groups:
                message = queue.get()
                if message[0] == "result":
                    payload = message[1]
                    payloads.append(payload)
                    # Aggregates straight off the packed columns —
                    # result payloads are NOT unpacked here. Rebuilding
                    # a group's object graph costs seconds per million
                    # records, and doing it while sibling workers still
                    # compete for the CPU would stall them (and dirty
                    # shared copy-on-write pages); it waits until every
                    # worker has exited. Dispatches arrive in key
                    # order, so the last timestamp is the group's merge
                    # frontier.
                    times = payload[4][0]
                    shard_state[payload[0]] = (
                        int(times.shape[0]),
                        float(times[-1]) if times.shape[0] else 0.0,
                        payload[10])
                elif message[0] == "progress":
                    _, group, dispatched, time_s, completed = message
                    shard_state[group] = (dispatched, time_s, completed)
                    if progress is not None:
                        progress(sum(s[0] for s in shard_state.values()),
                                 min(s[1] for s in shard_state.values()),
                                 sum(s[2] for s in shard_state.values()))
                else:
                    _, worker, trace = message
                    raise RuntimeError(
                        f"shard worker {worker} failed:\n{trace}")
        finally:
            for process in processes:
                if process.is_alive() and len(payloads) < num_groups:
                    process.terminate()
            for process in processes:
                process.join()

        results = [_unpack_result(payload) for payload in payloads]
        report = _merge_reports(results, router.name, config.size)
    finally:
        gc.unfreeze()
    if progress is not None:
        progress(sum(len(r.dispatches) for r in results),
                 report.makespan_s, len(report.completed))
    return report
