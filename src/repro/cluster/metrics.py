"""Fleet-level metrics for cluster simulations.

A :class:`ClusterReport` aggregates what the event loop observed:
per-replica utilization, queue-depth timelines, requeue/wasted-work
accounting from failures, and the fleet's cost. SLO scoring reuses the
single-node machinery — :meth:`ClusterReport.to_serving_report` adapts
the fleet outcome so :func:`repro.serving.slo.attainment` and
:func:`~repro.serving.slo.goodput` apply unchanged.
"""

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.analysis.cost import price_rate
from repro.cluster.events import ClusterEvent
from repro.serving.arrivals import ArrivingRequest
from repro.serving.scheduler import CompletedRequest, ServingReport
from repro.serving.slo import SLO
from repro.serving.slo import attainment as _attainment
from repro.serving.slo import goodput as _goodput
from repro.utils.stats import mean

#: Amortization window for converting listing prices into $/token: the
#: 3-year depreciation schedule common for datacenter accelerators.
DEFAULT_AMORTIZATION_YEARS = 3.0
_SECONDS_PER_YEAR = 365.0 * 24 * 3600


@dataclasses.dataclass(frozen=True)
class NodeStats:
    """One replica's share of a cluster run.

    Attributes:
        name / platform: Replica identification.
        busy_s: Seconds spent prefilling or decoding.
        utilization: ``busy_s`` over the fleet makespan.
        iterations: Scheduler iterations executed.
        completed: Requests finished on this replica.
        generated_tokens: Tokens produced here.
        peak_queue: Deepest unadmitted queue observed.
        failed / drained: Lifecycle outcome flags.
        scheduler: Admission policy the replica ran ("fcfs" when none
            was configured — the built-in loop).
        model: Served model's display name ("" for legacy reports built
            before fleets mixed models).
        backend: Execution-backend label ("bf16" is the plain default).
        price_usd: Per-replica listing-price override
            (:class:`~repro.cluster.config.ReplicaSpec` ``price_usd``);
            ``None`` defers to the platform's recorded listing price.
    """

    name: str
    platform: str
    busy_s: float
    utilization: float
    iterations: int
    completed: int
    generated_tokens: int
    peak_queue: int
    failed: bool = False
    drained: bool = False
    scheduler: str = "fcfs"
    model: str = ""
    backend: str = "bf16"
    price_usd: Optional[float] = None

    @property
    def tier(self) -> Tuple[str, str, str]:
        """The (model, platform, backend) triple — the replica's tier."""
        return (self.model, self.platform, self.backend)


@dataclasses.dataclass(frozen=True)
class ClusterReport:
    """Outcome of one cluster simulation.

    Attributes:
        router: Routing policy name.
        completed: Per-request records, completion order (fleet-wide).
        node_stats: Per-replica accounting, fleet order.
        makespan_s: Last completion time.
        generated_tokens: Tokens produced fleet-wide (useful work only).
        wasted_tokens: Tokens generated then lost to node failures.
        requeued_requests: Requests rescued and rerouted after failures.
        queue_depth_timeline: (time, fleet unadmitted queue) samples,
            one per event-loop step.
        cluster_events: Structured log of failures, drains, and scalings
            (:class:`~repro.cluster.events.ClusterEvent`); the legacy
            string view is the :attr:`events` property.
        router_counters: Integer decision counters snapshotted from the
            routing policy (:meth:`repro.cluster.router.Router.counters`)
            — e.g. the tiered router's per-class routed/spill/fallback
            counts. Empty for policies that report none; sharded runs
            merge per-group counters by summation, so the counts are
            bit-identical for any worker count.

    ``completed`` is never empty: both runners raise ``ValueError`` on
    an empty arrival stream and the event loop refuses to lose requests,
    so the latency statistics below are always defined (and
    :mod:`repro.utils.stats` raises a descriptive error rather than
    guessing if a hand-built report breaks that invariant).
    """

    router: str
    completed: List[CompletedRequest]
    node_stats: List[NodeStats]
    makespan_s: float
    generated_tokens: int
    wasted_tokens: int
    requeued_requests: int
    queue_depth_timeline: List[Tuple[float, int]]
    cluster_events: List[ClusterEvent] = dataclasses.field(
        default_factory=list)
    router_counters: Dict[str, int] = dataclasses.field(
        default_factory=dict)

    @property
    def events(self) -> List[str]:
        """Human-readable log lines, rendered from the structured events.

        Backward-compatible view: each line is exactly what the event
        loop used to append to its prose log.
        """
        return [event.render() for event in self.cluster_events]

    @property
    def throughput(self) -> float:
        """Useful generated tokens per second over the makespan."""
        return self.generated_tokens / self.makespan_s

    @property
    def mean_ttft_s(self) -> float:
        """Fleet-wide mean arrival-to-first-token latency."""
        return mean([r.ttft_s for r in self.completed])

    @property
    def fleet_price_usd(self) -> float:
        """Listing-price total over every replica ever provisioned.

        Per-replica ``price_usd`` overrides win; otherwise the
        platform's recorded listing price, with unknown platforms
        priced at the median under a one-time warning
        (:func:`repro.analysis.cost.price_rate`).
        """
        return sum(price_rate(stats.platform, stats.price_usd)
                   for stats in self.node_stats)

    def to_serving_report(self) -> ServingReport:
        """Adapt to :class:`ServingReport` for the SLO machinery."""
        return ServingReport(
            policy=f"cluster/{self.router}",
            completed=self.completed,
            makespan_s=self.makespan_s,
            generated_tokens=self.generated_tokens,
        )

    def attainment(self, arrivals: List[ArrivingRequest], slo: SLO) -> float:
        """Fraction of requests meeting *slo* (fleet-wide)."""
        return _attainment(self.to_serving_report(), arrivals, slo)

    def goodput(self, arrivals: List[ArrivingRequest], slo: SLO) -> float:
        """Tokens/s counting only SLO-compliant requests."""
        return _goodput(self.to_serving_report(), arrivals, slo)

    def fairness(self, decisions, slo: Optional[SLO] = None,
                 weights=None, cutoff_s: Optional[float] = None,
                 abandoned_ttft_s: Optional[float] = None):
        """Per-tenant breakdown of this run (see
        :func:`repro.cluster.fairness.fairness_report`).

        *decisions* is the door's verdict stream — typically
        :meth:`repro.workloads.tenancy.TenantStream.decisions` — which
        carries throttled arrivals the completion records cannot know
        about. Imported lazily to keep the tenancy subsystem optional
        for plain anonymous-workload runs.
        """
        from repro.cluster.fairness import fairness_report
        return fairness_report(decisions, self.completed, slo=slo,
                               weights=weights, cutoff_s=cutoff_s,
                               abandoned_ttft_s=abandoned_ttft_s)

    def tiering(self, arrivals, classifier, classes=None,
                amortization_years: float = DEFAULT_AMORTIZATION_YEARS):
        """Per-class / per-tier breakdown of this run (see
        :func:`repro.cluster.tiering.tiering_report`).

        *classifier* is the deterministic class hook the workload and
        router agreed on (typically
        :meth:`repro.workloads.classes.ClassMixStream.classifier`);
        *arrivals* regenerates the request shapes the per-class SLO
        scoring needs. Imported lazily so class-free runs never touch
        the tiering subsystem.
        """
        from repro.cluster.tiering import tiering_report
        return tiering_report(self, arrivals, classifier, classes=classes,
                              amortization_years=amortization_years)

    def dollars_per_million_tokens(
            self,
            amortization_years: float = DEFAULT_AMORTIZATION_YEARS) -> float:
        """Fleet hardware cost per million useful tokens.

        Amortizes each replica's listing price over *amortization_years*,
        charges the makespan's worth of amortized dollars, and divides by
        the useful tokens produced — the purchasing-decision figure the
        provisioning planner ranks fleets by, now measured on a simulated
        trace instead of a capacity bound.
        """
        dollars_per_second = (self.fleet_price_usd
                              / (amortization_years * _SECONDS_PER_YEAR))
        return (dollars_per_second * self.makespan_s
                / self.generated_tokens * 1e6)
