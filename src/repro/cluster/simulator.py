"""Discrete-event, multi-replica serving simulation.

The event loop interleaves four event classes in global-time order:

1. **administrative events** — scheduled node failures and drains,
   autoscaler samples, and provisioned replicas coming online;
2. **request arrivals** — routed to a replica the moment they arrive;
3. **replica iterations** — each :class:`~repro.cluster.node.ReplicaNode`
   exposes when its next scheduler iteration starts, and the loop always
   advances the earliest one.

Ties resolve in that order (administrative before arrival before
iteration) so a failure at time *t* kills work before the fleet computes
at *t*, and an arrival at *t* is admissible by an iteration starting at
*t* — matching the single-node scheduler's admission rule, which is what
makes a one-replica cluster reproduce ``run_continuous`` exactly.

Failures requeue: a failed replica's queued and in-flight requests are
rerouted immediately with their original arrival stamps (TTFT keeps
charging the lost time) and their already-generated tokens are accounted
as wasted work. No request is ever dropped; if the *last* routable
replica fails the simulation raises instead of losing traffic.
"""

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.cluster.autoscaler import Autoscaler
from repro.cluster.events import (
    DRAIN,
    FAILURE,
    ONLINE,
    SCALE_DOWN,
    SCALE_UP,
    ClusterEvent,
)
from repro.cluster.metrics import ClusterReport, NodeStats
from repro.cluster.node import ReplicaNode
from repro.cluster.router import Router
from repro.serving.arrivals import ArrivingRequest
from repro.trace.spans import CLUSTER_TRACK, request_track
from repro.trace.tracer import NOOP_TRACER, Tracer

# Same-timestamp dispatch order (see module docstring).
_RANK_ADMIN = 0
_RANK_ARRIVAL = 1
_RANK_NODE = 2


@dataclasses.dataclass(frozen=True)
class NodeFailure:
    """Kill *node* at *time_s*; its requests requeue through the router."""

    time_s: float
    node: str


@dataclasses.dataclass(frozen=True)
class NodeDrain:
    """Stop routing to *node* at *time_s*; in-flight work completes."""

    time_s: float
    node: str


class ClusterSimulator:
    """Serves an arrival stream across a fleet of replicas.

    Args:
        nodes: Initial fleet (names must be unique).
        router: Routing policy.
        autoscaler: Optional queue-driven scaler; adds/drains replicas
            while the simulation runs.
        events: Scheduled :class:`NodeFailure` / :class:`NodeDrain`
            events.
        tracer: Timeline sink; replaces every adopted node's tracer so
            the whole fleet records into one trace. The default no-op
            discards everything.
    """

    def __init__(self, nodes: Sequence[ReplicaNode], router: Router,
                 autoscaler: Optional[Autoscaler] = None,
                 events: Sequence[object] = (),
                 tracer: Tracer = NOOP_TRACER):
        if not nodes:
            raise ValueError("a cluster needs at least one replica")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"replica names must be unique, got {names}")
        self.nodes: List[ReplicaNode] = list(nodes)
        self.router = router
        self.autoscaler = autoscaler
        self.scheduled = sorted(events, key=lambda e: e.time_s)
        self.tracer = tracer
        for node in self.nodes:
            node.tracer = tracer

    # -- helpers --------------------------------------------------------------

    def _node(self, name: str) -> ReplicaNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no replica named {name!r}; fleet: "
                       f"{[n.name for n in self.nodes]}")

    def _fleet_queue_len(self) -> int:
        return sum(node.queue_len for node in self.nodes if node.active)

    def _any_work(self) -> bool:
        return any(node.has_work for node in self.nodes if node.active)

    # -- event loop -----------------------------------------------------------

    def run(self, arrivals: Sequence[ArrivingRequest]) -> ClusterReport:
        """Simulate the fleet over *arrivals* and aggregate the outcome."""
        if not arrivals:
            raise ValueError("no arrivals to serve")
        queue = sorted(arrivals, key=lambda r: r.arrival_s)
        index = 0
        scheduled_index = 0
        provisioning: List[Tuple[float, ReplicaNode]] = []
        next_sample = (self.autoscaler.sample_interval_s
                       if self.autoscaler else None)
        timeline: List[Tuple[float, int]] = []
        log: List[ClusterEvent] = []
        tracer = self.tracer
        wasted_tokens = 0
        requeued = 0
        failed_names = set()

        def record(event: ClusterEvent) -> None:
            log.append(event)
            if tracer.enabled:
                tracer.instant(CLUSTER_TRACK, event.kind, event.time_s,
                               args={"node": event.node, **event.details})

        def route(request: ArrivingRequest, now: float,
                  ready_s: Optional[float] = None) -> None:
            node = self.router.select(request, self.nodes, now)
            node.submit(request, ready_s=ready_s)

        while True:
            candidates: List[Tuple[float, int, int, str]] = []
            if scheduled_index < len(self.scheduled):
                candidates.append((self.scheduled[scheduled_index].time_s,
                                   _RANK_ADMIN, 0, "scheduled"))
            if provisioning:
                ready = min(entry[0] for entry in provisioning)
                candidates.append((ready, _RANK_ADMIN, 1, "online"))
            if next_sample is not None and (index < len(queue)
                                            or self._any_work()
                                            or provisioning):
                candidates.append((next_sample, _RANK_ADMIN, 2, "sample"))
            if index < len(queue):
                candidates.append((queue[index].arrival_s, _RANK_ARRIVAL,
                                   0, "arrival"))
            for node_index, node in enumerate(self.nodes):
                if not node.active:
                    continue
                when = node.next_event_time()
                if when is not None:
                    candidates.append((when, _RANK_NODE, node_index, "node"))
            if not candidates:
                break
            now, _rank, which, kind = min(candidates)

            if kind == "scheduled":
                event = self.scheduled[scheduled_index]
                scheduled_index += 1
                target = self._node(event.node)
                if isinstance(event, NodeFailure):
                    if target.active:
                        lost, wasted = target.fail()
                        failed_names.add(target.name)
                        wasted_tokens += wasted
                        requeued += len(lost)
                        record(ClusterEvent(FAILURE, now, target.name,
                                            {"requeued": len(lost),
                                             "wasted_tokens": wasted}))
                        for request in sorted(lost,
                                              key=lambda r: r.arrival_s):
                            if tracer.enabled:
                                tracer.instant(
                                    request_track(request.request_id),
                                    "requeue", now,
                                    args={"from": target.name})
                            route(request, now, ready_s=now)
                else:
                    target.drain()
                    record(ClusterEvent(DRAIN, now, target.name))
            elif kind == "online":
                provisioning.sort(key=lambda entry: entry[0])
                _ready, node = provisioning.pop(0)
                node.tracer = tracer
                self.nodes.append(node)
                record(ClusterEvent(ONLINE, now, node.name,
                                    {"platform": node.platform.name}))
            elif kind == "sample":
                decision = self.autoscaler.decide(self.nodes,
                                                  len(provisioning))
                if decision == "up":
                    node = self.autoscaler.template.build(
                        self.autoscaler.next_name())
                    online_at = now + self.autoscaler.provisioning_lag_s
                    provisioning.append((online_at, node))
                    record(ClusterEvent(SCALE_UP, now, node.name,
                                        {"online_at_s": online_at}))
                elif decision == "down":
                    target = self.autoscaler.pick_drain_target(self.nodes)
                    target.drain()
                    record(ClusterEvent(SCALE_DOWN, now, target.name))
                next_sample = now + self.autoscaler.sample_interval_s
            elif kind == "arrival":
                route(queue[index], now)
                index += 1
            else:  # node iteration
                self.nodes[which].advance(now)
            depth = self._fleet_queue_len()
            timeline.append((now, depth))
            if tracer.enabled:
                tracer.counter(CLUSTER_TRACK, "fleet_queue_depth", now,
                               depth)

        completed = sorted(
            (record for node in self.nodes for record in node.completed),
            key=lambda r: r.finish_s)
        if len(completed) != len(queue):
            raise RuntimeError(
                f"cluster lost requests: {len(queue)} arrived, "
                f"{len(completed)} completed")
        makespan = max(record.finish_s for record in completed)
        node_stats = [
            NodeStats(
                name=node.name,
                platform=node.platform.name,
                busy_s=node.busy_s,
                utilization=node.busy_s / makespan,
                iterations=node.iterations,
                completed=len(node.completed),
                generated_tokens=node.generated_tokens,
                peak_queue=node.peak_queue,
                failed=node.name in failed_names,
                drained=node.draining and node.name not in failed_names,
            )
            for node in self.nodes
        ]
        return ClusterReport(
            router=self.router.name,
            completed=completed,
            node_stats=node_stats,
            makespan_s=makespan,
            generated_tokens=sum(node.generated_tokens
                                 for node in self.nodes),
            wasted_tokens=wasted_tokens,
            requeued_requests=requeued,
            queue_depth_timeline=timeline,
            cluster_events=log,
        )
