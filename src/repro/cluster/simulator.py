"""Discrete-event, multi-replica serving simulation.

The event loop pops *external* events off a binary heap in global-time
order — scheduled node failures and drains, autoscaler samples,
provisioned replicas coming online, and request arrivals — and, before
dispatching each one at time ``t``, brings every active replica forward
with :meth:`~repro.cluster.node.ReplicaNode.advance_to`\\ ``(t)`` (all
scheduler iterations starting strictly before ``t``). Replica iterations
therefore never enter the heap at all: a replica's whole pure-decode
stretch between two external events is priced in one closed-form range
lookup (the event-horizon fast-forward), which is what makes
million-request traces tractable.

Ties resolve administrative-before-arrival (scheduled, online, sample,
then arrival; insertion order within a class), and an iteration starting
exactly at ``t`` runs *after* the events at ``t`` — so a failure at ``t``
kills work before the fleet computes at ``t``, and an arrival at ``t``
is admissible by an iteration starting at ``t``, matching the
single-node scheduler's admission rule. That shared rule is what makes a
one-replica cluster reproduce ``run_continuous`` bit-exactly.

Arrivals may be a list *or* a lazy iterator (see
:mod:`repro.workloads.streams`): the loop holds at most one unrouted
arrival at a time, so a million-request trace never materializes as a
list. Iterator streams must already be time-ordered; sequences are
sorted.

Failures requeue: a failed replica's queued and in-flight requests are
rerouted immediately with their original arrival stamps (TTFT keeps
charging the lost time) and their already-generated tokens are accounted
as wasted work. No request is ever dropped; if the *last* routable
replica fails the simulation raises instead of losing traffic.

``exact=True`` runs the same event loop but steps every replica
iteration individually with unmemoized pricing — the reference the
parity suite and the cluster benchmark compare the fast path against.
"""

import dataclasses
import heapq
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.cluster.autoscaler import Autoscaler
from repro.cluster.events import (
    DRAIN,
    FAILURE,
    ONLINE,
    SCALE_DOWN,
    SCALE_UP,
    ClusterEvent,
)
from repro.cluster.metrics import ClusterReport, NodeStats
from repro.cluster.node import ReplicaNode
from repro.cluster.router import Router
from repro.serving.arrivals import ArrivingRequest
from repro.trace.spans import CLUSTER_TRACK, request_track
from repro.trace.tracer import NOOP_TRACER, Tracer

# Same-timestamp dispatch order (see module docstring): administrative
# events before arrivals; replica iterations at the same stamp run when
# the *next* event's advance_to sweeps past them.
_RANK_SCHEDULED = 0
_RANK_ONLINE = 1
_RANK_SAMPLE = 2
_RANK_ARRIVAL = 3

#: Progress callback signature: (events dispatched, simulated time,
#: requests completed so far).
ProgressFn = Callable[[int, float, int], None]


@dataclasses.dataclass(frozen=True)
class NodeFailure:
    """Kill *node* at *time_s*; its requests requeue through the router."""

    time_s: float
    node: str


@dataclasses.dataclass(frozen=True)
class NodeDrain:
    """Stop routing to *node* at *time_s*; in-flight work completes."""

    time_s: float
    node: str


class ClusterSimulator:
    """Serves an arrival stream across a fleet of replicas.

    Args:
        nodes: Initial fleet (names must be unique).
        router: Routing policy.
        autoscaler: Optional queue-driven scaler; adds/drains replicas
            while the simulation runs.
        events: Scheduled :class:`NodeFailure` / :class:`NodeDrain`
            events.
        tracer: Timeline sink; replaces every adopted node's tracer so
            the whole fleet records into one trace. The default no-op
            discards everything.
        exact: Step and price every replica iteration individually (the
            reference loop). The default fast-forwards pure-decode
            stretches; both modes agree on every report field to ≤1e-9
            relative.
    """

    def __init__(self, nodes: Sequence[ReplicaNode], router: Router,
                 autoscaler: Optional[Autoscaler] = None,
                 events: Sequence[object] = (),
                 tracer: Tracer = NOOP_TRACER,
                 exact: bool = False):
        if not nodes:
            raise ValueError("a cluster needs at least one replica")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"replica names must be unique, got {names}")
        self.nodes: List[ReplicaNode] = list(nodes)
        self.router = router
        self.autoscaler = autoscaler
        self.scheduled = sorted(events, key=lambda e: e.time_s)
        self.tracer = tracer
        self.exact = exact
        for node in self.nodes:
            node.tracer = tracer
            node.exact = exact

    # -- helpers --------------------------------------------------------------

    def _node(self, name: str) -> ReplicaNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no replica named {name!r}; fleet: "
                       f"{[n.name for n in self.nodes]}")

    def _fleet_queue_len(self) -> int:
        return sum(node.queue_len for node in self.nodes if node.active)

    def _any_work(self) -> bool:
        return any(node.has_work for node in self.nodes if node.active)

    def _completed_count(self) -> int:
        return sum(len(node.completed) for node in self.nodes)

    @staticmethod
    def _arrival_stream(arrivals) -> Iterator[ArrivingRequest]:
        """Arrivals as a time-ordered iterator (sorting sequences)."""
        if isinstance(arrivals, Sequence):
            return iter(sorted(arrivals, key=lambda r: r.arrival_s))
        return iter(arrivals)

    # -- event loop -----------------------------------------------------------

    def run(self, arrivals: Iterable[ArrivingRequest],
            progress: Optional[ProgressFn] = None,
            progress_every: int = 4096,
            merge_log: Optional[object] = None) -> ClusterReport:
        """Simulate the fleet over *arrivals* and aggregate the outcome.

        *arrivals* may be any iterable; an iterator is consumed lazily
        (one unrouted arrival buffered) and must be time-ordered. An
        optional *progress* callback fires every *progress_every*
        dispatched events with ``(events, simulated_time_s, completed)``.

        *merge_log* is the sharded runner's hook
        (:class:`repro.cluster.shard.ShardMergeLog`): when attached, the
        loop reports every dispatched event — ``(rank, time, fleet queue
        depth after)`` — so a per-group run can stamp its events with
        their *global* total-order keys for the deterministic merge.
        Only meaningful for autoscaler-free runs (the sharded runner
        rejects autoscaling before it gets here).
        """
        stream = self._arrival_stream(arrivals)
        first = next(stream, None)
        if first is None and merge_log is None:
            # A sharded sub-run (merge_log attached) may legitimately
            # own a group no arrival doors to; it still dispatches its
            # slice of the failure/drain schedule.
            raise ValueError("no arrivals to serve")

        heap: list = []
        serial = 0

        def push(time_s: float, rank: int, payload: object) -> None:
            nonlocal serial
            heapq.heappush(heap, (time_s, rank, serial, payload))
            serial += 1

        for event in self.scheduled:
            push(event.time_s, _RANK_SCHEDULED, event)
        if first is not None:
            push(first.arrival_s, _RANK_ARRIVAL, first)
        arrival_pending = first is not None
        last_arrival_s = first.arrival_s if first is not None else 0.0
        arrived = 1 if first is not None else 0
        provisioning = 0
        if self.autoscaler is not None:
            push(self.autoscaler.sample_interval_s, _RANK_SAMPLE, None)

        timeline: List[tuple] = []
        log: List[ClusterEvent] = []
        tracer = self.tracer
        wasted_tokens = 0
        requeued = 0
        failed_names = set()
        events_dispatched = 0

        def record(event: ClusterEvent) -> None:
            log.append(event)
            if merge_log is not None:
                merge_log.on_event(event)
            if tracer.enabled:
                tracer.instant(CLUSTER_TRACK, event.kind, event.time_s,
                               args={"node": event.node, **event.details})

        def route(request: ArrivingRequest, now: float,
                  ready_s: Optional[float] = None) -> None:
            node = self.router.select(request, self.nodes, now)
            node.submit(request, ready_s=ready_s)

        def advance_fleet(now: float) -> None:
            for node in self.nodes:
                if node.active:
                    node.advance_to(now)

        while heap:
            now, rank, _serial, payload = heapq.heappop(heap)
            advance_fleet(now)

            if rank == _RANK_SCHEDULED:
                event = payload
                target = self._node(event.node)
                if isinstance(event, NodeFailure):
                    if target.active:
                        lost, wasted = target.fail()
                        failed_names.add(target.name)
                        wasted_tokens += wasted
                        requeued += len(lost)
                        record(ClusterEvent(FAILURE, now, target.name,
                                            {"requeued": len(lost),
                                             "wasted_tokens": wasted}))
                        for request in sorted(lost,
                                              key=lambda r: r.arrival_s):
                            if tracer.enabled:
                                tracer.instant(
                                    request_track(request.request_id),
                                    "requeue", now,
                                    args={"from": target.name})
                            route(request, now, ready_s=now)
                else:
                    target.drain()
                    record(ClusterEvent(DRAIN, now, target.name))
            elif rank == _RANK_ONLINE:
                node = payload
                node.tracer = tracer
                node.exact = self.exact
                provisioning -= 1
                self.nodes.append(node)
                record(ClusterEvent(ONLINE, now, node.name,
                                    {"platform": node.platform.name}))
            elif rank == _RANK_SAMPLE:
                # Sampling stops for good once the fleet is certainly
                # done: no unrouted arrival, no queued/in-flight work as
                # of this instant, nothing provisioning.
                if not (arrival_pending or provisioning
                        or self._any_work()):
                    continue
                decision = self.autoscaler.decide(self.nodes, provisioning)
                if decision == "up":
                    node = self.autoscaler.template.build(
                        self.autoscaler.next_name())
                    online_at = now + self.autoscaler.provisioning_lag_s
                    provisioning += 1
                    push(online_at, _RANK_ONLINE, node)
                    record(ClusterEvent(SCALE_UP, now, node.name,
                                        {"online_at_s": online_at}))
                elif decision == "down":
                    target = self.autoscaler.pick_drain_target(self.nodes)
                    target.drain()
                    record(ClusterEvent(SCALE_DOWN, now, target.name))
                push(now + self.autoscaler.sample_interval_s,
                     _RANK_SAMPLE, None)
            else:  # arrival
                route(payload, now)
                nxt = next(stream, None)
                if nxt is None:
                    arrival_pending = False
                else:
                    if nxt.arrival_s < last_arrival_s:
                        raise ValueError(
                            "streaming arrivals must be time-ordered: "
                            f"{nxt.arrival_s} after {last_arrival_s}")
                    last_arrival_s = nxt.arrival_s
                    arrived += 1
                    push(nxt.arrival_s, _RANK_ARRIVAL, nxt)

            events_dispatched += 1
            depth = self._fleet_queue_len()
            timeline.append((now, depth))
            if merge_log is not None:
                merge_log.on_dispatch(rank, now, depth)
            if tracer.enabled:
                tracer.counter(CLUSTER_TRACK, "fleet_queue_depth", now,
                               depth)
            if progress is not None and \
                    events_dispatched % progress_every == 0:
                progress(events_dispatched, now, self._completed_count())

        # No external events remain: run every replica dry.
        for node in self.nodes:
            if node.active:
                node.advance_to(None)

        completed = sorted(
            (record for node in self.nodes for record in node.completed),
            key=lambda r: r.finish_s)
        if len(completed) != arrived:
            raise RuntimeError(
                f"cluster lost requests: {arrived} arrived, "
                f"{len(completed)} completed")
        makespan = max(record.finish_s for record in completed) \
            if completed else 0.0
        if progress is not None:
            progress(events_dispatched, makespan, len(completed))
        node_stats = [
            NodeStats(
                name=node.name,
                platform=node.platform.name,
                busy_s=node.busy_s,
                utilization=node.busy_s / makespan if makespan else 0.0,
                iterations=node.iterations,
                completed=len(node.completed),
                generated_tokens=node.generated_tokens,
                peak_queue=node.peak_queue,
                failed=node.name in failed_names,
                drained=node.draining and node.name not in failed_names,
                scheduler=node.scheduler_name,
                model=node.model.name,
                backend=node.backend_label,
                price_usd=node.price_usd,
            )
            for node in self.nodes
        ]
        return ClusterReport(
            router=self.router.name,
            completed=completed,
            node_stats=node_stats,
            makespan_s=makespan,
            generated_tokens=sum(node.generated_tokens
                                 for node in self.nodes),
            wasted_tokens=wasted_tokens,
            requeued_requests=requeued,
            queue_depth_timeline=timeline,
            cluster_events=log,
            router_counters=dict(getattr(self.router, "counters",
                                         dict)()),
        )
