"""Fleet layer: discrete-event, multi-replica serving simulation.

Everything above one node: steppable replicas wrapping the
continuous-batching scheduler, pluggable request routing (including
cost/SLO-aware heterogeneous routing), queue-driven autoscaling with
provisioning lag, and failure handling with requeue accounting. The
deployment question the paper's Section VI costs out — how many SPR
sockets vs. GPUs serve a load within SLO — answered by simulation
instead of ceiling division. Fleets routed by :class:`ShardRouter`
additionally decompose into independent replica groups that
:func:`run_sharded` simulates in worker processes and merges back
deterministically (see :mod:`repro.cluster.shard`).
"""

from repro.cluster.admission import (
    AdmissionScheduler,
    FCFSScheduler,
    VirtualTokenCounterScheduler,
    WeightedServiceCounterScheduler,
    make_scheduler,
)
from repro.cluster.autoscaler import Autoscaler, NodeTemplate
from repro.cluster.config import ClusterConfig, ReplicaSpec
from repro.cluster.events import ClusterEvent
from repro.cluster.fairness import (
    FairnessReport,
    TenantStats,
    fairness_report,
)
from repro.cluster.fluid import (
    ClassReport,
    FluidReport,
    FluidScenario,
    StationReport,
    saturation_rate,
    solve,
    solve_grid,
)
from repro.cluster.metrics import ClusterReport, NodeStats
from repro.cluster.node import ReplicaNode
from repro.cluster.router import (
    JoinShortestQueueRouter,
    LeastOutstandingTokensRouter,
    PhaseAwareRouter,
    RoundRobinRouter,
    Router,
    ShardRouter,
)
from repro.cluster.shard import run_sharded, warm_caches
from repro.cluster.simulator import ClusterSimulator, NodeDrain, NodeFailure
from repro.cluster.tiering import (
    ClassStats,
    TieredRouter,
    TieringReport,
    TierStats,
    tier_label,
    tiering_report,
)

__all__ = [
    "AdmissionScheduler",
    "Autoscaler",
    "ClassReport",
    "ClusterConfig",
    "ClassStats",
    "ClusterEvent",
    "ClusterReport",
    "ClusterSimulator",
    "FCFSScheduler",
    "FairnessReport",
    "FluidReport",
    "FluidScenario",
    "StationReport",
    "JoinShortestQueueRouter",
    "LeastOutstandingTokensRouter",
    "NodeDrain",
    "NodeFailure",
    "NodeStats",
    "NodeTemplate",
    "PhaseAwareRouter",
    "ReplicaNode",
    "ReplicaSpec",
    "RoundRobinRouter",
    "Router",
    "ShardRouter",
    "TenantStats",
    "TierStats",
    "TieredRouter",
    "TieringReport",
    "VirtualTokenCounterScheduler",
    "WeightedServiceCounterScheduler",
    "fairness_report",
    "make_scheduler",
    "run_sharded",
    "saturation_rate",
    "solve",
    "solve_grid",
    "tier_label",
    "tiering_report",
    "warm_caches",
]
