"""Fleet layer: discrete-event, multi-replica serving simulation.

Everything above one node: steppable replicas wrapping the
continuous-batching scheduler, pluggable request routing (including
cost/SLO-aware heterogeneous routing), queue-driven autoscaling with
provisioning lag, and failure handling with requeue accounting. The
deployment question the paper's Section VI costs out — how many SPR
sockets vs. GPUs serve a load within SLO — answered by simulation
instead of ceiling division.
"""

from repro.cluster.autoscaler import Autoscaler, NodeTemplate
from repro.cluster.config import ClusterConfig, ReplicaSpec
from repro.cluster.events import ClusterEvent
from repro.cluster.metrics import ClusterReport, NodeStats
from repro.cluster.node import ReplicaNode
from repro.cluster.router import (
    JoinShortestQueueRouter,
    LeastOutstandingTokensRouter,
    PhaseAwareRouter,
    RoundRobinRouter,
    Router,
)
from repro.cluster.simulator import ClusterSimulator, NodeDrain, NodeFailure

__all__ = [
    "Autoscaler",
    "ClusterConfig",
    "ClusterEvent",
    "ClusterReport",
    "ClusterSimulator",
    "JoinShortestQueueRouter",
    "LeastOutstandingTokensRouter",
    "NodeDrain",
    "NodeFailure",
    "NodeStats",
    "NodeTemplate",
    "PhaseAwareRouter",
    "ReplicaNode",
    "ReplicaSpec",
    "RoundRobinRouter",
    "Router",
]
