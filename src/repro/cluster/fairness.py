"""Per-tenant accounting: service, attainment, throttling, wasted work.

Fleet-level metrics (:mod:`repro.cluster.metrics`) answer "how fast was
the cluster"; this module answers "who got the capacity". It joins a
cluster run's completion records back to the tenant-tagged arrivals (by
``request_id`` — the completion side carries no tenant fields) and the
door's throttle verdicts, then reduces to per-tenant service and the
fleet's Jain fairness index.

**Service metric.** Fairness is scored on *weighted served tokens up to
a cutoff*: each completed request contributes
``(input_len + output_len) / weight``, with a request still in flight at
the cutoff contributing the elapsed fraction of its service
(``(cutoff - start) / (finish - start)``). The cutoff defaults to the
last arrival — after it, stragglers drain alone and every scheduler
trivially serves whoever is left, which would wash out the contention
window the schedulers actually differ on. Under skewed overload, FCFS
serves tenants proportionally to their (Zipf-skewed) demand — a low Jain
index on absolute service — while VTC/WSC converge to (weighted) max-min
allocations.
"""

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional

from repro.serving.scheduler import CompletedRequest
from repro.serving.slo import SLO, _meets
from repro.utils.stats import jain_index, mean
from repro.workloads.tenancy import TenantRequest
from repro.workloads.throttling import ThrottleDecision


@dataclasses.dataclass(frozen=True)
class TenantStats:
    """One tenant's share of a cluster run.

    Attributes:
        user_id: Tenant identity.
        weight: Service weight used in the fairness reduction.
        arrived / admitted / throttled: Door accounting. ``arrived ==
            admitted + throttled`` always.
        completed: Admitted requests that finished.
        demand_tokens: Input+output tokens across every arrival (what
            the tenant asked for, admitted or not).
        served_tokens: Weighted served tokens at the cutoff (see module
            docstring) — the fairness allocation.
        wasted_tokens: Output tokens the fleet generated for nothing on
            this tenant's behalf: aborted-interaction stages charged by
            the door, plus (when a patience bound is given) answers
            completed after the user abandoned the request.
        attainment: Fraction of this tenant's completed requests meeting
            the SLO; 0.0 when nothing completed (a fully throttled or
            fully starved tenant attained nothing).
        mean_ttft_s: Mean time-to-first-token over completions, ``None``
            when nothing completed.
    """

    user_id: int
    weight: float
    arrived: int
    admitted: int
    throttled: int
    completed: int
    demand_tokens: int
    served_tokens: float
    wasted_tokens: int
    attainment: float
    mean_ttft_s: Optional[float]


@dataclasses.dataclass(frozen=True)
class FairnessReport:
    """Per-tenant breakdown plus the fleet's fairness scalars.

    Attributes:
        tenants: Per-tenant stats, ordered by ``user_id``.
        jain_index: Jain's index over per-tenant ``served_tokens``
            (1.0 = perfectly fair, 1/n = one tenant got everything).
        throttle_rate: Door-refused fraction of all arrivals.
        wasted_tokens: Fleet total of wasted work (aborts + abandoned).
        cutoff_s: The service cutoff the allocations were measured at.
    """

    tenants: List[TenantStats]
    jain_index: float
    throttle_rate: float
    wasted_tokens: int
    cutoff_s: float

    def tenant(self, user_id: int) -> TenantStats:
        """Stats for one tenant (raises ``KeyError`` if unseen)."""
        for stats in self.tenants:
            if stats.user_id == user_id:
                return stats
        raise KeyError(f"no tenant {user_id} in this report")


def _served_fraction(record: CompletedRequest, cutoff: float) -> float:
    """Fraction of *record*'s service delivered by *cutoff*."""
    if record.finish_s <= cutoff:
        return 1.0
    if record.start_s >= cutoff:
        return 0.0
    span = record.finish_s - record.start_s
    if span <= 0.0:
        return 1.0
    return (cutoff - record.start_s) / span


def fairness_report(decisions: Iterable[ThrottleDecision],
                    completed: Iterable[CompletedRequest],
                    slo: Optional[SLO] = None,
                    weights: Optional[Mapping[int, float]] = None,
                    cutoff_s: Optional[float] = None,
                    abandoned_ttft_s: Optional[float] = None
                    ) -> FairnessReport:
    """Join door verdicts with completion records into per-tenant stats.

    *decisions* must cover every arrival (admitted and throttled — a
    :meth:`~repro.workloads.tenancy.TenantStream.decisions` pass);
    *completed* is any cluster/serving run's completion records, joined
    by ``request_id``. *slo* defaults to the library default; *weights*
    are the WSC weights (unlisted tenants weigh 1.0) so the fairness
    index measures weighted service. *cutoff_s* defaults to the last
    arrival time.

    *abandoned_ttft_s* is a patience bound: a completed request whose
    TTFT exceeded it is counted as *wasted* output tokens (the user
    walked away, but the engine generated the answer anyway — the waste
    an admission door exists to prevent). ``None`` disables the model,
    so without throttling and without patience every run reports zero
    waste.

    Raises a descriptive ``ValueError`` when the join produces no
    tenants or no admitted request ever completed — per-tenant fairness
    of a run that served nothing is undefined, matching the
    :mod:`repro.utils.stats` never-empty convention.
    """
    slo = slo or SLO()
    weights = dict(weights or {})
    by_id: Dict[int, CompletedRequest] = {
        record.request_id: record for record in completed}

    arrived: Dict[int, int] = {}
    admitted: Dict[int, int] = {}
    throttled: Dict[int, int] = {}
    demand: Dict[int, int] = {}
    wasted: Dict[int, int] = {}
    served: Dict[int, float] = {}
    ttfts: Dict[int, List[float]] = {}
    met: Dict[int, int] = {}
    finished: Dict[int, int] = {}
    last_arrival = 0.0
    matched: List[TenantRequest] = []

    for decision in decisions:
        request = decision.request
        user = request.user_id
        arrived[user] = arrived.get(user, 0) + 1
        demand[user] = (demand.get(user, 0)
                        + request.input_len + request.output_len)
        last_arrival = max(last_arrival, request.arrival_s)
        if decision.admitted:
            admitted[user] = admitted.get(user, 0) + 1
        else:
            throttled[user] = throttled.get(user, 0) + 1
            wasted[user] = wasted.get(user, 0) + decision.wasted_tokens
        record = by_id.get(request.request_id)
        if decision.admitted and record is not None:
            matched.append(request)
    if not arrived:
        raise ValueError(
            "fairness_report() over an empty decision stream is undefined "
            "— no arrivals means no tenants; check the workload before "
            "reading fairness statistics")
    if not matched:
        raise ValueError(
            "fairness_report() with zero completed requests is undefined — "
            "no admitted request finished (or the completion records do "
            "not join the arrival stream by request_id); check the run "
            "before reading fairness statistics")
    cutoff = cutoff_s if cutoff_s is not None else last_arrival

    for request in matched:
        user = request.user_id
        record = by_id[request.request_id]
        weight = weights.get(user, 1.0)
        tokens = request.input_len + request.output_len
        served[user] = (served.get(user, 0.0)
                        + tokens * _served_fraction(record, cutoff) / weight)
        ttfts.setdefault(user, []).append(record.ttft_s)
        finished[user] = finished.get(user, 0) + 1
        if _meets(record, request, slo):
            met[user] = met.get(user, 0) + 1
        if (abandoned_ttft_s is not None
                and record.ttft_s > abandoned_ttft_s):
            wasted[user] = wasted.get(user, 0) + request.output_len

    tenants: List[TenantStats] = []
    for user in sorted(arrived):
        done = finished.get(user, 0)
        tenants.append(TenantStats(
            user_id=user,
            weight=weights.get(user, 1.0),
            arrived=arrived[user],
            admitted=admitted.get(user, 0),
            throttled=throttled.get(user, 0),
            completed=done,
            demand_tokens=demand[user],
            served_tokens=served.get(user, 0.0),
            wasted_tokens=wasted.get(user, 0),
            attainment=met.get(user, 0) / done if done else 0.0,
            mean_ttft_s=mean(ttfts[user]) if user in ttfts else None,
        ))
    total_arrived = sum(arrived.values())
    total_throttled = sum(throttled.values())
    return FairnessReport(
        tenants=tenants,
        jain_index=jain_index([t.served_tokens for t in tenants]),
        throttle_rate=total_throttled / total_arrived,
        wasted_tokens=sum(wasted.values()),
        cutoff_s=cutoff,
    )
