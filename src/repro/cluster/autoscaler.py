"""Queue-driven fleet autoscaling with provisioning lag.

Real fleets cannot add capacity instantly: a scale-up decision is
followed by minutes of provisioning before the replica takes traffic.
The :class:`Autoscaler` models exactly that — it samples fleet pressure
on a fixed interval, requests a replica from its :class:`NodeTemplate`
when the unadmitted queue runs deep, and the cluster loop brings the
node online ``provisioning_lag_s`` later. Scale-down is graceful: the
least-loaded replica drains (finishes in-flight work, takes no new
routes) and leaves the fleet when empty.
"""

import dataclasses
import itertools
from typing import Optional, Sequence

from repro.cluster.node import ReplicaNode
from repro.engine.backend import ExecutionBackend
from repro.engine.inference import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.utils.validation import require_positive


@dataclasses.dataclass(frozen=True)
class NodeTemplate:
    """Recipe for replicas the autoscaler may add.

    Attributes:
        platform: Device of new replicas.
        model: Served model.
        max_batch: Per-replica batching limit.
        config: CPU engine configuration.
        backend: Execution backend for new replicas (``None`` = BF16).
    """

    platform: Platform
    model: ModelConfig
    max_batch: int = 8
    config: EngineConfig = DEFAULT_ENGINE_CONFIG
    backend: Optional[ExecutionBackend] = None

    def build(self, name: str) -> ReplicaNode:
        """Instantiate one replica from the template."""
        return ReplicaNode(name, self.platform, self.model,
                           self.max_batch, self.config, self.backend)


class Autoscaler:
    """Scales the fleet from queue depth, with provisioning lag.

    Args:
        template: Recipe for scale-up replicas.
        min_nodes / max_nodes: Fleet-size bounds.
        scale_up_queue_per_node: Add a replica when the fleet's
            unadmitted queue exceeds this many requests per active
            replica.
        scale_down_queue_per_node: Drain a replica when the *total*
            in-system load (queued + running) per active replica falls
            below this.
        provisioning_lag_s: Delay between the scale-up decision and the
            new replica taking traffic.
        sample_interval_s: How often fleet pressure is sampled.
    """

    def __init__(self, template: NodeTemplate,
                 min_nodes: int = 1, max_nodes: int = 8,
                 scale_up_queue_per_node: float = 4.0,
                 scale_down_queue_per_node: float = 0.5,
                 provisioning_lag_s: float = 30.0,
                 sample_interval_s: float = 5.0):
        require_positive(min_nodes, "min_nodes")
        require_positive(sample_interval_s, "sample_interval_s")
        if max_nodes < min_nodes:
            raise ValueError(f"max_nodes ({max_nodes}) must be >= "
                             f"min_nodes ({min_nodes})")
        if scale_down_queue_per_node >= scale_up_queue_per_node:
            raise ValueError("scale_down threshold must sit below scale_up")
        self.template = template
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.scale_up_queue_per_node = scale_up_queue_per_node
        self.scale_down_queue_per_node = scale_down_queue_per_node
        self.provisioning_lag_s = provisioning_lag_s
        self.sample_interval_s = sample_interval_s
        self._names = itertools.count()

    def next_name(self) -> str:
        """Fresh replica name ("auto-0", "auto-1", ...)."""
        return f"auto-{next(self._names)}"

    def decide(self, nodes: Sequence[ReplicaNode],
               provisioning: int) -> Optional[str]:
        """One sampling decision: ``"up"``, ``"down"``, or ``None``.

        *nodes* is the full fleet; *provisioning* counts replicas already
        ordered but not yet online (they dampen repeated scale-ups during
        the lag window).
        """
        active = [n for n in nodes if n.active and not n.draining]
        if not active:
            return "up" if provisioning == 0 else None
        queued = sum(n.queue_len for n in active)
        in_system = queued + sum(len(n.running) for n in active)
        size = len(active) + provisioning
        if (queued / len(active) > self.scale_up_queue_per_node
                and size < self.max_nodes):
            return "up"
        if (in_system / len(active) < self.scale_down_queue_per_node
                and len(active) > self.min_nodes and provisioning == 0):
            return "down"
        return None

    @staticmethod
    def pick_drain_target(nodes: Sequence[ReplicaNode]) -> ReplicaNode:
        """Least-loaded active replica (the cheapest one to retire)."""
        active = [n for n in nodes if n.active and not n.draining]
        return min(active, key=lambda n: n.outstanding_tokens)
