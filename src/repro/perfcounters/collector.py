"""Counter derivation from a simulated inference run.

:class:`CounterModel` wraps an :class:`~repro.engine.inference.InferenceSimulator`
and converts its per-phase statistics into :class:`CounterEstimates`.
"""

from repro.engine.inference import EngineConfig, DEFAULT_ENGINE_CONFIG, InferenceSimulator
from repro.engine.request import InferenceRequest
from repro.engine.results import InferenceResult
from repro.hardware.compute import EngineKind
from repro.hardware.interconnect import upi_link
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.perfcounters.counters import (
    BOOKKEEPING_FRACTION,
    CounterEstimates,
    FLOPS_PER_INSTRUCTION,
    LINE_BYTES,
    OPERAND_LOAD_FLOPS,
)


class CounterModel:
    """Estimates hardware counters for (model, request) on one platform.

    Args:
        platform: CPU platform (counters target the CPU figures; GPU runs
            are accepted but UPI/remote metrics degenerate to zero).
        config: Engine configuration (NUMA mode, core count).
    """

    def __init__(self, platform: Platform,
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG):
        self.platform = platform
        self.config = config
        self.simulator = InferenceSimulator(platform, config)

    def _flops_per_instruction(self) -> float:
        """FLOPs/instruction of the dominant GEMM engine."""
        kinds = {engine.kind for engine in self.platform.engines}
        if EngineKind.MATRIX in kinds:
            return FLOPS_PER_INSTRUCTION["matrix"]
        if EngineKind.GPU_TENSOR in kinds:
            return FLOPS_PER_INSTRUCTION["gpu_tensor"]
        return FLOPS_PER_INSTRUCTION["vector"]

    def estimate(self, model: ModelConfig,
                 request: InferenceRequest) -> CounterEstimates:
        """Run the simulation and derive counters for the whole request."""
        result = self.simulator.run(model, request)
        return self.from_result(result)

    def from_result(self, result: InferenceResult) -> CounterEstimates:
        """Derive counters from an existing simulation result."""
        total_flops = result.prefill.flops + result.decode.flops
        total_bytes = result.prefill.total_bytes + result.decode.total_bytes
        streaming = (result.prefill.weight_bytes + result.decode.weight_bytes
                     + result.decode.kv_bytes)
        activations = (result.prefill.activation_bytes
                       + result.decode.activation_bytes)
        wall = result.e2e_s

        compute_instr = total_flops / self._flops_per_instruction()
        ls_instr = (total_bytes / LINE_BYTES
                    + total_flops / OPERAND_LOAD_FLOPS)
        instructions = (compute_instr + ls_instr) * (1.0 + BOOKKEEPING_FRACTION)

        llc = self.platform.caches.llc.capacity_bytes
        # Streaming traffic misses once per pass; activations miss for the
        # portion of each pass's working set beyond LLC capacity. Passes =
        # 1 prefill + decode steps; activation overflow is approximated at
        # the whole-request granularity the PhaseStats track.
        passes = 1 + result.request.decode_steps
        activation_overflow = max(0.0, activations - llc * passes)
        llc_misses = (streaming + activation_overflow) / LINE_BYTES
        llc_mpki = llc_misses / (instructions / 1000.0)

        compute_busy = (result.prefill.compute_busy_s
                        + result.decode.compute_busy_s)
        core_utilization = min(1.0, compute_busy / wall) if wall else 0.0

        upi_utilization = 0.0
        remote_fraction = 0.0
        if self.platform.is_cpu:
            scaling = self.simulator._scaling
            numa_model = self.simulator._numa_model
            remote_fraction = numa_model.remote_access_fraction
            upi_fraction = scaling.upi_traffic_fraction()
            if upi_fraction > 0 and wall > 0:
                upi_bytes = total_bytes * upi_fraction
                upi_utilization = min(
                    1.0, (upi_bytes / upi_link().effective_bw) / wall)
            else:
                upi_utilization = 0.02  # housekeeping/coherence baseline

        llc_accesses = total_bytes / LINE_BYTES
        remote_llc_accesses = llc_accesses * remote_fraction

        return CounterEstimates(
            instructions=instructions,
            load_store_instructions=ls_instr,
            llc_misses=llc_misses,
            llc_mpki=llc_mpki,
            core_utilization=core_utilization,
            upi_utilization=upi_utilization,
            remote_llc_accesses=remote_llc_accesses,
            wall_time_s=wall,
        )
