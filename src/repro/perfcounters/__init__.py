"""Performance-counter estimation substrate (perf/VTune substitute)."""

from repro.perfcounters.collector import CounterModel
from repro.perfcounters.counters import (
    BOOKKEEPING_FRACTION,
    CounterEstimates,
    FLOPS_PER_INSTRUCTION,
    LINE_BYTES,
    OPERAND_LOAD_FLOPS,
)

__all__ = [
    "BOOKKEEPING_FRACTION",
    "OPERAND_LOAD_FLOPS",
    "CounterEstimates",
    "CounterModel",
    "FLOPS_PER_INSTRUCTION",
    "LINE_BYTES",
]
