"""Hardware performance-counter estimates derived from simulated runs.

The paper reports LLC MPKI, core utilization, UPI utilization, remote LLC
accesses, and normalized load/store instruction counts (Figs. 11, 12, 15,
16) collected with Linux perf and VTune. The simulator derives equivalent
estimates from the quantities it already tracks:

* **instructions** — GEMM FLOPs divided by the FLOPs each engine retires
  per instruction (an AMX ``TDPBF16PS`` performs 16x16x32 MACs = 16384
  FLOPs; an AVX-512 BF16 FMA pipe pair retires ~128), plus one load/store
  per cache line of traffic and a fixed bookkeeping overhead;
* **LLC misses** — streaming traffic (weights, KV reads) always misses;
  activation working sets miss for the portion exceeding LLC capacity;
* **core utilization** — compute-busy time over wall time;
* **UPI utilization** — cross-socket traffic over the link's capacity;
* **remote LLC accesses** — LLC-level accesses multiplied by the NUMA
  configuration's remote-access fraction.

The *trends* the paper highlights (MPKI falls and utilization rises with
batch size; SNC inflates remote accesses; 96 cores saturate UPI) emerge
from these definitions rather than being hard-coded.
"""

import dataclasses

#: FLOPs retired per instruction for each engine class.
FLOPS_PER_INSTRUCTION = {
    "matrix": 16384.0,   # AMX TDPBF16PS: 16 x 16 x 32 MACs x 2
    "vector": 128.0,     # AVX-512 BF16: 2 fused dot-product pipes
    "gpu_tensor": 4096.0,
}

#: Cache-line size used to convert bytes to load/store instructions.
LINE_BYTES = 64.0

#: FLOPs executed per operand-load instruction issued from cache. Blocked
#: GEMM kernels reload operands from L1/L2 (not memory) once per register/
#: tile-level reuse window; this constant converts FLOPs into those cache-
#: hitting load instructions, which dominate the retired-instruction count
#: and keep the MPKI denominator honest.
OPERAND_LOAD_FLOPS = 512.0

#: Fraction of additional bookkeeping instructions (loop control, address
#: generation, framework glue) relative to the data-path instruction count.
BOOKKEEPING_FRACTION = 0.30


@dataclasses.dataclass(frozen=True)
class CounterEstimates:
    """Estimated hardware counters for one simulated request.

    Attributes:
        instructions: Total retired instructions.
        load_store_instructions: Memory-access instructions (the quantity
            Figs. 11/12 normalize to batch size 1).
        llc_misses: Last-level-cache misses.
        llc_mpki: LLC misses per kilo-instruction.
        core_utilization: Fraction of wall time cores are compute-busy.
        upi_utilization: Fraction of UPI capacity consumed.
        remote_llc_accesses: LLC accesses served by a remote NUMA domain.
        wall_time_s: Simulated wall time the counters cover.
    """

    instructions: float
    load_store_instructions: float
    llc_misses: float
    llc_mpki: float
    core_utilization: float
    upi_utilization: float
    remote_llc_accesses: float
    wall_time_s: float
