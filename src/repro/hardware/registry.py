"""Registry of the four evaluated platforms (paper Tables I and II).

All numbers are taken verbatim from the paper:

========================  =============================  ==========================
Component                 CPU 1 (ICL 8352Y)              CPU 2 (SPR Max 9468)
========================  =============================  ==========================
Frequency                 2.20 GHz                       2.10 GHz
BF16 compute              18.0 TFLOPS (AVX-512)          25.6 (AVX-512) / 206.4 (AMX)
Cores / sockets           32 x 2                         48 x 2
L1D / L2 (per core)       48 KB / 1.25 MB                48 KB / 2 MB
L3 (per socket)           48 MB                          105 MB
Memory                    DDR4 256 GB                    DDR5 512 GB + HBM 128 GB
STREAM BW (1 socket)      156.2 GB/s                     DDR5 233.8 / HBM 588 GB/s
========================  =============================  ==========================

========================  ==================  ===================
Component                 A100                H100
========================  ==================  ===================
SMs                       108                 132
BF16 compute (dense)      312 TFLOPS          756 TFLOPS
L1 / L2                   192 KB / 40 MB      256 KB / 50 MB
Memory                    40 GB               80 GB
STREAM BW                 1299.9 GB/s         1754.4 GB/s
Host link                 PCIe 4.0, 64 GB/s   PCIe 5.0, 128 GB/s
========================  ==================  ===================

CPU platform objects describe a **single socket** (the paper's tuned
configuration pins to one socket; see Key Finding #3); the two-socket
behaviour is derived by :mod:`repro.scaling`.
"""

from typing import Dict, List

from repro.hardware.caches import CacheHierarchy, CacheLevel
from repro.hardware.compute import ComputeEngine, EngineKind, TileShape
from repro.hardware.datatypes import DType
from repro.hardware.interconnect import pcie_gen4_x16, pcie_gen5_x16
from repro.hardware.memory import MemorySystem, MemoryTechnology, MemoryTier
from repro.hardware.platform import CPUTopology, Platform, PlatformKind
from repro.utils.units import GB, KIB, MIB, TFLOPS, gb_per_s

# Kernel-level fraction of STREAM bandwidth sustained by inference GEMV /
# attention kernels. CPUs lose more to read-for-ownership and prefetch gaps
# than GPUs do, and the ICL generation (older prefetchers, DDR4, no
# tile-friendly blocking) sustains a lower fraction than SPR. All three are
# calibration constants (see DESIGN.md §5).
ICL_STREAM_EFFICIENCY = 0.55
SPR_STREAM_EFFICIENCY = 0.72
GPU_STREAM_EFFICIENCY = 0.85

# AMX BF16 native tile: TDPBF16PS consumes A(16x32) x B(32x16).
AMX_TILE_BF16 = TileShape(m=16, n=16, k=32)


def _icl_cpu() -> Platform:
    """Intel Xeon 3rd-gen (Ice Lake) 8352Y, one socket, 32 cores."""
    avx512 = ComputeEngine(
        name="AVX-512",
        kind=EngineKind.VECTOR,
        peak_flops={
            DType.BF16: 18.0 * TFLOPS,
            DType.FP32: 9.0 * TFLOPS,
            DType.INT8: 36.0 * TFLOPS,  # VNNI
        },
    )
    caches = CacheHierarchy(levels=[
        CacheLevel("L1D", 48 * KIB * 32, shared=False),
        CacheLevel("L2", 1.25 * MIB * 32, shared=False),
        CacheLevel("L3", 48 * MIB, shared=True),
    ])
    # Capacity is the full server's 256 GB: numactl can map the remote
    # socket's DRAM while computing on one socket (how OPT-66B, 131 GB of
    # BF16 weights, runs on this box at all).
    memory = MemorySystem(tiers=[
        MemoryTier("DDR4", MemoryTechnology.DDR4,
                   capacity_bytes=256 * GB, sustained_bw=gb_per_s(156.2)),
    ])
    return Platform(
        name="ICL-8352Y",
        kind=PlatformKind.CPU,
        engines=[avx512],
        caches=caches,
        memory=memory,
        topology=CPUTopology(cores_per_socket=32, sockets=2,
                             base_frequency_hz=2.2e9),
        stream_efficiency=ICL_STREAM_EFFICIENCY,
    )


def _spr_cpu() -> Platform:
    """Intel Xeon 4th-gen (Sapphire Rapids) Max 9468, one socket, 48 cores."""
    avx512 = ComputeEngine(
        name="AVX-512",
        kind=EngineKind.VECTOR,
        peak_flops={
            DType.BF16: 25.6 * TFLOPS,
            DType.FP32: 12.8 * TFLOPS,
            DType.INT8: 51.2 * TFLOPS,
        },
    )
    amx = ComputeEngine(
        name="AMX",
        kind=EngineKind.MATRIX,
        peak_flops={
            DType.BF16: 206.4 * TFLOPS,
            DType.INT8: 412.8 * TFLOPS,
        },
        tile=AMX_TILE_BF16,
    )
    caches = CacheHierarchy(levels=[
        CacheLevel("L1D", 48 * KIB * 48, shared=False),
        CacheLevel("L2", 2 * MIB * 48, shared=False),
        CacheLevel("L3", 105 * MIB, shared=True),
    ])
    memory = MemorySystem(tiers=[
        MemoryTier("HBM", MemoryTechnology.HBM_FLAT,
                   capacity_bytes=64 * GB, sustained_bw=gb_per_s(588.0)),
        MemoryTier("DDR5", MemoryTechnology.DDR5,
                   capacity_bytes=256 * GB, sustained_bw=gb_per_s(233.8)),
    ])
    return Platform(
        name="SPR-Max-9468",
        kind=PlatformKind.CPU,
        engines=[avx512, amx],
        caches=caches,
        memory=memory,
        topology=CPUTopology(cores_per_socket=48, sockets=2,
                             base_frequency_hz=2.1e9),
        stream_efficiency=SPR_STREAM_EFFICIENCY,
    )


def _a100() -> Platform:
    """NVIDIA A100-40GB (PCIe host link per Table II)."""
    tensor = ComputeEngine(
        name="TensorCore-A100",
        kind=EngineKind.GPU_TENSOR,
        peak_flops={
            DType.BF16: 312.0 * TFLOPS,
            DType.FP16: 312.0 * TFLOPS,
            DType.FP32: 19.5 * TFLOPS,
            DType.INT8: 624.0 * TFLOPS,
        },
        launch_overhead_s=8e-6,
    )
    caches = CacheHierarchy(levels=[
        CacheLevel("L1", 192 * KIB * 108, shared=False),
        CacheLevel("L2", 40 * MIB, shared=True),
    ])
    memory = MemorySystem(tiers=[
        MemoryTier("HBM2e", MemoryTechnology.HBM2E,
                   capacity_bytes=40 * GB, sustained_bw=gb_per_s(1299.9)),
    ])
    return Platform(
        name="A100-40GB",
        kind=PlatformKind.GPU,
        engines=[tensor],
        caches=caches,
        memory=memory,
        host_link=pcie_gen4_x16(),
        stream_efficiency=GPU_STREAM_EFFICIENCY,
        sms=108,
    )


def _h100() -> Platform:
    """NVIDIA H100-80GB (PCIe host link per Table II)."""
    tensor = ComputeEngine(
        name="TensorCore-H100",
        kind=EngineKind.GPU_TENSOR,
        peak_flops={
            DType.BF16: 756.0 * TFLOPS,
            DType.FP16: 756.0 * TFLOPS,
            DType.FP32: 51.0 * TFLOPS,
            DType.INT8: 1512.0 * TFLOPS,
        },
        launch_overhead_s=8e-6,
    )
    caches = CacheHierarchy(levels=[
        CacheLevel("L1", 256 * KIB * 132, shared=False),
        CacheLevel("L2", 50 * MIB, shared=True),
    ])
    memory = MemorySystem(tiers=[
        MemoryTier("HBM3", MemoryTechnology.HBM3,
                   capacity_bytes=80 * GB, sustained_bw=gb_per_s(1754.4)),
    ])
    return Platform(
        name="H100-80GB",
        kind=PlatformKind.GPU,
        engines=[tensor],
        caches=caches,
        memory=memory,
        host_link=pcie_gen5_x16(),
        stream_efficiency=GPU_STREAM_EFFICIENCY,
        sms=132,
    )


_BUILDERS = {
    "icl": _icl_cpu,
    "icl-8352y": _icl_cpu,
    "spr": _spr_cpu,
    "spr-max-9468": _spr_cpu,
    "a100": _a100,
    "a100-40gb": _a100,
    "h100": _h100,
    "h100-80gb": _h100,
}


def get_platform(name: str) -> Platform:
    """Build a platform by name (case-insensitive; aliases accepted).

    Accepted names: ``icl``, ``spr``, ``a100``, ``h100`` plus their full
    model-number aliases.
    """
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(f"unknown platform {name!r}; known: {sorted(set(_BUILDERS))}")
    return _BUILDERS[key]()


def all_platforms() -> Dict[str, Platform]:
    """All four evaluated platforms, keyed by canonical short name."""
    return {
        "icl": _icl_cpu(),
        "spr": _spr_cpu(),
        "a100": _a100(),
        "h100": _h100(),
    }


def cpu_platforms() -> List[Platform]:
    """The two CPU platforms (ICL first, as the normalization baseline)."""
    return [_icl_cpu(), _spr_cpu()]


def gpu_platforms() -> List[Platform]:
    """The two GPU platforms."""
    return [_a100(), _h100()]
