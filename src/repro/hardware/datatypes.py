"""Numeric data types used for LLM weights, activations, and KV cache.

The paper evaluates BF16 inference throughout (IPEX BF16 on CPUs, BF16
tensor-core paths on GPUs) and sizes model footprints with FP16 (Fig. 6).
Both are 2-byte formats, so footprint math is identical; we keep them as
distinct members because compute engines advertise different peak rates for
each (AMX supports BF16/INT8 but not FP16, for example).
"""

import enum


class DType(enum.Enum):
    """A numeric storage/compute format with its size in bytes."""

    FP32 = ("fp32", 4)
    FP16 = ("fp16", 2)
    BF16 = ("bf16", 2)
    INT8 = ("int8", 1)

    def __init__(self, label: str, nbytes: int):
        self.label = label
        self.nbytes = nbytes

    @property
    def bits(self) -> int:
        """Width of the format in bits."""
        return self.nbytes * 8

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


def parse_dtype(name: str) -> DType:
    """Look up a :class:`DType` by its label (``"bf16"``, ``"int8"``, ...)."""
    for dtype in DType:
        if dtype.label == name.lower():
            return dtype
    raise ValueError(f"unknown dtype {name!r}; expected one of "
                     f"{[d.label for d in DType]}")
