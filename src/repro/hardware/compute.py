"""Compute-engine models: vector units, matrix engines, and GPU tensor cores.

A :class:`ComputeEngine` captures the *peak* dense-math capability of a
platform for each supported data type, plus the microarchitectural facts the
GEMM efficiency model needs (tile shapes for matrix engines, SIMD width for
vector units). Peak numbers come straight from the paper's Table I/II:

* ICL Xeon 8352Y — 18.0 BF16 TFLOPS via AVX-512,
* SPR Max 9468  — 25.6 BF16 TFLOPS via AVX-512 or 206.4 via AMX,
* A100          — 312 BF16 TFLOPS (dense), H100 — 756 BF16 TFLOPS (dense).
"""

import dataclasses
import enum
from typing import Dict, Optional, Tuple

from repro.hardware.datatypes import DType
from repro.utils.validation import require_positive


class EngineKind(enum.Enum):
    """Class of compute engine; selects the GEMM efficiency curve family."""

    VECTOR = "vector"          # SIMD FMA pipes (AVX-512, NEON, ...)
    MATRIX = "matrix"          # CPU matrix engines (Intel AMX tiles)
    GPU_TENSOR = "gpu_tensor"  # GPU tensor/matrix cores


@dataclasses.dataclass(frozen=True)
class TileShape:
    """Native tile dimensions (M, N, K) of a matrix engine.

    Intel AMX operates on 2-D tile registers of 16 rows x 64 bytes; a BF16
    ``TDPBF16PS`` multiply consumes A(16x32) * B(32x16), so the native tile
    is M=16, N=16, K=32 for BF16 (K=64 for INT8).
    """

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        require_positive(self.m, "tile m")
        require_positive(self.n, "tile n")
        require_positive(self.k, "tile k")


@dataclasses.dataclass(frozen=True)
class ComputeEngine:
    """Peak dense-compute capability of one execution engine.

    Attributes:
        name: Human-readable identifier ("AMX", "AVX-512", "TensorCore-H100").
        kind: Engine class (vector / matrix / GPU tensor).
        peak_flops: Map of dtype -> peak FLOP/s for the *whole platform
            allocation being modeled* (e.g. one socket's worth of cores).
        tile: Native tile shape for matrix engines; ``None`` for vector units.
        launch_overhead_s: Fixed per-kernel/per-operator software overhead.
            CPUs pay framework dispatch (~microseconds); GPUs pay kernel
            launch latency. This term dominates nothing but keeps tiny ops
            from simulating as free.
    """

    name: str
    kind: EngineKind
    peak_flops: Dict[DType, float]
    tile: Optional[TileShape] = None
    launch_overhead_s: float = 5e-6

    def __post_init__(self) -> None:
        if not self.peak_flops:
            raise ValueError(f"engine {self.name!r} declares no peak rates")
        for dtype, rate in self.peak_flops.items():
            require_positive(rate, f"{self.name} peak[{dtype}]")
        if self.kind is EngineKind.MATRIX and self.tile is None:
            raise ValueError(f"matrix engine {self.name!r} requires a tile shape")

    def supports(self, dtype: DType) -> bool:
        """Whether this engine has a native path for *dtype*."""
        return dtype in self.peak_flops

    def peak(self, dtype: DType) -> float:
        """Peak FLOP/s for *dtype*; raises ``KeyError`` if unsupported."""
        if dtype not in self.peak_flops:
            raise KeyError(f"{self.name} does not support {dtype}")
        return self.peak_flops[dtype]

    def scaled(self, factor: float, name_suffix: str = "") -> "ComputeEngine":
        """Return a copy with all peak rates multiplied by *factor*.

        Used by the core-count scaling model: an engine spec describes a
        full 48-core socket; running on 12 cores scales peaks by 12/48
        (before parallel-efficiency losses, which are applied separately).
        """
        require_positive(factor, "scale factor")
        return dataclasses.replace(
            self,
            name=self.name + name_suffix,
            peak_flops={dt: rate * factor for dt, rate in self.peak_flops.items()},
        )


def tiles_needed(tile: TileShape, m: int, n: int, k: int) -> Tuple[int, int, int]:
    """Number of native tiles along each GEMM dimension (ceiling division).

    Matrix engines always execute whole tiles; a GEMM whose dimensions are
    not tile multiples wastes the padding lanes. The efficiency model uses
    this to charge tile-quantization overhead.
    """
    require_positive(m, "m")
    require_positive(n, "n")
    require_positive(k, "k")
    return (-(-m // tile.m), -(-n // tile.n), -(-k // tile.k))
