"""Platform composition: CPUs and GPUs assembled from hardware components.

A :class:`Platform` is the unit the inference simulator executes against:
it bundles compute engines, the cache hierarchy, the memory system, and (for
GPUs) the host interconnect used by offloading. CPU platforms additionally
describe their socket/core topology so the NUMA and core-scaling models can
derive per-configuration behaviour.
"""

import dataclasses
import enum
from typing import List, Optional

from repro.hardware.caches import CacheHierarchy
from repro.hardware.compute import ComputeEngine, EngineKind
from repro.hardware.datatypes import DType
from repro.hardware.interconnect import Interconnect
from repro.hardware.memory import MemorySystem
from repro.utils.validation import require_positive


class PlatformKind(enum.Enum):
    """Broad device class."""

    CPU = "cpu"
    GPU = "gpu"


@dataclasses.dataclass(frozen=True)
class CPUTopology:
    """Socket/core layout of a CPU server.

    Attributes:
        cores_per_socket: Physical cores per socket.
        sockets: Number of sockets in the server.
        snc_clusters_per_socket: Sub-NUMA clusters exposed in SNC mode
            (4 on Sapphire Rapids: "Sub-NUMA Clustering-4").
        base_frequency_hz: Nominal core frequency.
    """

    cores_per_socket: int
    sockets: int
    snc_clusters_per_socket: int = 4
    base_frequency_hz: float = 2.1e9

    def __post_init__(self) -> None:
        require_positive(self.cores_per_socket, "cores_per_socket")
        require_positive(self.sockets, "sockets")
        require_positive(self.snc_clusters_per_socket, "snc_clusters_per_socket")
        require_positive(self.base_frequency_hz, "base_frequency_hz")

    @property
    def total_cores(self) -> int:
        """All physical cores in the server."""
        return self.cores_per_socket * self.sockets


@dataclasses.dataclass(frozen=True)
class Platform:
    """A complete execution platform (one CPU socket-set or one GPU).

    Compute engine specs and memory bandwidths describe a **single socket**
    for CPUs (the paper pins inference to one socket for its main results)
    and the whole device for GPUs. The scaling model derives other core
    counts from the single-socket spec.

    Attributes:
        name: Platform identifier ("SPR-Max-9468", "A100-40GB", ...).
        kind: CPU or GPU.
        engines: Available compute engines, e.g. [AVX-512, AMX] on SPR.
        caches: Cache hierarchy for the modeled allocation.
        memory: Memory tiers attached to the allocation.
        topology: Socket/core layout (CPU only).
        host_link: PCIe link to host memory (GPU only; used by offloading).
        stream_efficiency: Fraction of STREAM bandwidth that fused inference
            kernels actually sustain. GPUs run closer to STREAM than CPUs
            because GEMV kernels on CPUs lose bandwidth to prefetch gaps and
            read-for-ownership traffic. Calibrated per platform.
        sms: Streaming multiprocessor count (GPU only; informational).
    """

    name: str
    kind: PlatformKind
    engines: List[ComputeEngine]
    caches: CacheHierarchy
    memory: MemorySystem
    topology: Optional[CPUTopology] = None
    host_link: Optional[Interconnect] = None
    stream_efficiency: float = 0.8
    sms: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.engines:
            raise ValueError(f"platform {self.name!r} has no compute engines")
        if self.kind is PlatformKind.CPU and self.topology is None:
            raise ValueError(f"CPU platform {self.name!r} requires a topology")
        if not 0 < self.stream_efficiency <= 1:
            raise ValueError(
                f"{self.name} stream_efficiency must be in (0, 1], "
                f"got {self.stream_efficiency}")

    @property
    def is_cpu(self) -> bool:
        """True for CPU platforms."""
        return self.kind is PlatformKind.CPU

    @property
    def is_gpu(self) -> bool:
        """True for GPU platforms."""
        return self.kind is PlatformKind.GPU

    def best_engine(self, dtype: DType) -> ComputeEngine:
        """The highest-peak engine supporting *dtype*.

        On SPR this picks AMX over AVX-512 for BF16/INT8 — mirroring IPEX,
        which dispatches GEMMs to AMX whenever the dtype allows.
        """
        candidates = [e for e in self.engines if e.supports(dtype)]
        if not candidates:
            raise KeyError(f"{self.name} has no engine supporting {dtype}")
        return max(candidates, key=lambda e: e.peak(dtype))

    def engine(self, name: str) -> ComputeEngine:
        """Look up an engine by name."""
        for eng in self.engines:
            if eng.name == name:
                return eng
        raise KeyError(f"{self.name} has no engine named {name!r}")

    def peak_flops(self, dtype: DType) -> float:
        """Peak FLOP/s across engines for *dtype*."""
        return self.best_engine(dtype).peak(dtype)

    @property
    def memory_capacity(self) -> float:
        """Total local memory capacity in bytes."""
        return self.memory.total_capacity

    @property
    def peak_memory_bandwidth(self) -> float:
        """STREAM bandwidth of the fastest local tier, bytes/s."""
        return self.memory.fastest.sustained_bw

    def effective_memory_bandwidth(self, footprint_bytes: float) -> float:
        """Sustained inference-kernel bandwidth for a given working set.

        Combines the capacity-aware tier blend with the platform's
        kernel-level stream efficiency.
        """
        return self.memory.blended_bandwidth(footprint_bytes) * self.stream_efficiency

    def has_matrix_engine(self) -> bool:
        """Whether any engine is a CPU matrix engine (AMX-class)."""
        return any(e.kind is EngineKind.MATRIX for e in self.engines)
