"""What-if platforms beyond the paper's testbed (Section V-B discussion).

The paper notes: "the new Grace-Hopper Superchip would see lower overheads
for offloading from DRAM to the integrated H100 due to its higher NVLink
bandwidth (900 GB/s versus PCIe 5.0's 128 GB/s), albeit at a cost of ~4x
of the SPR CPU and DDR5." This module builds that platform so the claim
can be tested on the simulator, plus helper variants used by the ablation
benches (SPR without AMX, SPR without HBM) that isolate each feature's
contribution to Key Finding #1.
"""

import dataclasses

from repro.hardware.caches import CacheHierarchy, CacheLevel
from repro.hardware.compute import ComputeEngine, EngineKind
from repro.hardware.datatypes import DType
from repro.hardware.interconnect import nvlink_c2c
from repro.hardware.memory import MemorySystem, MemoryTechnology, MemoryTier
from repro.hardware.platform import Platform, PlatformKind
from repro.hardware.registry import GPU_STREAM_EFFICIENCY, get_platform
from repro.utils.units import GB, KIB, MIB, TFLOPS, gb_per_s


def gh200() -> Platform:
    """Grace-Hopper GH200: H100-class GPU with a 900 GB/s NVLink-C2C host link.

    GPU memory is the 96 GB HBM3 variant; compute matches the H100. The
    qualitative change vs the paper's H100 testbed is the host link: seven
    times PCIe 5.0's nominal bandwidth, which slashes offloading cost.
    """
    tensor = ComputeEngine(
        name="TensorCore-GH200",
        kind=EngineKind.GPU_TENSOR,
        peak_flops={
            DType.BF16: 756.0 * TFLOPS,
            DType.FP16: 756.0 * TFLOPS,
            DType.FP32: 51.0 * TFLOPS,
            DType.INT8: 1512.0 * TFLOPS,
        },
        launch_overhead_s=8e-6,
    )
    caches = CacheHierarchy(levels=[
        CacheLevel("L1", 256 * KIB * 132, shared=False),
        CacheLevel("L2", 50 * MIB, shared=True),
    ])
    memory = MemorySystem(tiers=[
        MemoryTier("HBM3", MemoryTechnology.HBM3,
                   capacity_bytes=96 * GB, sustained_bw=gb_per_s(1754.4)),
    ])
    return Platform(
        name="GH200-96GB",
        kind=PlatformKind.GPU,
        engines=[tensor],
        caches=caches,
        memory=memory,
        host_link=nvlink_c2c(),
        stream_efficiency=GPU_STREAM_EFFICIENCY,
        sms=132,
    )


def spr_without_amx() -> Platform:
    """SPR Max with the AMX engine removed (AVX-512 only).

    Ablation platform: isolates AMX's contribution to the ICL->SPR gains
    from the HBM/core-count contribution.
    """
    spr = get_platform("spr")
    avx_only = [engine for engine in spr.engines
                if engine.kind is not EngineKind.MATRIX]
    return dataclasses.replace(spr, name="SPR-noAMX", engines=avx_only)


def spr_without_hbm() -> Platform:
    """SPR Max with HBM removed (DDR5 only).

    Ablation platform: isolates HBM's contribution (decode bandwidth) from
    AMX's (prefill compute).
    """
    spr = get_platform("spr")
    ddr_only = [tier for tier in spr.memory.tiers
                if not tier.name.upper().startswith("HBM")]
    return dataclasses.replace(
        spr, name="SPR-noHBM", memory=MemorySystem(tiers=ddr_only))
