"""Interconnect models: PCIe (CPU<->GPU), UPI (socket<->socket), NVLink.

Offloading-based inference (Section V) is bottlenecked by PCIe: model
weights, activations, and KV cache stream across it on demand. The paper's
Table II lists PCIe 4.0 x16 at 64 GB/s (A100 host link) and PCIe 5.0 x16 at
128 GB/s (H100 host link); achievable copy bandwidth is a calibrated
fraction of that nominal figure (protocol overhead, pinned-buffer staging).

UPI carries inter-socket traffic on the CPU side; its limited bandwidth is
why the 96-core configuration loses to 48 cores (Fig. 16).
"""

import dataclasses

from repro.utils.units import gb_per_s
from repro.utils.validation import require_positive


@dataclasses.dataclass(frozen=True)
class Interconnect:
    """A point-to-point link with nominal bandwidth and achievable efficiency.

    Attributes:
        name: Link identifier.
        nominal_bw: Datasheet bandwidth in bytes/s (both directions summed
            where the datasheet quotes it that way, as the paper's Table II
            does for PCIe).
        efficiency: Fraction of nominal achievable for bulk transfers.
        latency_s: Per-transfer fixed latency (setup + protocol round trip).
    """

    name: str
    nominal_bw: float
    efficiency: float = 1.0
    latency_s: float = 10e-6

    def __post_init__(self) -> None:
        require_positive(self.nominal_bw, f"{self.name} bandwidth")
        if not 0 < self.efficiency <= 1:
            raise ValueError(
                f"{self.name} efficiency must be in (0, 1], got {self.efficiency}")

    @property
    def effective_bw(self) -> float:
        """Achievable bulk-copy bandwidth in bytes/s."""
        return self.nominal_bw * self.efficiency

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move *nbytes* across the link (bulk transfer)."""
        if nbytes < 0:
            raise ValueError(f"cannot transfer negative bytes: {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.effective_bw


def pcie_gen4_x16(efficiency: float = 0.45) -> Interconnect:
    """PCIe 4.0 x16 host link (A100 server in Table II): 64 GB/s nominal.

    The default efficiency reflects achieved host-to-device copy rates for
    offloading workloads (pageable staging, small-block transfers): FlexGen
    and related systems observe well under half of nominal.
    """
    return Interconnect("PCIe4.0x16", gb_per_s(64.0), efficiency)


def pcie_gen5_x16(efficiency: float = 0.45) -> Interconnect:
    """PCIe 5.0 x16 host link (H100 server in Table II): 128 GB/s nominal."""
    return Interconnect("PCIe5.0x16", gb_per_s(128.0), efficiency)


def upi_link(efficiency: float = 0.8) -> Interconnect:
    """Intel UPI inter-socket link group (3 links x ~16 GT/s ≈ 62.4 GB/s)."""
    return Interconnect("UPI", gb_per_s(62.4), efficiency, latency_s=0.5e-6)


def nvlink_c2c(efficiency: float = 0.85) -> Interconnect:
    """Grace-Hopper NVLink-C2C (900 GB/s), mentioned in Section V-B."""
    return Interconnect("NVLink-C2C", gb_per_s(900.0), efficiency)
