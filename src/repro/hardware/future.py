"""Forward-looking CPU what-ifs: what would close the gap to GPUs?

The paper closes by arguing CPUs are becoming credible inference engines.
The natural follow-up: which axis — matrix throughput or memory
bandwidth — must the *next* CPU generation grow to close the in-memory
gap to an H100? These builders produce hypothetical SPR successors with
scaled AMX throughput and/or scaled memory bandwidth (MCR-DIMM /
next-gen-HBM class numbers), so the question becomes a sweep.
"""

import dataclasses

from repro.hardware.compute import ComputeEngine, EngineKind
from repro.hardware.memory import MemorySystem, MemoryTier
from repro.hardware.platform import Platform
from repro.hardware.registry import get_platform
from repro.utils.validation import require_positive


def scaled_spr(compute_scale: float = 1.0, bandwidth_scale: float = 1.0,
               name: str = None) -> Platform:
    """An SPR-Max successor with scaled AMX peak and/or memory bandwidth.

    ``compute_scale`` multiplies every engine's peaks (process/frequency/
    tile-count growth); ``bandwidth_scale`` multiplies every memory tier's
    sustained bandwidth (MCR DIMMs, faster HBM). Capacities are unchanged.
    """
    require_positive(compute_scale, "compute_scale")
    require_positive(bandwidth_scale, "bandwidth_scale")
    spr = get_platform("spr")
    engines = [engine.scaled(compute_scale) for engine in spr.engines]
    tiers = [dataclasses.replace(
        tier, sustained_bw=tier.sustained_bw * bandwidth_scale)
        for tier in spr.memory.tiers]
    label = name or (f"SPR-next(c{compute_scale:g}x,b{bandwidth_scale:g}x)")
    return dataclasses.replace(
        spr, name=label, engines=engines, memory=MemorySystem(tiers))


def required_bandwidth_scale(target_decode_speedup: float) -> float:
    """Bandwidth multiple needed for a given decode speedup.

    Decode is bandwidth-bound, so the mapping is identity — stated as a
    function to make the point explicit in analyses: closing a 2.6x decode
    gap to an A100 requires ~2.6x the memory bandwidth, nothing less.
    """
    require_positive(target_decode_speedup, "target_decode_speedup")
    return target_decode_speedup
