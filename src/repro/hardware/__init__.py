"""Hardware substrate: datatypes, compute engines, caches, memory, platforms.

This package encodes the paper's Table I/II testbed as composable models —
the simulator's equivalent of racking the servers.
"""

from repro.hardware.caches import (
    CACHE_LINE_BYTES,
    CacheHierarchy,
    CacheLevel,
    llc_miss_bytes,
)
from repro.hardware.compute import (
    ComputeEngine,
    EngineKind,
    TileShape,
    tiles_needed,
)
from repro.hardware.datatypes import DType, parse_dtype
from repro.hardware.interconnect import (
    Interconnect,
    nvlink_c2c,
    pcie_gen4_x16,
    pcie_gen5_x16,
    upi_link,
)
from repro.hardware.memory import (
    MemorySystem,
    MemoryTechnology,
    MemoryTier,
    spill_fraction,
)
from repro.hardware.platform import CPUTopology, Platform, PlatformKind
from repro.hardware.future import required_bandwidth_scale, scaled_spr
from repro.hardware.registry import (
    AMX_TILE_BF16,
    all_platforms,
    cpu_platforms,
    get_platform,
    gpu_platforms,
)

__all__ = [
    "AMX_TILE_BF16",
    "CACHE_LINE_BYTES",
    "CPUTopology",
    "CacheHierarchy",
    "CacheLevel",
    "ComputeEngine",
    "DType",
    "EngineKind",
    "Interconnect",
    "MemorySystem",
    "MemoryTechnology",
    "MemoryTier",
    "Platform",
    "PlatformKind",
    "TileShape",
    "all_platforms",
    "cpu_platforms",
    "get_platform",
    "gpu_platforms",
    "llc_miss_bytes",
    "nvlink_c2c",
    "parse_dtype",
    "required_bandwidth_scale",
    "scaled_spr",
    "pcie_gen4_x16",
    "pcie_gen5_x16",
    "spill_fraction",
    "tiles_needed",
    "upi_link",
]
