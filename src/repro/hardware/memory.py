"""Memory-tier models: DDR4/DDR5 DRAM, on-package HBM, and GPU HBM.

Bandwidth figures are the *sustained* (STREAM-measured) values the paper
reports rather than datasheet peaks — Table I footnote 2 and Table II
footnote 4 both measure with STREAM:

* ICL DDR4 (1 socket):  156.2 GB/s
* SPR DDR5 (1 socket):  233.8 GB/s
* SPR HBM  (1 socket):  588.0 GB/s
* A100 HBM2e:          1299.9 GB/s
* H100 HBM3:           1754.4 GB/s
"""

import dataclasses
import enum
from typing import List, Optional

from repro.utils.validation import require_non_negative, require_positive


class MemoryTechnology(enum.Enum):
    """Physical memory technology; drives default latency estimates."""

    DDR4 = "ddr4"
    DDR5 = "ddr5"
    HBM2E = "hbm2e"
    HBM3 = "hbm3"
    HBM_FLAT = "hbm"  # SPR Max on-package HBM2e


# Typical idle load-to-use latencies; only relative ordering matters for the
# model (HBM on SPR Max is *higher* latency than DDR5 despite its bandwidth).
_DEFAULT_LATENCY_NS = {
    MemoryTechnology.DDR4: 90.0,
    MemoryTechnology.DDR5: 110.0,
    MemoryTechnology.HBM_FLAT: 130.0,
    MemoryTechnology.HBM2E: 200.0,
    MemoryTechnology.HBM3: 180.0,
}


@dataclasses.dataclass(frozen=True)
class MemoryTier:
    """One addressable memory tier.

    Attributes:
        name: Identifier ("DDR5", "HBM", ...).
        technology: Physical technology.
        capacity_bytes: Capacity of the tier for the modeled allocation
            (e.g. one socket: 64 GB HBM on SPR Max).
        sustained_bw: STREAM-sustained bandwidth in bytes/s.
        latency_ns: Load-to-use latency; defaults by technology.
    """

    name: str
    technology: MemoryTechnology
    capacity_bytes: float
    sustained_bw: float
    latency_ns: Optional[float] = None

    def __post_init__(self) -> None:
        require_positive(self.capacity_bytes, f"{self.name} capacity")
        require_positive(self.sustained_bw, f"{self.name} bandwidth")
        if self.latency_ns is None:
            object.__setattr__(
                self, "latency_ns", _DEFAULT_LATENCY_NS[self.technology])
        require_positive(self.latency_ns, f"{self.name} latency")


@dataclasses.dataclass(frozen=True)
class MemorySystem:
    """The set of memory tiers attached to one platform allocation.

    Tiers are ordered fastest-first. ``blended_bandwidth`` models a working
    set spilling across tiers: the fastest tier serves as much of the
    footprint as it can hold and the remainder streams from the next tier;
    effective bandwidth is the footprint-weighted harmonic blend (time adds,
    not bandwidth).
    """

    tiers: List[MemoryTier]

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("memory system needs at least one tier")

    @property
    def total_capacity(self) -> float:
        """Sum of all tier capacities in bytes."""
        return sum(tier.capacity_bytes for tier in self.tiers)

    @property
    def fastest(self) -> MemoryTier:
        """The highest-bandwidth tier."""
        return max(self.tiers, key=lambda tier: tier.sustained_bw)

    def tier(self, name: str) -> MemoryTier:
        """Look up a tier by name."""
        for t in self.tiers:
            if t.name == name:
                return t
        raise KeyError(f"no memory tier named {name!r}")

    def blended_bandwidth(self, footprint_bytes: float) -> float:
        """Effective streaming bandwidth for a *footprint_bytes* working set.

        The allocator fills the fastest tier first (this matches the paper's
        flat-mode policy: "memory allocation prioritized HBM memory, with
        DDR memory being used only when the allocation exceeded 64GB").
        Reading the whole footprint once takes ``sum(part_i / bw_i)``
        seconds, so the blend is harmonic, weighted by placed bytes.
        """
        require_positive(footprint_bytes, "footprint_bytes")
        ordered = sorted(self.tiers, key=lambda t: t.sustained_bw, reverse=True)
        remaining = footprint_bytes
        total_time = 0.0
        for t in ordered:
            placed = min(remaining, t.capacity_bytes)
            if placed > 0:
                total_time += placed / t.sustained_bw
                remaining -= placed
            if remaining <= 0:
                break
        if remaining > 0:
            # Footprint exceeds all local capacity; the overflow must come
            # from elsewhere (remote socket) — callers model that penalty
            # explicitly, here we charge the slowest tier's bandwidth.
            slowest = min(self.tiers, key=lambda t: t.sustained_bw)
            total_time += remaining / slowest.sustained_bw
        return footprint_bytes / total_time


def spill_fraction(footprint_bytes: float, fast_capacity_bytes: float) -> float:
    """Fraction of a footprint that does NOT fit in the fast tier."""
    require_positive(footprint_bytes, "footprint_bytes")
    require_non_negative(fast_capacity_bytes, "fast_capacity_bytes")
    if footprint_bytes <= fast_capacity_bytes:
        return 0.0
    return (footprint_bytes - fast_capacity_bytes) / footprint_bytes
