"""Cache-hierarchy description and a streaming-reuse LLC model.

The paper reports LLC misses per kilo-instruction (MPKI) as a key counter
(Figs. 11, 12, 15, 16). LLM inference traffic is dominated by streaming
weights that vastly exceed LLC capacity, so the model treats weight traffic
as always-missing while activations and partial tiles hit depending on how
the working set compares to cache capacity.
"""

import dataclasses
from typing import List

from repro.utils.validation import require_non_negative, require_positive

CACHE_LINE_BYTES = 64


@dataclasses.dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    Attributes:
        name: "L1D", "L2", "L3", ...
        capacity_bytes: Total capacity at this level. For private caches this
            is the per-core capacity times the core count of the modeled
            allocation; for shared caches the shared capacity.
        shared: Whether the level is shared across all cores in the socket.
        line_bytes: Cache line size.
    """

    name: str
    capacity_bytes: float
    shared: bool
    line_bytes: int = CACHE_LINE_BYTES

    def __post_init__(self) -> None:
        require_positive(self.capacity_bytes, f"{self.name} capacity")
        require_positive(self.line_bytes, f"{self.name} line size")


@dataclasses.dataclass(frozen=True)
class CacheHierarchy:
    """Ordered cache levels, L1 first."""

    levels: List[CacheLevel]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("cache hierarchy must contain at least one level")

    @property
    def llc(self) -> CacheLevel:
        """The last-level cache."""
        return self.levels[-1]

    def level(self, name: str) -> CacheLevel:
        """Look up a level by name."""
        for lvl in self.levels:
            if lvl.name == name:
                return lvl
        raise KeyError(f"no cache level named {name!r}")


def llc_miss_bytes(hierarchy: CacheHierarchy,
                   streaming_bytes: float,
                   reusable_bytes: float) -> float:
    """Bytes that miss the LLC and reach memory.

    *streaming_bytes* is traffic with no temporal reuse inside one operator
    (weights, KV-cache reads during decode): it always misses once the
    stream exceeds the LLC.

    *reusable_bytes* is the activation/intermediate working set: the
    fraction that fits in the LLC hits; the overflow misses.
    """
    require_non_negative(streaming_bytes, "streaming_bytes")
    require_non_negative(reusable_bytes, "reusable_bytes")
    capacity = hierarchy.llc.capacity_bytes
    if streaming_bytes <= capacity:
        # The whole stream fits: first touch misses, subsequent reuse hits.
        stream_misses = streaming_bytes
    else:
        stream_misses = streaming_bytes
    reuse_misses = max(0.0, reusable_bytes - capacity)
    return stream_misses + reuse_misses
