"""NUMA-aware data placement study (Section VI, first optimization).

Two effects are quantified:

1. **SNC with NUMA-aware allocation.** Section IV showed SNC-4 losing to
   Quadrant because round-robin page placement makes ~3/4 of accesses
   sub-node-remote. Binding each worker's data to its own cluster drops
   the remote fraction to a calibrated residual, recovering most of the
   gap — the "potential for further software optimization to fully exploit
   snc mode" the paper points out.

2. **Hot/cold placement across sockets.** For footprints exceeding one
   socket's HBM + DDR, the paper proposes placing hot data (important
   activations, frequently used weights) in HBM/local DDR and cold data in
   remote DDR. The bandwidth model shows why: traffic-weighted harmonic
   blending rewards concentrating *traffic* (not bytes) on fast tiers.
"""

import dataclasses

from repro.engine.backend import NumaBackend
from repro.engine.inference import InferenceSimulator
from repro.engine.request import InferenceRequest
from repro.engine.results import InferenceResult
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
# Re-exported for backward compatibility: the blend now lives next to
# the NUMA bandwidth model it parameterizes.
from repro.numa.model import hot_cold_effective_bandwidth  # noqa: F401
from repro.numa.modes import SNC_FLAT


@dataclasses.dataclass(frozen=True)
class NumaAwareOutcome:
    """Result of the SNC NUMA-aware placement experiment.

    Attributes:
        baseline: SNC-flat run with naive (round-robin) allocation.
        optimized: SNC-flat run with NUMA-aware allocation.
    """

    baseline: InferenceResult
    optimized: InferenceResult

    @property
    def e2e_speedup(self) -> float:
        """E2E latency speedup from NUMA-aware placement."""
        return self.baseline.e2e_s / self.optimized.e2e_s

    @property
    def latency_reduction_pct(self) -> float:
        """Percent E2E latency reduction."""
        return (1.0 - self.optimized.e2e_s / self.baseline.e2e_s) * 100.0


def evaluate_numa_aware_snc(platform: Platform, model: ModelConfig,
                            request: InferenceRequest = InferenceRequest(),
                            ) -> NumaAwareOutcome:
    """Compare SNC-flat with naive vs NUMA-aware allocation.

    Thin adapter over the backend layer: both legs run through
    :class:`~repro.engine.backend.NumaBackend`, which reproduces the
    historical ``EngineConfig(numa=..., numa_aware=...)`` derivation
    bit-for-bit (parity pinned by ``tests/test_backend_numa_hybrid.py``).
    """
    baseline = InferenceSimulator(
        platform, backend=NumaBackend(numa=SNC_FLAT, numa_aware=False,
                                      dtype=request.dtype)
    ).run(model, request)
    optimized = InferenceSimulator(
        platform, backend=NumaBackend(numa=SNC_FLAT, numa_aware=True,
                                      dtype=request.dtype)
    ).run(model, request)
    return NumaAwareOutcome(baseline=baseline, optimized=optimized)


def hot_cold_speedup(hot_traffic_fraction_naive: float,
                     hot_traffic_fraction_aware: float,
                     local_bw: float, remote_bw: float) -> float:
    """Bandwidth gain from raising the locally served traffic fraction.

    With naive interleaving, the locally served share equals the local
    capacity share; hot/cold placement raises it to the *traffic* share of
    the hot data (activations and KV dominate accesses but not bytes).
    """
    naive = hot_cold_effective_bandwidth(
        hot_traffic_fraction_naive, local_bw, remote_bw)
    aware = hot_cold_effective_bandwidth(
        hot_traffic_fraction_aware, local_bw, remote_bw)
    return aware / naive
