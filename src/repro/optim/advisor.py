"""Deployment advisor: the paper's findings packaged as a recommender.

Given a model and a workload shape, search the configuration space the
paper characterizes — platform, NUMA mode, core count, optional INT8
weight quantization, optional TP across sockets — and recommend the
configuration optimizing the workload's priority metric (TTFT for
chatbots, TPOT for translation, throughput for analytics; Section II-C).
"""

import dataclasses
from typing import Callable, List, Optional

from repro.core.runner import run_inference
from repro.engine.inference import EngineConfig, InferenceSimulator
from repro.engine.request import InferenceRequest
from repro.hardware.platform import Platform
from repro.hardware.registry import get_platform
from repro.models.config import ModelConfig
from repro.numa.modes import EVALUATED_CONFIGS
from repro.parallel.tensor_parallel import TensorParallelSimulator, TPConfig
from repro.quant.engine import QuantizedInferenceSimulator
from repro.quant.weightonly import QuantConfig
from repro.utils.validation import require_in

#: Metrics the advisor can optimize; latencies minimize, throughput maximizes.
PRIORITY_METRICS = ("ttft_s", "tpot_s", "e2e_s", "e2e_throughput")


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One evaluated configuration.

    Attributes:
        label: Human-readable configuration description.
        platform: Platform name.
        metric_value: Value of the optimized metric.
        summary: All six metrics.
    """

    label: str
    platform: str
    metric_value: float
    summary: dict


@dataclasses.dataclass(frozen=True)
class Recommendation:
    """Advisor output: the winner plus the ranked field."""

    priority_metric: str
    best: Candidate
    ranked: List[Candidate]


class DeploymentAdvisor:
    """Searches deployment configurations for one (model, request).

    Args:
        platforms: Platforms to consider (defaults to the paper's four).
        consider_quantization: Include weight-only INT8 candidates on CPUs.
        consider_tensor_parallel: Include TP=2 candidates on CPUs.
    """

    def __init__(self, platforms: Optional[List[Platform]] = None,
                 consider_quantization: bool = True,
                 consider_tensor_parallel: bool = True):
        if platforms is None:
            platforms = [get_platform(key)
                         for key in ("icl", "spr", "a100", "h100")]
        self.platforms = platforms
        self.consider_quantization = consider_quantization
        self.consider_tensor_parallel = consider_tensor_parallel

    def _candidates(self, model: ModelConfig,
                    request: InferenceRequest) -> List[Candidate]:
        candidates: List[Candidate] = []

        def add(label: str, platform_name: str, runner: Callable):
            try:
                result = runner()
            except Exception:
                return
            candidates.append(Candidate(
                label=label,
                platform=platform_name,
                metric_value=0.0,  # filled by caller per priority
                summary=result.summary(),
            ))

        for platform in self.platforms:
            if platform.is_gpu:
                add(f"{platform.name}", platform.name,
                    lambda p=platform: run_inference(p, model, request))
                continue
            # CPU: the paper's tuned config plus the snc/cache alternates.
            for numa in EVALUATED_CONFIGS:
                add(f"{platform.name} {numa.label}", platform.name,
                    lambda p=platform, n=numa: InferenceSimulator(
                        p, EngineConfig(numa=n)).run(model, request))
            if self.consider_quantization:
                add(f"{platform.name} quad_flat+int8", platform.name,
                    lambda p=platform: QuantizedInferenceSimulator(
                        p, QuantConfig()).run(model, request))
            if self.consider_tensor_parallel and \
                    platform.topology.sockets >= 2:
                add(f"{platform.name} quad_flat+tp2", platform.name,
                    lambda p=platform: TensorParallelSimulator(
                        p, TPConfig(degree=2)).run(model, request))
        return candidates

    def recommend(self, model: ModelConfig,
                  request: InferenceRequest = InferenceRequest(),
                  priority_metric: str = "e2e_throughput") -> Recommendation:
        """Evaluate all candidates and rank by *priority_metric*."""
        require_in(priority_metric, PRIORITY_METRICS, "priority_metric")
        maximize = priority_metric == "e2e_throughput"
        scored = []
        for candidate in self._candidates(model, request):
            value = candidate.summary[priority_metric]
            scored.append(dataclasses.replace(candidate, metric_value=value))
        if not scored:
            raise RuntimeError(
                f"no feasible configuration for {model.name} at this shape")
        scored.sort(key=lambda c: c.metric_value, reverse=maximize)
        return Recommendation(priority_metric=priority_metric,
                              best=scored[0], ranked=scored)
