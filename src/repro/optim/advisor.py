"""Deployment advisor: the paper's findings packaged as a recommender.

Given a model and a workload shape, search the configuration space the
paper characterizes — platform, NUMA mode, core count, optional INT8
weight quantization, optional TP across sockets — and recommend the
configuration optimizing the workload's priority metric (TTFT for
chatbots, TPOT for translation, throughput for analytics; Section II-C).
"""

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.runner import run_inference
from repro.engine.inference import EngineConfig, InferenceSimulator
from repro.engine.request import InferenceRequest
from repro.hardware.platform import Platform
from repro.hardware.registry import get_platform
from repro.models.config import ModelConfig
from repro.numa.modes import EVALUATED_CONFIGS
from repro.parallel.tensor_parallel import TensorParallelSimulator, TPConfig
from repro.quant.engine import QuantizedInferenceSimulator
from repro.quant.weightonly import QuantConfig
from repro.utils.validation import require_in, require_positive

#: Metrics the advisor can optimize; latencies minimize, throughput maximizes.
PRIORITY_METRICS = ("ttft_s", "tpot_s", "e2e_s", "e2e_throughput")


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One evaluated configuration.

    Attributes:
        label: Human-readable configuration description.
        platform: Platform name.
        metric_value: Value of the optimized metric.
        summary: All six metrics.
    """

    label: str
    platform: str
    metric_value: float
    summary: dict


@dataclasses.dataclass(frozen=True)
class Recommendation:
    """Advisor output: the winner plus the ranked field."""

    priority_metric: str
    best: Candidate
    ranked: List[Candidate]


class DeploymentAdvisor:
    """Searches deployment configurations for one (model, request).

    Args:
        platforms: Platforms to consider (defaults to the paper's four).
        consider_quantization: Include weight-only INT8 candidates on CPUs.
        consider_tensor_parallel: Include TP=2 candidates on CPUs.
    """

    def __init__(self, platforms: Optional[List[Platform]] = None,
                 consider_quantization: bool = True,
                 consider_tensor_parallel: bool = True):
        if platforms is None:
            platforms = [get_platform(key)
                         for key in ("icl", "spr", "a100", "h100")]
        self.platforms = platforms
        self.consider_quantization = consider_quantization
        self.consider_tensor_parallel = consider_tensor_parallel

    def _candidates(self, model: ModelConfig,
                    request: InferenceRequest) -> List[Candidate]:
        candidates: List[Candidate] = []

        def add(label: str, platform_name: str, runner: Callable):
            try:
                result = runner()
            except Exception:
                return
            candidates.append(Candidate(
                label=label,
                platform=platform_name,
                metric_value=0.0,  # filled by caller per priority
                summary=result.summary(),
            ))

        for platform in self.platforms:
            if platform.is_gpu:
                add(f"{platform.name}", platform.name,
                    lambda p=platform: run_inference(p, model, request))
                continue
            # CPU: the paper's tuned config plus the snc/cache alternates.
            for numa in EVALUATED_CONFIGS:
                add(f"{platform.name} {numa.label}", platform.name,
                    lambda p=platform, n=numa: InferenceSimulator(
                        p, EngineConfig(numa=n)).run(model, request))
            if self.consider_quantization:
                add(f"{platform.name} quad_flat+int8", platform.name,
                    lambda p=platform: QuantizedInferenceSimulator(
                        p, QuantConfig()).run(model, request))
            if self.consider_tensor_parallel and \
                    platform.topology.sockets >= 2:
                add(f"{platform.name} quad_flat+tp2", platform.name,
                    lambda p=platform: TensorParallelSimulator(
                        p, TPConfig(degree=2)).run(model, request))
        return candidates

    def recommend(self, model: ModelConfig,
                  request: InferenceRequest = InferenceRequest(),
                  priority_metric: str = "e2e_throughput") -> Recommendation:
        """Evaluate all candidates and rank by *priority_metric*."""
        require_in(priority_metric, PRIORITY_METRICS, "priority_metric")
        maximize = priority_metric == "e2e_throughput"
        scored = []
        for candidate in self._candidates(model, request):
            value = candidate.summary[priority_metric]
            scored.append(dataclasses.replace(candidate, metric_value=value))
        if not scored:
            raise RuntimeError(
                f"no feasible configuration for {model.name} at this shape")
        scored.sort(key=lambda c: c.metric_value, reverse=maximize)
        return Recommendation(priority_metric=priority_metric,
                              best=scored[0], ranked=scored)


# -- fleet-level provisioning search (fluid outer loop) --------------------


@dataclasses.dataclass(frozen=True)
class FleetAssessment:
    """One candidate fleet scored by the fluid solver."""

    label: str
    config: "ClusterConfig"
    fluid: "FluidReport"
    feasible: bool


@dataclasses.dataclass(frozen=True)
class FleetConfirmation:
    """Exact fast-forward confirmation of one candidate fleet."""

    label: str
    requests: int
    attainment: float
    goodput_tokens_per_s: float
    throughput_tokens_per_s: float
    dollars_per_mtok: float
    accepted: bool


@dataclasses.dataclass(frozen=True)
class FleetRecommendation:
    """Output of :func:`recommend_fleet`.

    ``best`` is the cheapest candidate that cleared the attainment
    target analytically — and, when confirmation ran, survived the
    exact simulator too (``confirmation`` holds its measured numbers).
    ``ranked`` lists every candidate, feasible ones first by $/Mtok;
    ``confirmations`` records each simulation tried, in order, so a
    rejected fluid winner is visible, not silent.
    """

    rate_per_s: float
    attainment_target: float
    best: Optional[FleetAssessment]
    confirmation: Optional[FleetConfirmation]
    ranked: List[FleetAssessment]
    confirmations: List[FleetConfirmation]


def measure_fleet(config, rate_per_s, mix=None, spec=None, slo=None,
                  count: int = 2000, seed: int = 0,
                  amortization_years: Optional[float] = None
                  ) -> Tuple[float, float, float, float]:
    """Simulate one fleet with fast-forward; the fluid solver's oracle.

    Returns ``(attainment, goodput_tokens_per_s, throughput_tokens_per_s,
    dollars_per_mtok)`` measured by the exact event-driven simulator on
    a *count*-request Poisson stream — the confirmation step of
    :func:`recommend_fleet` and of ``repro plan --confirm``.
    """
    from repro.cluster.metrics import DEFAULT_AMORTIZATION_YEARS

    if amortization_years is None:
        amortization_years = DEFAULT_AMORTIZATION_YEARS
    from repro.cluster.router import JoinShortestQueueRouter
    from repro.cluster.simulator import ClusterSimulator
    from repro.cluster.tiering import TieredRouter
    from repro.serving.arrivals import iter_poisson_arrivals
    from repro.serving.slo import SLO
    from repro.workloads.classes import MixClassifier, iter_class_arrivals

    if mix is not None:
        classifier = MixClassifier(mix=tuple(mix))
        arrivals = list(iter_class_arrivals(rate_per_s, classifier,
                                            count=count, seed=seed))
        router = TieredRouter(classifier=classifier)
    else:
        classifier = None
        arrivals = list(iter_poisson_arrivals(rate_per_s, count=count,
                                              spec=spec, seed=seed))
        router = JoinShortestQueueRouter()
    simulator = ClusterSimulator(config.build_fleet(), router)
    report = simulator.run(iter(arrivals))
    if classifier is not None:
        tiering = report.tiering(arrivals, classifier,
                                 amortization_years=amortization_years)
        completed = sum(c.completed for c in tiering.classes)
        met = sum(c.met for c in tiering.classes)
        attainment = met / completed if completed else 1.0
        goodput = sum(c.goodput for c in tiering.classes)
    else:
        bar = slo if slo is not None else SLO()
        attainment = report.attainment(arrivals, bar)
        goodput = report.goodput(arrivals, bar)
    return (attainment, goodput, report.throughput,
            report.dollars_per_million_tokens(amortization_years))


def fleet_mix_candidates(node_kinds: Sequence[Tuple[str, "ReplicaSpec"]],
                         total_nodes: int, *,
                         require_all: bool = False
                         ) -> List[Tuple[str, "ClusterConfig"]]:
    """Enumerate every fleet *mix* filling a fixed node budget.

    The mix search space for :func:`recommend_fleet`: given the node
    kinds a deployment could buy — e.g. a CPU replica, a GPU replica,
    and a CPU+GPU hybrid replica — emit one candidate fleet per way of
    composing *total_nodes* slots from those kinds (stars and bars:
    ``C(total+k-1, k-1)`` candidates for *k* kinds). Labels read like
    ``"2xspr+1xa100+1xhybrid"`` so ranked output stays legible.

    Args:
        node_kinds: ``(kind_label, ReplicaSpec)`` pairs. Each spec is a
            one-replica template; its ``count`` is replaced per mix (a
            hybrid kind should carry ``price_usd`` covering *both*
            devices it occupies).
        total_nodes: Slots every candidate fleet must fill exactly.
        require_all: Only emit mixes using every kind at least once
            (drops the homogeneous corners).
    """
    from repro.cluster.config import ClusterConfig

    require_positive(total_nodes, "total_nodes")
    kinds = list(node_kinds)
    if not kinds:
        raise ValueError("fleet_mix_candidates needs at least one node kind")

    def compositions(total: int, bins: int):
        if bins == 1:
            yield (total,)
            return
        for first in range(total + 1):
            for rest in compositions(total - first, bins - 1):
                yield (first,) + rest

    candidates: List[Tuple[str, ClusterConfig]] = []
    for counts in compositions(total_nodes, len(kinds)):
        if require_all and not all(counts):
            continue
        specs = [dataclasses.replace(spec, count=count)
                 for (_, spec), count in zip(kinds, counts) if count]
        label = "+".join(f"{count}x{kind}"
                         for (kind, _), count in zip(kinds, counts) if count)
        candidates.append((label, ClusterConfig(specs)))
    return candidates


def recommend_fleet(candidates: Sequence[Union[Tuple[str, "ClusterConfig"],
                                               "ClusterConfig"]],
                    rate_per_s: float, *,
                    mix=None, spec=None, slo=None,
                    attainment_target: float = 0.95,
                    confirm: bool = True,
                    confirm_requests: int = 2000,
                    confirm_attempts: int = 3,
                    confirm_slack: float = 0.05,
                    seed: int = 0,
                    amortization_years: Optional[float] = None
                    ) -> FleetRecommendation:
    """Pick the cheapest fleet meeting an SLO target — fluid-first.

    The successive-refinement provisioning search: every candidate
    fleet is scored by the analytic fluid solver (microseconds per
    point once tables are warm), candidates clearing
    *attainment_target* are ranked by $/Mtok, and the winner is
    *confirmed* by the exact fast-forward simulator. If the simulator
    disagrees (measured attainment below target minus *confirm_slack*),
    the next-cheapest feasible candidate is confirmed instead, up to
    *confirm_attempts* — the cheap outer loop never ships an
    unvalidated answer.

    Args:
        candidates: ``(label, ClusterConfig)`` pairs (bare configs get
            positional labels).
        rate_per_s: Offered fleet-wide arrival rate.
        mix / spec / slo: Workload description, as in
            :func:`repro.cluster.fluid.solve`.
    """
    from repro.cluster.fluid import FluidScenario, solve_grid
    from repro.cluster.metrics import DEFAULT_AMORTIZATION_YEARS

    years = amortization_years if amortization_years is not None \
        else DEFAULT_AMORTIZATION_YEARS
    labelled = []
    for position, candidate in enumerate(candidates):
        if isinstance(candidate, tuple):
            labelled.append(candidate)
        else:
            labelled.append((f"candidate-{position}", candidate))
    if not labelled:
        raise ValueError("recommend_fleet needs at least one candidate")

    reports = solve_grid(
        [FluidScenario(config=config, rate_per_s=rate_per_s, label=label)
         for label, config in labelled],
        mix=mix, spec=spec, slo=slo, amortization_years=years)
    assessments = [
        FleetAssessment(label=label, config=config, fluid=report,
                        feasible=(not report.overloaded
                                  and report.attainment
                                  >= attainment_target))
        for (label, config), report in zip(labelled, reports)]
    feasible = sorted([a for a in assessments if a.feasible],
                      key=lambda a: a.fluid.dollars_per_mtok)
    infeasible = sorted([a for a in assessments if not a.feasible],
                        key=lambda a: (-a.fluid.attainment,
                                       a.fluid.dollars_per_mtok))
    ranked = feasible + infeasible

    best = feasible[0] if feasible else None
    confirmation = None
    confirmations: List[FleetConfirmation] = []
    if confirm and feasible:
        for assessment in feasible[:confirm_attempts]:
            attainment, goodput, throughput, dollars = measure_fleet(
                assessment.config, rate_per_s, mix=mix, spec=spec, slo=slo,
                count=confirm_requests, seed=seed,
                amortization_years=years)
            accepted = attainment >= attainment_target - confirm_slack
            record = FleetConfirmation(
                label=assessment.label, requests=confirm_requests,
                attainment=attainment, goodput_tokens_per_s=goodput,
                throughput_tokens_per_s=throughput,
                dollars_per_mtok=dollars, accepted=accepted)
            confirmations.append(record)
            if accepted:
                best, confirmation = assessment, record
                break
        else:
            # No candidate survived confirmation: surface the fluid
            # favorite (feasible[0], confirmed first) with its own
            # failed record so best+confirmation stay a matched pair.
            confirmation = confirmations[0] if confirmations else None
    return FleetRecommendation(
        rate_per_s=rate_per_s, attainment_target=attainment_target,
        best=best, confirmation=confirmation, ranked=ranked,
        confirmations=confirmations)
