"""Batch-size auto-tuner: largest batch under memory and TPOT constraints.

The paper sweeps batch sizes and observes throughput rising while TPOT
creeps up (Fig. 8-10); a deployment must pick a point. The tuner searches
powers of two for the largest batch that (a) fits the configuration's
memory and (b) keeps TPOT under a bound — the knee the paper's batch
sweeps implicitly locate.
"""

import dataclasses
from typing import List, Optional

from repro.core.runner import run_inference
from repro.engine.inference import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.engine.request import InferenceRequest
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.utils.validation import require_positive


@dataclasses.dataclass(frozen=True)
class BatchChoice:
    """Tuner output.

    Attributes:
        batch_size: Selected batch (0 if nothing feasible).
        tpot_s / throughput: Metrics at the selected batch.
        evaluated: (batch, tpot, throughput, feasible) for each candidate.
    """

    batch_size: int
    tpot_s: float
    throughput: float
    evaluated: List[tuple]


def tune_batch_size(platform: Platform, model: ModelConfig,
                    tpot_budget_s: float,
                    input_len: int = 128, output_len: int = 32,
                    max_batch: int = 64,
                    config: EngineConfig = DEFAULT_ENGINE_CONFIG
                    ) -> BatchChoice:
    """Largest power-of-two batch meeting the TPOT budget.

    Throughput grows monotonically with batch in the simulator, so the
    largest feasible batch is also the highest-throughput one.
    """
    require_positive(tpot_budget_s, "tpot_budget_s")
    require_positive(max_batch, "max_batch")
    evaluated: List[tuple] = []
    best: Optional[tuple] = None
    batch = 1
    while batch <= max_batch:
        request = InferenceRequest(batch_size=batch, input_len=input_len,
                                   output_len=output_len)
        try:
            result = run_inference(platform, model, request, config)
        except Exception:
            evaluated.append((batch, None, None, False))
            batch *= 2
            continue
        feasible = result.tpot_s <= tpot_budget_s
        evaluated.append((batch, result.tpot_s, result.e2e_throughput,
                          feasible))
        if feasible:
            best = (batch, result.tpot_s, result.e2e_throughput)
        batch *= 2
    if best is None:
        return BatchChoice(batch_size=0, tpot_s=0.0, throughput=0.0,
                           evaluated=evaluated)
    return BatchChoice(batch_size=best[0], tpot_s=best[1],
                       throughput=best[2], evaluated=evaluated)
