"""Prefill/decode disaggregation across a GPU and a CPU (Section VI sequel).

The paper's hybrid-execution proposal splits *layers* between CPU and
GPU. A complementary split follows directly from its two-phase analysis:
phases have opposite resource demands, so give each phase the device it
matches — **prefill on the GPU** (compute-bound, tensor cores shine) and
**decode on the CPU** (memory-bound; an AMX/HBM CPU holds the whole model
and KV locally, while a GPU would either idle its FLOPs or, for large
models, stream weights over PCIe every token).

The handoff cost is real and modeled: the prompt's KV cache crosses PCIe
once per request (GPU -> CPU), after which decode proceeds entirely
CPU-side.

The interesting regime is models that FIT the GPU: pure-GPU decode is
fast, so disaggregation trades some TPOT for releasing the expensive GPU
after prefill — the per-dollar and utilization argument the paper makes
for data centers "where GPU resources are fully occupied".
"""

import dataclasses

from repro.analysis.cost import list_price
from repro.hardware.datatypes import DType
from repro.core.runner import run_inference
from repro.engine.inference import InferenceSimulator
from repro.engine.request import InferenceRequest
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.memory import kv_cache_bytes
from repro.offload.policy import DEFAULT_OFFLOAD_CALIBRATION


def phase_affinity(platform: Platform, dtype: DType = DType.BF16) -> float:
    """Compute-to-bandwidth balance of a platform (FLOP/s per byte/s).

    The scalar behind this module's phase split: prefill is compute-bound
    and belongs on high-affinity (compute-rich) devices — GPUs, AMX CPUs
    — while decode is memory-bound and belongs on low-affinity
    (bandwidth-rich) ones. Numerically this is the platform's roofline
    ridge point in FLOPs/byte. The fleet router generalizes the planner's
    two-device split with it
    (:class:`repro.cluster.router.PhaseAwareRouter`).
    """
    return platform.peak_flops(dtype) / platform.peak_memory_bandwidth


@dataclasses.dataclass(frozen=True)
class DisaggregatedEstimate:
    """Projected disaggregated execution of one request.

    Attributes:
        ttft_s: GPU prefill time plus the KV handoff.
        tpot_s: CPU decode time per token.
        e2e_s: Total request latency.
        kv_handoff_s: One-time KV transfer cost (inside ttft_s).
        gpu_busy_s: Time the GPU is occupied (prefill only).
        cpu_only_e2e_s / gpu_only_e2e_s: Single-device references.
    """

    ttft_s: float
    tpot_s: float
    e2e_s: float
    kv_handoff_s: float
    gpu_busy_s: float
    cpu_only_e2e_s: float
    gpu_only_e2e_s: float

    @property
    def gpu_occupancy_fraction(self) -> float:
        """GPU busy time relative to serving the request end-to-end on it."""
        return self.gpu_busy_s / self.gpu_only_e2e_s

    def gpu_seconds_saved(self) -> float:
        """GPU time released per request vs pure-GPU serving."""
        return self.gpu_only_e2e_s - self.gpu_busy_s


class DisaggregatedPlanner:
    """Evaluates GPU-prefill + CPU-decode execution.

    Args:
        cpu: Decode-side CPU platform.
        gpu: Prefill-side GPU platform.
    """

    def __init__(self, cpu: Platform, gpu: Platform):
        if not cpu.is_cpu or not gpu.is_gpu:
            raise ValueError("DisaggregatedPlanner needs a CPU and a GPU")
        self.cpu = cpu
        self.gpu = gpu
        self._pcie_bw = (gpu.host_link.nominal_bw
                         * DEFAULT_OFFLOAD_CALIBRATION.pcie_efficiency)

    def estimate(self, model: ModelConfig,
                 request: InferenceRequest = InferenceRequest()
                 ) -> DisaggregatedEstimate:
        """Project the disaggregated request (model must fit the GPU)."""
        gpu_result = run_inference(self.gpu, model, request)
        cpu_result = InferenceSimulator(self.cpu).run(model, request)

        prefill_gpu = gpu_result.ttft_s
        kv_bytes = kv_cache_bytes(model, request.input_len,
                                  request.batch_size, request.dtype)
        handoff = kv_bytes / self._pcie_bw
        decode_cpu = cpu_result.decode.time_s

        ttft = prefill_gpu + handoff
        e2e = ttft + decode_cpu
        tpot = (decode_cpu / request.decode_steps
                if request.decode_steps else 0.0)
        return DisaggregatedEstimate(
            ttft_s=ttft,
            tpot_s=tpot,
            e2e_s=e2e,
            kv_handoff_s=handoff,
            gpu_busy_s=prefill_gpu,
            cpu_only_e2e_s=cpu_result.e2e_s,
            gpu_only_e2e_s=gpu_result.e2e_s,
        )

    def cost_weighted_throughput(self, model: ModelConfig,
                                 request: InferenceRequest
                                 ) -> dict:
        """Tokens per second per 1000 USD for the three serving options.

        Disaggregation charges the GPU only for its busy fraction (the
        released time serves other tenants) plus the whole CPU.
        """
        estimate = self.estimate(model, request)
        tokens = request.total_generated_tokens
        cpu_price = list_price(self.cpu.name) / 1000.0
        gpu_price = list_price(self.gpu.name) / 1000.0
        return {
            "cpu_only": tokens / estimate.cpu_only_e2e_s / cpu_price,
            "gpu_only": tokens / estimate.gpu_only_e2e_s / gpu_price,
            "disaggregated": tokens / estimate.e2e_s / (
                cpu_price + gpu_price * estimate.gpu_occupancy_fraction),
        }
