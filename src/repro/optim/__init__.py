"""Section VI optimization studies: NUMA-aware placement, hybrid execution."""

from repro.optim.batch_tuner import BatchChoice, tune_batch_size
from repro.optim.disaggregation import (
    DisaggregatedEstimate,
    DisaggregatedPlanner,
)
from repro.optim.advisor import (
    Candidate,
    DeploymentAdvisor,
    FleetAssessment,
    FleetConfirmation,
    FleetRecommendation,
    Recommendation,
    fleet_mix_candidates,
    measure_fleet,
    recommend_fleet,
)
from repro.optim.hybrid import HybridPlan, HybridPlanner, candidate_fractions
from repro.optim.numa_aware import (
    NumaAwareOutcome,
    evaluate_numa_aware_snc,
    hot_cold_effective_bandwidth,
    hot_cold_speedup,
)

__all__ = [
    "BatchChoice",
    "Candidate",
    "DisaggregatedEstimate",
    "DisaggregatedPlanner",
    "tune_batch_size",
    "DeploymentAdvisor",
    "FleetAssessment",
    "FleetConfirmation",
    "FleetRecommendation",
    "HybridPlan",
    "Recommendation",
    "HybridPlanner",
    "fleet_mix_candidates",
    "measure_fleet",
    "recommend_fleet",
    "NumaAwareOutcome",
    "candidate_fractions",
    "evaluate_numa_aware_snc",
    "hot_cold_effective_bandwidth",
    "hot_cold_speedup",
]
