"""CPU-GPU hybrid execution study (Section VI, second optimization).

FlexGen leaves CPU compute idle except for attention. The paper argues
that for models requiring heavy PCIe streaming, assigning a *fraction of
the decoder layers* to the CPU shrinks the weight volume the GPU must pull
over PCIe — and the CPU's layer compute overlaps with the remaining
transfers. :class:`HybridPlanner` searches the layer split that minimizes
per-step critical-path time:

    step(f) = max( cpu_time(f) + gpu_compute(1-f),  transfer(1-f) )

where transfers overlap with all compute (double-buffered), the CPU
executes its layers from its own memory at CPU speed, and the GPU's
resident-weight budget covers its layers first.
"""

import dataclasses
from typing import List

from repro.engine.inference import InferenceSimulator
from repro.engine.request import InferenceRequest
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.memory import weight_bytes
from repro.offload.engine import OffloadSimulator
from repro.offload.policy import (
    DEFAULT_OFFLOAD_CALIBRATION,
    OffloadCalibration,
)
from repro.offload.zigzag import amortization_factor


@dataclasses.dataclass(frozen=True)
class HybridPlan:
    """Selected hybrid execution split and its projected performance.

    Attributes:
        cpu_layer_fraction: Fraction of decoder layers assigned to the CPU.
        step_time_s: Projected per-decode-step critical-path time.
        cpu_only_step_s: Per-step time with all layers on the CPU.
        gpu_offload_step_s: Per-step time with pure GPU offloading.
    """

    cpu_layer_fraction: float
    step_time_s: float
    cpu_only_step_s: float
    gpu_offload_step_s: float

    @property
    def speedup_vs_gpu_offload(self) -> float:
        """Gain over pure offloading-based GPU execution."""
        return self.gpu_offload_step_s / self.step_time_s

    @property
    def speedup_vs_cpu_only(self) -> float:
        """Gain over running everything on the CPU."""
        return self.cpu_only_step_s / self.step_time_s


class HybridPlanner:
    """Searches the best CPU/GPU layer split for one (model, request).

    Args:
        cpu: CPU platform (computes its layer share from local memory).
        gpu: GPU platform (must offload the model for hybrid to make sense).
        calibration: Offloading constants shared with the pure-GPU baseline.
        granularity: Step size of the fraction search.
    """

    def __init__(self, cpu: Platform, gpu: Platform,
                 calibration: OffloadCalibration = DEFAULT_OFFLOAD_CALIBRATION,
                 granularity: float = 0.05):
        if not cpu.is_cpu or not gpu.is_gpu:
            raise ValueError("HybridPlanner needs one CPU and one GPU platform")
        if not 0 < granularity <= 0.5:
            raise ValueError(f"granularity must be in (0, 0.5], got {granularity}")
        self.cpu = cpu
        self.gpu = gpu
        self.calibration = calibration
        self.granularity = granularity

    def _cpu_step_time(self, model: ModelConfig,
                       request: InferenceRequest) -> float:
        """Mean decode-step time with the whole model on the CPU."""
        result = InferenceSimulator(self.cpu).run(model, request)
        return result.tpot_s

    def _gpu_offload_step_time(self, model: ModelConfig,
                               request: InferenceRequest) -> float:
        """Mean decode-step time with pure offloading on the GPU."""
        result = OffloadSimulator(self.gpu, self.calibration).run(model, request)
        return result.tpot_s

    def _hybrid_step_time(self, f_cpu: float, model: ModelConfig,
                          request: InferenceRequest,
                          cpu_step: float, gpu_step_compute: float) -> float:
        """Critical-path step time for a given CPU layer fraction."""
        weights = weight_bytes(model, request.dtype)
        gpu_weights = (1.0 - f_cpu) * weights
        resident_budget = (self.gpu.memory_capacity
                           * self.calibration.weight_residency_fraction)
        streamed = max(0.0, gpu_weights - resident_budget)
        pcie_bw = (self.gpu.host_link.nominal_bw
                   * self.calibration.pcie_efficiency)
        transfer = streamed / pcie_bw / amortization_factor(
            request.batch_size, self.calibration)
        compute = f_cpu * cpu_step + (1.0 - f_cpu) * gpu_step_compute
        return max(compute, transfer)

    def plan(self, model: ModelConfig,
             request: InferenceRequest = InferenceRequest()) -> HybridPlan:
        """Search CPU layer fractions and return the best split."""
        cpu_step = self._cpu_step_time(model, request)
        gpu_offload_step = self._gpu_offload_step_time(model, request)
        # GPU compute leg per step if all weights were resident: bounded by
        # HBM streaming of the resident share; approximate with the GPU's
        # in-memory step time scaled from weight traffic.
        gpu_bw = self.gpu.peak_memory_bandwidth * self.gpu.stream_efficiency
        weights = weight_bytes(model, request.dtype)
        gpu_step_compute = weights / gpu_bw

        best_fraction = 0.0
        best_time = float("inf")
        steps = int(round(1.0 / self.granularity))
        for i in range(steps + 1):
            f_cpu = i * self.granularity
            t = self._hybrid_step_time(f_cpu, model, request,
                                       cpu_step, gpu_step_compute)
            if t < best_time:
                best_time = t
                best_fraction = f_cpu
        return HybridPlan(
            cpu_layer_fraction=best_fraction,
            step_time_s=best_time,
            cpu_only_step_s=cpu_step,
            gpu_offload_step_s=gpu_offload_step,
        )


def candidate_fractions(granularity: float = 0.05) -> List[float]:
    """The CPU-fraction grid the planner searches (exposed for tests)."""
    steps = int(round(1.0 / granularity))
    return [i * granularity for i in range(steps + 1)]
