"""Tensor-parallel execution across CPU sockets.

The paper's 96-core result (Key Finding #3) shows that *naively* spanning
two sockets loses: shared-nothing threads scatter accesses across UPI.
Tensor parallelism is the disciplined alternative — shard every weight
matrix across sockets so each socket streams only half the bytes from its
*local* HBM, and pay an explicit allreduce on the hidden state twice per
layer (after attention out-proj and after the FFN down-proj).

Per decode step with TP degree ``S``:

* local weight traffic per socket: ``weights / S`` (the win — decode is
  bandwidth-bound and both sockets' HBM now contributes);
* allreduce traffic: ``2 * n_layers * batch * d_model`` elements cross
  UPI per step (the cost — small for decode, growing with batch);
* compute also shards ``1/S`` (irrelevant for decode, helpful for
  prefill).

The model predicts when TP=2 beats one socket: whenever the halved weight
stream saves more than the UPI allreduce costs — which for decode at
small batch is essentially always, making TP the fix for KF#3's
"96 cores are worse" observation.
"""

import dataclasses

from repro.engine.executor import OperatorExecutor
from repro.engine.inference import (
    DEFAULT_ENGINE_CONFIG,
    EngineConfig,
    InferenceSimulator,
)
from repro.engine.request import InferenceRequest
from repro.engine.results import (
    InferenceResult,
    merge_phase_stats,
    phase_stats_from_timings,
)
from repro.hardware.interconnect import Interconnect, upi_link
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.layers import Op
from repro.models.opgraph import decode_step_ops, prefill_ops
from repro.utils.validation import require_positive


@dataclasses.dataclass(frozen=True)
class TPConfig:
    """Tensor-parallel configuration.

    Attributes:
        degree: Shards (sockets). The SPR server supports 2.
        allreduce_efficiency: Achieved fraction of UPI bandwidth for the
            ring-allreduce pattern (latency-bound chunks, bidirectional).
    """

    degree: int = 2
    allreduce_efficiency: float = 0.7

    def __post_init__(self) -> None:
        require_positive(self.degree, "degree")
        if not 0 < self.allreduce_efficiency <= 1:
            raise ValueError("allreduce_efficiency must be in (0, 1]")


class TensorParallelSimulator:
    """Simulates TP inference across a CPU server's sockets.

    Args:
        platform: CPU platform (single-socket spec; TP shards across its
            ``topology.sockets`` sockets).
        tp: TP configuration.
        config: Per-socket engine configuration.
        interconnect: Socket-to-socket link (UPI by default).
    """

    def __init__(self, platform: Platform, tp: TPConfig = TPConfig(),
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG,
                 interconnect: Interconnect = None):
        if not platform.is_cpu or platform.topology is None:
            raise ValueError(f"{platform.name} is not a CPU platform")
        if tp.degree > platform.topology.sockets:
            raise ValueError(
                f"TP degree {tp.degree} exceeds {platform.topology.sockets} "
                "sockets")
        self.platform = platform
        self.tp = tp
        self.config = config
        self.interconnect = interconnect or upi_link()
        self._base = InferenceSimulator(platform, config)

    def _shard_op(self, op: Op) -> Op:
        """Shard one operator's weights/compute across the TP group.

        Weight GEMMs split along the output (or input) dimension: each
        shard does 1/S of the FLOPs and streams 1/S of the weights.
        Attention shards by heads. Activation traffic for the sharded
        portion scales likewise; the replicated hidden-state reads are a
        second-order term folded in with the same factor.
        """
        s = self.tp.degree
        return dataclasses.replace(
            op,
            instances=op.instances,
            m=op.m, n=max(1, op.n // s) if op.is_gemm else op.n, k=op.k,
            weight_bytes=op.weight_bytes / s,
            activation_bytes=op.activation_bytes / s,
            kv_read_bytes=op.kv_read_bytes / s,
            kv_write_bytes=op.kv_write_bytes / s,
            extra_flops=op.extra_flops / s,
        )

    def _allreduce_time(self, model: ModelConfig, rows: int,
                        dtype_bytes: int = 2) -> float:
        """Two hidden-state allreduces per layer (ring: 2(S-1)/S volume)."""
        s = self.tp.degree
        if s == 1:
            return 0.0
        payload = 2 * model.n_layers * rows * model.d_model * dtype_bytes
        ring_volume = payload * 2 * (s - 1) / s
        bandwidth = (self.interconnect.effective_bw
                     * self.tp.allreduce_efficiency)
        latency = 2 * model.n_layers * self.interconnect.latency_s
        return ring_volume / bandwidth + latency

    def _pass_time(self, executor: OperatorExecutor, ops, model: ModelConfig,
                   rows: int):
        sharded = [self._shard_op(op) for op in ops]
        timings = executor.time_ops(sharded)
        comm = self._allreduce_time(model, rows)
        return timings, comm

    def run(self, model: ModelConfig,
            request: InferenceRequest = InferenceRequest()) -> InferenceResult:
        """Simulate the TP request; phase times include allreduce costs."""
        executor = self._base._executor(model, request)

        prefill_timings, prefill_comm = self._pass_time(
            executor,
            prefill_ops(model, request.batch_size, request.input_len,
                        request.dtype),
            model, request.batch_size * request.input_len)
        prefill = phase_stats_from_timings("prefill", prefill_timings)
        prefill = dataclasses.replace(
            prefill, time_s=prefill.time_s + prefill_comm)

        decode_phases = []
        for step in range(request.decode_steps):
            timings, comm = self._pass_time(
                executor,
                decode_step_ops(model, request.batch_size,
                                request.input_len + step, request.dtype),
                model, request.batch_size)
            stats = phase_stats_from_timings(f"decode[{step}]", timings)
            decode_phases.append(
                dataclasses.replace(stats, time_s=stats.time_s + comm))
        decode = (merge_phase_stats("decode", decode_phases)
                  if decode_phases
                  else phase_stats_from_timings("decode", []))

        return InferenceResult(
            model_name=model.name,
            platform_name=self.platform.name,
            request=request,
            prefill=prefill,
            decode=decode,
            config_label=f"tp{self.tp.degree}/{self._base.config_label}",
        )


def tp_speedup(platform: Platform, model: ModelConfig,
               request: InferenceRequest = InferenceRequest(),
               tp: TPConfig = TPConfig()) -> float:
    """E2E speedup of TP over single-socket execution (>1 = TP wins)."""
    single = InferenceSimulator(platform).run(model, request)
    parallel = TensorParallelSimulator(platform, tp).run(model, request)
    return single.e2e_s / parallel.e2e_s
