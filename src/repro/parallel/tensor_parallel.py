"""Tensor-parallel execution across CPU sockets.

The paper's 96-core result (Key Finding #3) shows that *naively* spanning
two sockets loses: shared-nothing threads scatter accesses across UPI.
Tensor parallelism is the disciplined alternative — shard every weight
matrix across sockets so each socket streams only half the bytes from its
*local* HBM, and pay an explicit allreduce on the hidden state twice per
layer (after attention out-proj and after the FFN down-proj).

Per decode step with TP degree ``S``:

* local weight traffic per socket: ``weights / S`` (the win — decode is
  bandwidth-bound and both sockets' HBM now contributes);
* allreduce traffic: ``2 * n_layers * batch * d_model`` elements cross
  UPI per step (the cost — small for decode, growing with batch);
* compute also shards ``1/S`` (irrelevant for decode, helpful for
  prefill).

The model predicts when TP=2 beats one socket: whenever the halved weight
stream saves more than the UPI allreduce costs — which for decode at
small batch is essentially always, making TP the fix for KF#3's
"96 cores are worse" observation.

:class:`TensorParallelSimulator` is a thin adapter over
:class:`~repro.engine.backend.TensorParallelBackend` (which owns the
sharding rewrite and the allreduce model, and also composes with
quantization and the serving/cluster layers); :class:`TPConfig` lives in
the backend module and is re-exported here unchanged.
"""

import dataclasses

# TPConfig moved to the backend layer (re-exported here for the public
# API); shard_op is the module-level form of the old _shard_op method.
from repro.engine.backend import TensorParallelBackend, TPConfig, shard_op
from repro.engine.inference import (
    DEFAULT_ENGINE_CONFIG,
    EngineConfig,
    InferenceSimulator,
)
from repro.engine.request import InferenceRequest
from repro.engine.results import InferenceResult
from repro.hardware.interconnect import Interconnect, upi_link
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.layers import Op

__all__ = ["TPConfig", "TensorParallelSimulator", "tp_speedup"]


class TensorParallelSimulator:
    """Simulates TP inference across a CPU server's sockets.

    Args:
        platform: CPU platform (single-socket spec; TP shards across its
            ``topology.sockets`` sockets).
        tp: TP configuration.
        config: Per-socket engine configuration.
        interconnect: Socket-to-socket link (UPI by default).
    """

    def __init__(self, platform: Platform, tp: TPConfig = TPConfig(),
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG,
                 interconnect: Interconnect = None):
        if not platform.is_cpu or platform.topology is None:
            raise ValueError(f"{platform.name} is not a CPU platform")
        if tp.degree > platform.topology.sockets:
            raise ValueError(
                f"TP degree {tp.degree} exceeds {platform.topology.sockets} "
                "sockets")
        self.platform = platform
        self.tp = tp
        self.config = config
        self.interconnect = interconnect or upi_link()
        self.backend = TensorParallelBackend(tp=tp,
                                             interconnect=self.interconnect)
        self._base = InferenceSimulator(platform, config)

    def _shard_op(self, op: Op) -> Op:
        """Shard one operator across the TP group (see backend.shard_op)."""
        return shard_op(op, self.tp.degree)

    def _allreduce_time(self, model: ModelConfig, rows: int,
                        dtype_bytes: int = 2) -> float:
        """Two hidden-state allreduces per layer (ring: 2(S-1)/S volume)."""
        return self.backend.allreduce_s(model, rows, dtype_bytes)

    def run(self, model: ModelConfig,
            request: InferenceRequest = InferenceRequest()) -> InferenceResult:
        """Simulate the TP request; phase times include allreduce costs."""
        backend = TensorParallelBackend(tp=self.tp,
                                        interconnect=self.interconnect,
                                        dtype=request.dtype)
        simulator = InferenceSimulator(self.platform, self.config, backend)
        # exact=True keeps the per-step decode loop this simulator always
        # used, so results are bit-identical to the pre-backend revision.
        result = simulator.run(model, request, exact=True)
        return dataclasses.replace(
            result,
            config_label=f"tp{self.tp.degree}/{self._base.config_label}")


def tp_speedup(platform: Platform, model: ModelConfig,
               request: InferenceRequest = InferenceRequest(),
               tp: TPConfig = TPConfig()) -> float:
    """E2E speedup of TP over single-socket execution (>1 = TP wins)."""
    single = InferenceSimulator(platform).run(model, request)
    parallel = TensorParallelSimulator(platform, tp).run(model, request)
    return single.e2e_s / parallel.e2e_s
