"""Pipeline-parallel execution across CPU sockets.

The alternative to tensor parallelism for using the second socket: assign
each socket a contiguous *block of layers* (a stage). Activations hop
between stages once per traversal; weights never cross sockets, so data
placement is perfectly local and there is no allreduce.

The latency/throughput split is the textbook one, and the simulator makes
it concrete:

* **per-token latency does not improve** — a token still traverses every
  layer, so decode latency is the *sum* of stage times plus hops (in fact
  slightly worse than one socket when the model fits locally);
* **throughput can nearly double** — with at least as many in-flight
  micro-batches as stages, the steady-state rate is set by the *slowest
  stage*, and each stage streams only its own layer shard from local HBM.

For over-capacity models there is a second effect, same as TP: halving
each socket's weight share can pull a DDR-spilling model back inside HBM,
improving even the latency sum.
"""

import dataclasses
from typing import List

from repro.engine.executor import OperatorExecutor
from repro.engine.inference import (
    DEFAULT_ENGINE_CONFIG,
    EngineConfig,
    InferenceSimulator,
)
from repro.engine.request import InferenceRequest
from repro.hardware.interconnect import Interconnect, upi_link
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.layers import Op
from repro.models.memory import (
    kv_cache_bytes,
    peak_activation_bytes,
    weight_bytes,
)
from repro.models.opgraph import decode_step_ops
from repro.utils.validation import require_positive


@dataclasses.dataclass(frozen=True)
class PPConfig:
    """Pipeline-parallel configuration.

    Attributes:
        stages: Pipeline depth (sockets).
    """

    stages: int = 2

    def __post_init__(self) -> None:
        require_positive(self.stages, "stages")


@dataclasses.dataclass(frozen=True)
class PPEstimate:
    """Projected pipeline-parallel decode behaviour.

    Attributes:
        stage_time_s: Per-stage decode-step time (balanced stages).
        hop_time_s: Activation transfer between adjacent stages.
        token_latency_s: Per-token decode latency (sum of stages + hops).
        steady_throughput: Tokens/s at steady state with the pipeline full.
        single_socket_step_s: Reference single-socket decode step.
    """

    stage_time_s: float
    hop_time_s: float
    token_latency_s: float
    steady_throughput: float
    single_socket_step_s: float

    @property
    def latency_ratio(self) -> float:
        """PP token latency over single-socket (>1 = PP latency is worse)."""
        return self.token_latency_s / self.single_socket_step_s

    @property
    def throughput_gain(self) -> float:
        """Steady-state throughput over the single-socket token rate.

        Both rates serve the same batch, so the gain reduces to the ratio
        of the single-socket step time to the pipeline's bottleneck
        interval (slowest stage + hop).
        """
        return self.single_socket_step_s / (self.stage_time_s + self.hop_time_s)


class PipelineParallelSimulator:
    """Estimates pipeline-parallel decode behaviour on a CPU server.

    Args:
        platform: CPU platform (single-socket spec; stages map to sockets).
        pp: Pipeline configuration.
        config: Per-socket engine configuration.
        interconnect: Stage-to-stage link (UPI).
    """

    def __init__(self, platform: Platform, pp: PPConfig = PPConfig(),
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG,
                 interconnect: Interconnect = None):
        if not platform.is_cpu or platform.topology is None:
            raise ValueError(f"{platform.name} is not a CPU platform")
        if pp.stages > platform.topology.sockets:
            raise ValueError(
                f"{pp.stages} stages exceed {platform.topology.sockets} "
                "sockets")
        self.platform = platform
        self.pp = pp
        self.config = config
        self.interconnect = interconnect or upi_link()
        self._base = InferenceSimulator(platform, config)

    def _stage_ops(self, ops: List[Op]) -> List[Op]:
        """One stage's share: per-layer quantities scaled by 1/stages.

        Per-layer ops (instances == n_layers) shard exactly; the
        embedding/lm-head singletons live on the first/last stage — they
        are charged to the modeled stage, a slight overestimate that keeps
        the stage balanced-or-pessimistic.
        """
        s = self.pp.stages
        sharded = []
        for op in ops:
            sharded.append(dataclasses.replace(
                op,
                instances=max(1, op.instances // s),
                weight_bytes=op.weight_bytes / s,
                activation_bytes=op.activation_bytes / s,
                kv_read_bytes=op.kv_read_bytes / s,
                kv_write_bytes=op.kv_write_bytes / s,
                extra_flops=op.extra_flops / s,
                kernel_launches=max(1, op.kernel_launches // s),
            ))
        return sharded

    def _stage_executor(self, model: ModelConfig,
                        request: InferenceRequest) -> OperatorExecutor:
        """Executor whose bandwidth reflects one stage's local footprint."""
        footprint = (
            weight_bytes(model, request.dtype) / self.pp.stages
            + kv_cache_bytes(model, request.max_seq_len, request.batch_size,
                             request.dtype) / self.pp.stages
            + peak_activation_bytes(model, request.max_seq_len,
                                    request.batch_size, request.dtype))
        return OperatorExecutor(
            self.platform, request.dtype,
            bandwidth=self._base.effective_bandwidth(footprint),
            compute_scale=self._base.compute_scale())

    def estimate(self, model: ModelConfig,
                 request: InferenceRequest = InferenceRequest()) -> PPEstimate:
        """Project decode-step behaviour at mid-generation KV length."""
        kv_len = request.input_len + request.decode_steps // 2
        ops = decode_step_ops(model, request.batch_size, kv_len,
                              request.dtype)

        single = sum(t.time_s for t in
                     self._base._executor(model, request).time_ops(ops))

        stage_executor = self._stage_executor(model, request)
        stage = sum(t.time_s for t in
                    stage_executor.time_ops(self._stage_ops(ops)))

        hop_bytes = request.batch_size * model.d_model * request.dtype.nbytes
        hop = self.interconnect.transfer_time(hop_bytes)

        token_latency = self.pp.stages * stage + (self.pp.stages - 1) * hop
        steady = request.batch_size / max(stage + hop, 1e-12) \
            if self.pp.stages > 1 else request.batch_size / max(stage, 1e-12)

        return PPEstimate(
            stage_time_s=stage,
            hop_time_s=hop,
            token_latency_s=token_latency,
            steady_throughput=steady,
            single_socket_step_s=single,
        )
