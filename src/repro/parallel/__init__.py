"""Multi-socket parallel-execution substrate: tensor and pipeline parallel."""

from repro.parallel.pipeline_parallel import (
    PPConfig,
    PPEstimate,
    PipelineParallelSimulator,
)
from repro.parallel.tensor_parallel import (
    TPConfig,
    TensorParallelSimulator,
    tp_speedup,
)

__all__ = [
    "PPConfig",
    "PPEstimate",
    "PipelineParallelSimulator",
    "TPConfig",
    "TensorParallelSimulator",
    "tp_speedup",
]
