"""Unit constants and conversion helpers.

Conventions used throughout the library:

* sizes are tracked in **bytes** (int or float),
* bandwidths in **bytes per second**,
* compute rates in **FLOP per second**,
* times in **seconds**,
* frequencies in **Hz**.

Decimal (SI) prefixes are used for bandwidth and compute (matching vendor
datasheets such as "588 GB/s" or "206.4 TFLOPS"); binary prefixes are
provided for capacity when needed.
"""

# Decimal size units (used by datasheets: "80 GB" GPU memory, etc.).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# Binary size units (used for cache sizes: "48 KB" L1, "105 MB" L3, ...).
KIB = 1_024
MIB = 1_024 ** 2
GIB = 1_024 ** 3

# Time units, expressed in seconds.
MS = 1e-3
US = 1e-6
NS = 1e-9

# Rates.
TFLOPS = 1e12
GHZ = 1e9


def gb_per_s(value: float) -> float:
    """Convert a bandwidth in GB/s (decimal) to bytes/second."""
    return value * GB


def bytes_to_gb(value: float) -> float:
    """Convert bytes to decimal gigabytes."""
    return value / GB


def bytes_to_gib(value: float) -> float:
    """Convert bytes to binary gibibytes."""
    return value / GIB


def seconds_to_ms(value: float) -> float:
    """Convert seconds to milliseconds."""
    return value / MS
