"""Shared descriptive statistics.

One percentile definition for the whole library: linear interpolation
between order statistics (numpy's default "linear" method). Before this
helper existed, four call sites hand-rolled index-based percentiles with
subtly different behaviour — in particular a nearest-rank p99 that
silently degraded to the maximum on short streams.
"""

from typing import Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile of *values* by linear interpolation.

    Matches ``numpy.percentile(values, q)`` (the "linear" method): the
    rank ``q/100 * (n - 1)`` is split into an integer part and a
    fractional part, and the result interpolates between the two
    neighbouring order statistics. ``q`` must lie in [0, 100]; *values*
    must be non-empty (a percentile of nothing is undefined, so this
    raises rather than guessing).
    """
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    if not values:
        raise ValueError(
            f"percentile(q={q!r}) of an empty sequence is undefined — "
            "the run completed zero requests; check the report before "
            "reading latency statistics")
    ordered = sorted(values)
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    fraction = rank - lower
    if fraction == 0.0 or lower + 1 >= len(ordered):
        return ordered[lower]
    return ordered[lower] + fraction * (ordered[lower + 1] - ordered[lower])


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError(
            "mean() of an empty sequence is undefined — the run "
            "completed zero requests; check the report before reading "
            "latency statistics")
    return sum(values) / len(values)


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index of a non-empty allocation vector.

    ``J = (sum x_i)^2 / (n * sum x_i^2)``, the standard fairness figure
    of merit: 1.0 when every party receives the same allocation, and
    ``1/n`` when one party receives everything. Negative allocations are
    rejected (service received cannot be negative); an all-zero vector
    is perfectly equal — everyone received nothing — and scores 1.0
    rather than evaluating the indeterminate 0/0. An empty vector has no
    fairness to speak of, so, per this module's never-empty convention,
    it raises rather than guessing.
    """
    if not values:
        raise ValueError(
            "jain_index() of an empty sequence is undefined — no tenants "
            "received (or were denied) service; check the report before "
            "reading fairness statistics")
    for value in values:
        if value < 0:
            raise ValueError(f"jain_index() allocations must be >= 0, "
                             f"got {value!r}")
    total = sum(values)
    if total == 0.0:
        return 1.0
    return total * total / (len(values) * sum(v * v for v in values))
