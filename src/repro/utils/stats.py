"""Shared descriptive statistics.

One percentile definition for the whole library: linear interpolation
between order statistics (numpy's default "linear" method). Before this
helper existed, four call sites hand-rolled index-based percentiles with
subtly different behaviour — in particular a nearest-rank p99 that
silently degraded to the maximum on short streams.
"""

from typing import Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile of *values* by linear interpolation.

    Matches ``numpy.percentile(values, q)`` (the "linear" method): the
    rank ``q/100 * (n - 1)`` is split into an integer part and a
    fractional part, and the result interpolates between the two
    neighbouring order statistics. ``q`` must lie in [0, 100]; *values*
    must be non-empty (a percentile of nothing is undefined, so this
    raises rather than guessing).
    """
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    if not values:
        raise ValueError(
            f"percentile(q={q!r}) of an empty sequence is undefined — "
            "the run completed zero requests; check the report before "
            "reading latency statistics")
    ordered = sorted(values)
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    fraction = rank - lower
    if fraction == 0.0 or lower + 1 >= len(ordered):
        return ordered[lower]
    return ordered[lower] + fraction * (ordered[lower + 1] - ordered[lower])


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError(
            "mean() of an empty sequence is undefined — the run "
            "completed zero requests; check the report before reading "
            "latency statistics")
    return sum(values) / len(values)
