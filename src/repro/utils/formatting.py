"""Plain-text table formatting for experiment output.

The benchmark harness prints the same rows/series the paper's figures plot;
these helpers keep that output aligned and reproducible without pulling in
any plotting dependency.
"""

from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


def format_row(cells: Sequence[Cell], widths: Sequence[int]) -> str:
    """Format one table row, right-aligning numbers and left-aligning text."""
    parts: List[str] = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            text = f"{cell:.4g}"
            parts.append(text.rjust(width))
        elif isinstance(cell, int):
            parts.append(str(cell).rjust(width))
        else:
            parts.append(str(cell).ljust(width))
    return "  ".join(parts)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = "") -> str:
    """Render *rows* under *headers* as an aligned monospace table.

    Column widths are derived from content; a separator line follows the
    header. Returns a single string (no trailing newline).
    """
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers), widths))
    lines.append("  ".join("-" * width for width in widths))
    for original in rows:
        lines.append(format_row(list(original), widths))
    return "\n".join(lines)


def normalize_series(values: Sequence[float], baseline: float) -> List[float]:
    """Normalize *values* to *baseline* (the paper normalizes most figures).

    Raises ``ValueError`` on a zero baseline rather than emitting infinities.
    """
    if baseline == 0:
        raise ValueError("cannot normalize to a zero baseline")
    return [value / baseline for value in values]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def series_by_key(rows: Sequence[Dict[str, Cell]], key: str) -> List[Cell]:
    """Extract the column *key* from a list of dict rows, preserving order."""
    return [row[key] for row in rows]
