"""Small argument-validation helpers used across the library.

Raising early with a clear message is preferred over letting a bad value
propagate into a physically meaningless simulation result.
"""

from typing import Any, Collection


def require_positive(value: float, name: str) -> float:
    """Return *value* if it is strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return *value* if it is >= 0, else raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in(value: Any, allowed: Collection[Any], name: str) -> Any:
    """Return *value* if it is a member of *allowed*, else raise ``ValueError``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")
    return value
