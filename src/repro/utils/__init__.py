"""Shared utilities: unit constants, validation helpers, and table formatting.

These helpers are deliberately dependency-free so every other subpackage can
import them without cycles.
"""

from repro.utils.formatting import format_row, format_table, normalize_series
from repro.utils.stats import mean, percentile
from repro.utils.units import (
    GB,
    GHZ,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    MS,
    TB,
    TFLOPS,
    US,
    bytes_to_gb,
    bytes_to_gib,
    gb_per_s,
    seconds_to_ms,
)
from repro.utils.validation import (
    require_in,
    require_non_negative,
    require_positive,
)

__all__ = [
    "GB",
    "GHZ",
    "GIB",
    "KB",
    "KIB",
    "MB",
    "MIB",
    "MS",
    "TB",
    "TFLOPS",
    "US",
    "bytes_to_gb",
    "bytes_to_gib",
    "gb_per_s",
    "seconds_to_ms",
    "format_row",
    "format_table",
    "mean",
    "normalize_series",
    "percentile",
    "require_in",
    "require_non_negative",
    "require_positive",
]
