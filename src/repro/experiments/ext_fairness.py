"""Extension: multi-tenant fairness and admission control at the fleet.

Per-request metrics hide who the capacity went to. This experiment puts
a Zipf-skewed multi-tenant workload (8 users, 2 apps, multi-stage
interactions) through a 2-replica SPR fleet at roughly 2x its service
capacity and asks the two questions a multi-tenant operator actually
has:

1. **Scheduling** — with demand skewed, FCFS admission serves tenants
   in proportion to their (skewed) demand: the heavy tenant monopolizes
   batch slots and everyone else's SLO attainment collapses. The
   virtual-token-counter (VTC) and weighted-service-counter (WSC)
   admission schedulers (:mod:`repro.cluster.admission`) pick the
   least-served ready tenant instead, which converges to (weighted)
   max-min token service — measured here as the Jain fairness index
   over per-tenant served tokens at the contention cutoff.
2. **Throttling** — under the same overload, what does the door buy?
   With a user patience bound (requests whose TTFT blows past the bound
   are abandoned, their generated answers pure waste), no door means
   every admitted request queues and a fifth of all generated tokens
   are wasted on abandoned answers. A per-user sliding-window door
   (:mod:`repro.workloads.throttling`) refuses the overload up front:
   the interaction-level policy (decide at stage 0, never
   mid-interaction) wastes nothing, while the naive per-request policy
   aborts interactions mid-chain and turns their completed stages into
   waste.
"""

from repro.cluster import ClusterConfig, ClusterSimulator, ReplicaSpec, RoundRobinRouter
from repro.core.report import ExperimentReport
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.serving.slo import SLO
from repro.workloads import TenantStream, TenantWorkloadSpec, ThrottleConfig

MODEL_KEY = "llama2-7b"
SLO_TARGET = SLO(ttft_s=2.0, tpot_s=0.2)
SEED = 42
#: ~2x the 2-replica fleet's service rate for this request mix (the
#: makespan runs ~2.2x past the last arrival at this rate).
OVERLOAD_RATE = 8.0
REQUESTS = 300
USERS = 8
#: Patience bound for the throttling scenario: a request whose TTFT
#: exceeds this is abandoned by its user, its answer wasted work.
PATIENCE_TTFT_S = 10.0
#: WSC scenario: tenant 1 (second-heaviest demand) pays for 3x weight.
WSC_WEIGHTS = ((1, 3.0),)
HEADERS = ["scenario", "configuration", "jain index", "attainment",
           "throttle rate", "wasted tokens", "detail"]


def _tenant_spec() -> TenantWorkloadSpec:
    return TenantWorkloadSpec(
        users=USERS,
        apps=2,
        zipf_s=1.4,
        input_len_range=(32, 128),
        output_len_range=(32, 96),
        interaction_stages=(1, 3),
    )


def _stream(throttle=None) -> TenantStream:
    return TenantStream(spec=_tenant_spec(), rate_per_s=OVERLOAD_RATE,
                        count=REQUESTS, seed=SEED, throttle=throttle)


def _run(scheduler, throttle=None, weights=None, abandoned_ttft_s=None):
    """One fleet run; returns (ClusterReport, FairnessReport)."""
    stream = _stream(throttle)
    config = ClusterConfig([ReplicaSpec(
        get_platform("spr"), get_model(MODEL_KEY), count=2, max_batch=8,
        scheduler=scheduler, scheduler_weights=weights)])
    simulator = ClusterSimulator(config.build_fleet(), RoundRobinRouter())
    report = simulator.run(stream.full())
    fairness = report.fairness(stream.decisions(), slo=SLO_TARGET,
                               weights=dict(weights or ()),
                               abandoned_ttft_s=abandoned_ttft_s)
    return report, fairness


def _attainment_spread(fairness) -> str:
    values = [tenant.attainment for tenant in fairness.tenants]
    return f"per-tenant att {min(values):.2f}..{max(values):.2f}"


@register("ext_fairness")
def run() -> ExperimentReport:
    """FCFS vs VTC vs WSC, and door throttling, under skewed overload."""
    rows = []
    jain = {}

    # 1. Admission scheduling under 2x-overload Zipf demand.
    for scheduler, weights in (("fcfs", None), ("vtc", None),
                               ("wsc", WSC_WEIGHTS)):
        report, fairness = _run(scheduler, weights=weights)
        jain[scheduler] = fairness.jain_index
        mean_att = sum(t.attainment for t in fairness.tenants) / USERS
        rows.append([
            "scheduler", scheduler.upper(), f"{fairness.jain_index:.3f}",
            f"{mean_att:.2f}", "0.00", "0",
            _attainment_spread(fairness),
        ])

    # 2. Door throttling with impatient users (VTC fleet throughout).
    throttles = (
        ("no door", None),
        ("door: interaction", ThrottleConfig(window_s=10.0,
                                             max_user_requests=6)),
        ("door: per-request", ThrottleConfig(window_s=10.0,
                                             max_user_requests=6,
                                             policy="request")),
    )
    wasted = {}
    for label, throttle in throttles:
        report, fairness = _run("vtc", throttle=throttle,
                                abandoned_ttft_s=PATIENCE_TTFT_S)
        wasted[label] = fairness.wasted_tokens
        mean_att = sum(t.attainment for t in fairness.tenants) / USERS
        admitted = sum(t.admitted for t in fairness.tenants)
        rows.append([
            "throttling", label, f"{fairness.jain_index:.3f}",
            f"{mean_att:.2f}", f"{fairness.throttle_rate:.2f}",
            str(fairness.wasted_tokens),
            f"{admitted} admitted of {REQUESTS}",
        ])

    notes = [
        f"{USERS} users / Zipf s=1.4 demand at {OVERLOAD_RATE} req/s "
        f"(~2x capacity), {REQUESTS} requests, 2x SPR, max_batch=8.",
        "Jain index over per-tenant served tokens at the last-arrival "
        "cutoff: FCFS mirrors the demand skew "
        f"({jain['fcfs']:.3f}); VTC ({jain['vtc']:.3f}) and WSC "
        f"({jain['wsc']:.3f}) converge to (weighted) max-min service.",
        f"Wasted tokens with {PATIENCE_TTFT_S:.0f}s patience: no door "
        f"{wasted['no door']}, interaction-level door "
        f"{wasted['door: interaction']} (decides before stage 0, never "
        f"aborts), per-request door {wasted['door: per-request']} "
        "(mid-chain refusals abort interactions and waste their "
        "completed stages).",
        "WSC weights: tenant 1 at 3.0, everyone else 1.0; its index is "
        "weighted service, so equal-weighted VTC and weighted WSC "
        "both score near max-min.",
    ]
    return ExperimentReport(
        experiment_id="ext_fairness",
        title="Extension: multi-tenant fairness & admission control "
              "(FCFS vs VTC vs WSC, door throttling)",
        headers=HEADERS,
        rows=rows,
        notes=notes,
    )
