"""Extensions: paged KV capacity, speculative decoding, energy efficiency.

* ``ext_paged_kv`` — vLLM's paged-attention argument (related work
  §VII-C): under the same KV byte budget, paging admits far more
  sequences than max-length contiguous reservations.
* ``ext_specdecode`` — SpecInfer-style speculative decoding (ref [37]):
  because CPU decode is memory-bound, verifying gamma draft tokens in one
  target pass amortizes the weight stream and cuts effective TPOT.
* ``whatif_energy`` — tokens per joule from TDP proxies: the energy
  companion to footnote 1's price analysis.
"""

from repro.analysis.energy import tokens_per_joule
from repro.core.report import ExperimentReport
from repro.core.runner import run_inference
from repro.engine.paged_kvcache import (
    PagedKVCacheManager,
    ReservedKVCacheManager,
    max_admissible_sequences,
)
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.specdecode.model import SpecDecodeConfig, SpeculativeDecoder
from repro.utils.units import GB


@register("ext_paged_kv")
def run_paged_kv() -> ExperimentReport:
    """Admission capacity: paged vs reserved KV under one byte budget."""
    model = get_model("llama2-13b")
    budget = 32 * GB
    rows = []
    for prompt_tokens, max_seq in ((128, 4096), (256, 4096), (512, 2048),
                                   (1024, 2048)):
        paged = PagedKVCacheManager(model, budget)
        reserved = ReservedKVCacheManager(model, budget, max_seq_len=max_seq)
        admitted_paged = max_admissible_sequences(paged, prompt_tokens)
        admitted_reserved = max_admissible_sequences(reserved, prompt_tokens)
        rows.append([
            prompt_tokens, max_seq,
            admitted_reserved, admitted_paged,
            admitted_paged / max(1, admitted_reserved),
            reserved.utilization, paged.utilization,
        ])
    notes = [
        "reserved allocation strands (max_seq - prompt) tokens per "
        "sequence; paging allocates only live blocks",
        "this is the vLLM mechanism that 'allows the system to batch more "
        "sequences together' (paper Section VII-C), quantified",
    ]
    return ExperimentReport(
        experiment_id="ext_paged_kv",
        title="Paged vs reserved KV cache (LLaMA2-13B, 32 GB budget)",
        headers=["prompt", "max_seq", "reserved admits", "paged admits",
                 "gain", "reserved util", "paged util"],
        rows=rows,
        notes=notes,
    )


@register("ext_specdecode")
def run_specdecode() -> ExperimentReport:
    """Speculative decoding on the SPR CPU with an OPT-1.3B draft."""
    spr = get_platform("spr")
    draft = get_model("opt-1.3b")
    rows = []
    for target_key in ("opt-13b", "opt-30b", "opt-66b"):
        target = get_model(target_key)
        for gamma in (2, 4, 8):
            decoder = SpeculativeDecoder(
                spr, target, draft,
                SpecDecodeConfig(gamma=gamma, acceptance_rate=0.8))
            estimate = decoder.estimate(InferenceRequest(batch_size=1))
            rows.append([
                target.name, gamma,
                estimate.baseline_tpot_s * 1000,
                estimate.effective_tpot_s * 1000,
                estimate.speedup,
            ])
    best = max(rows, key=lambda row: row[4])
    notes = [
        "decode reads all target weights per token; verification reads "
        "them once per gamma+1 candidates, so memory-bound platforms gain "
        "nearly the acceptance-weighted draft length",
        f"best observed: {best[0]} at gamma={best[1]}: {best[4]:.1f}x TPOT",
        "gains grow with target size — bigger weight streams amortize more",
    ]
    return ExperimentReport(
        experiment_id="ext_specdecode",
        title="Speculative decoding on SPR (draft OPT-1.3B, alpha=0.8)",
        headers=["target", "gamma", "baseline TPOT ms", "spec TPOT ms",
                 "speedup"],
        rows=rows,
        notes=notes,
    )


@register("whatif_energy")
def run_energy() -> ExperimentReport:
    """Tokens per joule across the testbed (TDP proxies)."""
    request = InferenceRequest(batch_size=1)
    rows = []
    for model_key in ("opt-13b", "opt-66b"):
        model = get_model(model_key)
        for platform_key in ("icl", "spr", "a100", "h100"):
            platform = get_platform(platform_key)
            try:
                result = run_inference(platform, model, request)
            except Exception:
                continue
            rows.append([model.name, platform.name,
                         result.e2e_throughput,
                         tokens_per_joule(result)])
    notes = [
        "for in-memory models GPUs win energy efficiency (more tokens per "
        "joule despite higher TDP); offloaded models invert the ranking — "
        "the PCIe-stalled GPU burns TDP while waiting",
    ]
    return ExperimentReport(
        experiment_id="whatif_energy",
        title="Energy efficiency (tokens/joule, TDP proxy, batch 1)",
        headers=["model", "platform", "tokens/s", "tokens/J"],
        rows=rows,
        notes=notes,
    )


@register("calibration")
def run_calibration() -> ExperimentReport:
    """All DESIGN.md §5 calibration targets: paper vs measured vs band."""
    from repro.calibration.targets import check_all_targets
    rows = []
    for result in check_all_targets():
        target = result.target
        rows.append([
            target.target_id,
            target.description,
            target.paper_value,
            result.measured,
            f"[{target.band[0]:g}, {target.band[1]:g}]",
            "OK" if result.in_band else "OUT",
        ])
    in_band = sum(1 for row in rows if row[5] == "OK")
    return ExperimentReport(
        experiment_id="calibration",
        title="Calibration targets (DESIGN.md §5)",
        headers=["target", "description", "paper", "measured", "band",
                 "verdict"],
        rows=rows,
        notes=[f"{in_band}/{len(rows)} targets inside their bands"],
    )
