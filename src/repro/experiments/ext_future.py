"""Extensions: batch-scaling knees and the next-CPU-generation sweep.

* ``ext_batch_knee`` — fit the saturating throughput(batch) curve per
  platform and report the knee batch: where more batching stops paying.
* ``whatif_future_cpu`` — sweep hypothetical SPR successors (scaled AMX
  peak x scaled memory bandwidth) against the H100 for an in-memory
  model: which axis closes the gap, and how much of it is needed.
"""

from repro.analysis.scaling_laws import measure_batch_scaling
from repro.core.report import ExperimentReport
from repro.core.runner import run_inference
from repro.engine.inference import simulate
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.future import scaled_spr
from repro.hardware.registry import get_platform
from repro.models.registry import get_model


@register("ext_batch_knee")
def run_batch_knee() -> ExperimentReport:
    """Fitted throughput-saturation knees per platform (LLaMA2-13B)."""
    model = get_model("llama2-13b")
    rows = []
    for platform_key in ("icl", "spr", "h100"):
        platform = get_platform(platform_key)
        fit = measure_batch_scaling(platform, model)
        rows.append([
            platform.name,
            fit.t_max,
            fit.b_half,
            fit.knee_batch(0.8),
            fit.fit_error() * 100,
        ])
    notes = [
        "throughput follows T(b) = T_max * b/(b + b_half): weights "
        "amortize across the batch until compute saturates",
        "lower-bandwidth platforms saturate at smaller batches (their "
        "asymptote is compute-set and nearer); the knee column is the "
        "smallest batch reaching 80% of the asymptote",
    ]
    return ExperimentReport(
        experiment_id="ext_batch_knee",
        title="Batch-scaling knees (LLaMA2-13B, fitted saturation curves)",
        headers=["platform", "fitted T_max tok/s", "b_half",
                 "knee batch (80%)", "fit err %"],
        rows=rows,
        notes=notes,
    )


@register("whatif_future_cpu")
def run_future_cpu() -> ExperimentReport:
    """Scaled-SPR sweep vs H100 for in-memory OPT-13B at batch 1."""
    model = get_model("opt-13b")
    request = InferenceRequest(batch_size=1)
    h100 = run_inference(get_platform("h100"), model, request)
    rows = []
    for compute_scale, bandwidth_scale in (
            (1, 1), (2, 1), (4, 1), (1, 2), (1, 3), (2, 2), (2, 3)):
        platform = scaled_spr(compute_scale, bandwidth_scale)
        result = simulate(platform, model, request)
        rows.append([
            f"{compute_scale}x AMX, {bandwidth_scale}x BW",
            result.ttft_s * 1000,
            result.tpot_s * 1000,
            result.e2e_s / h100.e2e_s,
        ])
    baseline = rows[0][3]
    bw_only = next(row[3] for row in rows if row[0] == "1x AMX, 3x BW")
    compute_only = next(row[3] for row in rows if row[0] == "4x AMX, 1x BW")
    notes = [
        f"H100 reference: {h100.e2e_s * 1000:.0f} ms E2E; stock SPR is "
        f"{baseline:.1f}x slower",
        f"4x AMX alone barely moves E2E ({compute_only:.2f}x vs H100) — "
        "batch-1 serving is decode-dominated and decode is bandwidth-"
        f"bound; 3x bandwidth alone reaches {bw_only:.2f}x",
        "conclusion: the next CPU generation's inference-relevant axis is "
        "memory bandwidth (MCR DIMMs / faster HBM), not more TMUL tiles",
    ]
    return ExperimentReport(
        experiment_id="whatif_future_cpu",
        title="Future-CPU sweep vs H100 (OPT-13B, batch 1, in-memory)",
        headers=["SPR successor", "TTFT ms", "TPOT ms", "E2E vs H100"],
        rows=rows,
        notes=notes,
    )
