"""Fig. 10 — prefill and decode throughput, ICL vs SPR.

Paper reference bands: prefill throughput improves 6.3x-9.1x; decode
throughput improves 2.7x-5.5x.
"""

from typing import Dict, List

from repro.core.comparison import compare_platforms
from repro.core.report import ExperimentReport
from repro.experiments._sweeps import cpu_sweep
from repro.experiments.base import register


@register("fig10")
def run() -> ExperimentReport:
    """SPR throughput gain over ICL per (model, batch), both phases."""
    comparisons = compare_platforms(cpu_sweep(), "ICL-8352Y", "SPR-Max-9468")
    table = []
    prefill_by_model: Dict[str, List[float]] = {}
    decode_by_model: Dict[str, List[float]] = {}
    for comp in comparisons:
        prefill_gain = comp.normalized["prefill_throughput"]
        decode_gain = comp.normalized["decode_throughput"]
        table.append([comp.model, comp.batch_size, prefill_gain, decode_gain])
        prefill_by_model.setdefault(comp.model, []).append(prefill_gain)
        decode_by_model.setdefault(comp.model, []).append(decode_gain)

    prefill_avg = [sum(v) / len(v) for v in prefill_by_model.values()]
    decode_avg = [sum(v) / len(v) for v in decode_by_model.values()]
    notes = [
        "paper: prefill throughput gain 6.3x-9.1x; measured "
        f"{min(prefill_avg):.1f}x-{max(prefill_avg):.1f}x",
        "paper: decode throughput gain 2.7x-5.5x; measured "
        f"{min(decode_avg):.1f}x-{max(decode_avg):.1f}x",
    ]
    return ExperimentReport(
        experiment_id="fig10",
        title="Prefill/decode throughput gain, SPR over ICL",
        headers=["model", "batch", "prefill gain", "decode gain"],
        rows=table,
        notes=notes,
    )
