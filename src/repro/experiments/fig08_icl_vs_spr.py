"""Fig. 8 — end-to-end latency and throughput, ICL vs SPR (normalized to ICL).

Paper reference bands: SPR reduces E2E latency by 68.4%-84.1% per model on
average, and improves token throughput 3.2x-6.3x.
"""

from repro.core.comparison import compare_platforms, per_model_speedup_range
from repro.core.report import ExperimentReport
from repro.experiments._sweeps import cpu_sweep
from repro.experiments.base import register
from repro.models.registry import evaluated_models


@register("fig8")
def run() -> ExperimentReport:
    """Normalized SPR E2E latency and throughput per (model, batch)."""
    rows_data = cpu_sweep()
    comparisons = compare_platforms(rows_data, "ICL-8352Y", "SPR-Max-9468")
    table = []
    for comp in comparisons:
        table.append([
            comp.model,
            comp.batch_size,
            comp.normalized["e2e_s"],
            comp.normalized["e2e_throughput"],
            comp.e2e_latency_reduction_pct,
        ])

    speedups = per_model_speedup_range(comparisons)
    lo, hi = min(speedups.values()), max(speedups.values())
    reductions = {m: (1.0 - 1.0 / s) * 100 for m, s in speedups.items()}
    notes = [
        "paper: per-model avg E2E latency reduction 68.4%-84.1%; "
        f"measured {min(reductions.values()):.1f}%-{max(reductions.values()):.1f}%",
        f"paper: throughput gain 3.2x-6.3x; measured {lo:.1f}x-{hi:.1f}x",
        "SPR wins for every model and batch size (normalized E2E < 1.0)",
    ]
    return ExperimentReport(
        experiment_id="fig8",
        title="ICL vs SPR end-to-end (normalized to ICL)",
        headers=["model", "batch", "norm E2E latency", "norm throughput",
                 "latency reduction %"],
        rows=table,
        notes=notes,
    )
