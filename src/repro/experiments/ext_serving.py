"""Extension: batching-policy study (static vs continuous batching).

The paper's related work (Section VII-C) surveys the batching systems —
FasterTransformer's request-level batches, Orca's iteration-level
scheduling, vLLM's paged batching — that make its large-batch sweeps
realistic in production. This experiment quantifies the scheduling gap on
the simulated SPR CPU: same cost model, same arrivals, different policy.
"""

from repro.core.report import ExperimentReport
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.serving.arrivals import poisson_arrivals
from repro.serving.scheduler import BatchingSimulator
from repro.utils.stats import percentile
from repro.workloads.generator import chatbot_workload

ARRIVAL_RATES = (0.5, 1.0, 2.0, 4.0)
REQUEST_COUNT = 24
SEED = 11


@register("ext_serving")
def run() -> ExperimentReport:
    """Static vs continuous batching across arrival rates on the SPR CPU."""
    simulator = BatchingSimulator(get_platform("spr"),
                                  get_model("llama2-7b"), max_batch=8)
    rows = []
    ttft_gains = []
    for rate in ARRIVAL_RATES:
        arrivals = poisson_arrivals(rate, REQUEST_COUNT,
                                    chatbot_workload(), seed=SEED)
        static = simulator.run_static(arrivals)
        continuous = simulator.run_continuous(arrivals)
        ttft_gains.append(static.mean_ttft_s / continuous.mean_ttft_s)
        rows.append([
            rate,
            static.throughput, continuous.throughput,
            static.mean_ttft_s, continuous.mean_ttft_s,
            static.p95_ttft_s, continuous.p95_ttft_s,
            percentile([r.ttft_s for r in continuous.completed], 99),
        ])
    notes = [
        "continuous (iteration-level) batching admits requests the moment "
        "slots free up: TTFT improves "
        f"{min(ttft_gains):.1f}x-{max(ttft_gains):.0f}x across load levels",
        "throughput also improves — finished sequences stop occupying "
        "batch slots (the Orca/vLLM result, reproduced on the CPU model)",
    ]
    return ExperimentReport(
        experiment_id="ext_serving",
        title="Batching policies on SPR (LLaMA2-7B, chatbot arrivals)",
        headers=["rate req/s", "static tok/s", "cont tok/s",
                 "static TTFT s", "cont TTFT s", "static p95 s",
                 "cont p95 s", "cont p99 s"],
        rows=rows,
        notes=notes,
    )
