"""Fig. 7 — KV-cache footprint vs sequence length and batch size.

LLaMA2-13B; the dotted line in the paper's figure is the model size
(~26 GB FP16). Expected shape: linear growth in both axes, crossing the
model size at large batch x sequence products.
"""

from repro.core.report import ExperimentReport
from repro.experiments.base import register
from repro.models.memory import kv_cache_bytes, weight_bytes
from repro.models.registry import get_model
from repro.utils.units import bytes_to_gb

SEQ_LENS = (512, 1024, 2048, 4096, 8192, 16384, 32768)
BATCHES = (1, 4, 8, 16, 32)


@register("fig7")
def run() -> ExperimentReport:
    """KV GB for LLaMA2-13B across (seq_len, batch) with model-size marker."""
    model = get_model("llama2-13b")
    model_gb = bytes_to_gb(weight_bytes(model))
    rows = []
    crossings = []
    for seq in SEQ_LENS:
        row = [seq]
        for batch in BATCHES:
            gb = bytes_to_gb(kv_cache_bytes(model, seq, batch))
            row.append(gb)
            if gb > model_gb and (seq, batch) not in crossings:
                crossings.append((seq, batch))
        rows.append(row)
    first_cross = min(crossings, key=lambda sb: sb[0] * sb[1]) if crossings else None
    notes = [
        f"model size marker (dotted line in paper): {model_gb:.1f} GB FP16",
        "KV grows linearly in both sequence length and batch size",
        f"KV first exceeds model size at seq x batch = {first_cross}"
        if first_cross else "KV never exceeds model size in swept range",
    ]
    return ExperimentReport(
        experiment_id="fig7",
        title="LLaMA2-13B KV-cache footprint (GB)",
        headers=["seq_len"] + [f"batch={b}" for b in BATCHES],
        rows=rows,
        notes=notes,
    )
