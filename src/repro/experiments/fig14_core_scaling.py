"""Fig. 14 — normalized metrics across core counts (12/24/48/96).

Metrics averaged across all evaluated LLMs and batch sizes, normalized to
12 cores. Paper anchors: 48 cores give a 59.8% E2E latency reduction,
65.9% prefill and 54.6% decode reductions, 2.2x prefill and 1.7x decode
throughput; 96 cores regress due to UPI traffic (Key Finding #3).
"""

from typing import Dict, List

from repro.core.metrics import ALL_METRICS, METRIC_LABELS, average_summaries
from repro.core.report import ExperimentReport
from repro.core.runner import CharacterizationSweep
from repro.engine.inference import EngineConfig
from repro.engine.request import EVALUATED_BATCH_SIZES
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import evaluated_models
from repro.scaling.cores import EVALUATED_CORE_COUNTS


@register("fig14")
def run() -> ExperimentReport:
    """Average metrics per core count, normalized to 12 cores."""
    spr = get_platform("spr")
    models = evaluated_models()
    averages: Dict[int, Dict[str, float]] = {}
    for cores in EVALUATED_CORE_COUNTS:
        sweep = CharacterizationSweep(
            [spr], models, EVALUATED_BATCH_SIZES,
            config=EngineConfig(cores=cores))
        rows = sweep.run()
        averages[cores] = average_summaries([row.metrics for row in rows])

    baseline = averages[12]
    table: List[list] = []
    for cores, avg in averages.items():
        table.append([cores] + [avg[m] / baseline[m] for m in ALL_METRICS])

    e2e_48 = averages[48]["e2e_s"] / baseline["e2e_s"]
    ttft_48 = averages[48]["ttft_s"] / baseline["ttft_s"]
    tpot_48 = averages[48]["tpot_s"] / baseline["tpot_s"]
    notes = [
        f"paper: 48 cores reduce E2E by 59.8%; measured {(1 - e2e_48) * 100:.1f}%",
        f"paper: prefill -65.9% / decode -54.6%; measured "
        f"{(1 - ttft_48) * 100:.1f}% / {(1 - tpot_48) * 100:.1f}%",
        "96 cores regress vs 48: cross-socket UPI traffic caps effective "
        "bandwidth (Key Finding #3)",
    ]
    return ExperimentReport(
        experiment_id="fig14",
        title="Core-count scaling (normalized to 12 cores)",
        headers=["cores"] + [METRIC_LABELS[m] for m in ALL_METRICS],
        rows=table,
        notes=notes,
    )
