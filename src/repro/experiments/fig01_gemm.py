"""Fig. 1 — GEMM throughput across CPUs and GPUs vs. matrix dimension.

The paper's motivating figure: square BF16 GEMMs on the ICL 8352Y, the
AMX-enabled SPR Max 9468, and A100/H100 GPUs. Expected shape: GPUs on top,
the AMX CPU within an order of magnitude of the A100 at large sizes, and
the AVX-512-only ICL far below all three.
"""

from typing import List

from repro.core.report import ExperimentReport
from repro.experiments.base import register
from repro.gemm.simulator import GemmSimulator
from repro.hardware.registry import all_platforms

#: Square matrix dimensions swept (paper varies dimensions to 8K-class).
GEMM_SIZES = (256, 512, 1024, 2048, 4096, 8192)


@register("fig1")
def run() -> ExperimentReport:
    """Achieved TFLOP/s per platform per square-GEMM size."""
    platforms = all_platforms()
    order = ["icl", "spr", "a100", "h100"]
    headers = ["M=N=K"] + [platforms[key].name for key in order]
    rows: List[list] = []
    sims = {key: GemmSimulator(platforms[key]) for key in order}
    for size in GEMM_SIZES:
        row: list = [size]
        for key in order:
            row.append(sims[key].throughput_tflops(size, size, size))
        rows.append(row)

    large = rows[-1]
    notes = [
        "paper shape: H100 > A100 > SPR(AMX) >> ICL(AVX-512) at large sizes",
        f"measured at 8192^3: ICL {large[1]:.0f}, SPR {large[2]:.0f}, "
        f"A100 {large[3]:.0f}, H100 {large[4]:.0f} TFLOP/s",
        "AMX-equipped SPR reaches within ~25% of A100-class throughput at "
        "large dims while ICL saturates near its 18 TFLOPS vector peak",
    ]
    return ExperimentReport(
        experiment_id="fig1",
        title="GEMM throughput (TFLOP/s) vs matrix dimension",
        headers=headers,
        rows=rows,
        notes=notes,
    )
