"""Experiment registry.

Every reproduced table/figure registers a zero-argument runner returning an
:class:`~repro.core.report.ExperimentReport`. The benchmark harness, the
``examples/`` scripts, and the EXPERIMENTS.md generator all drive the same
registry, so figure definitions live in exactly one place.
"""

from typing import Callable, Dict, List

from repro.core.report import ExperimentReport

ExperimentRunner = Callable[[], ExperimentReport]

_REGISTRY: Dict[str, ExperimentRunner] = {}


def register(experiment_id: str):
    """Class-level decorator registering an experiment runner."""
    def wrap(func: ExperimentRunner) -> ExperimentRunner:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = func
        return func
    return wrap


def run_experiment(experiment_id: str) -> ExperimentReport:
    """Run one registered experiment by id (e.g. ``"fig8"``)."""
    if experiment_id not in _REGISTRY:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: "
                       f"{sorted(_REGISTRY)}")
    return _REGISTRY[experiment_id]()


def all_experiment_ids() -> List[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)


def run_all_experiments() -> List[ExperimentReport]:
    """Run the full registry (EXPERIMENTS.md generation)."""
    return [run_experiment(eid) for eid in all_experiment_ids()]
