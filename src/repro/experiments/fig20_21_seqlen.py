"""Figs. 20 and 21 — sensitivity to input sequence length (batch 1 and 16).

Input length sweeps 128-1024 with 32 output tokens, CPU vs A100 vs H100.
Paper anchors:

* batch 1 (Fig. 20): GPU latency stays stable with input length while the
  CPU varies more; for LLaMA2-70B the CPU wins at *all* sequence lengths;
* batch 16 (Fig. 21): for LLaMA2-70B the H100 achieves lower latency than
  the CPU from input length 256 onward, while the A100 never does.
"""

from typing import List

from repro.core.runner import run_inference
from repro.core.report import ExperimentReport
from repro.engine.request import EVALUATED_INPUT_LENGTHS, InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model

#: Models plotted in the sequence-length figures.
SEQLEN_MODELS = ("opt-13b", "opt-30b", "opt-66b", "llama2-70b")


def _seqlen_report(batch_size: int, experiment_id: str) -> ExperimentReport:
    spr = get_platform("spr")
    a100 = get_platform("a100")
    h100 = get_platform("h100")
    rows: List[list] = []
    winners = {}
    for model_key in SEQLEN_MODELS:
        model = get_model(model_key)
        for input_len in EVALUATED_INPUT_LENGTHS:
            request = InferenceRequest(batch_size=batch_size,
                                       input_len=input_len)
            cpu = run_inference(spr, model, request)
            ga = run_inference(a100, model, request)
            gh = run_inference(h100, model, request)
            best = min((cpu.e2e_s, "SPR"), (ga.e2e_s, "A100"),
                       (gh.e2e_s, "H100"))[1]
            winners[(model.name, input_len)] = best
            rows.append([model.name, input_len, cpu.e2e_s, ga.e2e_s,
                         gh.e2e_s, best])

    notes = []
    seventy = [winners[("LLaMA2-70B", il)] for il in EVALUATED_INPUT_LENGTHS]
    if batch_size == 1:
        notes.append(
            f"LLaMA2-70B winners across 128-1024: {seventy} "
            "(paper: CPU wins at all sequence lengths at batch 1)")
    else:
        crossover = next((il for il, w in zip(EVALUATED_INPUT_LENGTHS, seventy)
                          if w == "H100"), None)
        notes.append(
            f"LLaMA2-70B: H100 overtakes the CPU at input length "
            f"{crossover} (paper: >=256); A100 never overtakes: "
            f"{'A100' not in seventy}")
    notes.append("GPU latency is nearly flat in input length (prefill is "
                 "cheap next to weight streaming); CPU latency grows with "
                 "prefill compute")
    return ExperimentReport(
        experiment_id=experiment_id,
        title=f"Sequence-length sensitivity, batch={batch_size} "
              "(E2E seconds)",
        headers=["model", "input len", "SPR s", "A100 s", "H100 s", "winner"],
        rows=rows,
        notes=notes,
    )


@register("fig20")
def run_fig20() -> ExperimentReport:
    """Input-length sweep at batch 1 (Fig. 20)."""
    return _seqlen_report(1, "fig20")


@register("fig21")
def run_fig21() -> ExperimentReport:
    """Input-length sweep at batch 16 (Fig. 21)."""
    return _seqlen_report(16, "fig21")
