"""Extensions: disaggregation, multi-tenancy, long-context GQA study.

* ``ext_disagg`` — prefill on the GPU, decode on the CPU, KV handed off
  once over PCIe: extends Section VI's hybrid idea along the phase axis
  and scores it on cost-weighted throughput.
* ``ext_tenancy`` — bandwidth contention when co-locating tenants on one
  SPR socket: decode degrades with the bandwidth split, prefill with the
  core split (the paper's utilization pitch, quantified).
* ``ext_longcontext`` — decode cost vs context length out to 32K for an
  MHA model (OPT-66B) vs a GQA model (LLaMA2-70B): GQA's 8x smaller KV
  defers the point where cache reads dominate weight reads.
"""

from repro.core.report import ExperimentReport
from repro.engine.inference import InferenceSimulator
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.memory import kv_cache_bytes, weight_bytes
from repro.models.registry import get_model
from repro.optim.disaggregation import DisaggregatedPlanner
from repro.serving.multitenancy import tenancy_sweep
from repro.utils.units import GB


@register("ext_disagg")
def run_disagg() -> ExperimentReport:
    """GPU-prefill + CPU-decode vs single-device serving."""
    planner = DisaggregatedPlanner(get_platform("spr"), get_platform("h100"))
    rows = []
    for model_key, input_len in (("opt-13b", 128), ("opt-13b", 1024),
                                 ("llama2-13b", 1024)):
        model = get_model(model_key)
        request = InferenceRequest(batch_size=1, input_len=input_len)
        estimate = planner.estimate(model, request)
        per_dollar = planner.cost_weighted_throughput(model, request)
        rows.append([
            model.name, input_len,
            estimate.gpu_only_e2e_s, estimate.cpu_only_e2e_s,
            estimate.e2e_s,
            estimate.gpu_occupancy_fraction * 100,
            per_dollar["disaggregated"] / per_dollar["gpu_only"],
        ])
    notes = [
        "disaggregation releases the GPU after prefill — 3-10% occupancy "
        "here — while the CPU absorbs the memory-bound decode",
        "honest finding: per-dollar throughput is roughly a wash (~0.8-"
        "0.9x pure-GPU, last column) because the CPU decodes ~3x slower "
        "at ~1/3 the price; the real win is the 90-97% of GPU time "
        "released to other tenants — the paper's utilization argument, "
        "not a latency or per-dollar one",
    ]
    return ExperimentReport(
        experiment_id="ext_disagg",
        title="Prefill/decode disaggregation (H100 prefill + SPR decode)",
        headers=["model", "input len", "GPU-only s", "CPU-only s",
                 "disagg s", "GPU busy %", "per-$ vs GPU"],
        rows=rows,
        notes=notes,
    )


@register("ext_tenancy")
def run_tenancy() -> ExperimentReport:
    """Co-located tenant slowdowns on one SPR socket."""
    results = tenancy_sweep(get_platform("spr"), get_model("llama2-7b"),
                            InferenceRequest(batch_size=4))
    rows = []
    for outcome in results:
        rows.append([
            outcome.tenants,
            outcome.prefill_slowdown,
            outcome.decode_slowdown,
            outcome.e2e_slowdown,
            outcome.aggregate_throughput_gain,
        ])
    notes = [
        "decode (memory-bound) slows slightly super-linearly in tenants "
        "(bandwidth split plus interleaved-stream contention); prefill "
        "(compute-bound) follows the gentler core-split curve",
        "honest finding: one decode-heavy tenant already saturates socket "
        "bandwidth, so aggregate throughput stays ~flat (0.8-1.0x) — "
        "consolidation hosts n models at little total-throughput cost, "
        "it does not add bandwidth",
    ]
    return ExperimentReport(
        experiment_id="ext_tenancy",
        title="Multi-tenant contention on one SPR socket (LLaMA2-7B, b=4)",
        headers=["tenants", "prefill slowdown", "decode slowdown",
                 "E2E slowdown", "aggregate thpt gain"],
        rows=rows,
        notes=notes,
    )


@register("ext_longcontext")
def run_longcontext() -> ExperimentReport:
    """Decode cost vs context length: MHA (OPT-66B) vs GQA (LLaMA2-70B)."""
    spr = get_platform("spr")
    rows = []
    for model_key in ("opt-66b", "llama2-70b"):
        model = get_model(model_key)
        weights_gb = weight_bytes(model) / GB
        for context in (2048, 8192, 32768):
            # Decode step cost at this cached context (single token).
            simulator = InferenceSimulator(spr)
            request = InferenceRequest(batch_size=1, input_len=context,
                                       output_len=2)
            try:
                result = simulator.run(model, request)
            except Exception:
                rows.append([model.name, context, weights_gb, None, None])
                continue
            kv_gb = kv_cache_bytes(model, context, 1) / GB
            rows.append([model.name, context, weights_gb, kv_gb,
                         result.tpot_s * 1000])
    notes = [
        "OPT-66B (MHA) accumulates 8x more KV per token than LLaMA2-70B "
        "(GQA, 8 of 64 KV heads): at 32K context the MHA cache rivals the "
        "weights themselves and decode cost grows accordingly",
        "GQA is why long-context CPU decode stays weight-dominated — the "
        "architectural lever behind the paper's Fig. 7 concern",
    ]
    return ExperimentReport(
        experiment_id="ext_longcontext",
        title="Long-context decode: MHA vs GQA KV pressure on SPR",
        headers=["model", "context", "weights GB", "KV GB", "TPOT ms"],
        rows=rows,
        notes=notes,
    )
