"""Section VI — proposed optimizations, quantified on the simulator.

1. NUMA-aware SNC allocation: how much of the snc-vs-quad gap software
   placement recovers.
2. Hot/cold cross-socket placement: bandwidth gain from pinning hot
   traffic locally when a model spills past one socket.
3. CPU-GPU hybrid execution: best layer split for offloaded models and
   its gain over pure FlexGen-style offloading.
"""

from repro.core.report import ExperimentReport
from repro.engine.inference import EngineConfig, InferenceSimulator
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.numa.modes import QUAD_FLAT
from repro.optim.hybrid import HybridPlanner
from repro.optim.numa_aware import evaluate_numa_aware_snc, hot_cold_speedup
from repro.utils.units import gb_per_s


@register("sec6")
def run() -> ExperimentReport:
    """Quantify both Section VI optimization proposals."""
    spr = get_platform("spr")
    rows = []
    notes = []

    # 1. NUMA-aware SNC allocation.
    model = get_model("llama2-13b")
    request = InferenceRequest(batch_size=8)
    outcome = evaluate_numa_aware_snc(spr, model, request)
    quad = InferenceSimulator(
        spr, EngineConfig(numa=QUAD_FLAT)).run(model, request)
    rows.append(["numa-aware snc", model.name,
                 f"{outcome.e2e_speedup:.2f}x vs naive snc_flat",
                 f"{outcome.latency_reduction_pct:.1f}% latency reduction"])
    notes.append(
        f"NUMA-aware snc_flat {outcome.optimized.e2e_s:.2f}s vs naive "
        f"{outcome.baseline.e2e_s:.2f}s vs quad_flat {quad.e2e_s:.2f}s — "
        "software placement recovers most of the snc gap")

    # 2. Hot/cold placement for cross-socket spills.
    local_bw = gb_per_s(588.0)   # HBM
    remote_bw = gb_per_s(40.0)   # UPI-limited remote DDR path
    naive_hot = 0.5              # interleaved pages: local share = capacity share
    aware_hot = 0.9              # hot activations/KV pinned locally
    gain = hot_cold_speedup(naive_hot, aware_hot, local_bw, remote_bw)
    rows.append(["hot/cold placement", "cross-socket spill",
                 f"{gain:.2f}x effective bandwidth",
                 f"hot traffic fraction {naive_hot} -> {aware_hot}"])
    notes.append("placing hot activations in HBM/local DDR and cold data "
                 "remotely multiplies effective bandwidth for spilled models")

    # 3. CPU-GPU hybrid execution for offloaded models.
    for gpu_key, model_key in (("a100", "opt-30b"), ("h100", "opt-66b")):
        gpu = get_platform(gpu_key)
        big = get_model(model_key)
        plan = HybridPlanner(spr, gpu).plan(big, InferenceRequest(batch_size=1))
        rows.append([
            "hybrid cpu-gpu", f"{big.name} on {gpu.name}",
            f"{plan.speedup_vs_gpu_offload:.1f}x vs pure offloading",
            f"best CPU layer fraction {plan.cpu_layer_fraction:.2f}",
        ])
    notes.append("assigning layers to the CPU removes PCIe weight streaming "
                 "from the GPU's critical path (paper: 'exploiting CPU "
                 "computation resources can benefit large models')")

    return ExperimentReport(
        experiment_id="sec6",
        title="Section VI optimization studies",
        headers=["optimization", "scenario", "gain", "detail"],
        rows=rows,
        notes=notes,
    )
