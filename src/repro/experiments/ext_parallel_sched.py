"""Extensions: tensor parallelism, chunked prefill, sensitivity, advisor.

* ``ext_tp`` — the disciplined two-socket answer to Key Finding #3:
  sharding weights across sockets (TP=2) nearly doubles decode bandwidth
  at a small allreduce cost, where naive 96-core execution *lost*.
* ``ext_chunked`` — Sarathi-style chunked prefill bounds the worst-case
  inter-token stall that admission prefills inflict on running sequences.
* ``sensitivity`` — do the headline conclusions survive calibration
  error? Sweeps the three most influential knobs.
* ``advisor`` — the paper's findings as a recommender: best deployment
  per (model, priority metric).
"""

from repro.analysis.sensitivity import all_sensitivities
from repro.core.report import ExperimentReport
from repro.engine.inference import InferenceSimulator, EngineConfig
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.optim.advisor import DeploymentAdvisor
from repro.parallel.tensor_parallel import TensorParallelSimulator, TPConfig
from repro.serving.arrivals import poisson_arrivals
from repro.serving.scheduler import BatchingSimulator
from repro.workloads.generator import translation_workload


@register("ext_tp")
def run_tp() -> ExperimentReport:
    """TP=2 across sockets vs single socket vs naive 96 cores."""
    spr = get_platform("spr")
    rows = []
    for model_key in ("llama2-13b", "opt-66b"):
        model = get_model(model_key)
        for batch in (1, 16):
            request = InferenceRequest(batch_size=batch)
            single = InferenceSimulator(spr).run(model, request)
            naive96 = InferenceSimulator(
                spr, EngineConfig(cores=96)).run(model, request)
            tp2 = TensorParallelSimulator(spr, TPConfig(degree=2)).run(
                model, request)
            rows.append([
                model.name, batch,
                single.e2e_s, naive96.e2e_s, tp2.e2e_s,
                single.e2e_s / tp2.e2e_s,
            ])
    notes = [
        "naive 96-core execution LOSES to one socket (Key Finding #3) "
        "while TP=2 over the same two sockets WINS ~1.9x — the difference "
        "is disciplined data placement plus explicit allreduce",
        "TP halves each socket's weight stream; the hidden-state allreduce "
        "over UPI costs microseconds against decode steps of tens of ms",
    ]
    return ExperimentReport(
        experiment_id="ext_tp",
        title="Tensor parallelism across SPR sockets (E2E seconds)",
        headers=["model", "batch", "1 socket", "naive 96c", "TP=2",
                 "TP speedup"],
        rows=rows,
        notes=notes,
    )


@register("ext_chunked")
def run_chunked() -> ExperimentReport:
    """Chunked prefill bounds inter-token stalls (Sarathi, §VII-C)."""
    simulator = BatchingSimulator(get_platform("spr"),
                                  get_model("llama2-7b"), max_batch=8)
    arrivals = poisson_arrivals(1.0, 20, translation_workload(), seed=4)
    rows = []
    reports = {}
    for label, runner in (("continuous", simulator.run_continuous),
                          ("chunked-128", lambda a: simulator.run_chunked(a, 128)),
                          ("chunked-64", lambda a: simulator.run_chunked(a, 64))):
        report = runner(arrivals)
        reports[label] = report
        rows.append([
            label, report.throughput, report.mean_ttft_s,
            # p95 flows through the shared interpolated-percentile helper
            # (repro.utils.stats), same basis as every other tail metric.
            report.max_decode_gap_s * 1000, report.p95_decode_gap_s * 1000,
        ])
    gap_gain = (reports["continuous"].max_decode_gap_s
                / reports["chunked-128"].max_decode_gap_s)
    notes = [
        f"chunking cuts the worst inter-token stall {gap_gain:.1f}x at a "
        "~2% throughput cost — Sarathi's 'batching without stalling "
        "ongoing decode' trade, on the CPU cost model",
        "smaller chunks bound stalls tighter but pay more per-chunk "
        "overhead",
    ]
    return ExperimentReport(
        experiment_id="ext_chunked",
        title="Chunked prefill vs continuous batching (LLaMA2-7B)",
        headers=["policy", "tokens/s", "mean TTFT s", "max gap ms",
                 "p95 gap ms"],
        rows=rows,
        notes=notes,
    )


@register("sensitivity")
def run_sensitivity() -> ExperimentReport:
    """Calibration-knob sweeps: conclusions must hold across ranges."""
    rows = []
    robust = []
    for result in all_sensitivities():
        robust.append(result.robust)
        for point in result.points:
            rows.append([
                result.knob, point.value, point.margin,
                "holds" if point.holds else "FAILS",
                result.conclusion,
            ])
    notes = [
        f"{sum(robust)}/{len(robust)} conclusions robust across their "
        "entire swept knob ranges",
        "margins are 'how decisively the claim holds' (>1 = holds): e.g. "
        "even at PCIe efficiency 0.7 the CPU still beats the offloading "
        "A100 by several x",
    ]
    return ExperimentReport(
        experiment_id="sensitivity",
        title="Calibration sensitivity of headline conclusions",
        headers=["knob", "setting", "margin", "verdict", "conclusion"],
        rows=rows,
        notes=notes,
    )


@register("advisor")
def run_advisor() -> ExperimentReport:
    """Best deployment per (model, priority metric) from the advisor."""
    advisor = DeploymentAdvisor()
    rows = []
    cases = [
        ("opt-13b", 1, "ttft_s", "chatbot"),
        ("opt-13b", 32, "e2e_throughput", "analytics"),
        ("opt-66b", 1, "tpot_s", "translation"),
        ("opt-66b", 8, "e2e_throughput", "analytics"),
        ("llama2-70b", 1, "e2e_s", "single-stream"),
    ]
    for model_key, batch, metric, scenario in cases:
        recommendation = advisor.recommend(
            get_model(model_key), InferenceRequest(batch_size=batch), metric)
        best = recommendation.best
        runner_up = recommendation.ranked[1] if len(
            recommendation.ranked) > 1 else best
        rows.append([
            get_model(model_key).name, batch, scenario, metric,
            best.label, runner_up.label,
        ])
    notes = [
        "small in-memory models route to GPUs; over-capacity models route "
        "to the CPU — with INT8 weights or TP=2 as the preferred CPU "
        "configurations (the paper's findings, operationalized)",
    ]
    return ExperimentReport(
        experiment_id="advisor",
        title="Deployment advisor recommendations",
        headers=["model", "batch", "scenario", "metric", "best config",
                 "runner-up"],
        rows=rows,
        notes=notes,
    )
