"""Extension: mixture-of-experts decode on the CPU.

MoE models (Mixtral-8x7B-class) hold ~47B parameters but each token
activates only 2 of 8 experts. On a memory-bound decode platform the
consequence is direct: per-step weight traffic at batch 1 is roughly
``attention + 2/8 of the FFN`` — a fraction of a dense 47B model's stream
— but batching erodes the advantage because more tokens activate more
experts. The experiment sweeps batch size against a parameter-matched
dense model to expose that convergence, a trade-off invisible on
compute-bound hardware but decisive on CPUs.
"""

from repro.core.report import ExperimentReport
from repro.engine.inference import simulate
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.builder import scale_to_params
from repro.models.registry import get_model


@register("ext_moe")
def run() -> ExperimentReport:
    """Mixtral-8x7B vs a parameter-matched dense model on SPR decode."""
    spr = get_platform("spr")
    moe = get_model("mixtral-8x7b")
    dense = scale_to_params(47.0, name="Dense-47B-equivalent")
    rows = []
    for batch in (1, 2, 4, 8, 16, 32):
        request = InferenceRequest(batch_size=batch)
        moe_result = simulate(spr, moe, request)
        dense_result = simulate(spr, dense, request)
        rows.append([
            batch,
            moe.active_expert_fraction(batch),
            moe_result.tpot_s * 1000,
            dense_result.tpot_s * 1000,
            dense_result.tpot_s / moe_result.tpot_s,
        ])
    notes = [
        f"at batch 1 only {moe.top_k}/{moe.n_experts} of the FFN streams: "
        f"MoE decodes {rows[0][4]:.1f}x faster than the parameter-matched "
        "dense model",
        "the advantage erodes with batch as routing touches every expert "
        "(active-fraction column) — on bandwidth-bound CPUs, MoE is a "
        "small-batch optimization",
    ]
    return ExperimentReport(
        experiment_id="ext_moe",
        title="MoE vs dense decode on SPR (Mixtral-8x7B vs dense 47B)",
        headers=["batch", "active expert frac", "MoE TPOT ms",
                 "dense TPOT ms", "MoE advantage"],
        rows=rows,
        notes=notes,
    )
