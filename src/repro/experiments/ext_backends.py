"""Extension: mixed-backend fleets through the unified backend layer.

Section VI of the paper sizes homogeneous fleets; real deployments mix
configurations — keep some replicas at full precision for quality-
sensitive traffic while quantized and tensor-parallel replicas carry
bulk throughput. The unified :class:`~repro.engine.backend
.ExecutionBackend` layer makes such fleets a first-class simulation:
every replica prices through its own backend-keyed decode cost table,
so routing, event-horizon fast-forward, and SLO scoring all see each
replica's true speed.

Scenarios:

1. **per-backend latency** — one request through each backend on SPR:
   the composition (INT8, TP2, INT8 over TP2) and its TTFT/TPOT effect;
2. **fleet mixes** — the same decode-heavy trace served by a BF16
   fleet, an INT8-TP2 fleet, and the 2+2 mix, at equal replica count;
3. **fast-forward integrity** — the mixed fleet re-run with
   ``exact=True``: goodput agrees with the fast-forward run, evidence
   the coalescing math holds under heterogeneous backends.
"""

from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    JoinShortestQueueRouter,
    ReplicaSpec,
)
from repro.core.report import ExperimentReport
from repro.engine.backend import parse_backend
from repro.engine.inference import InferenceSimulator
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.serving.arrivals import bursty_arrivals
from repro.serving.slo import SLO
from repro.workloads.generator import WorkloadSpec

MODEL_KEY = "llama2-7b"
SLO_TARGET = SLO(ttft_s=2.0, tpot_s=0.2)
SEED = 23
HEADERS = ["scenario", "configuration", "attainment", "goodput tok/s",
           "$ / Mtok", "detail"]


def _decode_heavy_spec() -> WorkloadSpec:
    """Short prompts, long generations — decode dominates, so backend
    bandwidth savings show directly in goodput."""
    return WorkloadSpec(
        name="agentic",
        input_len_range=(16, 64),
        output_len_range=(96, 192),
        batch_size=1,
        priority_metric="tpot_s",
    )


def _trace() -> list:
    return bursty_arrivals(0.5, 5.0, 40, _decode_heavy_spec(),
                           burst_s=15.0, period_s=60.0, seed=SEED)


def _fleet(specs: list) -> ClusterConfig:
    model = get_model(MODEL_KEY)
    spr = get_platform("spr")
    return ClusterConfig([
        ReplicaSpec(spr, model, count=count,
                    backend=None if spec is None else parse_backend(spec))
        for spec, count in specs
    ])


@register("ext_backends")
def run() -> ExperimentReport:
    """Backend composition: per-backend latency and mixed fleets."""
    rows = []
    notes = []
    model = get_model(MODEL_KEY)
    spr = get_platform("spr")
    request = InferenceRequest(batch_size=1, input_len=128, output_len=64)

    # 1. One request through each backend composition on SPR.
    tpots = {}
    for spec in ("bf16", "int8", "tp2", "int8-tp2"):
        backend = parse_backend(spec)
        result = InferenceSimulator(spr, backend=backend).run(model, request)
        tpots[spec] = result.tpot_s
        rows.append(["latency", f"1x SPR, {backend.label}", "", "", "",
                     f"TTFT={result.ttft_s * 1000:.0f}ms "
                     f"TPOT={result.tpot_s * 1000:.1f}ms"])
    notes.append(
        "backends compose: INT8 over TP2 stacks the weight-byte halving "
        f"on the two-socket bandwidth, taking TPOT from "
        f"{tpots['bf16'] * 1000:.1f}ms (BF16) to "
        f"{tpots['int8-tp2'] * 1000:.1f}ms — "
        f"{tpots['bf16'] / tpots['int8-tp2']:.2f}x, priced through one "
        "rewrite pipeline rather than per-feature simulators")

    # 2. Equal-size fleets: all-BF16, all-INT8-TP2, and the 2+2 mix.
    trace = _trace()
    goodputs = {}
    for label, specs in (
            ("4x bf16", [(None, 4)]),
            ("4x int8-tp2", [("int8-tp2", 4)]),
            ("2x bf16 + 2x int8-tp2", [(None, 2), ("int8-tp2", 2)])):
        report = ClusterSimulator(_fleet(specs).build_fleet(),
                                  JoinShortestQueueRouter()).run(trace)
        goodputs[label] = report.goodput(trace, SLO_TARGET)
        split = ", ".join(f"{s.name}:{s.completed}"
                          for s in report.node_stats)
        rows.append(["fleet-mix", label,
                     report.attainment(trace, SLO_TARGET),
                     goodputs[label],
                     report.dollars_per_million_tokens(),
                     split])
    notes.append(
        "a mixed fleet lands between the homogeneous endpoints "
        f"({goodputs['4x bf16']:.1f} vs "
        f"{goodputs['2x bf16 + 2x int8-tp2']:.1f} vs "
        f"{goodputs['4x int8-tp2']:.1f} tok/s goodput): each replica is "
        "priced by its own backend-keyed cost table, so the router sees "
        "the quantized-TP replicas' real speed advantage")

    # 3. Fast-forward vs exact on the mixed fleet.
    mixed = [(None, 2), ("int8-tp2", 2)]
    fast = ClusterSimulator(_fleet(mixed).build_fleet(),
                            JoinShortestQueueRouter()).run(trace)
    exact = ClusterSimulator(_fleet(mixed).build_fleet(exact=True),
                             JoinShortestQueueRouter()).run(trace)
    drift = abs(fast.goodput(trace, SLO_TARGET)
                - exact.goodput(trace, SLO_TARGET))
    rows.append(["fast-forward", "2x bf16 + 2x int8-tp2, exact=True",
                 exact.attainment(trace, SLO_TARGET),
                 exact.goodput(trace, SLO_TARGET),
                 exact.dollars_per_million_tokens(),
                 f"goodput drift vs fast-forward: {drift:.2e} tok/s"])
    notes.append(
        "event-horizon fast-forward survives heterogeneity: re-running "
        "the mixed fleet with exact per-iteration stepping moves goodput "
        f"by {drift:.2e} tok/s — coalesced decode windows price "
        "identically because both paths read the same per-backend cost "
        "curves")

    return ExperimentReport(
        experiment_id="ext_backends",
        title="Mixed-backend fleets: quant / TP composition through one "
              f"backend layer ({model.name})",
        headers=HEADERS,
        rows=rows,
        notes=notes,
    )
