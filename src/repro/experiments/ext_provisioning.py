"""Extension: fleet provisioning under SLOs.

The deployment-level synthesis of Key Finding #4: for a small in-memory
model the GPU fleet is cheapest; for a model that forces GPU offloading,
CPU sockets win on fleet cost — the paper's comparison converted into a
purchasing decision.
"""

from repro.cluster.config import ClusterConfig, ReplicaSpec
from repro.core.report import ExperimentReport
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.optim.advisor import recommend_fleet
from repro.serving.provisioning import ProvisioningPlanner
from repro.serving.slo import SLO


@register("ext_provisioning")
def run() -> ExperimentReport:
    """Fleet sizing for a small and a large model under serving SLOs."""
    platforms = [get_platform("spr"), get_platform("h100")]
    rows = []
    cheapest = {}
    cases = [
        ("llama2-7b", 20.0, SLO(ttft_s=1.0, tpot_s=0.08)),
        ("opt-66b", 0.02, SLO(ttft_s=30.0, tpot_s=0.8)),
    ]
    for model_key, rate, slo in cases:
        planner = ProvisioningPlanner(get_model(model_key), max_batch=4)
        plan = planner.plan(platforms, rate, slo)
        cheapest[model_key] = plan.cheapest.platform
        for option in plan.options:
            rows.append([
                get_model(model_key).name, rate,
                option.platform,
                option.rate_per_device,
                option.devices_needed if option.feasible else "-",
                option.fleet_cost_usd if option.feasible else "-",
            ])
    # Successive refinement beyond ceiling division: the fluid solver
    # ranks CPU fleet sizes for the small-model case in microseconds
    # and the exact simulator confirms the winner (queueing + batching
    # effects ceiling division cannot see).
    spr = get_platform("spr")
    small = get_model("llama2-7b")
    small_rate, small_slo = cases[0][1], cases[0][2]
    candidates = [
        (f"{k}x SPR", ClusterConfig(replicas=(
            ReplicaSpec(platform=spr, model=small, count=k, max_batch=4),)))
        for k in range(1, 9)
    ]
    fleet_rec = recommend_fleet(candidates, small_rate, slo=small_slo,
                                confirm_requests=1200)
    fluid_note = "fluid advisor: no SPR fleet size clears the target"
    if fleet_rec.best is not None:
        confirmed = fleet_rec.confirmation
        if confirmed is None:
            measured = ""
        elif confirmed.accepted:
            measured = (f"; simulator confirms at "
                        f"{confirmed.attainment:.0%} attainment, "
                        f"${confirmed.dollars_per_mtok:.2f}/Mtok")
        else:
            measured = (f"; simulator measures {confirmed.attainment:.0%} "
                        f"attainment — below target, fluid favorite shown")
        fluid_note = (
            f"fluid advisor (queueing-aware): LLaMA2-7B at "
            f"{small_rate:g} req/s needs {fleet_rec.best.label} "
            f"(analytic ${fleet_rec.best.fluid.dollars_per_mtok:.2f}/Mtok"
            f"{measured})")

    notes = [
        f"small in-memory LLaMA2-7B: cheapest fleet is "
        f"{cheapest['llama2-7b']} (GPU throughput amortizes its price)",
        f"over-capacity OPT-66B: cheapest fleet is {cheapest['opt-66b']} — "
        "the offloading GPU's per-device rate collapses and the CPU wins "
        "the purchasing decision (Key Finding #4, operationalized)",
        fluid_note,
    ]
    return ExperimentReport(
        experiment_id="ext_provisioning",
        title="Fleet provisioning under SLOs (listing-price proxies)",
        headers=["model", "target req/s", "platform", "rate/device",
                 "devices", "fleet $"],
        rows=rows,
        notes=notes,
    )
