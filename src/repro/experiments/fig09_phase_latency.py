"""Fig. 9 — prefill (TTFT) and decode (TPOT) latency, ICL vs SPR.

Paper reference bands: TTFT falls 84.1%-89% on average (AMX effect);
TPOT falls 62.3%-81.7% (HBM effect).
"""

from typing import Dict, List

from repro.core.comparison import compare_platforms
from repro.core.report import ExperimentReport
from repro.experiments._sweeps import cpu_sweep
from repro.experiments.base import register


@register("fig9")
def run() -> ExperimentReport:
    """Normalized SPR TTFT and TPOT per (model, batch)."""
    comparisons = compare_platforms(cpu_sweep(), "ICL-8352Y", "SPR-Max-9468")
    table = []
    ttft_by_model: Dict[str, List[float]] = {}
    tpot_by_model: Dict[str, List[float]] = {}
    for comp in comparisons:
        table.append([
            comp.model,
            comp.batch_size,
            comp.normalized["ttft_s"],
            comp.normalized["tpot_s"],
        ])
        ttft_by_model.setdefault(comp.model, []).append(comp.normalized["ttft_s"])
        tpot_by_model.setdefault(comp.model, []).append(comp.normalized["tpot_s"])

    ttft_red = [(1 - sum(v) / len(v)) * 100 for v in ttft_by_model.values()]
    tpot_red = [(1 - sum(v) / len(v)) * 100 for v in tpot_by_model.values()]
    notes = [
        "paper: TTFT reduced 84.1%-89% on average (AMX); measured "
        f"{min(ttft_red):.1f}%-{max(ttft_red):.1f}%",
        "paper: TPOT reduced 62.3%-81.7% on average (HBM); measured "
        f"{min(tpot_red):.1f}%-{max(tpot_red):.1f}%",
        "prefill gains exceed decode gains: AMX accelerates compute-bound "
        "prefill more than HBM accelerates memory-bound decode",
    ]
    return ExperimentReport(
        experiment_id="fig9",
        title="Prefill/decode latency, ICL vs SPR (normalized to ICL)",
        headers=["model", "batch", "norm TTFT", "norm TPOT"],
        rows=table,
        notes=notes,
    )
