"""Extension: tracing cross-validation (attribution, occupancy, noop cost).

The paper's evidence is timeline attribution: wall time broken into
phases, counter activity mapped onto them. :mod:`repro.trace` gives the
simulator the same product — structured spans on request/replica/cluster
tracks — and this experiment validates it the way the aggregate metrics
were validated against the paper:

1. **attribution closure** — for a traced continuous-batching run, each
   request's span components (queue + prefill + decode + finalize) sum to
   the report's ``e2e_s`` to floating-point exactness, and queue/TTFT
   components match the scheduler's own accounting;
2. **failure accounting** — under a mid-run replica loss, the trace's
   wasted-work attribution agrees with the cluster report's
   requeue/wasted-token accounting (every requeued request shows
   ``wasted_s > 0``, nobody else does);
3. **occupancy** — the duration-weighted batch-occupancy histogram
   derived from replica decode spans covers exactly the fleet's busy
   decode time;
4. **noop transparency** — the default :class:`~repro.trace.NoopTracer`
   changes no simulation outcome (identical makespan and completions);
   its <2% time bound is enforced by
   ``benchmarks/test_trace_overhead.py`` (wall-clock has no place in a
   bit-identical report).
"""

from repro.cluster import (
    ClusterSimulator,
    LeastOutstandingTokensRouter,
    NodeFailure,
    ReplicaNode,
)
from repro.core.report import ExperimentReport
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.serving.arrivals import poisson_arrivals
from repro.trace import (
    RecordingTracer,
    batch_occupancy_histogram,
    request_attribution,
    to_chrome_trace,
)
from repro.workloads.generator import chatbot_workload

MODEL_KEY = "llama2-7b"
SEED = 23
HEADERS = ["check", "quantity", "traced", "reference", "verdict"]


def _fleet(count: int) -> list:
    model = get_model(MODEL_KEY)
    spr = get_platform("spr")
    return [ReplicaNode(f"spr-{i}", spr, model) for i in range(count)]


def _run(events=(), tracer=None):
    arrivals = poisson_arrivals(2.0, 24, chatbot_workload(), seed=SEED)
    simulator = ClusterSimulator(
        _fleet(2), LeastOutstandingTokensRouter(), events=list(events),
        **({"tracer": tracer} if tracer is not None else {}))
    return arrivals, simulator.run(arrivals)


@register("ext_trace")
def run() -> ExperimentReport:
    """Trace attribution vs. report accounting, plus noop-path cost."""
    rows = []
    notes = []

    # 1. Attribution closure on a clean run.
    tracer = RecordingTracer()
    arrivals, report = _run(tracer=tracer)
    attribution = request_attribution(tracer.trace)
    by_id = {r.request_id: r for r in report.completed}
    closure_err = max(abs(a.attributed_s - by_id[rid].e2e_s)
                      for rid, a in attribution.items())
    queue_err = max(abs(a.queue_s - by_id[rid].queue_delay_s)
                    for rid, a in attribution.items())
    ttft_err = max(abs(a.queue_s + a.prefill_s - by_id[rid].ttft_s)
                   for rid, a in attribution.items())
    rows.append(["closure", "max |sum(components) - e2e_s|",
                 closure_err, 0.0,
                 "OK" if closure_err <= 1e-9 else "FAIL"])
    rows.append(["closure", "max |queue_s - queue_delay_s|",
                 queue_err, 0.0, "OK" if queue_err <= 1e-9 else "FAIL"])
    rows.append(["closure", "max |queue_s + prefill_s - ttft_s|",
                 ttft_err, 0.0, "OK" if ttft_err <= 1e-9 else "FAIL"])
    notes.append(
        f"for all {len(attribution)} requests the traced components tile "
        "the e2e interval exactly: the spans are the metrics, not an "
        "approximation of them")

    # 2. Failure accounting agrees with the report.
    tracer = RecordingTracer()
    arrivals, report = _run(
        events=[NodeFailure(time_s=3.0, node="spr-1")], tracer=tracer)
    attribution = request_attribution(tracer.trace)
    wasted_requests = sum(1 for a in attribution.values() if a.wasted_s > 0)
    closure_err = max(abs(a.attributed_s - a.total_s)
                      for a in attribution.values())
    rows.append(["failure", "requests with wasted_s > 0",
                 wasted_requests, report.requeued_requests,
                 "OK" if wasted_requests == report.requeued_requests
                 else "FAIL"])
    rows.append(["failure", "max attribution residual (s)",
                 closure_err, 0.0,
                 "OK" if closure_err <= 1e-9 else "FAIL"])
    total_wasted_s = sum(a.wasted_s for a in attribution.values())
    notes.append(
        f"the spr-1 failure strands {report.requeued_requests} request(s); "
        f"the trace attributes {total_wasted_s:.2f}s of their timelines to "
        f"redone work, matching the report's {report.wasted_tokens} wasted "
        "tokens in kind")

    # 3. Occupancy histogram covers the fleet's decode time.
    occupancy = batch_occupancy_histogram(tracer.trace)
    decode_s = sum(occupancy.values())
    fleet_decode_s = sum(
        span.duration_s for span in tracer.trace.spans
        if span.category == "replica" and span.name == "decode")
    rows.append(["occupancy", "sum of histogram buckets (s)",
                 decode_s, fleet_decode_s,
                 "OK" if abs(decode_s - fleet_decode_s) <= 1e-9
                 else "FAIL"])
    busiest = max(occupancy, key=occupancy.get)
    notes.append(
        f"decode ran at batch sizes {sorted(occupancy)} with most time at "
        f"{busiest}; the histogram is duration-weighted so it is the "
        "occupancy the paper's batch-scaling curves are read at")

    # 4. Noop transparency: tracing off must not perturb the simulation.
    exported = to_chrome_trace(tracer.trace)
    _, untraced = _run()
    _, retraced = _run(tracer=RecordingTracer())
    rows.append(["noop", "makespan untraced vs traced (s)",
                 untraced.makespan_s, retraced.makespan_s,
                 "OK" if untraced.makespan_s == retraced.makespan_s
                 else "FAIL"])
    notes.append(
        f"the Chrome export carries {len(exported['traceEvents'])} "
        "events; tracing is observation only — recorded and unrecorded "
        "runs produce identical outcomes, and the default NoopTracer "
        "path is guarded to stay within 2% wall-clock overhead "
        "(benchmarks/test_trace_overhead.py enforces the bound)")

    return ExperimentReport(
        experiment_id="ext_trace",
        title="Tracing: span attribution validates the simulator's own "
              f"accounting ({get_model(MODEL_KEY).name})",
        headers=HEADERS,
        rows=rows,
        notes=notes,
    )
