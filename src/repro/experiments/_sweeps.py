"""Shared, memoized sweeps used by several experiment modules.

Figs. 8, 9 and 10 all slice the same ICL-vs-SPR grid; Figs. 17 and 19
slice the same CPU-vs-GPU grid. Running each grid once and caching keeps
the benchmark harness fast without changing any result.

Two environment knobs route the grids through the sweep runner's
performance machinery (docs/architecture.md, "Performance & caching"):

* ``REPRO_SWEEP_WORKERS`` — price grid cells on N worker processes;
* ``REPRO_SWEEP_CACHE_DIR`` — persist sweep rows on disk, keyed by
  (platforms, models, batches, calibration) content hash.
"""

import os
from typing import Dict, List, Optional, Tuple

from repro.core.runner import CharacterizationSweep, SweepRow
from repro.engine.request import EVALUATED_BATCH_SIZES, InferenceRequest
from repro.core.runner import run_inference
from repro.hardware.registry import get_platform
from repro.models.registry import evaluated_models

_CPU_SWEEP_CACHE: List[SweepRow] = []
_GPU_ROWS_CACHE: Dict[Tuple[int, int], list] = {}


def _sweep_workers() -> Optional[int]:
    """Worker-process count for grid sweeps (None = in-process serial)."""
    value = os.environ.get("REPRO_SWEEP_WORKERS")
    if not value:
        return None
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_SWEEP_WORKERS must be an integer, got {value!r}") from None


def _sweep_cache_dir() -> Optional[str]:
    """On-disk sweep cache directory (None = in-memory caching only)."""
    return os.environ.get("REPRO_SWEEP_CACHE_DIR") or None


def cpu_sweep() -> List[SweepRow]:
    """The Figs. 8-10 grid: 8 models x {ICL, SPR} x batches 1-32."""
    if not _CPU_SWEEP_CACHE:
        sweep = CharacterizationSweep(
            [get_platform("icl"), get_platform("spr")],
            evaluated_models(),
            EVALUATED_BATCH_SIZES)
        _CPU_SWEEP_CACHE.extend(sweep.run(workers=_sweep_workers(),
                                          cache_dir=_sweep_cache_dir()))
    return _CPU_SWEEP_CACHE


def cpu_gpu_results(batch_size: int, input_len: int = 128):
    """The Figs. 17/19 grid: 8 models x {SPR, A100, H100} at one batch.

    Returns ``[(model_name, {platform: result})]`` in figure order.
    """
    key = (batch_size, input_len)
    if key not in _GPU_ROWS_CACHE:
        spr = get_platform("spr")
        a100 = get_platform("a100")
        h100 = get_platform("h100")
        request = InferenceRequest(batch_size=batch_size, input_len=input_len)
        rows = []
        for model in evaluated_models():
            per_platform = {}
            for platform in (spr, a100, h100):
                per_platform[platform.name] = run_inference(
                    platform, model, request)
            rows.append((model.name, per_platform))
        _GPU_ROWS_CACHE[key] = rows
    return _GPU_ROWS_CACHE[key]


def clear_caches() -> None:
    """Reset every memoization layer (for tests that tweak calibrations).

    Clears the in-memory sweep caches *and* the pricing-layer caches
    (GEMM efficiency, prefill/decode operator graphs, the serving layer's
    shared step-cost tables) so a subsequent run re-derives everything
    from current calibration constants. The on-disk sweep cache needs no
    clearing: its keys hash the calibration inputs, so changed constants
    simply miss.

    Every one of these memo tables is **per process**: plain module-level
    dicts, neither shared with nor visible to other processes. Clearing
    them here does not touch the sharded cluster runner's workers (each
    fork/spawn starts its own copy), and conversely a worker warming its
    caches (:func:`repro.cluster.warm_caches`) leaves the parent's
    untouched — fork-inherited pages are copy-on-write snapshots, not
    shared state.
    """
    from repro.engine.backend import clear_backend_op_caches
    from repro.engine.stepcost import clear_decode_cost_tables
    from repro.gemm.efficiency import clear_gemm_efficiency_cache
    from repro.models.opgraph import clear_opgraph_caches

    _CPU_SWEEP_CACHE.clear()
    _GPU_ROWS_CACHE.clear()
    clear_gemm_efficiency_cache()
    clear_opgraph_caches()
    clear_backend_op_caches()
    clear_decode_cost_tables()
