"""Extensions: fused attention, prefix caching, INT4/KV quantization.

* ``ablation_fused_attention`` — FlashAttention-style fusion removes the
  O(seq^2) score-matrix round trips; the ablation shows when it matters
  (long prompts) and when it cannot (decode is weight-bound).
* ``ext_prefix_cache`` — caching a shared system prompt's KV converts its
  prefill into a one-time cost: the cheapest TTFT lever on CPUs.
* ``ext_quant_matrix`` — the full quantization design space on SPR:
  {BF16, W8, W4} x {BF16-KV, INT8-KV}, at short and long context.
"""

from repro.core.report import ExperimentReport
from repro.engine.executor import OperatorExecutor
from repro.engine.inference import InferenceSimulator, simulate
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.datatypes import DType
from repro.hardware.registry import get_platform
from repro.models.opgraph import prefill_ops
from repro.models.registry import get_model
from repro.quant.engine import QuantizedInferenceSimulator
from repro.quant.weightonly import QuantConfig, QuantScheme
from repro.serving.prefix_cache import PrefixCacheModel


@register("ablation_fused_attention")
def run_fused() -> ExperimentReport:
    """Prefill time with naive vs fused attention across prompt lengths."""
    spr = get_platform("spr")
    model = get_model("llama2-13b")
    rows = []
    for seq in (128, 1024, 4096):
        request = InferenceRequest(batch_size=1, input_len=seq, output_len=2)
        executor = InferenceSimulator(spr)._executor(model, request)
        naive = sum(t.time_s for t in executor.time_ops(
            prefill_ops(model, 1, seq)))
        fused = sum(t.time_s for t in executor.time_ops(
            prefill_ops(model, 1, seq, fused_attention=True)))
        rows.append([seq, naive * 1000, fused * 1000, naive / fused])
    notes = [
        "fusion removes the O(seq^2) P-matrix round trips; the gain grows "
        "with prompt length (negligible at 128, substantial at 4K)",
        "decode is untouched — its bottleneck is the weight stream, not "
        "score traffic — so fusion is purely a TTFT optimization here",
    ]
    return ExperimentReport(
        experiment_id="ablation_fused_attention",
        title="Fused (FlashAttention-style) vs naive attention prefill "
              "(LLaMA2-13B on SPR)",
        headers=["prompt len", "naive ms", "fused ms", "speedup"],
        rows=rows,
        notes=notes,
    )


@register("ext_prefix_cache")
def run_prefix_cache() -> ExperimentReport:
    """System-prompt KV caching: cold vs warm TTFT on the SPR CPU."""
    model_cache = PrefixCacheModel(get_platform("spr"))
    model = get_model("llama2-13b")
    rows = []
    for prefix, unique in ((512, 64), (1024, 64), (2048, 128)):
        estimate = model_cache.estimate(model, prefix, unique)
        rows.append([
            prefix, unique,
            estimate.cold_ttft_s * 1000,
            estimate.warm_ttft_s * 1000,
            estimate.ttft_speedup,
            estimate.amortized_ttft_s(0.9) * 1000,
            model_cache.break_even_requests(model, prefix, unique),
        ])
    notes = [
        "prefill is the CPU's weak phase vs GPUs (KF#4), so converting the "
        "shared prefix into a one-time cost attacks exactly that gap",
        "break-even is ~1 request: the cached prefill would have been paid "
        "by the first request anyway",
    ]
    return ExperimentReport(
        experiment_id="ext_prefix_cache",
        title="Shared-prefix KV caching (LLaMA2-13B on SPR)",
        headers=["prefix", "unique", "cold TTFT ms", "warm TTFT ms",
                 "speedup", "TTFT @90% hits ms", "break-even reqs"],
        rows=rows,
        notes=notes,
    )


@register("ext_quant_matrix")
def run_quant_matrix() -> ExperimentReport:
    """The {W8,W4} x {BF16,INT8 KV} design space on SPR."""
    spr = get_platform("spr")
    rows = []
    cases = [
        ("llama2-13b", 128),
        ("opt-66b", 128),
        ("opt-66b", 2048),
    ]
    for model_key, context in cases:
        model = get_model(model_key)
        request = InferenceRequest(batch_size=1, input_len=context,
                                   output_len=8)
        base = simulate(spr, model, request)
        for scheme, kv_dtype, label in (
                (QuantScheme.WEIGHT_ONLY_INT8, DType.BF16, "w8"),
                (QuantScheme.WEIGHT_ONLY_INT4, DType.BF16, "w4"),
                (QuantScheme.WEIGHT_ONLY_INT8, DType.INT8, "w8+kv8"),
                (QuantScheme.WEIGHT_ONLY_INT4, DType.INT8, "w4+kv8")):
            quant = QuantConfig(scheme=scheme, kv_dtype=kv_dtype)
            result = QuantizedInferenceSimulator(spr, quant).run(
                model, request)
            rows.append([model.name, context, label,
                         base.tpot_s * 1000, result.tpot_s * 1000,
                         base.tpot_s / result.tpot_s])
    notes = [
        "w4 beats w8 by ~2x on decode (bytes rule a bandwidth-bound "
        "phase); for OPT-66B both also un-spill HBM for compounding gains",
        "INT8 KV adds on top only at long context, where cache reads are "
        "a visible share of decode traffic",
    ]
    return ExperimentReport(
        experiment_id="ext_quant_matrix",
        title="Quantization design space on SPR (decode TPOT)",
        headers=["model", "context", "scheme", "BF16 TPOT ms",
                 "quant TPOT ms", "gain"],
        rows=rows,
        notes=notes,
    )
