"""Tables I and II — evaluation platform configurations.

Rendered directly from the hardware registry, so the benchmark output
documents exactly what the simulator was configured with.
"""

from repro.core.report import ExperimentReport
from repro.experiments.base import register
from repro.hardware.datatypes import DType
from repro.hardware.registry import get_platform
from repro.utils.units import TFLOPS, bytes_to_gb


@register("table1")
def run_table1() -> ExperimentReport:
    """Table I: CPU server configurations."""
    rows = []
    for key in ("icl", "spr"):
        platform = get_platform(key)
        topo = platform.topology
        engines = " / ".join(
            f"{engine.name}:{engine.peak(DType.BF16) / TFLOPS:.1f}TF"
            for engine in platform.engines)
        memory = " + ".join(
            f"{tier.name} {bytes_to_gb(tier.capacity_bytes):.0f}GB@"
            f"{bytes_to_gb(tier.sustained_bw):.1f}GB/s"
            for tier in platform.memory.tiers)
        rows.append([
            platform.name,
            f"{topo.cores_per_socket}x{topo.sockets}",
            f"{topo.base_frequency_hz / 1e9:.2f}GHz",
            engines,
            f"{bytes_to_gb(platform.caches.llc.capacity_bytes):.3g}GB" if
            platform.caches.llc.capacity_bytes >= 1e9 else
            f"{platform.caches.llc.capacity_bytes / 1e6:.0f}MB",
            memory,
        ])
    return ExperimentReport(
        experiment_id="table1",
        title="CPU server configurations (paper Table I)",
        headers=["platform", "cores", "freq", "BF16 engines", "LLC", "memory"],
        rows=rows,
        notes=["values encode Table I verbatim; STREAM bandwidths per socket"],
    )


@register("table2")
def run_table2() -> ExperimentReport:
    """Table II: GPU server configurations."""
    rows = []
    for key in ("a100", "h100"):
        platform = get_platform(key)
        engine = platform.engines[0]
        rows.append([
            platform.name,
            platform.sms,
            f"{engine.peak(DType.BF16) / TFLOPS:.0f}TF",
            f"{platform.caches.llc.capacity_bytes / 1e6:.0f}MB",
            f"{bytes_to_gb(platform.memory_capacity):.0f}GB",
            f"{bytes_to_gb(platform.peak_memory_bandwidth):.1f}GB/s",
            f"{platform.host_link.name}@"
            f"{bytes_to_gb(platform.host_link.nominal_bw):.0f}GB/s",
        ])
    return ExperimentReport(
        experiment_id="table2",
        title="GPU server configurations (paper Table II)",
        headers=["platform", "SMs", "BF16 peak", "L2", "memory",
                 "STREAM BW", "host link"],
        rows=rows,
        notes=["values encode Table II verbatim (dense TFLOPS, no sparsity)"],
    )
