"""Extensions: TP-vs-PP comparison and SLO-constrained serving capacity.

* ``ext_pp_vs_tp`` — the two disciplined ways to use the second socket:
  tensor parallelism cuts per-token latency; pipeline parallelism
  preserves it but doubles steady-state throughput with zero allreduce.
  Which to pick is workload-dependent — exactly the kind of guidance the
  paper's Section VI gestures toward.
* ``ext_slo`` — maximum sustainable request rate under chatbot-style
  latency SLOs, per batching policy: the serving-level consequence of the
  paper's TTFT/TPOT metrics.
"""

from repro.core.report import ExperimentReport
from repro.engine.inference import InferenceSimulator
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.parallel.pipeline_parallel import PipelineParallelSimulator
from repro.parallel.tensor_parallel import TensorParallelSimulator
from repro.serving.scheduler import BatchingSimulator
from repro.serving.slo import SLO, max_sustainable_rate


@register("ext_pp_vs_tp")
def run_pp_vs_tp() -> ExperimentReport:
    """Per-token latency and steady throughput: TP=2 vs PP=2 vs 1 socket."""
    spr = get_platform("spr")
    rows = []
    for model_key, batch in (("llama2-13b", 1), ("llama2-13b", 16),
                             ("opt-66b", 1)):
        model = get_model(model_key)
        request = InferenceRequest(batch_size=batch)
        single = InferenceSimulator(spr).run(model, request)
        tp = TensorParallelSimulator(spr).run(model, request)
        pp = PipelineParallelSimulator(spr).estimate(model, request)
        rows.append([
            model.name, batch,
            single.tpot_s * 1000,
            tp.tpot_s * 1000,
            pp.token_latency_s * 1000,
            single.tpot_s / tp.tpot_s,
            pp.throughput_gain,
        ])
    notes = [
        "TP halves per-token latency (sharded weight streams) at the cost "
        "of two allreduces per layer; PP keeps latency but doubles "
        "steady-state throughput with perfectly local weights",
        "for the DDR-spilling OPT-66B both schemes also un-spill HBM, "
        "giving super-linear gains",
        "rule: latency-critical -> TP; throughput-critical -> PP",
    ]
    return ExperimentReport(
        experiment_id="ext_pp_vs_tp",
        title="Tensor vs pipeline parallelism across SPR sockets",
        headers=["model", "batch", "1-socket TPOT ms", "TP2 TPOT ms",
                 "PP2 token lat ms", "TP latency gain", "PP thpt gain"],
        rows=rows,
        notes=notes,
    )


@register("ext_slo")
def run_slo() -> ExperimentReport:
    """Max sustainable chatbot rate under SLOs, per batching policy."""
    simulator = BatchingSimulator(get_platform("spr"),
                                  get_model("llama2-7b"), max_batch=8)
    slo = SLO(ttft_s=1.0, tpot_s=0.06)
    rows = []
    for policy in ("static", "continuous", "chunked"):
        rate = max_sustainable_rate(simulator, slo, policy=policy)
        rows.append([policy, slo.ttft_s, slo.tpot_s, rate])
    best = max(rows, key=lambda row: row[3])
    notes = [
        f"best policy under this SLO: {best[0]} at {best[3]:.1f} req/s",
        "iteration-level scheduling converts the paper's raw throughput "
        "numbers into SLO-compliant capacity",
    ]
    return ExperimentReport(
        experiment_id="ext_slo",
        title="Max sustainable rate under chatbot SLOs (LLaMA2-7B on SPR)",
        headers=["policy", "TTFT SLO s", "TPOT SLO s", "max rate req/s"],
        rows=rows,
        notes=notes,
    )
