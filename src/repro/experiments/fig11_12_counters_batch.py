"""Figs. 11 and 12 — hardware counters vs batch size on the SPR CPU.

Fig. 11 profiles LLaMA2-13B, Fig. 12 profiles OPT-66B. Expected trends
(paper): with larger batches, LLC MPKI *decreases*, core utilization
*increases*, and load/store instruction counts (normalized to batch 1)
*increase* — the workload shifts toward compute-bound execution.
"""

from typing import List

from repro.core.report import ExperimentReport
from repro.engine.request import EVALUATED_BATCH_SIZES, InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.perfcounters.collector import CounterModel


def _counters_vs_batch(model_key: str, experiment_id: str,
                       figure_name: str) -> ExperimentReport:
    model = get_model(model_key)
    counter_model = CounterModel(get_platform("spr"))
    rows: List[list] = []
    base_ls = None
    estimates = []
    for batch in EVALUATED_BATCH_SIZES:
        est = counter_model.estimate(model, InferenceRequest(batch_size=batch))
        estimates.append((batch, est))
        if base_ls is None:
            base_ls = est.load_store_instructions
        rows.append([
            batch,
            est.llc_mpki,
            est.core_utilization * 100.0,
            est.load_store_instructions / base_ls,
        ])
    mpki_monotone = all(estimates[i][1].llc_mpki >= estimates[i + 1][1].llc_mpki
                        for i in range(len(estimates) - 1))
    util_monotone = all(
        estimates[i][1].core_utilization <= estimates[i + 1][1].core_utilization
        for i in range(len(estimates) - 1))
    notes = [
        f"paper trend: MPKI decreases with batch — holds: {mpki_monotone}",
        f"paper trend: core utilization increases with batch — holds: {util_monotone}",
        "paper trend: load/store count (normalized to batch 1) grows with batch",
        "interpretation: larger batches raise arithmetic intensity, shifting "
        "execution toward compute-bound",
    ]
    return ExperimentReport(
        experiment_id=experiment_id,
        title=f"{figure_name}: {model.name} counters vs batch on SPR",
        headers=["batch", "LLC MPKI", "core util %", "ld/st (norm b=1)"],
        rows=rows,
        notes=notes,
    )


@register("fig11")
def run_fig11() -> ExperimentReport:
    """LLaMA2-13B counters vs batch (Fig. 11)."""
    return _counters_vs_batch("llama2-13b", "fig11", "Fig. 11")


@register("fig12")
def run_fig12() -> ExperimentReport:
    """OPT-66B counters vs batch (Fig. 12)."""
    return _counters_vs_batch("opt-66b", "fig12", "Fig. 12")
