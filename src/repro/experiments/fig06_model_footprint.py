"""Fig. 6 — FP16 weight memory footprint per model.

Expected anchors from the paper's text: OPT-175B ~350 GB ("requires 350GB
of memory to load the weights with the FP16 data type"); LLaMA2-70B needs
more than one 80 GB H100; GPT-3-class models need five H100s.
"""

from repro.core.report import ExperimentReport
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.memory import weight_bytes
from repro.models.registry import all_models
from repro.utils.units import bytes_to_gb

#: Models plotted, smallest to largest (figure x-axis order).
FOOTPRINT_MODELS = (
    "opt-1.3b", "opt-6.7b", "llama2-7b", "opt-13b", "llama2-13b",
    "opt-30b", "opt-66b", "llama2-70b", "opt-175b",
)


@register("fig6")
def run() -> ExperimentReport:
    """FP16 weight bytes per model, with GPU-count requirements."""
    models = all_models()
    a100 = get_platform("a100").memory_capacity
    h100 = get_platform("h100").memory_capacity
    rows = []
    for key in FOOTPRINT_MODELS:
        model = models[key]
        gb = bytes_to_gb(weight_bytes(model))
        rows.append([
            model.name,
            gb,
            -(-weight_bytes(model) // a100),  # A100s needed (ceil)
            -(-weight_bytes(model) // h100),  # H100s needed (ceil)
        ])
    opt175 = bytes_to_gb(weight_bytes(models["opt-175b"]))
    notes = [
        f"paper: OPT-175B needs ~350 GB FP16; measured {opt175:.0f} GB",
        "paper: LLaMA2-70B needs at least two H100 GPUs; "
        f"measured {rows[-2][3]:.0f}",
        "paper: GPT-3 175B-class needs at least five H100s; "
        f"measured {rows[-1][3]:.0f}",
    ]
    return ExperimentReport(
        experiment_id="fig6",
        title="Model weight footprint (FP16)",
        headers=["model", "GB", "A100s needed", "H100s needed"],
        rows=rows,
        notes=notes,
    )
