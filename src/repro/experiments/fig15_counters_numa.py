"""Fig. 15 — counters per NUMA configuration (LLaMA2-13B, batch 8).

Paper observations: SNC modes suffer frequent remote (sub-node) LLC
accesses; flat mode slightly outperforms cache mode by using HBM's
bandwidth more effectively.
"""

from repro.core.report import ExperimentReport
from repro.engine.inference import EngineConfig
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.numa.modes import EVALUATED_CONFIGS
from repro.perfcounters.collector import CounterModel


@register("fig15")
def run() -> ExperimentReport:
    """MPKI, core utilization, remote LLC accesses per NUMA config."""
    spr = get_platform("spr")
    model = get_model("llama2-13b")
    request = InferenceRequest(batch_size=8)
    rows = []
    remote = {}
    walls = {}
    for config in EVALUATED_CONFIGS:
        counter_model = CounterModel(spr, EngineConfig(numa=config))
        est = counter_model.estimate(model, request)
        remote[config.label] = est.remote_llc_accesses
        walls[config.label] = est.wall_time_s
        rows.append([
            config.label,
            est.llc_mpki,
            est.core_utilization * 100.0,
            est.remote_llc_accesses,
            est.wall_time_s,
        ])
    snc_vs_quad = remote["snc_flat"] / remote["quad_flat"]
    notes = [
        "paper: snc modes suffer frequent remote accesses to other NUMA "
        f"nodes; measured snc/quad remote-access ratio {snc_vs_quad:.0f}x",
        "paper: flat mode slightly outperforms cache mode; measured "
        f"quad_flat {walls['quad_flat']:.2f}s vs quad_cache "
        f"{walls['quad_cache']:.2f}s",
    ]
    return ExperimentReport(
        experiment_id="fig15",
        title="LLaMA2-13B (batch 8) counters per NUMA configuration",
        headers=["config", "LLC MPKI", "core util %", "remote LLC accesses",
                 "E2E s"],
        rows=rows,
        notes=notes,
    )
