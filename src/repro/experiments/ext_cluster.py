"""Extension: multi-replica cluster serving (routing, scaling, failures).

The paper's Section VI costs fleets by ceiling division: measure one
device's sustainable rate, divide, add headroom. A real fleet adds
dynamics that static sizing cannot see — queue imbalance across
replicas, bursty arrivals, provisioning lag, and node failures. This
experiment drives the discrete-event cluster simulator
(:mod:`repro.cluster`) through four scenarios:

1. **planner cross-validation** — a fleet sized by
   :class:`~repro.serving.provisioning.ProvisioningPlanner` attains the
   SLO when actually simulated at the target rate;
2. **heterogeneous routing** — on a mixed SPR + H100 fleet under a
   bursty, phase-mixed trace, the cost/SLO-aware
   :class:`~repro.cluster.PhaseAwareRouter` beats round-robin goodput;
3. **node failure** — a mid-burst replica loss requeues its in-flight
   work (no request lost) at a measurable wasted-token cost;
4. **provisioning lag** — the same burst absorbed by an autoscaler is
   served better when capacity arrives sooner.
"""

from repro.cluster import (
    Autoscaler,
    ClusterSimulator,
    JoinShortestQueueRouter,
    LeastOutstandingTokensRouter,
    NodeFailure,
    NodeTemplate,
    PhaseAwareRouter,
    ReplicaNode,
    RoundRobinRouter,
)
from repro.core.report import ExperimentReport
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.serving.arrivals import (
    bursty_arrivals,
    merge_arrivals,
    poisson_arrivals,
)
from repro.serving.provisioning import ProvisioningPlanner
from repro.serving.slo import SLO
from repro.workloads.generator import (
    WorkloadSpec,
    batch_analytics_workload,
    chatbot_workload,
)

MODEL_KEY = "llama2-7b"
SLO_TARGET = SLO(ttft_s=2.0, tpot_s=0.2)
SEED = 23
HEADERS = ["scenario", "configuration", "attainment", "goodput tok/s",
           "$ / Mtok", "detail"]


def _decode_heavy_spec() -> WorkloadSpec:
    """Short prompts, long generations — the decode-dominated mix."""
    return WorkloadSpec(
        name="agentic",
        input_len_range=(16, 64),
        output_len_range=(96, 192),
        batch_size=1,
        priority_metric="tpot_s",
    )


def _spr_fleet(count: int) -> list:
    model = get_model(MODEL_KEY)
    spr = get_platform("spr")
    return [ReplicaNode(f"spr-{i}", spr, model) for i in range(count)]


def _hetero_fleet() -> list:
    model = get_model(MODEL_KEY)
    return (_spr_fleet(2)
            + [ReplicaNode("h100-0", get_platform("h100"), model)])


def _mixed_bursty_trace() -> list:
    """Phase-mixed bursty trace: prefill-heavy + decode-heavy streams.

    During bursts the combined ~8 req/s exceeds the fleet's decode
    capacity, so queue placement — not raw capacity — decides SLO
    attainment; that is the regime routing policies differ in.
    """
    prefill_heavy = bursty_arrivals(0.4, 4.0, 25,
                                    batch_analytics_workload(),
                                    burst_s=15.0, period_s=60.0, seed=SEED)
    decode_heavy = bursty_arrivals(0.4, 4.0, 25, _decode_heavy_spec(),
                                   burst_s=15.0, period_s=60.0,
                                   seed=SEED + 1)
    return merge_arrivals(prefill_heavy, decode_heavy)


@register("ext_cluster")
def run() -> ExperimentReport:
    """Cluster scenarios: validation, routing, failure, provisioning lag."""
    rows = []
    notes = []

    # 1. Planner cross-validation at a low, comfortably served rate.
    rate = 0.5
    planner = ProvisioningPlanner(get_model(MODEL_KEY), max_batch=8)
    option = planner.size_option(get_platform("spr"), rate, SLO_TARGET)
    fleet_size = option.devices_needed
    arrivals = poisson_arrivals(rate, 24, chatbot_workload(), seed=SEED)
    report = ClusterSimulator(_spr_fleet(fleet_size),
                              RoundRobinRouter()).run(arrivals)
    rows.append(["planner-check", f"{fleet_size}x SPR @ {rate} req/s",
                 report.attainment(arrivals, SLO_TARGET),
                 report.goodput(arrivals, SLO_TARGET),
                 report.dollars_per_million_tokens(),
                 f"planner sized {fleet_size} device(s)"])
    notes.append(
        f"planner-sized fleet ({fleet_size}x SPR for {rate} req/s) attains "
        f"{report.attainment(arrivals, SLO_TARGET):.0%} of the SLO in "
        "simulation — static sizing and the event loop agree at low rate")

    # 2. Routing policies on the heterogeneous fleet, bursty mixed trace.
    trace = _mixed_bursty_trace()
    goodputs = {}
    for router in (RoundRobinRouter(), JoinShortestQueueRouter(),
                   LeastOutstandingTokensRouter(),
                   PhaseAwareRouter(slo=SLO_TARGET)):
        report = ClusterSimulator(_hetero_fleet(), router).run(trace)
        goodputs[router.name] = report.goodput(trace, SLO_TARGET)
        split = ", ".join(f"{s.name}:{s.completed}"
                          for s in report.node_stats)
        rows.append(["routing", f"2x SPR + 1x H100, {router.name}",
                     report.attainment(trace, SLO_TARGET),
                     goodputs[router.name],
                     report.dollars_per_million_tokens(),
                     split])
    gain = goodputs["phase_aware"] / goodputs["round_robin"]
    notes.append(
        "cost/SLO-aware routing beats round-robin goodput "
        f"{gain:.2f}x under bursts: long-prefill requests go to the "
        "compute-rich H100, decode-heavy ones to the bandwidth-rich SPR "
        "replicas, and backlog-aware feasibility absorbs the burst")

    # 3. Node failure mid-burst: requeue accounting, nothing lost.
    arrivals = poisson_arrivals(2.0, 24, chatbot_workload(), seed=SEED)
    report = ClusterSimulator(
        _spr_fleet(2), LeastOutstandingTokensRouter(),
        events=[NodeFailure(time_s=3.0, node="spr-1")]).run(arrivals)
    rows.append(["failure", "2x SPR, spr-1 dies at t=3s",
                 report.attainment(arrivals, SLO_TARGET),
                 report.goodput(arrivals, SLO_TARGET),
                 report.dollars_per_million_tokens(),
                 f"requeued={report.requeued_requests} "
                 f"wasted={report.wasted_tokens} tok, "
                 f"completed={len(report.completed)}/{len(arrivals)}"])
    notes.append(
        f"replica failure requeues {report.requeued_requests} in-flight "
        f"request(s) at a cost of {report.wasted_tokens} wasted tokens; "
        "every request still completes — the survivor absorbs the work")

    # 4. Autoscaler: same burst, two provisioning lags.
    burst = bursty_arrivals(0.2, 3.0, 40, _decode_heavy_spec(),
                            burst_s=20.0, period_s=120.0, seed=SEED)
    template = NodeTemplate(get_platform("spr"), get_model(MODEL_KEY))
    lag_ttft = {}
    for lag in (5.0, 40.0):
        scaler = Autoscaler(template, min_nodes=1, max_nodes=4,
                            scale_up_queue_per_node=2.0,
                            provisioning_lag_s=lag, sample_interval_s=2.0)
        report = ClusterSimulator(_spr_fleet(1), JoinShortestQueueRouter(),
                                  autoscaler=scaler).run(burst)
        serving = report.to_serving_report()
        lag_ttft[lag] = serving.p95_ttft_s
        rows.append(["autoscale", f"1->{len(report.node_stats)}x SPR, "
                     f"lag={lag:.0f}s",
                     report.attainment(burst, SLO_TARGET),
                     report.goodput(burst, SLO_TARGET),
                     report.dollars_per_million_tokens(),
                     f"p95 TTFT={serving.p95_ttft_s:.2f}s"])
    notes.append(
        "provisioning lag is the autoscaler's whole game: the same burst "
        f"ends with p95 TTFT {lag_ttft[5.0]:.2f}s at 5s lag vs "
        f"{lag_ttft[40.0]:.2f}s at 40s — capacity that arrives after the "
        "burst mostly serves the backlog it caused")

    return ExperimentReport(
        experiment_id="ext_cluster",
        title="Cluster serving: routing, failures, autoscaling "
              f"({get_model(MODEL_KEY).name})",
        headers=HEADERS,
        rows=rows,
        notes=notes,
    )
