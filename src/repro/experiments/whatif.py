"""What-if studies from the paper's discussion sections.

* ``whatif_gh200`` — Section V-B: Grace-Hopper's 900 GB/s NVLink-C2C
  should slash offloading overhead vs PCIe — "albeit at a cost of ~4x of
  the SPR CPU and DDR5". Both halves of the sentence are checked.
* ``whatif_cost`` — footnote 1: the Max 9468 lists at ~1/3 of an H100;
  throughput-per-dollar is the CPU's real pitch for over-capacity models.
"""

from repro.analysis.cost import (
    cost_efficiency_ratio,
    list_price,
    price_ratio,
    throughput_per_kilodollar,
)
from repro.core.report import ExperimentReport
from repro.core.runner import run_inference
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.hardware.whatif import gh200
from repro.models.registry import get_model
from repro.offload.engine import OffloadSimulator


@register("whatif_gh200")
def run_gh200() -> ExperimentReport:
    """GH200 NVLink offloading vs H100 PCIe offloading vs the SPR CPU."""
    model = get_model("opt-66b")
    request = InferenceRequest(batch_size=1)
    cpu = run_inference(get_platform("spr"), model, request)
    h100 = OffloadSimulator(get_platform("h100")).run(model, request)
    gh = OffloadSimulator(gh200()).run(model, request)
    rows = [
        ["SPR-Max-9468", "in-memory", cpu.e2e_s, cpu.e2e_throughput,
         throughput_per_kilodollar(cpu)],
        ["H100-80GB", "offload/PCIe5", h100.e2e_s, h100.e2e_throughput,
         throughput_per_kilodollar(h100)],
        ["GH200-96GB", "offload/NVLink", gh.e2e_s, gh.e2e_throughput,
         throughput_per_kilodollar(gh)],
    ]
    notes = [
        f"NVLink cuts offloaded E2E {h100.e2e_s / gh.e2e_s:.1f}x vs PCIe "
        "(paper: 'would see lower overheads for offloading')",
        f"GH200 beats the CPU on absolute latency but the CPU keeps a "
        f"{cost_efficiency_ratio(cpu, gh):.1f}x throughput-per-dollar edge "
        "(paper: 'at a cost of ~4x of the SPR CPU')",
    ]
    return ExperimentReport(
        experiment_id="whatif_gh200",
        title="Grace-Hopper what-if: OPT-66B, batch 1 (Section V-B)",
        headers=["platform", "mode", "E2E s", "tokens/s", "tokens/s/k$"],
        rows=rows,
        notes=notes,
    )


@register("whatif_cost")
def run_cost() -> ExperimentReport:
    """Throughput per dollar across the testbed (footnote 1)."""
    request = InferenceRequest(batch_size=1)
    rows = []
    for model_key in ("opt-13b", "opt-30b", "opt-66b"):
        model = get_model(model_key)
        for platform_key in ("spr", "a100", "h100"):
            platform = get_platform(platform_key)
            result = run_inference(platform, model, request)
            rows.append([
                model.name, platform.name,
                list_price(platform.name),
                result.e2e_throughput,
                throughput_per_kilodollar(result),
            ])
    notes = [
        f"price ratio H100/SPR = {price_ratio('H100-80GB', 'SPR-Max-9468'):.1f} "
        "(paper footnote 1: ~3x)",
        "for in-memory OPT-13B the GPU's absolute win shrinks to near "
        "parity per dollar; for offloaded models the CPU dominates both "
        "absolutely and per dollar",
    ]
    return ExperimentReport(
        experiment_id="whatif_cost",
        title="Throughput per dollar (listing-price proxy, batch 1)",
        headers=["model", "platform", "list $", "tokens/s", "tokens/s/k$"],
        rows=rows,
        notes=notes,
    )
