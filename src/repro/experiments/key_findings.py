"""Key Findings #1-#5 as a single pass/fail experiment table."""

from repro.core.findings import check_all_findings
from repro.core.report import ExperimentReport
from repro.experiments.base import register


@register("findings")
def run() -> ExperimentReport:
    """Run all Key Finding validators and tabulate pass/fail + evidence."""
    rows = []
    for finding in check_all_findings():
        rows.append([
            f"KF#{finding.finding_id}",
            finding.statement,
            "HOLDS" if finding.holds else "FAILS",
            finding.detail,
        ])
    holds = sum(1 for row in rows if row[2] == "HOLDS")
    return ExperimentReport(
        experiment_id="findings",
        title="Paper Key Findings validation",
        headers=["id", "statement", "verdict", "evidence"],
        rows=rows,
        notes=[f"{holds}/{len(rows)} Key Findings reproduced"],
    )
