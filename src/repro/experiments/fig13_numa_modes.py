"""Fig. 13 — normalized metrics across the four SPR NUMA configurations.

Every metric is averaged across all evaluated LLMs and batch sizes 1-32,
then normalized to ``quad_cache``. Paper conclusion (Key Finding #2):
quad beats snc, flat beats cache, so quad_flat is best.
"""

from typing import Dict, List

from repro.core.metrics import ALL_METRICS, METRIC_LABELS, average_summaries
from repro.core.report import ExperimentReport
from repro.core.runner import CharacterizationSweep
from repro.engine.inference import EngineConfig
from repro.engine.request import EVALUATED_BATCH_SIZES
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import evaluated_models
from repro.numa.modes import EVALUATED_CONFIGS


@register("fig13")
def run() -> ExperimentReport:
    """Average metrics per NUMA config, normalized to quad_cache."""
    spr = get_platform("spr")
    models = evaluated_models()
    averages: Dict[str, Dict[str, float]] = {}
    for config in EVALUATED_CONFIGS:
        sweep = CharacterizationSweep(
            [spr], models, EVALUATED_BATCH_SIZES,
            config=EngineConfig(numa=config))
        rows = sweep.run()
        averages[config.label] = average_summaries(
            [row.metrics for row in rows])

    baseline = averages["quad_cache"]
    table: List[list] = []
    for label, avg in averages.items():
        table.append([label] + [avg[m] / baseline[m] for m in ALL_METRICS])

    e2e = {label: avg["e2e_s"] for label, avg in averages.items()}
    best = min(e2e, key=e2e.get)
    notes = [
        f"best configuration by E2E latency: {best} (paper: quad_flat)",
        "quad beats snc (naive allocation makes ~75% of SNC accesses "
        "sub-node-remote); flat beats cache (no tag/fill overhead, "
        "explicit HBM use)",
    ]
    return ExperimentReport(
        experiment_id="fig13",
        title="NUMA configurations (normalized to quad_cache)",
        headers=["config"] + [METRIC_LABELS[m] for m in ALL_METRICS],
        rows=table,
        notes=notes,
    )
