"""Ablation studies for the design factors DESIGN.md calls out.

The paper attributes SPR's wins to *three* co-located features — AMX,
HBM, and more cores — without separating them (Key Finding #1 bundles
them). The simulator can ablate each:

* ``ablation_amx_hbm`` — SPR with AMX removed, with HBM removed, and
  stock, against ICL: which feature buys which phase.
* ``ablation_quant`` — the Section VII-B weight-only INT8 extension:
  decode is bandwidth-bound, so halving weight bytes should roughly halve
  TPOT (and more for DDR-spilling models).
* ``ablation_zigzag`` — sensitivity of the offloading loading-share to the
  zig-zag amortization slope (the offload model's main calibration knob).
"""

import dataclasses

from repro.core.report import ExperimentReport
from repro.engine.inference import simulate
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.hardware.whatif import spr_without_amx, spr_without_hbm
from repro.models.registry import get_model
from repro.offload.engine import OffloadSimulator
from repro.offload.policy import OffloadCalibration
from repro.quant.engine import QuantizedInferenceSimulator
from repro.quant.weightonly import QuantConfig, QuantScheme


@register("ablation_amx_hbm")
def run_amx_hbm() -> ExperimentReport:
    """Feature ablation: stock SPR vs SPR-noAMX vs SPR-noHBM vs ICL."""
    model = get_model("llama2-13b")
    request = InferenceRequest(batch_size=8)
    platforms = [
        ("SPR (stock)", get_platform("spr")),
        ("SPR -AMX", spr_without_amx()),
        ("SPR -HBM", spr_without_hbm()),
        ("ICL", get_platform("icl")),
    ]
    rows = []
    results = {}
    for label, platform in platforms:
        result = simulate(platform, model, request)
        results[label] = result
        rows.append([label, result.ttft_s * 1000, result.tpot_s * 1000,
                     result.e2e_s, result.e2e_throughput])
    amx_ttft = results["SPR -AMX"].ttft_s / results["SPR (stock)"].ttft_s
    hbm_tpot = results["SPR -HBM"].tpot_s / results["SPR (stock)"].tpot_s
    notes = [
        f"removing AMX inflates TTFT {amx_ttft:.1f}x but barely moves TPOT "
        "— AMX is the prefill feature",
        f"removing HBM inflates TPOT {hbm_tpot:.1f}x but barely moves TTFT "
        "— HBM is the decode feature",
        "together they explain Key Finding #1's bundled gains",
    ]
    return ExperimentReport(
        experiment_id="ablation_amx_hbm",
        title="Feature ablation: AMX vs HBM contributions (LLaMA2-13B, b=8)",
        headers=["platform", "TTFT ms", "TPOT ms", "E2E s", "tokens/s"],
        rows=rows,
        notes=notes,
    )


@register("ablation_quant")
def run_quant() -> ExperimentReport:
    """Weight-only INT8 extension: decode speedup tracks byte reduction."""
    spr = get_platform("spr")
    request = InferenceRequest(batch_size=1)
    rows = []
    notes = []
    for model_key in ("llama2-13b", "opt-66b"):
        model = get_model(model_key)
        base = simulate(spr, model, request)
        for scheme in (QuantScheme.WEIGHT_ONLY_INT8, QuantScheme.FULL_INT8):
            quantized = QuantizedInferenceSimulator(
                spr, QuantConfig(scheme=scheme)).run(model, request)
            rows.append([
                model.name, scheme.value,
                base.tpot_s * 1000, quantized.tpot_s * 1000,
                base.tpot_s / quantized.tpot_s,
                base.ttft_s / quantized.ttft_s,
            ])
    thirteen = [row for row in rows if row[0] == "LLaMA2-13B"]
    sixtysix = [row for row in rows if row[0] == "OPT-66B"]
    notes = [
        f"HBM-resident LLaMA2-13B: decode gain ~{thirteen[0][4]:.1f}x, "
        "tracking the ~2x weight-byte reduction (decode is bandwidth-bound)",
        f"DDR-spilling OPT-66B: decode gain {sixtysix[0][4]:.1f}x — "
        "quantization also pulls the model back inside HBM capacity",
        "prediction from the paper's decode analysis, verified in simulation",
    ]
    return ExperimentReport(
        experiment_id="ablation_quant",
        title="Weight-only INT8 quantization (Section VII-B extension)",
        headers=["model", "scheme", "BF16 TPOT ms", "quant TPOT ms",
                 "decode gain", "prefill gain"],
        rows=rows,
        notes=notes,
    )


@register("ablation_zigzag")
def run_zigzag() -> ExperimentReport:
    """Sensitivity of Fig. 18's loading share to the zig-zag slope."""
    gpu = get_platform("a100")
    model = get_model("opt-30b")
    rows = []
    for slope in (0.0, 0.1, 0.21, 0.4):
        calibration = OffloadCalibration(
            zigzag_amortization_slope=slope) if slope > 0 else \
            OffloadCalibration(zigzag_amortization_slope=1e-9)
        simulator = OffloadSimulator(gpu, calibration)
        share_b1 = simulator.run(
            model, InferenceRequest(batch_size=1)).loading_share
        share_b32 = simulator.run(
            model, InferenceRequest(batch_size=32)).loading_share
        rows.append([slope, share_b1 * 100, share_b32 * 100,
                     (share_b1 - share_b32) * 100])
    notes = [
        "batch-1 share is slope-independent (no batch to amortize across)",
        "the slope controls only how fast the share declines with batch — "
        "the calibrated 0.21 lands the Fig. 18 and Fig. 21 shapes "
        "simultaneously",
    ]
    return ExperimentReport(
        experiment_id="ablation_zigzag",
        title="Zig-zag amortization slope sensitivity (A100/OPT-30B)",
        headers=["slope", "loading % b=1", "loading % b=32", "decline pp"],
        rows=rows,
        notes=notes,
    )
