"""Extension: what CPU/GPU/hybrid fleet mix minimizes $/Mtok at a class SLO?

The paper characterizes single-node CPU inference and its two Section VI
optimizations; this experiment asks the provisioning question those
results feed: given a node budget and a mixed class workload, what *mix*
of node kinds should a deployment buy? Three kinds compete for four
slots, all serving LLaMA2-13B:

* **spr** — one SPR socket (quad-flat BF16), the paper's tuned CPU node;
* **a100** — an A100-40GB, fast at both phases but 1.5x the CPU's price;
* **hybrid** — an SPR *plus* an A100 in one slot
  (:class:`~repro.engine.backend.HybridBackend`: GPU prefill with PCIe
  weight streaming and KV handoff, CPU decode), priced at the sum of
  both devices.

:func:`~repro.optim.advisor.fleet_mix_candidates` enumerates all 15
compositions of 4 slots over the 3 kinds;
:func:`~repro.optim.advisor.recommend_fleet` scores every mix with the
analytic fluid solver (the hybrid kind's GPU leg enters through the cost
table's prefill comm term), ranks feasible mixes by $/Mtok, and
*confirms* the winner with the exact fast-forward simulator. Two
operating points show the answer is load-dependent — and, at high load,
that the exact-confirmation loop earns its keep by rejecting a fluid
favorite whose queueing margin doesn't survive burstiness.
"""

from repro.analysis.cost import list_price
from repro.cluster import ReplicaSpec
from repro.core.report import ExperimentReport
from repro.engine.backend import HybridBackend
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.optim.advisor import fleet_mix_candidates, recommend_fleet

SEED = 11
REQUESTS = 600
TOTAL_NODES = 4
MODEL = "llama2-13b"
MIX = (("simple", 0.5), ("standard", 0.35), ("reasoning", 0.15))
#: Moderate load (CPU fleets keep up) and high load (prefill demand
#: pushes the frontier onto GPUs).
RATES = (2.5, 6.0)
HEADERS = ["rate/s", "mix", "fleet $", "fluid $/Mtok", "fluid att",
           "exact att", "verdict"]


def node_kinds():
    """The ``(label, one-replica ReplicaSpec)`` kinds the search mixes."""
    spr = get_platform("spr")
    a100 = get_platform("a100")
    model = get_model(MODEL)
    return [
        ("spr", ReplicaSpec(spr, model, count=1, max_batch=8)),
        ("a100", ReplicaSpec(a100, model, count=1, max_batch=8)),
        ("hybrid", ReplicaSpec(
            spr, model, count=1, max_batch=8,
            backend=HybridBackend(gpu=a100),
            price_usd=list_price(spr.name) + list_price(a100.name))),
    ]


def recommend(rate_per_s: float):
    """One fluid-ranked, exact-confirmed mix search at *rate_per_s*."""
    candidates = fleet_mix_candidates(node_kinds(), TOTAL_NODES)
    return recommend_fleet(candidates, rate_per_s=rate_per_s, mix=MIX,
                           confirm_requests=REQUESTS, seed=SEED)


def _fleet_price(config) -> float:
    total = 0.0
    for spec in config.replicas:
        price = spec.price_usd if spec.price_usd is not None \
            else list_price(spec.platform.name)
        total += price * spec.count
    return total


def _rows_for(rate: float, recommendation) -> list:
    confirmed = {c.label: c for c in recommendation.confirmations}
    rows = []
    shown = [a for a in recommendation.ranked
             if a.feasible or a.label in confirmed][:4]
    for assessment in shown:
        record = confirmed.get(assessment.label)
        if recommendation.best is not None \
                and assessment.label == recommendation.best.label:
            verdict = "winner (confirmed)"
        elif record is not None and not record.accepted:
            verdict = "rejected by exact sim"
        else:
            verdict = "feasible" if assessment.feasible else "infeasible"
        rows.append([
            f"{rate:g}", assessment.label,
            f"{_fleet_price(assessment.config):,.0f}",
            f"{assessment.fluid.dollars_per_mtok:.2f}",
            f"{assessment.fluid.attainment:.3f}",
            f"{record.attainment:.3f}" if record else "-",
            verdict,
        ])
    return rows


@register("ext_fleetmix")
def run() -> ExperimentReport:
    """Search CPU/GPU/hybrid mixes for the cheapest SLO-feasible fleet."""
    rows = []
    notes = []
    winners = {}
    for rate in RATES:
        recommendation = recommend(rate)
        rows.extend(_rows_for(rate, recommendation))
        winners[rate] = recommendation

    low, high = (winners[r] for r in RATES)
    low_c, high_c = low.confirmation, high.confirmation
    notes.append(
        f"Mixed class workload ({REQUESTS} requests, mix simple:0.50 "
        "standard:0.35 reasoning:0.15, per-class SLOs), all 15 "
        f"compositions of {TOTAL_NODES} slots over spr / a100 / hybrid "
        "nodes scored by the fluid solver and the winner confirmed by "
        "the exact fast-forward simulator.")
    notes.append(
        f"The cheapest feasible mix is load-dependent: at {RATES[0]:g}/s "
        f"the all-CPU fleet wins ({low.best.label} at "
        f"{low_c.dollars_per_mtok:.2f} $/Mtok confirmed, attainment "
        f"{low_c.attainment:.3f}); at {RATES[1]:g}/s prefill demand "
        f"pushes the frontier onto GPUs ({high.best.label} at "
        f"{high_c.dollars_per_mtok:.2f} $/Mtok confirmed).")
    rejected = [c for c in high.confirmations if not c.accepted]
    if rejected:
        miss = rejected[0]
        notes.append(
            "The confirmation loop caught a fluid false-positive at "
            f"{RATES[1]:g}/s: {miss.label} cleared the steady-state "
            f"solver but measured only {miss.attainment:.3f} attainment "
            "under Poisson burstiness, so the next-cheapest mix shipped "
            "instead — the successive-refinement contract.")
    hybrid_best = next((a for a in high.ranked
                        if a.feasible and "hybrid" in a.label), None)
    if hybrid_best is not None:
        notes.append(
            "Hybrid nodes price at CPU+GPU "
            f"(${list_price('SPR-Max-9468') + list_price('A100-40GB'):,.0f}) "
            "and rank feasible but behind dedicated nodes here "
            f"(best hybrid mix {hybrid_best.label} at "
            f"{hybrid_best.fluid.dollars_per_mtok:.2f} $/Mtok): a 13B "
            "model fits the A100, so a pure GPU slot dominates. Hybrid "
            "slots win when GPU capacity binds — models over GPU memory "
            "where the GPU contributes prefill only.")
    notes.append(
        "The hybrid kind's GPU prefill leg (PCIe weight streaming + KV "
        "handoff) enters the fluid solver through the decode-cost "
        "table's prefill comm term; exact and fast-forward cluster "
        "paths price it identically (parity pinned in "
        "tests/test_backend_numa_hybrid.py).")
    return ExperimentReport(
        experiment_id="ext_fleetmix",
        title="Extension: CPU/GPU/hybrid fleet-mix search at a class SLO "
              "(fluid-ranked, exact-confirmed)",
        headers=HEADERS,
        rows=rows,
        notes=notes,
    )
