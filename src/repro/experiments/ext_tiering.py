"""Extension: tiered routing across a heterogeneous multi-model fleet.

One-size-fits-all serving prices every request on the same (model,
platform) pair — interactive lookups burn large-model capacity, or
reasoning requests land on a model too small to answer them. This
experiment runs the jarvis-style 3-tier matrix
(:mod:`repro.cluster.tiering`) against both failure modes on a mixed
class workload (50% simple / 35% standard / 15% reasoning):

* a **tiered fleet** — 2x (LLaMA2-7B, ICL) as the cheap interactive
  tier + 2x (LLaMA2-13B, SPR) as the capable tier — routed by
  :class:`~repro.cluster.tiering.TieredRouter` (cheapest capable tier
  clearing each class's latency bar, upward spill on saturation);
* **one-size-13B** — 4x (LLaMA2-13B, SPR), the best single-model fleet
  that can answer everything, routed join-shortest-queue;
* **one-size-7B** — 4x (LLaMA2-7B, ICL), the cheapest hardware, which
  clears every latency bar but is *under the reasoning class's
  capability floor*: its reasoning answers don't count.

Scoring is per-class (each class judged on its own SLO) with a
capability cut: classes a fleet's model cannot answer score zero
attainment regardless of speed. The claim to reproduce: **tiered
routing beats the best single-model fleet on $/Mtok at equal-or-better
SLO attainment** — the $/Mtok and goodput-per-dollar win of running a
model portfolio instead of a monoculture.
"""

from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    JoinShortestQueueRouter,
    ReplicaSpec,
    TieredRouter,
    tiering_report,
)
from repro.core.report import ExperimentReport
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.workloads import ClassMixStream, REQUEST_CLASSES

SEED = 7
#: ~70% small-tier utilization for the 2+2 tiered fleet: high enough
#: that the interactive tier saturates in bursts (exercising upward
#: spill), low enough that every fleet under test sustains its bars.
RATE_PER_S = 1.5
REQUESTS = 600
MIX = (("simple", 0.5), ("standard", 0.35), ("reasoning", 0.15))
SMALL_MODEL, SMALL_PLATFORM = "llama2-7b", "icl"
LARGE_MODEL, LARGE_PLATFORM = "llama2-13b", "spr"
HEADERS = ["fleet", "router", "fleet $", "$/Mtok", "attainment",
           "goodput tok/s", "goodput/k$", "spills", "fallbacks"]


def _stream() -> ClassMixStream:
    return ClassMixStream(rate_per_s=RATE_PER_S, count=REQUESTS,
                          mix=MIX, seed=SEED)


def _tiered_config() -> ClusterConfig:
    return ClusterConfig([
        ReplicaSpec(get_platform(SMALL_PLATFORM), get_model(SMALL_MODEL),
                    count=2, max_batch=8),
        ReplicaSpec(get_platform(LARGE_PLATFORM), get_model(LARGE_MODEL),
                    count=2, max_batch=8),
    ])


def _onesize_config(platform_key: str, model_key: str) -> ClusterConfig:
    return ClusterConfig([ReplicaSpec(get_platform(platform_key),
                                      get_model(model_key), count=4,
                                      max_batch=8)])


def _run(config: ClusterConfig, router):
    stream = _stream()
    report = ClusterSimulator(config.build_fleet(), router).run(
        stream.full())
    tiering = tiering_report(report, stream.full(), stream.classifier())
    return report, tiering


def quality_attainment(tiering, model) -> float:
    """Per-class attainment with the capability floor applied.

    A homogeneous fleet serves every class with one model; classes
    whose ``min_model_params`` exceeds that model's size score zero —
    fast wrong answers are still wrong. (The tiered fleet's floor
    violations are its ``fallbacks`` — zero without tier outages.)
    """
    params = model.param_count()
    total = sum(c.completed for c in tiering.classes)
    met = sum(c.met for c in tiering.classes
              if REQUEST_CLASSES[c.name].min_model_params <= params)
    return met / total if total else 1.0


def _row(label, router_name, report, tiering, attainment):
    price = report.fleet_price_usd
    goodput = tiering.goodput * attainment / max(tiering.attainment, 1e-12)
    return [label, router_name, f"{price:,.0f}",
            f"{tiering.dollars_per_mtok:.2f}", f"{attainment:.3f}",
            f"{goodput:.1f}", f"{goodput / price * 1000:.2f}",
            tiering.spills, tiering.fallbacks]


@register("ext_tiering")
def run() -> ExperimentReport:
    """Tiered 2x7B+2x13B vs one-size 4x13B / 4x7B on a mixed class load."""
    small = get_model(SMALL_MODEL)
    large = get_model(LARGE_MODEL)

    tiered_report_, tiered = _run(_tiered_config(),
                                  TieredRouter(_stream().classifier()))
    # Tiered fleet never routed below a floor (no outages), so its
    # class-SLO attainment is already quality-adjusted.
    tiered_att = tiered.attainment

    large_report, large_tiering = _run(
        _onesize_config(LARGE_PLATFORM, LARGE_MODEL),
        JoinShortestQueueRouter())
    large_att = quality_attainment(large_tiering, large)

    small_report, small_tiering = _run(
        _onesize_config(SMALL_PLATFORM, SMALL_MODEL),
        JoinShortestQueueRouter())
    small_att = quality_attainment(small_tiering, small)

    rows = [
        _row("2x ICL-7B + 2x SPR-13B", "tiered", tiered_report_, tiered,
             tiered_att),
        _row("4x SPR-13B (one-size)", "jsq", large_report, large_tiering,
             large_att),
        _row("4x ICL-7B (one-size)", "jsq", small_report, small_tiering,
             small_att),
    ]

    ratio = large_tiering.dollars_per_mtok / tiered.dollars_per_mtok
    per_tier = ", ".join(
        f"{t.label}: {t.dollars_per_mtok:.2f} $/Mtok at "
        f"{t.utilization:.0%} util" for t in tiered.tiers)
    notes = [
        f"Mixed class workload: {REQUESTS} requests at {RATE_PER_S}/s, "
        "mix simple:0.50 standard:0.35 reasoning:0.15, each class "
        "scored on its own SLO (simple 2s/0.25s, standard 3s/0.25s, "
        "reasoning 8s/0.35s TTFT/TPOT).",
        "Attainment is quality-adjusted: classes above a fleet model's "
        "capability floor score 0 (the 7B monoculture answers "
        "reasoning fast but unacceptably; the floor is "
        f"{REQUEST_CLASSES['reasoning'].min_model_params / 1e9:.0f}B "
        "params).",
        f"Tiered routing reproduces the portfolio win: {ratio:.2f}x "
        "cheaper per Mtok than the best single-model fleet (4x "
        "SPR-13B) at equal-or-better attainment "
        f"({tiered_att:.3f} vs {large_att:.3f}).",
        f"Inside the tiered fleet — {per_tier}; "
        f"{tiered.spills} saturation spills protected the interactive "
        "tier's bars, 0 fallbacks (no tier outages).",
        f"Fleet prices: tiered ${tiered_report_.fleet_price_usd:,.0f} "
        f"vs one-size-13B ${large_report.fleet_price_usd:,.0f} — the "
        "13B tier only runs the 15% of traffic that needs it.",
    ]
    return ExperimentReport(
        experiment_id="ext_tiering",
        title="Extension: heterogeneous multi-model fleet with tiered "
              "routing vs one-size-fits-all",
        headers=HEADERS,
        rows=rows,
        notes=notes,
    )
