"""Fig. 16 — counters vs core count (LLaMA2-7B, batch 8).

Paper observation: 96 cores perform poorly because inter-socket traffic
saturates UPI, visible as a UPI-utilization spike.
"""

from repro.core.report import ExperimentReport
from repro.engine.inference import EngineConfig
from repro.engine.request import InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.perfcounters.collector import CounterModel
from repro.scaling.cores import EVALUATED_CORE_COUNTS


@register("fig16")
def run() -> ExperimentReport:
    """MPKI, core utilization, UPI utilization per core count."""
    spr = get_platform("spr")
    model = get_model("llama2-7b")
    request = InferenceRequest(batch_size=8)
    rows = []
    upi = {}
    walls = {}
    for cores in EVALUATED_CORE_COUNTS:
        counter_model = CounterModel(spr, EngineConfig(cores=cores))
        est = counter_model.estimate(model, request)
        upi[cores] = est.upi_utilization
        walls[cores] = est.wall_time_s
        rows.append([
            cores,
            est.llc_mpki,
            est.core_utilization * 100.0,
            est.upi_utilization * 100.0,
            est.wall_time_s,
        ])
    notes = [
        f"UPI utilization spikes at 96 cores: {upi[96] * 100:.0f}% vs "
        f"{upi[48] * 100:.0f}% at 48 (paper: inter-socket communication "
        "hurts both latency and throughput)",
        f"E2E: 48 cores {walls[48]:.2f}s vs 96 cores {walls[96]:.2f}s — "
        "more cores are not better past one socket",
    ]
    return ExperimentReport(
        experiment_id="fig16",
        title="LLaMA2-7B (batch 8) counters vs core count",
        headers=["cores", "LLC MPKI", "core util %", "UPI util %", "E2E s"],
        rows=rows,
        notes=notes,
    )
