"""Figs. 17 and 19 — CPU vs GPU end-to-end comparison (batch 1 and 16).

All results normalize to the SPR Max CPU. Paper anchors (batch 1):

* OPT-13B: A100 cuts latency 65.5% (2.9x throughput), H100 72.8% (3.7x);
* OPT-30B on A100 must offload: the CPU cuts latency 92.1% (12.7x);
* OPT-66B on H100 must offload: the CPU cuts latency 80.1% (5x);
* H100 fits OPT-30B entirely and beats the CPU.

At batch 16 (Fig. 19) the GPU advantage widens for in-memory models while
offloaded models narrow (zig-zag amortization).
"""

from typing import List

from repro.core.runner import is_offloaded
from repro.core.report import ExperimentReport
from repro.experiments._sweeps import cpu_gpu_results
from repro.experiments.base import register


def _cpu_gpu_report(batch_size: int, experiment_id: str) -> ExperimentReport:
    rows: List[list] = []
    results = cpu_gpu_results(batch_size)
    anchors = {}
    for model_name, per_platform in results:
        cpu = per_platform["SPR-Max-9468"]
        a100 = per_platform["A100-40GB"]
        h100 = per_platform["H100-80GB"]
        rows.append([
            model_name,
            a100.e2e_s / cpu.e2e_s,
            "off" if is_offloaded(a100) else "fit",
            h100.e2e_s / cpu.e2e_s,
            "off" if is_offloaded(h100) else "fit",
            a100.e2e_throughput / cpu.e2e_throughput,
            h100.e2e_throughput / cpu.e2e_throughput,
        ])
        anchors[model_name] = (cpu, a100, h100)

    notes = []
    if batch_size == 1:
        cpu13, a13, h13 = anchors["OPT-13B"]
        cpu30, a30, _ = anchors["OPT-30B"]
        cpu66, _, h66 = anchors["OPT-66B"]
        notes = [
            f"OPT-13B: A100 {cpu13.e2e_s / a13.e2e_s:.1f}x faster than CPU "
            f"(paper 2.9x), H100 {cpu13.e2e_s / h13.e2e_s:.1f}x (paper 3.7x)",
            f"OPT-30B: CPU {a30.e2e_s / cpu30.e2e_s:.1f}x faster than "
            f"offloading A100 (paper 12.7x)",
            f"OPT-66B: CPU {h66.e2e_s / cpu66.e2e_s:.1f}x faster than "
            f"offloading H100 (paper 5x)",
            "H100 fits OPT-30B entirely and beats the CPU (paper)",
        ]
    else:
        notes = [
            "paper: at batch 16 the GPU advantage widens for in-memory "
            "models; CPUs still win offloaded A100 configurations",
        ]
    return ExperimentReport(
        experiment_id=experiment_id,
        title=f"CPU vs GPU end-to-end, batch={batch_size} "
              "(normalized to SPR Max)",
        headers=["model", "A100 norm E2E", "A100 mode", "H100 norm E2E",
                 "H100 mode", "A100 thpt gain", "H100 thpt gain"],
        rows=rows,
        notes=notes,
    )


@register("fig17")
def run_fig17() -> ExperimentReport:
    """CPU vs GPU at batch 1 (Fig. 17)."""
    return _cpu_gpu_report(1, "fig17")


@register("fig19")
def run_fig19() -> ExperimentReport:
    """CPU vs GPU at batch 16 (Fig. 19)."""
    return _cpu_gpu_report(16, "fig19")
