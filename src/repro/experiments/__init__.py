"""Experiment harness: one registered runner per paper table/figure.

Importing this package registers every experiment; use
``run_experiment("fig8")`` or ``run_all_experiments()``.
"""

# Importing the modules populates the registry.
from repro.experiments import (  # noqa: F401
    ablations,
    ext_backends,
    ext_cluster,
    ext_disagg_tenancy,
    ext_fairness,
    ext_fleetmix,
    ext_future,
    ext_kernels_cache,
    ext_memory_decode,
    ext_moe,
    ext_parallel_sched,
    ext_pp_slo,
    ext_provisioning,
    ext_serving,
    ext_tiering,
    ext_trace,
    fig01_gemm,
    fig06_model_footprint,
    fig07_kv_footprint,
    fig08_icl_vs_spr,
    fig09_phase_latency,
    fig10_phase_throughput,
    fig11_12_counters_batch,
    fig13_numa_modes,
    fig14_core_scaling,
    fig15_counters_numa,
    fig16_counters_cores,
    fig17_19_cpu_gpu,
    fig18_offload_breakdown,
    fig20_21_seqlen,
    key_findings,
    sec6_optim,
    tables,
    whatif,
)
from repro.experiments.base import (
    all_experiment_ids,
    run_all_experiments,
    run_experiment,
)

__all__ = [
    "all_experiment_ids",
    "run_all_experiments",
    "run_experiment",
]
