"""Fig. 18 — GPU execution time breakdown under offloading.

(a) OPT-30B on A100, (b) OPT-66B on H100, batch sizes 1-32. Paper anchors:
the A100 spends 67%-95% of execution time loading data over PCIe; the
H100 spends 59%-92%; the loading share *falls* as batch size grows thanks
to FlexGen's zig-zag block scheduling.
"""

from typing import List

from repro.core.report import ExperimentReport
from repro.engine.request import EVALUATED_BATCH_SIZES, InferenceRequest
from repro.experiments.base import register
from repro.hardware.registry import get_platform
from repro.models.registry import get_model
from repro.offload.engine import OffloadSimulator


@register("fig18")
def run() -> ExperimentReport:
    """Loading vs compute share per batch for both offloaded cases."""
    cases = [
        ("a100", "opt-30b", (67.0, 95.0)),
        ("h100", "opt-66b", (59.0, 92.0)),
    ]
    rows: List[list] = []
    notes: List[str] = []
    for platform_key, model_key, (paper_lo, paper_hi) in cases:
        gpu = get_platform(platform_key)
        model = get_model(model_key)
        simulator = OffloadSimulator(gpu)
        shares = []
        for batch in EVALUATED_BATCH_SIZES:
            result = simulator.run(model, InferenceRequest(batch_size=batch))
            share = result.loading_share * 100.0
            shares.append(share)
            rows.append([gpu.name, model.name, batch, share, 100.0 - share])
        monotone = all(shares[i] >= shares[i + 1]
                       for i in range(len(shares) - 1))
        notes.append(
            f"{gpu.name}/{model.name}: loading share "
            f"{min(shares):.0f}%-{max(shares):.0f}% "
            f"(paper {paper_lo:.0f}%-{paper_hi:.0f}%), declines with "
            f"batch: {monotone}")
    notes.append("zig-zag block scheduling amortizes each streamed weight "
                 "block across the batch, shrinking the loading share")
    return ExperimentReport(
        experiment_id="fig18",
        title="Offloading execution-time breakdown (loading vs compute)",
        headers=["gpu", "model", "batch", "loading %", "compute %"],
        rows=rows,
        notes=notes,
    )
