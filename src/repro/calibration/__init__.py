"""Calibration-target framework: the paper anchors the model must hit."""

from repro.calibration.targets import (
    CalibrationResult,
    CalibrationTarget,
    all_targets,
    check_all_targets,
)

__all__ = [
    "CalibrationResult",
    "CalibrationTarget",
    "all_targets",
    "check_all_targets",
]
