"""Calibration targets: the paper numbers the simulator must land near.

DESIGN.md §5 lists the quantitative anchors extracted from the paper's
text. This module encodes each as a :class:`CalibrationTarget` — a
measurement function plus an acceptance band around the paper's value —
and provides a checker that reports measured-vs-paper for all of them.
The bands are intentionally loose (the substrate is a model, not the
authors' testbed); what must hold is that every measurement falls inside
its band, i.e. the *shape* survives.
"""

import dataclasses
from typing import Callable, List, Tuple

from repro.core.comparison import compare_platforms, per_model_speedup_range
from repro.core.runner import CharacterizationSweep, run_inference
from repro.engine.inference import EngineConfig, simulate
from repro.engine.request import InferenceRequest
from repro.hardware.registry import get_platform
from repro.models.memory import kv_cache_bytes, weight_bytes
from repro.models.registry import get_model
from repro.numa.modes import QUAD_CACHE, QUAD_FLAT, SNC_FLAT
from repro.offload.engine import OffloadSimulator
from repro.utils.units import GB


@dataclasses.dataclass(frozen=True)
class CalibrationTarget:
    """One paper anchor with its acceptance band.

    Attributes:
        target_id: Short identifier.
        description: What is measured.
        paper_value: The paper's reported number (band midpoint reference).
        band: (low, high) acceptance interval for the measurement.
        measure: Zero-argument function returning the simulated value.
    """

    target_id: str
    description: str
    paper_value: float
    band: Tuple[float, float]
    measure: Callable[[], float]

    def check(self) -> "CalibrationResult":
        """Measure and compare against the band."""
        value = self.measure()
        low, high = self.band
        return CalibrationResult(target=self, measured=value,
                                 in_band=low <= value <= high)


@dataclasses.dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one target check."""

    target: CalibrationTarget
    measured: float
    in_band: bool


def _cpu_comparison():
    models = [get_model(key) for key in
              ("opt-6.7b", "llama2-13b", "opt-66b")]
    sweep = CharacterizationSweep(
        [get_platform("icl"), get_platform("spr")], models, [1, 8, 32])
    return compare_platforms(sweep.run(), "ICL-8352Y", "SPR-Max-9468")


def _mean_gain(metric: str) -> float:
    # Throughput metrics normalize as target/baseline, which IS the gain.
    comps = _cpu_comparison()
    gains = [c.normalized[metric] for c in comps]
    return sum(gains) / len(gains)


def _spr_icl_e2e_speedup() -> float:
    speedups = per_model_speedup_range(_cpu_comparison())
    return sum(speedups.values()) / len(speedups)


def _numa_ratio(numerator, denominator) -> float:
    model = get_model("llama2-13b")
    request = InferenceRequest(batch_size=8)
    spr = get_platform("spr")
    top = simulate(spr, model, request, EngineConfig(numa=numerator)).e2e_s
    bottom = simulate(spr, model, request,
                      EngineConfig(numa=denominator)).e2e_s
    return top / bottom


def _core_reduction_12_to_48() -> float:
    model = get_model("llama2-13b")
    request = InferenceRequest(batch_size=8)
    spr = get_platform("spr")
    t12 = simulate(spr, model, request, EngineConfig(cores=12)).e2e_s
    t48 = simulate(spr, model, request, EngineConfig(cores=48)).e2e_s
    return (1.0 - t48 / t12) * 100.0


def _gpu_vs_cpu(model_key: str, gpu_key: str, cpu_wins: bool) -> float:
    request = InferenceRequest(batch_size=1)
    cpu = run_inference(get_platform("spr"), get_model(model_key), request)
    gpu = run_inference(get_platform(gpu_key), get_model(model_key), request)
    return gpu.e2e_s / cpu.e2e_s if cpu_wins else cpu.e2e_s / gpu.e2e_s


def _loading_share(gpu_key: str, model_key: str, batch: int) -> float:
    result = OffloadSimulator(get_platform(gpu_key)).run(
        get_model(model_key), InferenceRequest(batch_size=batch))
    return result.loading_share * 100.0


def _h100_crossover_input_len() -> float:
    model = get_model("llama2-70b")
    for input_len in (128, 256, 512, 1024):
        request = InferenceRequest(batch_size=16, input_len=input_len)
        cpu = run_inference(get_platform("spr"), model, request)
        gpu = run_inference(get_platform("h100"), model, request)
        if gpu.e2e_s < cpu.e2e_s:
            return float(input_len)
    return float("inf")


def all_targets() -> List[CalibrationTarget]:
    """The full calibration-target registry (DESIGN.md §5)."""
    return [
        CalibrationTarget(
            "spr_icl_e2e", "mean SPR-over-ICL E2E speedup",
            4.7, (3.0, 6.3), _spr_icl_e2e_speedup),
        CalibrationTarget(
            "spr_icl_prefill", "mean SPR-over-ICL prefill throughput gain",
            7.7, (5.5, 9.5), lambda: _mean_gain("prefill_throughput")),
        CalibrationTarget(
            "spr_icl_decode", "mean SPR-over-ICL decode throughput gain",
            4.1, (2.5, 5.6), lambda: _mean_gain("decode_throughput")),
        CalibrationTarget(
            "flat_vs_cache", "quad_flat / quad_cache E2E ratio",
            0.95, (0.85, 1.0), lambda: _numa_ratio(QUAD_FLAT, QUAD_CACHE)),
        CalibrationTarget(
            "snc_vs_quad", "snc_flat / quad_flat E2E ratio",
            1.2, (1.05, 1.6), lambda: _numa_ratio(SNC_FLAT, QUAD_FLAT)),
        CalibrationTarget(
            "cores_12_48", "E2E latency reduction 12 -> 48 cores (%)",
            59.8, (48.0, 68.0), _core_reduction_12_to_48),
        CalibrationTarget(
            "a100_opt13b", "A100-over-SPR speedup, OPT-13B batch 1",
            2.9, (2.0, 3.6), lambda: _gpu_vs_cpu("opt-13b", "a100", False)),
        CalibrationTarget(
            "h100_opt13b", "H100-over-SPR speedup, OPT-13B batch 1",
            3.7, (2.5, 4.6), lambda: _gpu_vs_cpu("opt-13b", "h100", False)),
        CalibrationTarget(
            "cpu_opt30b", "SPR-over-A100 speedup, OPT-30B batch 1 (offload)",
            12.7, (8.0, 20.0), lambda: _gpu_vs_cpu("opt-30b", "a100", True)),
        CalibrationTarget(
            "cpu_opt66b", "SPR-over-H100 speedup, OPT-66B batch 1 (offload)",
            5.0, (3.0, 7.0), lambda: _gpu_vs_cpu("opt-66b", "h100", True)),
        CalibrationTarget(
            "load_a100_b1", "A100/OPT-30B loading share at batch 1 (%)",
            95.0, (90.0, 99.0), lambda: _loading_share("a100", "opt-30b", 1)),
        CalibrationTarget(
            "load_a100_b32", "A100/OPT-30B loading share at batch 32 (%)",
            67.0, (60.0, 85.0), lambda: _loading_share("a100", "opt-30b", 32)),
        CalibrationTarget(
            "load_h100_b32", "H100/OPT-66B loading share at batch 32 (%)",
            59.0, (55.0, 85.0), lambda: _loading_share("h100", "opt-66b", 32)),
        CalibrationTarget(
            "crossover_70b", "H100 crossover input length, 70B batch 16",
            256.0, (256.0, 512.0), _h100_crossover_input_len),
        CalibrationTarget(
            "opt175b_gb", "OPT-175B FP16 weight footprint (GB)",
            350.0, (340.0, 360.0),
            lambda: weight_bytes(get_model("opt-175b")) / GB),
        CalibrationTarget(
            "opt66b_kv_gb", "OPT-66B KV @ seq 4096 batch 32 (GB)",
            309.2, (300.0, 320.0),
            lambda: kv_cache_bytes(get_model("opt-66b"), 4096, 32) / GB),
    ]


def check_all_targets() -> List[CalibrationResult]:
    """Check every calibration target."""
    return [target.check() for target in all_targets()]
