"""Roofline primitives: compute time, memory time, attainable throughput.

The simulator prices every operator as::

    time = max(compute_time, memory_time) + launch_overhead

i.e. perfect overlap of compute with memory up to whichever resource
saturates — the standard roofline composition. The paper's own analysis is
roofline-shaped ("prefill is compute-bound", "decode is memory-bound"), so
this is the faithful abstraction level.
"""

from repro.utils.validation import require_non_negative, require_positive


def compute_time(flops: float, peak_flops: float, efficiency: float = 1.0) -> float:
    """Seconds to execute *flops* at ``peak_flops * efficiency``."""
    require_non_negative(flops, "flops")
    require_positive(peak_flops, "peak_flops")
    if not 0 < efficiency <= 1:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    return flops / (peak_flops * efficiency)


def memory_time(nbytes: float, bandwidth: float) -> float:
    """Seconds to stream *nbytes* at *bandwidth* bytes/s."""
    require_non_negative(nbytes, "nbytes")
    require_positive(bandwidth, "bandwidth")
    return nbytes / bandwidth


def op_time(flops: float, nbytes: float, peak_flops: float, bandwidth: float,
            efficiency: float = 1.0, overhead: float = 0.0) -> float:
    """Roofline time for one operator: slower of compute and memory, plus
    fixed *overhead* (kernel launch / framework dispatch)."""
    require_non_negative(overhead, "overhead")
    times = []
    if flops > 0:
        times.append(compute_time(flops, peak_flops, efficiency))
    if nbytes > 0:
        times.append(memory_time(nbytes, bandwidth))
    busy = max(times) if times else 0.0
    return busy + overhead


def attainable_flops(intensity: float, peak_flops: float, bandwidth: float) -> float:
    """Classic roofline: attainable FLOP/s at a given arithmetic intensity.

    ``min(peak, intensity * bandwidth)`` — the ridge point sits at
    ``peak / bandwidth`` FLOPs per byte.
    """
    require_non_negative(intensity, "intensity")
    require_positive(peak_flops, "peak_flops")
    require_positive(bandwidth, "bandwidth")
    return min(peak_flops, intensity * bandwidth)


def is_memory_bound(flops: float, nbytes: float, peak_flops: float,
                    bandwidth: float, efficiency: float = 1.0) -> bool:
    """Whether the memory leg of the roofline dominates for this operator."""
    if nbytes <= 0:
        return False
    if flops <= 0:
        return True
    return memory_time(nbytes, bandwidth) >= compute_time(flops, peak_flops, efficiency)
