"""GEMM timing/throughput simulator (regenerates Fig. 1).

:class:`GemmSimulator` prices a single GEMM on a platform: it picks the
best engine for the dtype, applies the dimension-dependent efficiency
curve, prices the memory leg of the roofline against the platform's
sustained bandwidth, and adds launch overhead. When a platform has several
engines (SPR: AVX-512 and AMX) the simulator evaluates each and takes the
fastest — matching IPEX/oneDNN dispatch, which falls back to AVX-512 for
shapes where AMX tiling does not pay off.
"""

import dataclasses
from typing import List, Optional, Tuple

from repro.gemm.efficiency import gemm_efficiency
from repro.gemm.roofline import op_time
from repro.hardware.compute import ComputeEngine
from repro.hardware.datatypes import DType
from repro.hardware.platform import Platform
from repro.utils.units import TFLOPS
from repro.utils.validation import require_positive


@dataclasses.dataclass(frozen=True)
class GemmTiming:
    """Result of pricing one GEMM.

    Attributes:
        time_s: Wall time in (simulated) seconds.
        engine: Engine that executed the GEMM.
        efficiency: Compute efficiency applied.
        flops: FLOPs performed (2*m*n*k).
        bytes_moved: Memory traffic priced (A + B + C, one pass each).
        memory_bound: Whether the memory leg dominated.
    """

    time_s: float
    engine: ComputeEngine
    efficiency: float
    flops: float
    bytes_moved: float
    memory_bound: bool

    @property
    def achieved_tflops(self) -> float:
        """Achieved throughput in TFLOP/s."""
        return self.flops / self.time_s / TFLOPS


class GemmSimulator:
    """Prices GEMMs on one platform at one dtype.

    Args:
        platform: Target platform.
        dtype: Compute/storage dtype (BF16 in the paper's experiments).
        bandwidth_override: Optional effective bandwidth in bytes/s; when
            given it replaces the platform's default fastest-tier bandwidth
            (used by the NUMA and core-scaling models, which modify
            effective bandwidth per configuration).
        compute_scale: Multiplier on engine peaks (core-count scaling).
    """

    def __init__(self, platform: Platform, dtype: DType = DType.BF16,
                 bandwidth_override: Optional[float] = None,
                 compute_scale: float = 1.0):
        require_positive(compute_scale, "compute_scale")
        self.platform = platform
        self.dtype = dtype
        self.compute_scale = compute_scale
        if bandwidth_override is not None:
            require_positive(bandwidth_override, "bandwidth_override")
            self._bandwidth = bandwidth_override
        else:
            self._bandwidth = (platform.peak_memory_bandwidth
                               * platform.stream_efficiency)
        self._engines = [e for e in platform.engines if e.supports(dtype)]
        if not self._engines:
            raise ValueError(
                f"{platform.name} has no engine supporting {dtype}")

    @property
    def bandwidth(self) -> float:
        """Effective memory bandwidth used for the memory leg, bytes/s."""
        return self._bandwidth

    def gemm_bytes(self, m: int, n: int, k: int) -> float:
        """Memory traffic of one GEMM: read A (m*k) and B (k*n), write C."""
        return float(m * k + k * n + m * n) * self.dtype.nbytes

    def time(self, m: int, n: int, k: int,
             bytes_override: Optional[float] = None) -> GemmTiming:
        """Price an m x n x k GEMM; returns the fastest engine's timing.

        *bytes_override* lets the operator executor substitute exact traffic
        (e.g. weight reuse across a batch) for the standalone-GEMM default.
        """
        require_positive(m, "m")
        require_positive(n, "n")
        require_positive(k, "k")
        flops = 2.0 * m * n * k
        nbytes = self.gemm_bytes(m, n, k) if bytes_override is None else bytes_override
        best: Optional[GemmTiming] = None
        for engine in self._engines:
            eff = gemm_efficiency(engine, m, n, k)
            peak = engine.peak(self.dtype) * self.compute_scale
            total = op_time(flops, nbytes, peak, self._bandwidth, eff,
                            overhead=engine.launch_overhead_s)
            mem_leg = nbytes / self._bandwidth
            cmp_leg = flops / (peak * eff)
            timing = GemmTiming(
                time_s=total,
                engine=engine,
                efficiency=eff,
                flops=flops,
                bytes_moved=nbytes,
                memory_bound=mem_leg >= cmp_leg,
            )
            if best is None or timing.time_s < best.time_s:
                best = timing
        assert best is not None  # _engines is non-empty
        return best

    def throughput_tflops(self, m: int, n: int, k: int) -> float:
        """Achieved TFLOP/s for a standalone m x n x k GEMM (Fig. 1's y-axis)."""
        return self.time(m, n, k).achieved_tflops


def sweep_square_gemm(platform: Platform, sizes: List[int],
                      dtype: DType = DType.BF16) -> List[Tuple[int, float]]:
    """Fig. 1 helper: achieved TFLOP/s for square GEMMs of each size."""
    sim = GemmSimulator(platform, dtype)
    return [(size, sim.throughput_tflops(size, size, size)) for size in sizes]
