"""GEMM cost model: roofline primitives, efficiency curves, simulator."""

from repro.gemm.efficiency import (
    EfficiencyCurve,
    GPU_CURVE,
    MATRIX_CURVE,
    VECTOR_CURVE,
    gemm_efficiency,
    tile_utilization,
)
from repro.gemm.roofline import (
    attainable_flops,
    compute_time,
    is_memory_bound,
    memory_time,
    op_time,
)
from repro.gemm.simulator import GemmSimulator, GemmTiming, sweep_square_gemm

__all__ = [
    "EfficiencyCurve",
    "GPU_CURVE",
    "GemmSimulator",
    "GemmTiming",
    "MATRIX_CURVE",
    "VECTOR_CURVE",
    "attainable_flops",
    "compute_time",
    "gemm_efficiency",
    "is_memory_bound",
    "memory_time",
    "op_time",
    "sweep_square_gemm",
    "tile_utilization",
]
