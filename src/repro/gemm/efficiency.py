"""Dimension-dependent GEMM efficiency curves per engine class.

Peak TFLOPS are only reached by large, well-shaped GEMMs. Small or skinny
matrices lose throughput to:

* **tile quantization** — matrix engines (AMX) execute whole 16x16x32
  tiles; a GEMM with m=4 wastes 12 of 16 tile rows;
* **pipeline ramp** — each dimension must be long enough to hide operand
  load latency and amortize tile/fragment setup;
* **parallelization grain** — tiny GEMMs cannot fill all cores/SMs.

The curve family is ``eff = ceiling * ramp(m) * ramp(n) * ramp(k) * tile_util``
with ``ramp(x) = x / (x + x_half)``, a saturating form whose half-point
constants are the calibration knobs. Values are chosen so the simulated
platforms land inside the paper's reported speedup bands (DESIGN.md §5) and
produce Fig. 1's ordering: H100 > A100 > SPR-AMX >> ICL-AVX512 at large
sizes, with the CPU gap narrowing at small sizes where launch overheads
hurt GPUs.
"""

import dataclasses
import functools
from typing import Optional

from repro.hardware.compute import ComputeEngine, EngineKind, TileShape, tiles_needed
from repro.utils.validation import require_positive


@dataclasses.dataclass(frozen=True)
class EfficiencyCurve:
    """Saturating efficiency curve for one engine class.

    Attributes:
        ceiling: Efficiency reached by asymptotically large GEMMs.
        m_half, n_half, k_half: Dimension at which each ramp reaches 50 %
            of its asymptote (smaller = faster ramp).
    """

    ceiling: float
    m_half: float
    n_half: float
    k_half: float

    def __post_init__(self) -> None:
        if not 0 < self.ceiling <= 1:
            raise ValueError(f"ceiling must be in (0, 1], got {self.ceiling}")
        for name in ("m_half", "n_half", "k_half"):
            require_positive(getattr(self, name), name)

    def ramp(self, value: float, half: float) -> float:
        """Saturating ramp: 0 at 0, 0.5 at *half*, -> 1 as value grows."""
        return value / (value + half)

    def evaluate(self, m: int, n: int, k: int) -> float:
        """Raw curve value (before tile quantization)."""
        return (self.ceiling
                * self.ramp(m, self.m_half)
                * self.ramp(n, self.n_half)
                * self.ramp(k, self.k_half))


# Vector units reach a high fraction of their (modest) peak quickly: FMA
# pipes have no tile-shape constraints, only cache blocking.
VECTOR_CURVE = EfficiencyCurve(ceiling=0.88, m_half=8.0, n_half=48.0, k_half=48.0)

# AMX needs large tiles resident and big K to amortize tile loads; skinny
# GEMMs fall back toward vector-like throughput (handled by the caller
# taking the best engine — at m=1 AVX-512 often wins).
MATRIX_CURVE = EfficiencyCurve(ceiling=0.78, m_half=28.0, n_half=192.0, k_half=192.0)

# GPU tensor cores: high ceiling but large half-points — small GEMMs cannot
# fill 100+ SMs, which is why Fig. 1's GPU curves sag at small dimensions.
GPU_CURVE = EfficiencyCurve(ceiling=0.72, m_half=96.0, n_half=384.0, k_half=384.0)

_CURVES = {
    EngineKind.VECTOR: VECTOR_CURVE,
    EngineKind.MATRIX: MATRIX_CURVE,
    EngineKind.GPU_TENSOR: GPU_CURVE,
}


def tile_utilization(engine: ComputeEngine, m: int, n: int, k: int) -> float:
    """Fraction of executed tile lanes doing useful work (matrix engines).

    Whole tiles always execute; useful work is ``m*n*k`` out of the padded
    ``ceil`` volume. 1.0 for engines without tile constraints.
    """
    if engine.tile is None:
        return 1.0
    tm, tn, tk = tiles_needed(engine.tile, m, n, k)
    padded = (tm * engine.tile.m) * (tn * engine.tile.n) * (tk * engine.tile.k)
    return (m * n * k) / padded


@functools.lru_cache(maxsize=131072)
def _gemm_efficiency_cached(kind: EngineKind, tile: Optional[TileShape],
                            m: int, n: int, k: int) -> float:
    """Memoized curve evaluation; the curve depends only on (kind, tile).

    Sweeps re-issue identical GEMM shapes thousands of times (every decode
    step of every batch/model cell shares projections and FFN shapes), so
    this cache removes the dominant repeated arithmetic from pricing.
    """
    curve = _CURVES[kind]
    if tile is not None:
        tm, tn, tk = tiles_needed(tile, m, n, k)
        padded_m, padded_n, padded_k = tm * tile.m, tn * tile.n, tk * tile.k
        ramp_dims = (padded_m, padded_n, padded_k)
        util = (m * n * k) / (padded_m * padded_n * padded_k)
    else:
        ramp_dims = (m, n, k)
        util = 1.0
    eff = curve.evaluate(*ramp_dims) * util
    return max(eff, 1e-4)


def gemm_efficiency(engine: ComputeEngine, m: int, n: int, k: int) -> float:
    """Fraction of *engine*'s peak achieved by an m x n x k GEMM.

    For matrix engines the ramp is evaluated at the *tile-padded*
    dimensions: the hardware executes whole tiles, so execution time is
    constant within one padded block and steps up across blocks. Combined
    with the tile-utilization factor this makes simulated GEMM time
    monotone non-decreasing in every dimension — the physical invariant.

    Results are memoized (see :func:`clear_gemm_efficiency_cache`).
    Always returns a value in (0, 1].
    """
    require_positive(m, "m")
    require_positive(n, "n")
    require_positive(k, "k")
    return _gemm_efficiency_cached(engine.kind, engine.tile, m, n, k)


def clear_gemm_efficiency_cache() -> None:
    """Drop all memoized efficiency values (for calibration-tweaking tests)."""
    _gemm_efficiency_cached.cache_clear()
