"""Request classes for tiered serving: simple / standard / reasoning.

Production traffic is not one distribution — a portfolio fleet serves
interactive lookups, everyday chat, and long deliberate generations with
very different latency bars and *quality* requirements. This module
makes that mix first-class:

* :class:`RequestClass` — a named class with its own shape ranges, an
  :class:`~repro.serving.slo.SLO`, and a model-capability floor
  (``min_model_params``) below which a model cannot acceptably answer
  the class regardless of speed;
* :class:`MixClassifier` — the deterministic classifier hook: a pure
  hash of the request id into mix shares, so every component (stream
  generator, router, scoring) recovers the identical class for a
  request with no side channel and no RNG state;
* :class:`ClassMixStream` — a splittable arrival stream whose requests
  draw their shapes from their class's ranges. Like every stream here
  it is shard-aligned: all shards consume the same RNG sequence and the
  union of sub-streams is bit-equal to the full stream.

The classes themselves follow the jarvis-style 3-tier matrix from the
ROADMAP, calibrated against the measured per-(platform, model) step
costs: ``simple`` clears on the cheapest CPU tier, ``standard`` needs a
mid-size model, ``reasoning`` needs a large model and tolerates a
looser latency bar (see :mod:`repro.cluster.tiering` for the router
that exploits this).
"""

import dataclasses
import random
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

from repro.serving.arrivals import ArrivingRequest, _check_shard, \
    _check_stream_bounds
from repro.serving.slo import SLO
from repro.utils.validation import require_positive
from repro.workloads.generator import WorkloadSpec


@dataclasses.dataclass(frozen=True)
class RequestClass:
    """One request class in a tiered-serving mix.

    Attributes:
        name: Class identifier ("simple", "standard", "reasoning").
        slo: The class's latency bar (TTFT + TPOT bounds).
        min_model_params: Smallest model (total parameters) that can
            acceptably answer this class — the *quality* floor the
            tiered router never routes below except on tier outage.
        input_len_range / output_len_range: Inclusive shape ranges the
            class's requests draw from.
    """

    name: str
    slo: SLO
    min_model_params: float = 0.0
    input_len_range: Tuple[int, int] = (16, 96)
    output_len_range: Tuple[int, int] = (8, 48)

    def __post_init__(self) -> None:
        if self.min_model_params < 0:
            raise ValueError(f"min_model_params must be >= 0, got "
                             f"{self.min_model_params}")
        for label, rng in (("input_len_range", self.input_len_range),
                           ("output_len_range", self.output_len_range)):
            low, high = rng
            require_positive(low, f"{label} low")
            if high < low:
                raise ValueError(f"{label} high {high} < low {low}")


#: The default 3-class matrix. Shapes and bars are calibrated so the
#: cheapest CPU tier (ICL + a ~7B model, ~0.16 s/token measured) clears
#: ``simple``/``standard`` while ``reasoning``'s capability floor
#: (>= ~10B params) forces the large-model tier (SPR + 13B, ~0.065
#: s/token) — the split the tiered router monetizes.
REQUEST_CLASSES: Dict[str, RequestClass] = {
    "simple": RequestClass(
        name="simple", slo=SLO(ttft_s=2.0, tpot_s=0.25),
        min_model_params=0.0,
        input_len_range=(16, 96), output_len_range=(8, 48)),
    "standard": RequestClass(
        name="standard", slo=SLO(ttft_s=3.0, tpot_s=0.25),
        min_model_params=5e9,
        input_len_range=(32, 256), output_len_range=(16, 96)),
    "reasoning": RequestClass(
        name="reasoning", slo=SLO(ttft_s=8.0, tpot_s=0.35),
        min_model_params=1e10,
        input_len_range=(64, 512), output_len_range=(128, 384)),
}

#: Default traffic shares: mostly light interactive work, a heavy tail
#: of long-form reasoning.
DEFAULT_CLASS_MIX: Tuple[Tuple[str, float], ...] = (
    ("simple", 0.5), ("standard", 0.35), ("reasoning", 0.15))

_MASK64 = (1 << 64) - 1


def _hash_unit(request_id: int) -> float:
    """SplitMix64-style avalanche of the id into [0, 1).

    A pure integer function — no RNG object, no state — so the class of
    request *i* is recoverable anywhere (stream generator, router,
    scorer, any shard) from the id alone.
    """
    x = (request_id + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / 2.0 ** 64


def parse_class_mix(text: str) -> Tuple[Tuple[str, float], ...]:
    """Parse a ``name[:weight],...`` mix spelling into normalized shares.

    ``"simple:2,reasoning:1"`` → ``(("simple", 2/3), ("reasoning",
    1/3))``; omitting weights (``"simple,reasoning"``) means equal
    shares. Unknown class names and non-positive weights raise with the
    known-class list in the message.
    """
    entries = []
    for field in text.split(","):
        field = field.strip()
        if not field:
            continue
        name, _, weight_text = field.partition(":")
        name = name.strip()
        if name not in REQUEST_CLASSES:
            raise ValueError(f"unknown request class {name!r}; known: "
                             f"{sorted(REQUEST_CLASSES)}")
        weight = float(weight_text) if weight_text else 1.0
        if weight <= 0:
            raise ValueError(f"class weight must be > 0, got {weight} "
                             f"for {name!r}")
        entries.append((name, weight))
    if not entries:
        raise ValueError("empty class mix")
    names = [name for name, _ in entries]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate class in mix: {names}")
    total = sum(weight for _, weight in entries)
    return tuple((name, weight / total) for name, weight in entries)


@dataclasses.dataclass(frozen=True)
class MixClassifier:
    """Deterministic request classifier: pure hash of the id into shares.

    The classifier is the *contract* between workload and router: both
    sides compute the class from the request id alone, so no class tag
    has to travel on the wire (``ArrivingRequest`` stays four numeric
    fields and the sharded runner's columnar transfer is untouched).
    Pickles cleanly into sharded workers; equal mixes classify equally
    everywhere.
    """

    mix: Tuple[Tuple[str, float], ...] = DEFAULT_CLASS_MIX

    def __post_init__(self) -> None:
        total = sum(share for _, share in self.mix)
        if not self.mix or abs(total - 1.0) > 1e-9:
            raise ValueError(f"mix shares must sum to 1, got {total} "
                             f"({self.mix}); use parse_class_mix")
        for name, _ in self.mix:
            if name not in REQUEST_CLASSES:
                raise ValueError(f"unknown request class {name!r}; known: "
                                 f"{sorted(REQUEST_CLASSES)}")

    def class_of(self, request_id: int) -> str:
        """The class name for request *request_id*."""
        point = _hash_unit(request_id)
        acc = 0.0
        for name, share in self.mix:
            acc += share
            if point < acc:
                return name
        return self.mix[-1][0]

    def __call__(self, request: Union[ArrivingRequest, int]) -> str:
        request_id = getattr(request, "request_id", request)
        return self.class_of(request_id)

    def shares(self) -> Dict[str, float]:
        """Mix shares as a dict (display helper)."""
        return dict(self.mix)


def iter_class_arrivals(rate_per_s: float, classifier: MixClassifier,
                        count: Optional[int] = None,
                        duration_s: Optional[float] = None,
                        classes: Optional[Dict[str, RequestClass]] = None,
                        seed: int = 0, shard: int = 0,
                        num_shards: int = 1) -> Iterator[ArrivingRequest]:
    """Lazy Poisson arrivals whose shapes follow each request's class.

    The class of request *i* is ``classifier.class_of(i)`` — a pure
    function of the id — and its input/output lengths draw from that
    class's ranges. Every shard consumes the identical RNG sequence
    (foreign requests' two shape draws included), so the union of
    ``num_shards`` sub-streams is bit-equal to the full stream, the
    same contract as :func:`repro.serving.arrivals.iter_poisson_arrivals`.
    """
    require_positive(rate_per_s, "rate_per_s")
    _check_stream_bounds(count, duration_s)
    _check_shard(shard, num_shards)
    table = classes if classes is not None else REQUEST_CLASSES
    for name, _ in classifier.mix:
        if name not in table:
            raise KeyError(f"classifier mixes class {name!r} missing from "
                           f"the class table {sorted(table)}")

    def generate() -> Iterator[ArrivingRequest]:
        rng = random.Random(seed)
        now = 0.0
        request_id = 0
        while count is None or request_id < count:
            now += rng.expovariate(rate_per_s)
            if duration_s is not None and now > duration_s:
                return
            spec = table[classifier.class_of(request_id)]
            # The class is id-determined, so foreign shards draw from
            # the *same* ranges — the RNG stream stays aligned.
            input_len = rng.randint(*spec.input_len_range)
            output_len = rng.randint(*spec.output_len_range)
            if request_id % num_shards == shard:
                yield ArrivingRequest(
                    request_id=request_id,
                    arrival_s=now,
                    input_len=input_len,
                    output_len=output_len,
                )
            request_id += 1

    return generate()


@dataclasses.dataclass(frozen=True)
class ClassMixStream:
    """A replayable, splittable class-mix arrival stream as plain data.

    The class-workload analogue of
    :class:`~repro.workloads.streams.ShardableStream`: pickleable,
    :meth:`full` regenerates the identical stream, :meth:`shard`
    regenerates one worker's slice, and generated streams number
    requests sequentially so ``request_id`` doubles as stream position
    (the sharded merge's key). :meth:`classifier` exposes the
    deterministic classifier for routers and per-class scoring.
    """

    rate_per_s: float
    count: Optional[int] = None
    duration_s: Optional[float] = None
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_CLASS_MIX
    seed: int = 0

    def classifier(self) -> MixClassifier:
        """The classifier every consumer of this stream agrees on."""
        return MixClassifier(self.mix)

    @property
    def spec(self) -> WorkloadSpec:
        """Shape envelope over all mixed classes.

        Consumed by the sharded runner's cache warm-up
        (:func:`repro.cluster.shard.warm_caches`) to size the decode
        cost curves: the envelope covers the longest request any class
        can draw.
        """
        classes = [REQUEST_CLASSES[name] for name, _ in self.mix]
        return WorkloadSpec(
            name="class-mix",
            input_len_range=(min(c.input_len_range[0] for c in classes),
                             max(c.input_len_range[1] for c in classes)),
            output_len_range=(min(c.output_len_range[0] for c in classes),
                              max(c.output_len_range[1] for c in classes)),
            batch_size=1,
            priority_metric="tpot_s",
        )

    def full(self) -> Iterator[ArrivingRequest]:
        """The complete stream, regenerated from scratch."""
        return self.shard(0, 1)

    def shard(self, shard: int, num_shards: int) -> Iterator[ArrivingRequest]:
        """The sub-stream with ``request_id % num_shards == shard``."""
        return iter_class_arrivals(self.rate_per_s, self.classifier(),
                                   count=self.count,
                                   duration_s=self.duration_s,
                                   seed=self.seed, shard=shard,
                                   num_shards=num_shards)


def class_counts(classifier: MixClassifier,
                 arrivals: Sequence[ArrivingRequest]) -> Dict[str, int]:
    """How many of *arrivals* fall in each mixed class."""
    counts = {name: 0 for name, _ in classifier.mix}
    for request in arrivals:
        counts[classifier(request)] += 1
    return counts
