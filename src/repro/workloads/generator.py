"""Synthetic workload generation.

The paper motivates its three metrics with three serving scenarios
(Section II-C): a real-time chatbot (TTFT-critical), live translation
(TPOT-critical), and batch sentiment analysis (throughput-critical).
These generators produce deterministic, seeded request streams with the
corresponding shapes so examples and tests exercise realistic mixes rather
than a single fixed request.
"""

import dataclasses
import random
from typing import List, Sequence, Tuple

from repro.engine.request import InferenceRequest
from repro.hardware.datatypes import DType
from repro.utils.validation import require_positive


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one synthetic workload.

    Attributes:
        name: Scenario name.
        input_len_range: (min, max) prompt lengths, inclusive.
        output_len_range: (min, max) generation lengths, inclusive.
        batch_size: Sequences per request.
        priority_metric: The metric this scenario cares about
            ("ttft_s", "tpot_s", or "e2e_throughput").
    """

    name: str
    input_len_range: Tuple[int, int]
    output_len_range: Tuple[int, int]
    batch_size: int
    priority_metric: str

    def __post_init__(self) -> None:
        require_positive(self.batch_size, "batch_size")
        for label, (lo, hi) in (("input_len_range", self.input_len_range),
                                ("output_len_range", self.output_len_range)):
            if not 0 < lo <= hi:
                raise ValueError(f"{label} must satisfy 0 < min <= max, "
                                 f"got ({lo}, {hi})")


def chatbot_workload(batch_size: int = 1) -> WorkloadSpec:
    """Interactive chatbot: short prompts, short replies, TTFT-critical."""
    return WorkloadSpec(
        name="chatbot",
        input_len_range=(32, 256),
        output_len_range=(16, 64),
        batch_size=batch_size,
        priority_metric="ttft_s",
    )


def translation_workload(batch_size: int = 4) -> WorkloadSpec:
    """Live translation: steady token pace matters most (TPOT-critical)."""
    return WorkloadSpec(
        name="translation",
        input_len_range=(64, 512),
        output_len_range=(64, 512),
        batch_size=batch_size,
        priority_metric="tpot_s",
    )


def batch_analytics_workload(batch_size: int = 32) -> WorkloadSpec:
    """Offline sentiment analysis: raw tokens/second matter (throughput)."""
    return WorkloadSpec(
        name="batch_analytics",
        input_len_range=(128, 1024),
        output_len_range=(8, 32),
        batch_size=batch_size,
        priority_metric="e2e_throughput",
    )


PRESET_WORKLOADS = (chatbot_workload, translation_workload,
                    batch_analytics_workload)


def generate_requests(spec: WorkloadSpec, count: int,
                      seed: int = 0,
                      dtype: DType = DType.BF16) -> List[InferenceRequest]:
    """Produce *count* deterministic requests matching *spec*.

    The same (spec, count, seed) always yields the same stream.
    """
    require_positive(count, "count")
    rng = random.Random(seed)
    requests = []
    for _ in range(count):
        requests.append(InferenceRequest(
            batch_size=spec.batch_size,
            input_len=rng.randint(*spec.input_len_range),
            output_len=rng.randint(*spec.output_len_range),
            dtype=dtype,
        ))
    return requests


def total_tokens(requests: Sequence[InferenceRequest]) -> int:
    """Tokens generated across a request stream (throughput numerator)."""
    return sum(r.total_generated_tokens for r in requests)
