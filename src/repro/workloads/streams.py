"""Streaming workloads: arrival generators that never build a list.

The cluster simulator consumes arrivals lazily (it buffers exactly one
unrouted request), so a million-request trace costs O(1) memory when the
workload side is a generator too. This module is the workload-level
face of that contract:

* :func:`stream_workload` — a :class:`~repro.workloads.generator.WorkloadSpec`
  turned into a lazy Poisson or bursty arrival stream, bounded by a
  request count, a simulated duration, or both;
* :func:`stream_trace_file` — replay a :func:`~repro.workloads.traces.save_trace`
  file line by line without loading it.

Streams must be time-ordered (the simulator enforces this) and every
generator here is deterministic for fixed parameters, so a benchmark can
regenerate the identical stream for a second pass (e.g. exact-mode
comparison or SLO scoring) instead of holding it in memory.
"""

import dataclasses
from typing import Iterator, Optional

from repro.serving.arrivals import (
    ArrivingRequest,
    iter_bursty_arrivals,
    iter_poisson_arrivals,
)
from repro.workloads.generator import WorkloadSpec


def stream_workload(spec: Optional[WorkloadSpec], rate_per_s: float,
                    count: Optional[int] = None,
                    duration_s: Optional[float] = None,
                    burst_rate_per_s: Optional[float] = None,
                    burst_s: float = 10.0, period_s: float = 60.0,
                    seed: int = 0, shard: int = 0,
                    num_shards: int = 1) -> Iterator[ArrivingRequest]:
    """Lazy arrival stream shaped by *spec*.

    Poisson at *rate_per_s* by default; passing *burst_rate_per_s* makes
    the stream two-phase bursty (``burst_s``-long windows at the burst
    rate every ``period_s``). Bounded by *count* requests and/or
    *duration_s* simulated seconds — at least one bound is required.
    ``(shard, num_shards)`` selects the deterministic sub-stream of
    requests with ``request_id % num_shards == shard`` (the union of
    sub-streams is bit-equal to the full stream; see
    :func:`~repro.serving.arrivals.iter_poisson_arrivals`).
    """
    if burst_rate_per_s is not None:
        return iter_bursty_arrivals(rate_per_s, burst_rate_per_s,
                                    count=count, duration_s=duration_s,
                                    spec=spec, burst_s=burst_s,
                                    period_s=period_s, seed=seed,
                                    shard=shard, num_shards=num_shards)
    return iter_poisson_arrivals(rate_per_s, count=count,
                                 duration_s=duration_s, spec=spec,
                                 seed=seed, shard=shard,
                                 num_shards=num_shards)


@dataclasses.dataclass(frozen=True)
class ShardableStream:
    """A replayable, splittable arrival stream as plain data.

    The sharded cluster runner (:func:`repro.cluster.shard.run_sharded`)
    ships this spec to worker processes instead of a generator: it is
    pickleable, every call to :meth:`full` regenerates the identical
    stream, and :meth:`shard` regenerates exactly one worker's slice
    without materializing the rest. Generated streams number requests
    sequentially, so ``request_id`` doubles as the request's position in
    the full stream — the property the deterministic shard merge keys on.

    Fields mirror :func:`stream_workload`; ``burst_rate_per_s=None``
    means plain Poisson.
    """

    rate_per_s: float
    count: Optional[int] = None
    duration_s: Optional[float] = None
    spec: Optional[WorkloadSpec] = None
    burst_rate_per_s: Optional[float] = None
    burst_s: float = 10.0
    period_s: float = 60.0
    seed: int = 0

    def full(self) -> Iterator[ArrivingRequest]:
        """The complete stream, regenerated from scratch."""
        return self.shard(0, 1)

    def shard(self, shard: int, num_shards: int) -> Iterator[ArrivingRequest]:
        """The sub-stream with ``request_id % num_shards == shard``."""
        return stream_workload(self.spec, self.rate_per_s, count=self.count,
                               duration_s=self.duration_s,
                               burst_rate_per_s=self.burst_rate_per_s,
                               burst_s=self.burst_s, period_s=self.period_s,
                               seed=self.seed, shard=shard,
                               num_shards=num_shards)


def stream_trace_file(path: str) -> Iterator[ArrivingRequest]:
    """Replay a saved trace file lazily, one request per line.

    Reads the CSV-like format :func:`~repro.workloads.traces.save_trace`
    writes without materializing the request list; records are yielded
    in file order, which for saved traces is arrival order.
    """
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if (not line or line.startswith("# trace:")
                    or line.startswith("request_id,")):
                continue
            fields = line.split(",")
            if len(fields) != 4:
                raise ValueError(f"malformed trace line: {line!r}")
            yield ArrivingRequest(
                request_id=int(fields[0]),
                arrival_s=float(fields[1]),
                input_len=int(fields[2]),
                output_len=int(fields[3]),
            )
