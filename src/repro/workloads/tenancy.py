"""Tenant-attributed workloads: users, apps, and multi-stage interactions.

The anonymous arrival streams in :mod:`repro.serving.arrivals` model *load*;
this module models *demand*: requests belong to users (tenants) and apps
whose request rates follow a Zipf law, and arrive as multi-stage
``Interaction`` chains (a chatbot turn, its follow-up, and so on) rather
than independent one-shots. Skewed multi-tenant demand is what makes
fairness scheduling and admission control meaningful — under FCFS a heavy
tenant's backlog starves everyone else's SLOs, which per-request metrics
cannot even express.

Design constraints inherited from the cluster layer:

* **Streaming** — interactions are spawned lazily and their stage records
  heap-merged into global time order, so a million-request tenant trace
  costs O(open interactions) memory, not O(requests).
* **Splittable** — ``(shard, num_shards)`` follows the arrival-generator
  contract: every shard regenerates the *full* stream's random draws and
  yields only requests with ``request_id % num_shards == shard``, so the
  union of sub-streams is bit-equal to the unsharded stream and sharded
  cluster runs stay bit-identical for any worker count.
* **Generation-time chaining** — a follow-up stage's arrival is its
  predecessor's arrival plus a decode-time proxy (``output_len *
  followup_s_per_token``) plus a user think-time draw. Chaining on
  *simulated* completion would make arrival times depend on scheduler
  state, which is group-local under sharding; the proxy keeps the
  workload identical across worker counts and across the schedulers
  being compared (see ``docs/fairness.md``).
"""

import dataclasses
import heapq
import itertools
import random
from bisect import bisect_right
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.serving.arrivals import ArrivingRequest
from repro.utils.validation import require_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.workloads.throttling import ThrottleConfig, ThrottleDecision


@dataclasses.dataclass(frozen=True, slots=True)
class TenantRequest(ArrivingRequest):
    """An :class:`ArrivingRequest` with tenant and interaction identity.

    Attributes:
        user_id: Tenant (user) the request bills to.
        app_id: Application the request arrived through.
        interaction_id: Which interaction chain this request belongs to.
        stage: 0-based position within the interaction.
        stages: Total stages in the interaction (``stage`` ranges over
            ``[0, stages)``), so door policies can recognize both the
            first and the final stage without a lookahead.

    Plain :class:`ArrivingRequest` consumers (nodes, routers, the shard
    merge) see the inherited fields and ignore the rest; tenant-aware
    components (admission schedulers, throttling, fairness reports)
    duck-type on ``user_id``. Defaults make an untagged record read as a
    single-stage interaction of anonymous tenant 0.
    """

    user_id: int = 0
    app_id: int = 0
    interaction_id: int = -1
    stage: int = 0
    stages: int = 1


def zipf_shares(n: int, s: float = 1.1) -> List[float]:
    """Normalized Zipf(s) popularity shares for *n* ranked tenants.

    ``shares[k] ∝ 1 / (k + 1)**s``, summing to 1.0. ``s=0`` degenerates
    to uniform; larger *s* concentrates demand on the head — the skew
    regime where fairness schedulers separate from FCFS.
    """
    require_positive(n, "n")
    if s < 0:
        raise ValueError(f"zipf exponent s must be >= 0, got {s!r}")
    raw = [1.0 / (k + 1) ** s for k in range(n)]
    total = sum(raw)
    return [value / total for value in raw]


@dataclasses.dataclass(frozen=True)
class TenantWorkloadSpec:
    """Shape of a multi-tenant workload.

    Exposes ``input_len_range`` / ``output_len_range`` so it satisfies the
    same duck-typed spec contract as
    :class:`~repro.workloads.generator.WorkloadSpec` (arrival generators
    and the sharded runner's warmup sizing both read those two attributes).

    Attributes:
        users: Number of tenants; per-tenant demand follows
            ``zipf_shares(users, zipf_s)``.
        apps: Number of applications, Zipf-skewed with the same exponent
            and drawn independently of the user.
        zipf_s: Skew exponent for both draws.
        interaction_stages: Inclusive (min, max) stages per interaction.
        think_time_range_s: Inclusive (min, max) user think time between
            a stage's arrival and its follow-up, on top of the decode
            proxy below.
        followup_s_per_token: Decode-time proxy — a follow-up arrives no
            earlier than ``output_len * followup_s_per_token`` after its
            predecessor, approximating "chained on completion" without
            coupling the workload to scheduler state.
    """

    users: int
    apps: int = 1
    zipf_s: float = 1.1
    input_len_range: Tuple[int, int] = (32, 256)
    output_len_range: Tuple[int, int] = (16, 64)
    interaction_stages: Tuple[int, int] = (1, 3)
    think_time_range_s: Tuple[float, float] = (0.5, 4.0)
    followup_s_per_token: float = 0.05

    def __post_init__(self) -> None:
        require_positive(self.users, "users")
        require_positive(self.apps, "apps")
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s!r}")
        lo, hi = self.interaction_stages
        if not 1 <= lo <= hi:
            raise ValueError("interaction_stages must satisfy 1 <= min <= "
                             f"max, got {self.interaction_stages!r}")
        if self.followup_s_per_token < 0:
            raise ValueError("followup_s_per_token must be >= 0, got "
                             f"{self.followup_s_per_token!r}")


def _cumulative(shares: List[float]) -> List[float]:
    return list(itertools.accumulate(shares))


def iter_tenant_arrivals(spec: TenantWorkloadSpec, rate_per_s: float,
                         count: Optional[int] = None,
                         duration_s: Optional[float] = None,
                         seed: int = 0, shard: int = 0,
                         num_shards: int = 1) -> Iterator[TenantRequest]:
    """Lazily generate a time-ordered multi-tenant arrival stream.

    Interactions spawn as a Poisson process at *rate_per_s*; each spawn
    draws a user and an app from Zipf(``spec.zipf_s``) popularity, a
    stage count, and per-stage request shapes, then schedules follow-up
    stages at generation time (decode proxy + think time, see the module
    docstring). Stage records from open interactions are heap-merged with
    upcoming spawns so the yielded stream is globally time-ordered, and
    ``request_id`` is assigned in yield order — the id doubles as the
    request's position in the full stream, which the sharded merge keys
    on.

    Bounds follow the arrival-generator contract: at least one of
    *count* (full-stream requests) and *duration_s* is required; stages
    that would land past *duration_s* are dropped with their interaction
    truncated. ``(shard, num_shards)`` yields only requests with
    ``request_id % num_shards == shard`` while consuming the identical
    random sequence in every shard.
    """
    require_positive(rate_per_s, "rate_per_s")
    if count is None and duration_s is None:
        raise ValueError("an arrival stream needs a bound: pass count, "
                         "duration_s, or both")
    if count is not None:
        require_positive(count, "count")
    if duration_s is not None:
        require_positive(duration_s, "duration_s")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if not 0 <= shard < num_shards:
        raise ValueError(f"shard must be in [0, {num_shards}), got {shard}")

    user_cum = _cumulative(zipf_shares(spec.users, spec.zipf_s))
    app_cum = _cumulative(zipf_shares(spec.apps, spec.zipf_s))

    def generate() -> Iterator[TenantRequest]:
        rng = random.Random(seed)
        # Heap entries: (arrival_s, insertion_seq, user, app, interaction,
        # stage, stages, input_len, output_len). The insertion sequence
        # breaks time ties deterministically in spawn order.
        heap: List[Tuple[float, int, int, int, int, int, int, int, int]] = []
        seq = 0
        request_id = 0
        interaction_id = 0
        next_spawn = rng.expovariate(rate_per_s)
        spawning = duration_s is None or next_spawn <= duration_s
        while heap or spawning:
            if spawning and (not heap or next_spawn <= heap[0][0]):
                # min() guards the (rounding-only) case where the
                # cumulative sum lands a hair below the drawn uniform.
                user = min(bisect_right(user_cum, rng.random()),
                           spec.users - 1)
                app = min(bisect_right(app_cum, rng.random()),
                         spec.apps - 1)
                stages = rng.randint(*spec.interaction_stages)
                when = next_spawn
                for stage in range(stages):
                    input_len = rng.randint(*spec.input_len_range)
                    output_len = rng.randint(*spec.output_len_range)
                    if duration_s is None or when <= duration_s:
                        heapq.heappush(heap, (when, seq, user, app,
                                              interaction_id, stage, stages,
                                              input_len, output_len))
                        seq += 1
                    if stage + 1 < stages:
                        when += (output_len * spec.followup_s_per_token
                                 + rng.uniform(*spec.think_time_range_s))
                interaction_id += 1
                next_spawn += rng.expovariate(rate_per_s)
                if duration_s is not None and next_spawn > duration_s:
                    spawning = False
                continue
            (when, _, user, app, interaction, stage, stages,
             input_len, output_len) = heapq.heappop(heap)
            if request_id % num_shards == shard:
                yield TenantRequest(
                    request_id=request_id,
                    arrival_s=when,
                    input_len=input_len,
                    output_len=output_len,
                    user_id=user,
                    app_id=app,
                    interaction_id=interaction,
                    stage=stage,
                    stages=stages,
                )
            request_id += 1
            if count is not None and request_id >= count:
                return

    return generate()


@dataclasses.dataclass(frozen=True)
class TenantStream:
    """A replayable, splittable tenant stream, optionally door-throttled.

    The tenant-aware counterpart of
    :class:`~repro.workloads.streams.ShardableStream`: pickleable plain
    data that the sharded runner ships to worker processes, with
    :meth:`full` / :meth:`shard` regenerating identical streams on every
    call. When *throttle* is set, admission decisions are evaluated over
    the **full** stream before the shard filter — door state (sliding
    rate windows) sees every arrival in every shard, so the set of
    admitted requests is identical for any worker count and sharded runs
    stay bit-identical. Admitted requests keep their full-stream
    ``request_id`` (the merge position), so the sub-streams simply omit
    throttled ids rather than renumbering.
    """

    spec: TenantWorkloadSpec
    rate_per_s: float
    count: Optional[int] = None
    duration_s: Optional[float] = None
    seed: int = 0
    throttle: Optional["ThrottleConfig"] = None

    def _raw(self, shard: int, num_shards: int) -> Iterator[TenantRequest]:
        return iter_tenant_arrivals(self.spec, self.rate_per_s,
                                    count=self.count,
                                    duration_s=self.duration_s,
                                    seed=self.seed, shard=shard,
                                    num_shards=num_shards)

    def decisions(self) -> Iterator["ThrottleDecision"]:
        """Door verdicts for every arrival in the full stream.

        With no throttle configured every request is admitted; either
        way the iterator covers throttled and admitted arrivals alike,
        which is what per-tenant accounting (throttle rate, wasted
        tokens, demand) needs.
        """
        from repro.workloads.throttling import throttle_decisions
        return throttle_decisions(self._raw(0, 1), self.throttle)

    def full(self) -> Iterator[TenantRequest]:
        """The complete admitted stream, regenerated from scratch."""
        return self.shard(0, 1)

    def shard(self, shard: int, num_shards: int) -> Iterator[TenantRequest]:
        """Admitted requests with ``request_id % num_shards == shard``."""
        if self.throttle is None:
            return self._raw(shard, num_shards)

        def admitted() -> Iterator[TenantRequest]:
            for decision in self.decisions():
                if (decision.admitted
                        and decision.request.request_id
                        % num_shards == shard):
                    yield decision.request

        return admitted()
