"""Workload traces: a simple persisted request-stream format.

Production inference studies replay traces; this environment has none
(see DESIGN.md substitutions), so traces are *synthesized* from workload
specs, persisted to a small CSV-like format, and replayed into the
serving simulator. The round-trip keeps experiments reproducible and
shareable as plain files.

Format (one record per line, header included)::

    request_id,arrival_s,input_len,output_len
"""

import dataclasses
from typing import List, Sequence

from repro.serving.arrivals import ArrivingRequest, poisson_arrivals
from repro.workloads.generator import WorkloadSpec

_HEADER = "request_id,arrival_s,input_len,output_len"


@dataclasses.dataclass(frozen=True)
class Trace:
    """A named, replayable request stream.

    Attributes:
        name: Trace identifier.
        requests: Arrival-ordered request records.
    """

    name: str
    requests: List[ArrivingRequest]

    @property
    def duration_s(self) -> float:
        """Arrival span of the trace."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_s - self.requests[0].arrival_s

    @property
    def mean_rate(self) -> float:
        """Mean arrival rate over the trace span (req/s)."""
        if len(self.requests) < 2 or self.duration_s == 0:
            return 0.0
        return (len(self.requests) - 1) / self.duration_s


def synthesize_trace(name: str, spec: WorkloadSpec, rate_per_s: float,
                     count: int, seed: int = 0) -> Trace:
    """Build a trace from a workload spec and a Poisson arrival process."""
    return Trace(name=name,
                 requests=poisson_arrivals(rate_per_s, count, spec, seed))


def save_trace(trace: Trace, path: str) -> None:
    """Persist *trace* to the CSV-like format."""
    with open(path, "w") as handle:
        handle.write(f"# trace: {trace.name}\n")
        handle.write(_HEADER + "\n")
        for request in trace.requests:
            handle.write(f"{request.request_id},{request.arrival_s!r},"
                         f"{request.input_len},{request.output_len}\n")


def load_trace(path: str) -> Trace:
    """Load a trace written by :func:`save_trace`."""
    name = path
    requests: List[ArrivingRequest] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("# trace:"):
                name = line.split(":", 1)[1].strip()
                continue
            if line == _HEADER:
                continue
            fields = line.split(",")
            if len(fields) != 4:
                raise ValueError(f"malformed trace line: {line!r}")
            requests.append(ArrivingRequest(
                request_id=int(fields[0]),
                arrival_s=float(fields[1]),
                input_len=int(fields[2]),
                output_len=int(fields[3]),
            ))
    requests.sort(key=lambda r: r.arrival_s)
    return Trace(name=name, requests=requests)


def merge_traces(name: str, traces: Sequence[Trace]) -> Trace:
    """Interleave several traces into one (ids reassigned, order by time)."""
    merged = sorted((r for t in traces for r in t.requests),
                    key=lambda r: r.arrival_s)
    renumbered = [dataclasses.replace(r, request_id=i)
                  for i, r in enumerate(merged)]
    return Trace(name=name, requests=renumbered)
