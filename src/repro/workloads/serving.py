"""Sequential serving estimator over a request stream.

Processes a list of requests back-to-back on one platform (the simple
serving discipline the paper's single-node measurements correspond to)
and aggregates per-scenario statistics — the substrate the example
applications build on.
"""

import dataclasses
from typing import List, Sequence

from repro.core.runner import RunResult, run_inference
from repro.engine.inference import DEFAULT_ENGINE_CONFIG, EngineConfig
from repro.engine.request import InferenceRequest
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.utils.stats import mean, percentile
from repro.workloads.generator import total_tokens


@dataclasses.dataclass(frozen=True)
class ServingStats:
    """Aggregate statistics for one served request stream.

    Attributes:
        platform / model: Identification.
        requests_served: Stream length.
        total_time_s: Sum of request E2E times (sequential serving).
        generated_tokens: Tokens produced across the stream.
        mean_ttft_s / mean_tpot_s: Stream-average latency metrics.
        p99_ttft_s: 99th-percentile TTFT via
            :func:`repro.utils.stats.percentile` (linear interpolation).
            Behaviour change: this used to be a nearest-rank index that
            silently returned the stream *maximum* for short streams; it
            now interpolates between order statistics, so p99 means the
            same thing here as everywhere else in the library.
    """

    platform: str
    model: str
    requests_served: int
    total_time_s: float
    generated_tokens: int
    mean_ttft_s: float
    mean_tpot_s: float
    p99_ttft_s: float

    @property
    def throughput(self) -> float:
        """Stream-level generated tokens per second."""
        return self.generated_tokens / self.total_time_s


def serve(platform: Platform, model: ModelConfig,
          requests: Sequence[InferenceRequest],
          config: EngineConfig = DEFAULT_ENGINE_CONFIG) -> ServingStats:
    """Serve *requests* sequentially and aggregate metrics."""
    if not requests:
        raise ValueError("no requests to serve")
    results: List[RunResult] = [
        run_inference(platform, model, request, config)
        for request in requests
    ]
    ttfts = [r.ttft_s for r in results]
    tpots = [r.tpot_s for r in results if r.tpot_s > 0]
    return ServingStats(
        platform=platform.name,
        model=model.name,
        requests_served=len(results),
        total_time_s=sum(r.e2e_s for r in results),
        generated_tokens=total_tokens(requests),
        mean_ttft_s=mean(ttfts),
        mean_tpot_s=mean(tpots) if tpots else 0.0,
        p99_ttft_s=percentile(ttfts, 99),
    )
