"""Synthetic workload generation and serving estimation."""

from repro.workloads.classes import (
    DEFAULT_CLASS_MIX,
    REQUEST_CLASSES,
    ClassMixStream,
    MixClassifier,
    RequestClass,
    iter_class_arrivals,
    parse_class_mix,
)
from repro.workloads.generator import (
    PRESET_WORKLOADS,
    WorkloadSpec,
    batch_analytics_workload,
    chatbot_workload,
    generate_requests,
    total_tokens,
    translation_workload,
)
from repro.workloads.serving import ServingStats, serve
from repro.workloads.streams import (
    ShardableStream,
    stream_trace_file,
    stream_workload,
)
from repro.workloads.tenancy import (
    TenantRequest,
    TenantStream,
    TenantWorkloadSpec,
    iter_tenant_arrivals,
    zipf_shares,
)
from repro.workloads.throttling import (
    ThrottleConfig,
    ThrottleDecision,
    admitted_requests,
    throttle_decisions,
)
from repro.workloads.traces import (
    Trace,
    load_trace,
    merge_traces,
    save_trace,
    synthesize_trace,
)

__all__ = [
    "DEFAULT_CLASS_MIX",
    "PRESET_WORKLOADS",
    "REQUEST_CLASSES",
    "ClassMixStream",
    "MixClassifier",
    "RequestClass",
    "ServingStats",
    "ShardableStream",
    "TenantRequest",
    "TenantStream",
    "TenantWorkloadSpec",
    "ThrottleConfig",
    "ThrottleDecision",
    "Trace",
    "WorkloadSpec",
    "admitted_requests",
    "iter_class_arrivals",
    "iter_tenant_arrivals",
    "parse_class_mix",
    "load_trace",
    "merge_traces",
    "save_trace",
    "stream_trace_file",
    "stream_workload",
    "synthesize_trace",
    "throttle_decisions",
    "zipf_shares",
    "batch_analytics_workload",
    "chatbot_workload",
    "generate_requests",
    "serve",
    "total_tokens",
    "translation_workload",
]
