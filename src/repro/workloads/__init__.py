"""Synthetic workload generation and serving estimation."""

from repro.workloads.generator import (
    PRESET_WORKLOADS,
    WorkloadSpec,
    batch_analytics_workload,
    chatbot_workload,
    generate_requests,
    total_tokens,
    translation_workload,
)
from repro.workloads.serving import ServingStats, serve
from repro.workloads.streams import (
    ShardableStream,
    stream_trace_file,
    stream_workload,
)
from repro.workloads.traces import (
    Trace,
    load_trace,
    merge_traces,
    save_trace,
    synthesize_trace,
)

__all__ = [
    "PRESET_WORKLOADS",
    "ServingStats",
    "ShardableStream",
    "Trace",
    "WorkloadSpec",
    "load_trace",
    "merge_traces",
    "save_trace",
    "stream_trace_file",
    "stream_workload",
    "synthesize_trace",
    "batch_analytics_workload",
    "chatbot_workload",
    "generate_requests",
    "serve",
    "total_tokens",
    "translation_workload",
]
