"""repro — simulation-based reproduction of *Understanding Performance
Implications of LLM Inference on CPUs* (IISWC 2024).

The library models LLM inference performance on AMX/HBM-equipped CPUs and
A100/H100 GPUs (with FlexGen-style offloading) from first principles:
operator-level roofline composition over exact FLOP/byte counts, with
NUMA, core-scaling, cache, and PCIe models layered on top. See DESIGN.md
for the substitution statement and the per-experiment index.

Quickstart::

    from repro import get_platform, get_model, InferenceRequest, run_inference

    result = run_inference(get_platform("spr"), get_model("llama2-13b"),
                           InferenceRequest(batch_size=8))
    print(result.ttft_s, result.tpot_s, result.e2e_throughput)
"""

from repro.core import (
    CharacterizationSweep,
    ExperimentReport,
    check_all_findings,
    compare_platforms,
    run_inference,
)
from repro.engine import (
    EngineConfig,
    InferenceRequest,
    InferenceResult,
    InferenceSimulator,
    KVCacheManager,
    simulate,
)
from repro.gemm import GemmSimulator
from repro.hardware import DType, Platform, all_platforms, get_platform
from repro.models import (
    ModelConfig,
    all_models,
    evaluated_models,
    get_model,
    kv_cache_bytes,
    weight_bytes,
)
from repro.numa import NumaConfig, NumaModel, get_config
from repro.offload import OffloadSimulator, needs_offloading
from repro.perfcounters import CounterModel
from repro.scaling import CoreScalingModel

__version__ = "1.0.0"

__all__ = [
    "CharacterizationSweep",
    "CoreScalingModel",
    "CounterModel",
    "DType",
    "EngineConfig",
    "ExperimentReport",
    "GemmSimulator",
    "InferenceRequest",
    "InferenceResult",
    "InferenceSimulator",
    "KVCacheManager",
    "ModelConfig",
    "NumaConfig",
    "NumaModel",
    "OffloadSimulator",
    "Platform",
    "all_models",
    "all_platforms",
    "check_all_findings",
    "compare_platforms",
    "evaluated_models",
    "get_config",
    "get_model",
    "get_platform",
    "kv_cache_bytes",
    "needs_offloading",
    "run_inference",
    "simulate",
    "weight_bytes",
    "__version__",
]
