"""Transformer model configuration.

:class:`ModelConfig` captures the architectural hyperparameters of a
decoder-only transformer (Section II-A): layer count, hidden width,
attention head layout (including grouped-query attention for LLaMA2-70B),
and feed-forward shape. All downstream math — parameter counts, FLOP
counts, KV-cache sizes, operator graphs — derives from these fields.
"""

import dataclasses
import enum

from repro.utils.validation import require_positive


class FFNKind(enum.Enum):
    """Feed-forward block structure.

    * ``RELU_MLP`` — two matrices with a ReLU between (OPT family).
    * ``SWIGLU``  — three matrices (gate, up, down) with SiLU gating
      (LLaMA-2 family).
    """

    RELU_MLP = "relu_mlp"
    SWIGLU = "swiglu"

    @property
    def matrix_count(self) -> int:
        """Number of weight matrices in one FFN block."""
        return 2 if self is FFNKind.RELU_MLP else 3


@dataclasses.dataclass(frozen=True)
class ModelConfig:
    """Architecture of one decoder-only LLM.

    Attributes:
        name: Display name used in figures ("OPT-13B", "LLaMA2-70B").
        family: Model family ("opt" or "llama2").
        n_layers: Number of decoder blocks.
        d_model: Hidden dimension.
        n_heads: Query attention heads.
        n_kv_heads: Key/value heads (< n_heads means grouped-query
            attention; LLaMA2-70B uses 8 KV heads for 64 query heads).
        d_ff: Feed-forward inner dimension.
        ffn_kind: FFN block structure.
        vocab_size: Vocabulary size.
        max_positions: Maximum trained sequence length.
        tied_embeddings: Whether input embedding and LM head share weights
            (OPT ties them; LLaMA-2 does not).
        learned_positional_embeddings: OPT uses a learned positional
            embedding table (counted in parameters); LLaMA-2 uses RoPE
            (no table).
        n_experts: FFN experts per layer (1 = dense). Mixture-of-experts
            models replicate the FFN ``n_experts`` times and route each
            token to ``top_k`` of them.
        top_k: Experts each token activates (MoE only).
    """

    name: str
    family: str
    n_layers: int
    d_model: int
    n_heads: int
    n_kv_heads: int
    d_ff: int
    ffn_kind: FFNKind
    vocab_size: int
    max_positions: int
    tied_embeddings: bool
    learned_positional_embeddings: bool
    n_experts: int = 1
    top_k: int = 1

    def __post_init__(self) -> None:
        require_positive(self.n_layers, "n_layers")
        require_positive(self.d_model, "d_model")
        require_positive(self.n_heads, "n_heads")
        require_positive(self.n_kv_heads, "n_kv_heads")
        require_positive(self.d_ff, "d_ff")
        require_positive(self.vocab_size, "vocab_size")
        require_positive(self.max_positions, "max_positions")
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"{self.name}: d_model {self.d_model} not divisible by "
                f"n_heads {self.n_heads}")
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError(
                f"{self.name}: n_heads {self.n_heads} not divisible by "
                f"n_kv_heads {self.n_kv_heads}")
        require_positive(self.n_experts, "n_experts")
        require_positive(self.top_k, "top_k")
        if self.top_k > self.n_experts:
            raise ValueError(
                f"{self.name}: top_k {self.top_k} exceeds n_experts "
                f"{self.n_experts}")

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.d_model // self.n_heads

    @property
    def d_kv(self) -> int:
        """Total key/value width per token (n_kv_heads * head_dim)."""
        return self.n_kv_heads * self.head_dim

    @property
    def uses_gqa(self) -> bool:
        """Whether the model uses grouped-query attention."""
        return self.n_kv_heads < self.n_heads

    def attention_params_per_layer(self) -> int:
        """Weights in one attention block: Q, K, V, O projections."""
        q = self.d_model * self.d_model
        k = self.d_model * self.d_kv
        v = self.d_model * self.d_kv
        o = self.d_model * self.d_model
        return q + k + v + o

    @property
    def is_moe(self) -> bool:
        """Whether the FFN is a mixture of experts."""
        return self.n_experts > 1

    def active_expert_fraction(self, tokens: int) -> float:
        """Expected fraction of experts touched by *tokens* routed tokens.

        Each token activates ``top_k`` experts (uniform routing
        approximation); an expert escapes untouched with probability
        ``(1 - top_k/E)^tokens``. At tokens=1 this is exactly ``top_k/E``
        (the MoE decode advantage); it saturates to 1 as batches grow —
        the batch-dependent weight-traffic signature of MoE decode.
        """
        if not self.is_moe:
            return 1.0
        if tokens < 1:
            raise ValueError(f"tokens must be >= 1, got {tokens}")
        escape = (1.0 - self.top_k / self.n_experts) ** tokens
        return 1.0 - escape

    def ffn_params_per_layer(self) -> int:
        """Weights in one FFN block (all experts for MoE)."""
        return (self.ffn_kind.matrix_count * self.d_model * self.d_ff
                * self.n_experts)

    def router_params_per_layer(self) -> int:
        """Router (gating) weights per layer: d_model x n_experts."""
        if not self.is_moe:
            return 0
        return self.d_model * self.n_experts

    def params_per_layer(self) -> int:
        """Weights in one decoder block (norms included; biases for OPT)."""
        norms = 2 * 2 * self.d_model  # two LayerNorms, scale + shift
        biases = 0
        if self.family == "opt":
            # OPT uses biased linears: 4 attention projections + 2 FFN mats.
            biases = (2 * self.d_model + 2 * self.d_kv) + (self.d_ff + self.d_model)
        return (self.attention_params_per_layer()
                + self.ffn_params_per_layer()
                + self.router_params_per_layer() + norms + biases)

    def embedding_params(self) -> int:
        """Embedding-table weights (token + positional + untied LM head)."""
        token = self.vocab_size * self.d_model
        positional = self.max_positions * self.d_model if self.learned_positional_embeddings else 0
        lm_head = 0 if self.tied_embeddings else self.vocab_size * self.d_model
        return token + positional + lm_head

    def param_count(self) -> int:
        """Total parameter count derived from the architecture."""
        return self.n_layers * self.params_per_layer() + self.embedding_params()
