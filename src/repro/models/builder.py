"""Custom model-configuration builder.

Downstream users frequently want "what about a 20B GQA model with a 3.5x
FFN?" — this builder constructs valid :class:`ModelConfig` objects from a
handful of knobs and can synthesize a config targeting an approximate
parameter count, so capacity-planning studies are not limited to the
paper's nine registered checkpoints.
"""

import dataclasses

from repro.models.config import FFNKind, ModelConfig
from repro.utils.validation import require_positive

# Width/depth pairs that follow the published scaling ladder; used by the
# parameter-count-targeted synthesizer.
_LADDER = [
    (512, 8), (768, 12), (1024, 16), (2048, 24), (2560, 32), (4096, 32),
    (5120, 40), (6144, 44), (7168, 48), (8192, 56), (9216, 64),
    (10240, 72), (12288, 96), (14336, 112), (16384, 128),
]


def build_model(name: str,
                n_layers: int,
                d_model: int,
                n_heads: int,
                n_kv_heads: int = None,
                d_ff: int = None,
                ffn_kind: FFNKind = FFNKind.SWIGLU,
                vocab_size: int = 32000,
                max_positions: int = 4096,
                tied_embeddings: bool = False) -> ModelConfig:
    """Construct a custom decoder-only configuration.

    ``n_kv_heads`` defaults to MHA; ``d_ff`` defaults to the ffn-kind's
    conventional ratio (4x for ReLU MLPs, ~2.7x for SwiGLU, which keeps
    the FFN parameter count comparable).
    """
    if n_kv_heads is None:
        n_kv_heads = n_heads
    if d_ff is None:
        d_ff = 4 * d_model if ffn_kind is FFNKind.RELU_MLP \
            else int(8 * d_model / 3)
    return ModelConfig(
        name=name,
        family="custom",
        n_layers=n_layers,
        d_model=d_model,
        n_heads=n_heads,
        n_kv_heads=n_kv_heads,
        d_ff=d_ff,
        ffn_kind=ffn_kind,
        vocab_size=vocab_size,
        max_positions=max_positions,
        tied_embeddings=tied_embeddings,
        learned_positional_embeddings=False,
    )


def scale_to_params(target_billions: float,
                    name: str = None,
                    ffn_kind: FFNKind = FFNKind.SWIGLU,
                    gqa_ratio: int = 1) -> ModelConfig:
    """Synthesize a config whose parameter count approximates the target.

    Walks the published width/depth ladder and picks the rung whose
    derived count is closest to *target_billions*. ``gqa_ratio`` > 1
    enables grouped-query attention with ``n_heads / gqa_ratio`` KV heads.
    """
    require_positive(target_billions, "target_billions")
    if gqa_ratio < 1:
        raise ValueError(f"gqa_ratio must be >= 1, got {gqa_ratio}")
    best: ModelConfig = None
    best_err = float("inf")
    for d_model, n_layers in _LADDER:
        n_heads = max(8, d_model // 128)
        if n_heads % gqa_ratio != 0:
            continue
        candidate = build_model(
            name or f"Custom-{target_billions:g}B",
            n_layers=n_layers,
            d_model=d_model,
            n_heads=n_heads,
            n_kv_heads=n_heads // gqa_ratio,
            ffn_kind=ffn_kind,
        )
        err = abs(candidate.param_count() / 1e9 - target_billions)
        if err < best_err:
            best, best_err = candidate, err
    if best is None:
        raise ValueError("no ladder rung compatible with the gqa_ratio")
    if name is None:
        actual = best.param_count() / 1e9
        best = dataclasses.replace(best, name=f"Custom-{actual:.1f}B")
    return best
