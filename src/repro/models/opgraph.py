"""Operator-graph construction for prefill and decode (Section II-B).

``prefill_ops`` builds the operator list for processing a whole prompt in
one pass (compute-bound: big GEMMs with m = batch * seq_len).
``decode_step_ops`` builds the list for generating ONE token per sequence
(memory-bound: GEMV-like GEMMs with m = batch, plus a full KV-cache read).

All byte counts use the activation/weight dtype passed in (BF16 in the
paper's experiments).
"""

import functools
from typing import List, Tuple

from repro.hardware.datatypes import DType
from repro.models.config import FFNKind, ModelConfig
from repro.models.layers import Op, OpKind
from repro.utils.validation import require_positive


def prefill_ops(model: ModelConfig, batch_size: int, seq_len: int,
                dtype: DType = DType.BF16,
                fused_attention: bool = False) -> List[Op]:
    """Operators for one prefill pass over a batch of prompts.

    Weight matrices are streamed once per layer pass (shared across the
    whole batch); the KV cache is *written* for every prompt token.

    ``fused_attention`` models a FlashAttention-style kernel: the score
    matrix P never round-trips through memory (softmax runs on register/
    cache-resident tiles), removing the O(seq^2) activation traffic while
    keeping the FLOPs — the design-choice ablation for long prompts.

    Results are memoized per (model, batch, seq_len, dtype, fused); see
    :func:`clear_opgraph_caches`.
    """
    require_positive(batch_size, "batch_size")
    require_positive(seq_len, "seq_len")
    return list(_prefill_ops_cached(model, batch_size, seq_len, dtype,
                                    fused_attention))


@functools.lru_cache(maxsize=4096)
def _prefill_ops_cached(model: ModelConfig, batch_size: int, seq_len: int,
                        dtype: DType, fused_attention: bool) -> Tuple[Op, ...]:
    nb = dtype.nbytes
    tokens = batch_size * seq_len
    ops: List[Op] = []

    ops.append(Op(
        name="embedding",
        kind=OpKind.EMBEDDING,
        activation_bytes=float(tokens * model.d_model * nb * 2),
    ))

    ops.extend(_attention_ops(model, batch_size, seq_len,
                              q_len=seq_len, kv_len=seq_len, dtype=dtype,
                              causal=True, fused=fused_attention))
    ops.extend(_ffn_ops(model, rows=tokens, dtype=dtype))
    ops.extend(_norm_ops(model, rows=tokens, dtype=dtype))

    # LM head on the final position only (one next-token prediction per
    # sequence) — the standard generation-path optimization.
    ops.append(Op(
        name="lm_head",
        kind=OpKind.LINEAR,
        m=batch_size, n=model.vocab_size, k=model.d_model,
        instances=1,
        weight_bytes=float(model.vocab_size * model.d_model * nb),
        activation_bytes=float(batch_size * (model.d_model + model.vocab_size) * nb),
    ))
    return tuple(ops)


def decode_step_ops(model: ModelConfig, batch_size: int, kv_len: int,
                    dtype: DType = DType.BF16) -> List[Op]:
    """Operators for generating one token per sequence with *kv_len* cached.

    The defining property of decode: every weight byte and every cached KV
    byte is read to produce just ``batch_size`` tokens, so arithmetic
    intensity is ~2 FLOPs per weight byte at batch 1.

    Results are memoized per (model, batch, kv_len, dtype); see
    :func:`clear_opgraph_caches`.
    """
    require_positive(batch_size, "batch_size")
    require_positive(kv_len, "kv_len")
    return list(_decode_step_ops_cached(model, batch_size, kv_len, dtype))


@functools.lru_cache(maxsize=8192)
def _decode_step_ops_cached(model: ModelConfig, batch_size: int, kv_len: int,
                            dtype: DType) -> Tuple[Op, ...]:
    nb = dtype.nbytes
    ops: List[Op] = []

    ops.append(Op(
        name="embedding",
        kind=OpKind.EMBEDDING,
        activation_bytes=float(batch_size * model.d_model * nb * 2),
    ))

    ops.extend(_attention_ops(model, batch_size, seq_len=1,
                              q_len=1, kv_len=kv_len + 1, dtype=dtype,
                              causal=False))
    ops.extend(_ffn_ops(model, rows=batch_size, dtype=dtype))
    ops.extend(_norm_ops(model, rows=batch_size, dtype=dtype))

    ops.append(Op(
        name="lm_head",
        kind=OpKind.LINEAR,
        m=batch_size, n=model.vocab_size, k=model.d_model,
        instances=1,
        weight_bytes=float(model.vocab_size * model.d_model * nb),
        activation_bytes=float(batch_size * (model.d_model + model.vocab_size) * nb),
    ))
    return tuple(ops)


def clear_opgraph_caches() -> None:
    """Drop memoized prefill/decode operator graphs."""
    _prefill_ops_cached.cache_clear()
    _decode_step_ops_cached.cache_clear()


def _attention_ops(model: ModelConfig, batch_size: int, seq_len: int,
                   q_len: int, kv_len: int, dtype: DType,
                   causal: bool, fused: bool = False) -> List[Op]:
    """QKV/output projections plus the two batched attention GEMMs.

    *q_len* is the number of query positions per sequence this pass
    (seq_len for prefill, 1 for decode); *kv_len* the key/value positions
    attended to. During decode the pass reads the whole cached K and V for
    every layer (`kv_read_bytes`) — the memory-bound heart of Section II-B.
    For causal prefill the score/context GEMMs only touch the lower
    triangle; FLOPs and score bytes are halved accordingly. With *fused*
    attention the P matrix stays in registers/cache: its memory traffic
    vanishes from the score, softmax, and context ops.
    """
    nb = dtype.nbytes
    rows = batch_size * q_len
    d = model.d_model
    dkv = model.d_kv
    hd = model.head_dim
    layers = model.n_layers
    causal_factor = 0.5 if causal and q_len == kv_len else 1.0

    # Per-pass KV write: this pass appends q_len tokens per sequence.
    kv_write = float(2 * layers * batch_size * q_len * dkv * nb)
    # Per-pass KV read: decode reads the full cache; causal prefill produces
    # K/V on the fly (counted as activation traffic in the GEMM ops below).
    kv_read = 0.0 if q_len == kv_len else float(2 * layers * batch_size * kv_len * dkv * nb)

    qkv = Op(
        name="qkv_proj",
        kernel_launches=layers,
        kind=OpKind.LINEAR,
        m=rows, n=d + 2 * dkv, k=d,
        instances=layers,
        weight_bytes=float(layers * (d + 2 * dkv) * d * nb),
        activation_bytes=float(layers * rows * (d + (d + 2 * dkv)) * nb),
        kv_write_bytes=kv_write,
    )

    # Q @ K^T: one GEMM per (sequence, query-head group). With GQA the K/V
    # operand is shared inside a group but the GEMM count follows query
    # heads; FLOPs are identical either way.
    score_m = q_len
    score_n = kv_len
    score_gemms = batch_size * model.n_heads
    p_traffic = 0.0 if fused else \
        model.n_heads * q_len * kv_len * causal_factor
    score = Op(
        name="attn_qk",
        kernel_launches=layers,
        kind=OpKind.ATTN_QK,
        m=max(1, int(score_m * causal_factor)), n=score_n, k=hd,
        instances=score_gemms * layers,
        activation_bytes=float(
            layers * batch_size
            * (model.n_heads * q_len * hd            # Q read
               + model.n_kv_heads * kv_len * hd      # K read (shared in GQA)
               + p_traffic)                          # P write (0 if fused)
            * nb),
        kv_read_bytes=kv_read / 2,  # K half of the cache read
    )

    softmax = Op(
        name="softmax",
        kernel_launches=layers,
        kind=OpKind.SOFTMAX,
        activation_bytes=0.0 if fused else float(
            2 * layers * batch_size * model.n_heads
            * q_len * kv_len * causal_factor * nb),
        extra_flops=float(
            5 * layers * batch_size * model.n_heads
            * q_len * kv_len * causal_factor),
    )

    context = Op(
        name="attn_pv",
        kernel_launches=layers,
        kind=OpKind.ATTN_PV,
        m=max(1, int(q_len * causal_factor)), n=hd, k=kv_len,
        instances=score_gemms * layers,
        activation_bytes=float(
            layers * batch_size
            * (p_traffic                                       # P read (0 if fused)
               + model.n_kv_heads * kv_len * hd                # V read
               + model.n_heads * q_len * hd)                   # out write
            * nb),
        kv_read_bytes=kv_read / 2,  # V half of the cache read
    )

    out_proj = Op(
        name="out_proj",
        kernel_launches=layers,
        kind=OpKind.LINEAR,
        m=rows, n=d, k=d,
        instances=layers,
        weight_bytes=float(layers * d * d * nb),
        activation_bytes=float(layers * rows * 2 * d * nb),
    )
    return [qkv, score, softmax, context, out_proj]


def _ffn_ops(model: ModelConfig, rows: int, dtype: DType) -> List[Op]:
    """Feed-forward block GEMMs for *rows* token positions per layer.

    For mixture-of-experts models only the *activated* experts' weights
    stream from memory: at rows=1 that is ``top_k / n_experts`` of the FFN
    (the MoE decode advantage), saturating toward all experts as the
    token count grows. FLOPs always cover exactly ``top_k`` experts per
    token. A small router GEMM precedes the experts.
    """
    nb = dtype.nbytes
    d, dff, layers = model.d_model, model.d_ff, model.n_layers
    ops: List[Op] = []
    if model.is_moe:
        return _moe_ffn_ops(model, rows, dtype)
    if model.ffn_kind is FFNKind.SWIGLU:
        up_mats = 2  # gate + up projections, fused as one wide GEMM
        ops.append(Op(
            name="ffn_gate_up",
            kind=OpKind.LINEAR,
            m=rows, n=up_mats * dff, k=d,
            instances=layers,
            weight_bytes=float(layers * up_mats * dff * d * nb),
            activation_bytes=float(layers * rows * (d + up_mats * dff) * nb),
        ))
        ops.append(Op(
            name="silu_mul",
            kind=OpKind.ELEMENTWISE,
            activation_bytes=float(layers * rows * 3 * dff * nb),
            extra_flops=float(4 * layers * rows * dff),
        ))
    else:
        ops.append(Op(
            name="ffn_up",
            kind=OpKind.LINEAR,
            m=rows, n=dff, k=d,
            instances=layers,
            weight_bytes=float(layers * dff * d * nb),
            activation_bytes=float(layers * rows * (d + dff) * nb),
        ))
        ops.append(Op(
            name="relu",
            kind=OpKind.ELEMENTWISE,
            activation_bytes=float(layers * rows * 2 * dff * nb),
            extra_flops=float(layers * rows * dff),
        ))
    ops.append(Op(
        name="ffn_down",
        kernel_launches=layers,
        kind=OpKind.LINEAR,
        m=rows, n=d, k=dff,
        instances=layers,
        weight_bytes=float(layers * d * dff * nb),
        activation_bytes=float(layers * rows * (dff + d) * nb),
    ))
    return ops


def _moe_ffn_ops(model: ModelConfig, rows: int, dtype: DType) -> List[Op]:
    """Mixture-of-experts FFN: router + activated expert GEMMs."""
    nb = dtype.nbytes
    d, dff, layers = model.d_model, model.d_ff, model.n_layers
    experts = model.n_experts
    active_fraction = model.active_expert_fraction(rows)
    active_experts = max(1, round(active_fraction * experts))
    # Tokens routed per activated expert (top_k slots per token spread
    # across the activated experts).
    rows_per_expert = max(1, (rows * model.top_k) // active_experts)
    up_mats = 2 if model.ffn_kind is FFNKind.SWIGLU else 1

    router = Op(
        name="moe_router",
        kernel_launches=layers,
        kind=OpKind.LINEAR,
        m=rows, n=experts, k=d,
        instances=layers,
        weight_bytes=float(layers * experts * d * nb),
        activation_bytes=float(layers * rows * (d + experts) * nb),
    )
    gate_up = Op(
        name="moe_gate_up" if up_mats == 2 else "moe_up",
        kernel_launches=layers,
        kind=OpKind.LINEAR,
        m=rows_per_expert, n=up_mats * dff, k=d,
        instances=layers * active_experts,
        weight_bytes=float(layers * up_mats * dff * d * nb
                           * experts * active_fraction),
        activation_bytes=float(
            layers * rows * model.top_k * (d + up_mats * dff) * nb),
    )
    act = Op(
        name="moe_activation",
        kernel_launches=layers,
        kind=OpKind.ELEMENTWISE,
        activation_bytes=float(
            layers * rows * model.top_k * (up_mats + 1) * dff * nb),
        extra_flops=float(4 * layers * rows * model.top_k * dff),
    )
    down = Op(
        name="moe_down",
        kernel_launches=layers,
        kind=OpKind.LINEAR,
        m=rows_per_expert, n=d, k=dff,
        instances=layers * active_experts,
        weight_bytes=float(layers * d * dff * nb
                           * experts * active_fraction),
        activation_bytes=float(
            layers * rows * model.top_k * (dff + d) * nb),
    )
    combine = Op(
        name="moe_combine",
        kernel_launches=layers,
        kind=OpKind.ELEMENTWISE,
        activation_bytes=float(
            layers * rows * (model.top_k + 1) * d * nb),
        extra_flops=float(layers * rows * model.top_k * d),
    )
    return [router, gate_up, act, down, combine]


def _norm_ops(model: ModelConfig, rows: int, dtype: DType) -> List[Op]:
    """LayerNorm/RMSNorm and residual-add traffic per pass."""
    nb = dtype.nbytes
    d, layers = model.d_model, model.n_layers
    norms = Op(
        name="norms",
        kernel_launches=layers,
        kind=OpKind.NORM,
        activation_bytes=float(2 * layers * rows * 2 * d * nb),
        extra_flops=float(2 * layers * rows * 5 * d),
    )
    residual = Op(
        name="residual_add",
        kernel_launches=layers,
        kind=OpKind.ELEMENTWISE,
        activation_bytes=float(2 * layers * rows * 3 * d * nb),
        extra_flops=float(2 * layers * rows * d),
    )
    return [norms, residual]
