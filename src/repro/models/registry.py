"""Registry of the evaluated models: OPT and LLaMA-2 families (Section IV-A).

The paper evaluates OPT with 1.3B/6.7B/13B/30B/66B parameters and LLaMA-2
with 7B/13B/70B. OPT-175B appears in the motivation (Figs. 1 context and 6);
it is included for the footprint figure. Hyperparameters follow the
published model cards (OPT paper Table 1; LLaMA-2 paper Table 1).
"""

from typing import Dict, List

from repro.models.config import FFNKind, ModelConfig

_OPT_VOCAB = 50272
_OPT_MAX_POS = 2048
_LLAMA2_VOCAB = 32000
_LLAMA2_MAX_POS = 4096


def _opt(name: str, n_layers: int, d_model: int, n_heads: int) -> ModelConfig:
    return ModelConfig(
        name=name,
        family="opt",
        n_layers=n_layers,
        d_model=d_model,
        n_heads=n_heads,
        n_kv_heads=n_heads,
        d_ff=4 * d_model,
        ffn_kind=FFNKind.RELU_MLP,
        vocab_size=_OPT_VOCAB,
        max_positions=_OPT_MAX_POS,
        tied_embeddings=True,
        learned_positional_embeddings=True,
    )


def _llama2(name: str, n_layers: int, d_model: int, n_heads: int,
            n_kv_heads: int, d_ff: int) -> ModelConfig:
    return ModelConfig(
        name=name,
        family="llama2",
        n_layers=n_layers,
        d_model=d_model,
        n_heads=n_heads,
        n_kv_heads=n_kv_heads,
        d_ff=d_ff,
        ffn_kind=FFNKind.SWIGLU,
        vocab_size=_LLAMA2_VOCAB,
        max_positions=_LLAMA2_MAX_POS,
        tied_embeddings=False,
        learned_positional_embeddings=False,
    )


_MODELS: Dict[str, ModelConfig] = {
    "opt-1.3b": _opt("OPT-1.3B", n_layers=24, d_model=2048, n_heads=32),
    "opt-6.7b": _opt("OPT-6.7B", n_layers=32, d_model=4096, n_heads=32),
    "opt-13b": _opt("OPT-13B", n_layers=40, d_model=5120, n_heads=40),
    "opt-30b": _opt("OPT-30B", n_layers=48, d_model=7168, n_heads=56),
    "opt-66b": _opt("OPT-66B", n_layers=64, d_model=9216, n_heads=72),
    "opt-175b": _opt("OPT-175B", n_layers=96, d_model=12288, n_heads=96),
    "llama2-7b": _llama2("LLaMA2-7B", n_layers=32, d_model=4096,
                         n_heads=32, n_kv_heads=32, d_ff=11008),
    "llama2-13b": _llama2("LLaMA2-13B", n_layers=40, d_model=5120,
                          n_heads=40, n_kv_heads=40, d_ff=13824),
    "llama2-70b": _llama2("LLaMA2-70B", n_layers=80, d_model=8192,
                          n_heads=64, n_kv_heads=8, d_ff=28672),
    # Mixture-of-experts extension model (not part of the paper's grid):
    # Mixtral-8x7B-class — 8 experts, 2 active per token, GQA.
    "mixtral-8x7b": ModelConfig(
        name="Mixtral-8x7B",
        family="mixtral",
        n_layers=32,
        d_model=4096,
        n_heads=32,
        n_kv_heads=8,
        d_ff=14336,
        ffn_kind=FFNKind.SWIGLU,
        vocab_size=32000,
        max_positions=4096,
        tied_embeddings=False,
        learned_positional_embeddings=False,
        n_experts=8,
        top_k=2,
    ),
}

# The eight models of the main evaluation, ordered by parameter count as the
# paper's figures order their x-axes.
EVALUATED_MODEL_NAMES: List[str] = [
    "opt-1.3b",
    "opt-6.7b",
    "llama2-7b",
    "opt-13b",
    "llama2-13b",
    "opt-30b",
    "opt-66b",
    "llama2-70b",
]


def get_model(name: str) -> ModelConfig:
    """Look up a model by key, e.g. ``"opt-13b"`` or ``"llama2-70b"``.

    Display names ("OPT-13B") are also accepted, case-insensitively.
    """
    key = name.lower()
    if key in _MODELS:
        return _MODELS[key]
    raise KeyError(f"unknown model {name!r}; known: {sorted(_MODELS)}")


def evaluated_models() -> List[ModelConfig]:
    """The eight models used in the paper's main evaluation, in figure order."""
    return [_MODELS[name] for name in EVALUATED_MODEL_NAMES]


def all_models() -> Dict[str, ModelConfig]:
    """All registered models, keyed by canonical name (includes OPT-175B)."""
    return dict(_MODELS)
