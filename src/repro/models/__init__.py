"""LLM architecture substrate: model configs, operator graphs, footprints."""

from repro.models.builder import build_model, scale_to_params
from repro.models.config import FFNKind, ModelConfig
from repro.models.layers import (
    Op,
    OpKind,
    total_bytes,
    total_flops,
    total_weight_bytes,
)
from repro.models.memory import (
    fits_in_memory,
    inference_footprint_bytes,
    kv_cache_bytes,
    kv_cache_bytes_per_token,
    peak_activation_bytes,
    weight_bytes,
)
from repro.models.opgraph import decode_step_ops, prefill_ops
from repro.models.registry import (
    EVALUATED_MODEL_NAMES,
    all_models,
    evaluated_models,
    get_model,
)

__all__ = [
    "EVALUATED_MODEL_NAMES",
    "build_model",
    "scale_to_params",
    "FFNKind",
    "ModelConfig",
    "Op",
    "OpKind",
    "all_models",
    "decode_step_ops",
    "evaluated_models",
    "fits_in_memory",
    "get_model",
    "inference_footprint_bytes",
    "kv_cache_bytes",
    "kv_cache_bytes_per_token",
    "peak_activation_bytes",
    "prefill_ops",
    "total_bytes",
    "total_flops",
    "total_weight_bytes",
    "weight_bytes",
]
