"""Memory-footprint math: weights, KV cache, activations (Figs. 6 and 7).

The paper's KV-cache formula (Section II-B)::

    2B(BF16) * 2(Key/Value) * n_layers * d_model * n_seq * n_batch

assumes multi-head attention. The generalized form used here replaces
``d_model`` with ``n_kv_heads * head_dim`` so grouped-query models
(LLaMA2-70B) are sized correctly; for MHA models the two coincide.
"""

from repro.hardware.datatypes import DType
from repro.models.config import ModelConfig
from repro.utils.validation import require_positive


def weight_bytes(model: ModelConfig, dtype: DType = DType.FP16) -> float:
    """Bytes to store all model parameters in *dtype* (Fig. 6 uses FP16)."""
    return model.param_count() * dtype.nbytes


def kv_cache_bytes(model: ModelConfig, seq_len: int, batch_size: int,
                   dtype: DType = DType.BF16) -> float:
    """Bytes of KV cache for *batch_size* sequences of *seq_len* tokens.

    Grows linearly in both sequence length and batch size — the scaling
    that Fig. 7 plots against the (constant) model size.
    """
    require_positive(seq_len, "seq_len")
    require_positive(batch_size, "batch_size")
    per_token = 2 * model.n_layers * model.d_kv * dtype.nbytes  # K and V
    return float(per_token) * seq_len * batch_size


def kv_cache_bytes_per_token(model: ModelConfig,
                             dtype: DType = DType.BF16) -> float:
    """KV bytes appended per generated/prefilled token per sequence."""
    return 2.0 * model.n_layers * model.d_kv * dtype.nbytes


def peak_activation_bytes(model: ModelConfig, seq_len: int, batch_size: int,
                          dtype: DType = DType.BF16) -> float:
    """Rough peak live-activation footprint during one layer's computation.

    Dominated by the FFN intermediate (batch x seq x d_ff) plus the
    residual stream (batch x seq x d_model). Attention score matrices are
    materialized per head-block and are counted at one layer's worth.
    """
    require_positive(seq_len, "seq_len")
    require_positive(batch_size, "batch_size")
    tokens = seq_len * batch_size
    residual = tokens * model.d_model
    ffn_inner = tokens * model.d_ff * model.ffn_kind.matrix_count
    scores = batch_size * model.n_heads * seq_len * seq_len
    return float(residual + ffn_inner + scores) * dtype.nbytes


def inference_footprint_bytes(model: ModelConfig, seq_len: int,
                              batch_size: int,
                              dtype: DType = DType.BF16) -> float:
    """Total resident footprint during inference: weights + KV + activations.

    This is the working set the memory system must hold (and the quantity
    compared against GPU capacity when deciding whether offloading is
    required in Section V).
    """
    return (weight_bytes(model, dtype)
            + kv_cache_bytes(model, seq_len, batch_size, dtype)
            + peak_activation_bytes(model, seq_len, batch_size, dtype))


def fits_in_memory(model: ModelConfig, capacity_bytes: float, seq_len: int,
                   batch_size: int, dtype: DType = DType.BF16) -> bool:
    """Whether the full inference footprint fits in *capacity_bytes*."""
    require_positive(capacity_bytes, "capacity_bytes")
    return inference_footprint_bytes(model, seq_len, batch_size, dtype) <= capacity_bytes
