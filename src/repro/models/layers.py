"""Operator-level representation of transformer computation.

Every piece of work the inference engine simulates is an :class:`Op`: a
(possibly batched) GEMM or a bandwidth-only operator, annotated with the
byte traffic it generates against weights, activations, and the KV cache.
The simulator prices each op with ``max(compute_time, memory_time)`` on a
target platform (roofline composition), so ops must carry *exact* FLOP and
byte counts — these are architecture facts, independent of hardware.
"""

import dataclasses
import enum
from typing import Iterable

from repro.utils.validation import require_non_negative


class OpKind(enum.Enum):
    """Operator category; selects the GEMM efficiency curve (if any)."""

    LINEAR = "linear"            # weight GEMM: projections, FFN, LM head
    ATTN_QK = "attn_qk"          # Q @ K^T batched GEMM (no weights)
    ATTN_PV = "attn_pv"          # softmax(P) @ V batched GEMM (no weights)
    SOFTMAX = "softmax"          # attention softmax (bandwidth-bound)
    NORM = "norm"                # LayerNorm / RMSNorm (bandwidth-bound)
    ELEMENTWISE = "elementwise"  # residual adds, activations, RoPE
    EMBEDDING = "embedding"      # token/position table gather


@dataclasses.dataclass(frozen=True)
class Op:
    """One simulated operator (aggregated over layers where identical).

    GEMM ops describe a single GEMM instance of shape ``m x n x k`` executed
    ``instances`` times (e.g. once per layer, or once per layer x head for
    attention). Bandwidth-only ops set m = n = k = 0 and carry bytes only.

    Attributes:
        name: Human-readable identifier ("qkv_proj", "ffn_up", ...).
        kind: Operator category.
        m, n, k: GEMM dimensions of ONE instance (0 for non-GEMM ops).
        instances: How many identical instances execute per pass.
        weight_bytes: Unique weight bytes streamed per pass (all instances).
        activation_bytes: Activation read+write traffic per pass.
        kv_read_bytes: KV-cache bytes read per pass.
        kv_write_bytes: KV-cache bytes appended per pass.
        extra_flops: Non-GEMM FLOPs (softmax exp/sum, norms), priced at
            vector rates; small but keeps instruction counts honest.
        kernel_launches: Distinct kernel/operator dispatches per pass.
            Attention runs one *batched* kernel per layer even though it
            contains batch x heads logical GEMMs, so launch overhead is
            charged per launch, not per instance.
    """

    name: str
    kind: OpKind
    m: int = 0
    n: int = 0
    k: int = 0
    instances: int = 1
    weight_bytes: float = 0.0
    activation_bytes: float = 0.0
    kv_read_bytes: float = 0.0
    kv_write_bytes: float = 0.0
    extra_flops: float = 0.0
    kernel_launches: int = 1

    def __post_init__(self) -> None:
        for field in ("m", "n", "k"):
            require_non_negative(getattr(self, field), field)
        require_non_negative(self.instances, "instances")
        require_non_negative(self.weight_bytes, "weight_bytes")
        require_non_negative(self.activation_bytes, "activation_bytes")
        require_non_negative(self.kv_read_bytes, "kv_read_bytes")
        require_non_negative(self.kv_write_bytes, "kv_write_bytes")
        require_non_negative(self.extra_flops, "extra_flops")
        require_non_negative(self.kernel_launches, "kernel_launches")

    @property
    def is_gemm(self) -> bool:
        """Whether this op performs matrix multiplication."""
        return self.m > 0 and self.n > 0 and self.k > 0

    @property
    def gemm_flops(self) -> float:
        """GEMM FLOPs across all instances (2*m*n*k each)."""
        if not self.is_gemm:
            return 0.0
        return 2.0 * self.m * self.n * self.k * self.instances

    @property
    def flops(self) -> float:
        """Total FLOPs (GEMM plus elementwise extras)."""
        return self.gemm_flops + self.extra_flops

    @property
    def memory_bytes(self) -> float:
        """All byte traffic the op generates against the memory system."""
        return (self.weight_bytes + self.activation_bytes
                + self.kv_read_bytes + self.kv_write_bytes)

    @property
    def streaming_bytes(self) -> float:
        """Bytes with no intra-op reuse (always miss the LLC once)."""
        return self.weight_bytes + self.kv_read_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic (0 for pure-movement ops)."""
        if self.memory_bytes == 0:
            return float("inf") if self.flops > 0 else 0.0
        return self.flops / self.memory_bytes


def total_flops(ops: Iterable[Op]) -> float:
    """Sum of FLOPs across *ops*."""
    return sum(op.flops for op in ops)


def total_bytes(ops: Iterable[Op]) -> float:
    """Sum of memory traffic across *ops*."""
    return sum(op.memory_bytes for op in ops)


def total_weight_bytes(ops: Iterable[Op]) -> float:
    """Sum of weight traffic across *ops*."""
    return sum(op.weight_bytes for op in ops)
