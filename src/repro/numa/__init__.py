"""NUMA substrate: memory/clustering modes, topology, behaviour model."""

from repro.numa.model import (
    DEFAULT_NUMA_CALIBRATION,
    NumaCalibration,
    NumaModel,
)
from repro.numa.modes import (
    EVALUATED_CONFIGS,
    HBM_ONLY_QUAD,
    QUAD_CACHE,
    QUAD_FLAT,
    SNC_CACHE,
    SNC_FLAT,
    ClusteringMode,
    MemoryMode,
    NumaConfig,
    get_config,
)
from repro.numa.topology import NumaNode, build_nodes, nodes_per_socket

__all__ = [
    "DEFAULT_NUMA_CALIBRATION",
    "EVALUATED_CONFIGS",
    "HBM_ONLY_QUAD",
    "ClusteringMode",
    "MemoryMode",
    "NumaCalibration",
    "NumaConfig",
    "NumaModel",
    "NumaNode",
    "QUAD_CACHE",
    "QUAD_FLAT",
    "SNC_CACHE",
    "SNC_FLAT",
    "build_nodes",
    "get_config",
    "nodes_per_socket",
]
