"""SPR Max memory and clustering modes (Section II-E).

The paper evaluates four combinations on a DDR5-equipped SPR Max server:

* memory mode — **Flat** (HBM and DDR as separate NUMA nodes, software
  places data, HBM filled first) or **Cache** (HBM is a transparent
  memory-side cache in front of DDR); **HBM-only** exists but is excluded
  because the server has DDR5 installed;
* clustering mode — **Quadrant** (one NUMA node per socket) or **SNC-4**
  (four sub-NUMA clusters per socket).

:class:`NumaConfig` names one combination; the paper's labels are
``quad_cache``, ``quad_flat``, ``snc_cache``, ``snc_flat``.
"""

import dataclasses
import enum
from typing import List


class MemoryMode(enum.Enum):
    """HBM memory mode on SPR Max."""

    FLAT = "flat"
    CACHE = "cache"
    HBM_ONLY = "hbm_only"


class ClusteringMode(enum.Enum):
    """Socket clustering mode."""

    QUADRANT = "quad"
    SNC4 = "snc"


@dataclasses.dataclass(frozen=True)
class NumaConfig:
    """One memory-mode x clustering-mode server configuration."""

    memory_mode: MemoryMode
    clustering_mode: ClusteringMode

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``quad_flat``."""
        return f"{self.clustering_mode.value}_{self.memory_mode.value}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


QUAD_CACHE = NumaConfig(MemoryMode.CACHE, ClusteringMode.QUADRANT)
QUAD_FLAT = NumaConfig(MemoryMode.FLAT, ClusteringMode.QUADRANT)
SNC_CACHE = NumaConfig(MemoryMode.CACHE, ClusteringMode.SNC4)
SNC_FLAT = NumaConfig(MemoryMode.FLAT, ClusteringMode.SNC4)
HBM_ONLY_QUAD = NumaConfig(MemoryMode.HBM_ONLY, ClusteringMode.QUADRANT)

#: The four configurations evaluated in Fig. 13, in the paper's order
#: (quad_cache is the normalization baseline).
EVALUATED_CONFIGS: List[NumaConfig] = [QUAD_CACHE, QUAD_FLAT, SNC_CACHE, SNC_FLAT]


def get_config(label: str) -> NumaConfig:
    """Look up a configuration by paper label (``"quad_flat"``, ...)."""
    for config in EVALUATED_CONFIGS + [HBM_ONLY_QUAD]:
        if config.label == label.lower():
            return config
    raise KeyError(f"unknown NUMA config {label!r}; known: "
                   f"{[c.label for c in EVALUATED_CONFIGS]}")
