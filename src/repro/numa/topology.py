"""NUMA topology derived from a CPU platform and clustering mode.

In Quadrant mode each socket is one NUMA node owning all its cores, HBM,
and DDR channels. In SNC-4 mode the socket splits into four sub-NUMA
clusters, each owning a quarter of the cores and a quarter of each memory
tier's channels/capacity. A thread's accesses to another cluster's memory
traverse the on-die mesh — cheaper than UPI, but measurably slower than
cluster-local accesses, which is the effect Fig. 15 shows as "remote LLC
accesses".
"""

import dataclasses
from typing import List

from repro.hardware.platform import CPUTopology, Platform
from repro.numa.modes import ClusteringMode
from repro.utils.validation import require_positive


@dataclasses.dataclass(frozen=True)
class NumaNode:
    """One exposed NUMA domain.

    Attributes:
        node_id: Index within the server.
        socket: Owning socket index.
        cores: Physical cores in this node.
        hbm_bytes / ddr_bytes: Memory capacity owned by this node.
        hbm_bw / ddr_bw: STREAM bandwidth owned by this node (bytes/s).
    """

    node_id: int
    socket: int
    cores: int
    hbm_bytes: float
    ddr_bytes: float
    hbm_bw: float
    ddr_bw: float

    def __post_init__(self) -> None:
        require_positive(self.cores, "cores")


def build_nodes(platform: Platform, clustering: ClusteringMode) -> List[NumaNode]:
    """Enumerate NUMA nodes for *platform* under *clustering* mode.

    Only meaningful for CPU platforms with a topology. Capacities and
    bandwidths are divided evenly across sub-NUMA clusters, matching SNC's
    per-cluster memory-controller assignment.
    """
    if not platform.is_cpu or platform.topology is None:
        raise ValueError(f"{platform.name} is not a CPU platform")
    topo: CPUTopology = platform.topology
    clusters = (topo.snc_clusters_per_socket
                if clustering is ClusteringMode.SNC4 else 1)

    hbm_bytes = hbm_bw = ddr_bytes = ddr_bw = 0.0
    for tier in platform.memory.tiers:
        if tier.name.upper().startswith("HBM"):
            hbm_bytes, hbm_bw = tier.capacity_bytes, tier.sustained_bw
        else:
            ddr_bytes, ddr_bw = tier.capacity_bytes, tier.sustained_bw

    nodes: List[NumaNode] = []
    node_id = 0
    for socket in range(topo.sockets):
        for _ in range(clusters):
            nodes.append(NumaNode(
                node_id=node_id,
                socket=socket,
                cores=topo.cores_per_socket // clusters,
                hbm_bytes=hbm_bytes / clusters,
                ddr_bytes=ddr_bytes / clusters,
                hbm_bw=hbm_bw / clusters,
                ddr_bw=ddr_bw / clusters,
            ))
            node_id += 1
    return nodes


def nodes_per_socket(clustering: ClusteringMode, topo: CPUTopology) -> int:
    """Exposed NUMA nodes per socket under *clustering*."""
    return topo.snc_clusters_per_socket if clustering is ClusteringMode.SNC4 else 1
