"""Effective memory behaviour under each NUMA configuration (Figs. 13/15).

The model reduces a configuration to two quantities the operator executor
consumes:

* ``effective_bandwidth(footprint)`` — sustained bytes/s the inference
  kernels see for a given working set, and
* ``remote_access_fraction`` — share of memory accesses served by a
  non-local NUMA domain (feeds the remote-LLC-access counter).

Mechanisms modeled, with calibration constants documented in
:class:`NumaCalibration`:

* **Flat mode** fills HBM first and spills to DDR (harmonic blend over the
  placed bytes — see :meth:`repro.hardware.memory.MemorySystem.blended_bandwidth`).
* **Cache mode** treats HBM as a memory-side cache of DDR. Streaming LLM
  weights are cache-friendly when the footprint fits in HBM, but the
  tag-check/fill path costs a few percent of bandwidth, and once the
  footprint exceeds HBM the hit rate collapses toward
  ``hbm_capacity / footprint`` (thrashing stream).
* **SNC-4** without NUMA-aware allocation spreads pages round-robin across
  the four sub-node memory controllers while threads are bound per
  cluster, so ~3/4 of accesses are sub-node-remote, paying a mesh
  bandwidth/latency tax (the paper: "when data allocation is not properly
  managed, performance can degrade due to inefficient memory access and
  increased inter-core communication").
* **HBM-only** caps capacity at HBM but runs at full HBM bandwidth.
"""

import dataclasses

from repro.hardware.memory import MemorySystem
from repro.hardware.platform import Platform
from repro.numa.modes import ClusteringMode, MemoryMode, NumaConfig
from repro.utils.validation import require_positive


@dataclasses.dataclass(frozen=True)
class NumaCalibration:
    """Calibration constants for the NUMA behaviour model.

    Attributes:
        cache_mode_overhead: Bandwidth fraction lost to the memory-side
            cache's tag/fill path even at a 100 % hit rate.
        cache_hit_rate_resident: HBM-cache hit rate when the working set
            fits in HBM (streaming weights re-fill predictably but conflict
            misses remain).
        snc_remote_fraction: Fraction of accesses that land on a remote
            sub-NUMA cluster when allocation is not NUMA-aware (3 of 4
            clusters are remote under round-robin page placement).
        snc_remote_bw_penalty: Relative bandwidth of a sub-node-remote
            access vs. a local one (mesh hop + controller contention).
        numa_aware_remote_fraction: Residual remote fraction achievable
            with the hot/cold placement of Section VI.
    """

    cache_mode_overhead: float = 0.06
    cache_hit_rate_resident: float = 0.94
    snc_remote_fraction: float = 0.75
    snc_remote_bw_penalty: float = 0.72
    numa_aware_remote_fraction: float = 0.15

    def __post_init__(self) -> None:
        for name in ("cache_mode_overhead", "cache_hit_rate_resident",
                     "snc_remote_fraction", "snc_remote_bw_penalty",
                     "numa_aware_remote_fraction"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


DEFAULT_NUMA_CALIBRATION = NumaCalibration()


def hot_cold_effective_bandwidth(hot_traffic_fraction: float,
                                 local_bw: float,
                                 remote_bw: float) -> float:
    """Effective bandwidth when hot traffic is pinned to fast memory.

    *hot_traffic_fraction* of all accesses go to data placed in the fast
    tier (HBM / local DDR); the rest reach the slow tier (remote DDR).
    Time per byte blends harmonically — concentrating *traffic* (not
    bytes) on the fast tier is what Section VI's hot/cold placement
    buys.
    """
    if not 0 <= hot_traffic_fraction <= 1:
        raise ValueError("hot_traffic_fraction must be in [0, 1]")
    require_positive(local_bw, "local_bw")
    require_positive(remote_bw, "remote_bw")
    time_per_byte = (hot_traffic_fraction / local_bw
                     + (1.0 - hot_traffic_fraction) / remote_bw)
    return 1.0 / time_per_byte


class NumaModel:
    """Evaluates one (platform, NumaConfig) pair.

    Args:
        platform: CPU platform (must expose HBM + DDR tiers for cache/flat
            modes to differ; a DDR-only platform like ICL degenerates to
            flat behaviour).
        config: Memory x clustering configuration.
        calibration: Behaviour constants.
        numa_aware: Whether software performs NUMA-aware placement
            (Section VI's proposed optimization); lowers the SNC remote
            fraction to the calibrated residual.
    """

    def __init__(self, platform: Platform, config: NumaConfig,
                 calibration: NumaCalibration = DEFAULT_NUMA_CALIBRATION,
                 numa_aware: bool = False):
        if not platform.is_cpu:
            raise ValueError(f"NUMA model applies to CPUs, got {platform.name}")
        self.platform = platform
        self.config = config
        self.calibration = calibration
        self.numa_aware = numa_aware

    # -- capacity ---------------------------------------------------------

    @property
    def capacity_bytes(self) -> float:
        """Software-visible memory capacity under this configuration.

        HBM-only exposes just HBM; cache mode exposes only DDR (HBM is the
        cache, not addressable); flat exposes both. On a DDR-only platform
        (ICL) every mode degenerates to the DRAM capacity.
        """
        hbm, ddr = self._tier_split()
        if not self._has_hbm:
            return ddr[0]
        if self.config.memory_mode is MemoryMode.HBM_ONLY:
            return hbm[0]
        if self.config.memory_mode is MemoryMode.CACHE:
            return ddr[0]
        return hbm[0] + ddr[0]

    # -- bandwidth --------------------------------------------------------

    def effective_bandwidth(self, footprint_bytes: float) -> float:
        """Sustained kernel bandwidth (bytes/s) for *footprint_bytes*.

        Includes the platform's kernel-level stream efficiency, so the
        result plugs directly into the roofline memory leg.
        """
        require_positive(footprint_bytes, "footprint_bytes")
        raw = self._mode_bandwidth(footprint_bytes)
        raw *= self._clustering_factor()
        return raw * self.platform.stream_efficiency

    def _mode_bandwidth(self, footprint: float) -> float:
        hbm, ddr = self._tier_split()
        hbm_cap, hbm_bw = hbm
        ddr_cap, ddr_bw = ddr
        mode = self.config.memory_mode
        if mode is MemoryMode.HBM_ONLY:
            if footprint > hbm_cap:
                raise ValueError(
                    f"footprint {footprint:.3g} B exceeds HBM-only capacity "
                    f"{hbm_cap:.3g} B on {self.platform.name}")
            return hbm_bw
        if mode is MemoryMode.FLAT:
            return MemorySystem(self.platform.memory.tiers).blended_bandwidth(footprint)
        # Cache mode: hit rate depends on residency; bandwidth is the
        # hit/miss blend (a miss pays the DDR fill).
        if footprint <= hbm_cap:
            hit = self.calibration.cache_hit_rate_resident
        else:
            hit = self.calibration.cache_hit_rate_resident * (hbm_cap / footprint)
        hit_bw = hbm_bw * (1.0 - self.calibration.cache_mode_overhead)
        time_per_byte = hit / hit_bw + (1.0 - hit) / ddr_bw
        return 1.0 / time_per_byte

    def hot_cold_bandwidth(self, hot_traffic_fraction: float) -> float:
        """Sustained bandwidth under hot/cold weight placement.

        Section VI's second optimization: hot data (activations, KV,
        frequently-streamed weights) pinned to the HBM tier serves
        *hot_traffic_fraction* of accesses at HBM bandwidth; cold data
        spills to DDR. On a DDR-only platform the tiers coincide and
        this degenerates to the flat bandwidth. Clustering penalties and
        stream efficiency apply exactly as in
        :meth:`effective_bandwidth`, so the result plugs into the same
        roofline memory leg.
        """
        hbm, ddr = self._tier_split()
        raw = hot_cold_effective_bandwidth(hot_traffic_fraction,
                                           hbm[1], ddr[1])
        raw *= self._clustering_factor()
        return raw * self.platform.stream_efficiency

    def _clustering_factor(self) -> float:
        if self.config.clustering_mode is ClusteringMode.QUADRANT:
            return 1.0
        remote = self.remote_access_fraction
        penalty = self.calibration.snc_remote_bw_penalty
        # Time-weighted blend: remote accesses run at penalized bandwidth.
        return 1.0 / ((1.0 - remote) + remote / penalty)

    # -- counters ---------------------------------------------------------

    @property
    def remote_access_fraction(self) -> float:
        """Fraction of accesses served by a remote NUMA domain."""
        if self.config.clustering_mode is ClusteringMode.QUADRANT:
            return 0.03  # residual cross-socket noise even in quad mode
        if self.numa_aware:
            return self.calibration.numa_aware_remote_fraction
        return self.calibration.snc_remote_fraction

    # -- helpers ----------------------------------------------------------

    @property
    def _has_hbm(self) -> bool:
        """Whether the platform exposes a distinct HBM tier."""
        return any(tier.name.upper().startswith("HBM")
                   for tier in self.platform.memory.tiers)

    def _tier_split(self):
        """(capacity, bandwidth) for the HBM tier and the DDR tier."""
        hbm = (0.0, 0.0)
        ddr = (0.0, 0.0)
        for tier in self.platform.memory.tiers:
            if tier.name.upper().startswith("HBM"):
                hbm = (tier.capacity_bytes, tier.sustained_bw)
            else:
                ddr = (tier.capacity_bytes, tier.sustained_bw)
        if hbm == (0.0, 0.0):
            # DDR-only platform (ICL): flat/cache/hbm distinctions vanish.
            hbm = ddr
        return hbm, ddr
