"""Speculative decoding performance model (SpecInfer, paper ref [37]).

Decode is memory-bound: generating one token reads every weight byte.
Speculative decoding has a small *draft* model propose ``gamma`` tokens,
then the *target* model verifies all of them in ONE forward pass — that
pass reads the target weights once but scores gamma+1 positions, so
accepted tokens share the weight traffic. With per-token acceptance
probability ``alpha``, the expected tokens per cycle follow the standard
geometric series::

    E[tokens] = (1 - alpha^(gamma+1)) / (1 - alpha)

Cycle time = gamma draft decode steps + one target verification pass
(a prefill-shaped pass over gamma+1 positions). Effective TPOT divides
cycle time by expected tokens. On a memory-bound platform this is nearly
free throughput — exactly why the technique matters for CPU inference.

:class:`SpeculativeDecoder` is a thin adapter over
:class:`~repro.engine.backend.SpecDecodeBackend`, which owns the cycle's
op-graph construction (draft steps + verification pass, folded into a
per-token decode graph for the serving/cluster layers);
:class:`SpecDecodeConfig` lives in the backend module and is re-exported
here unchanged.
"""

import dataclasses

# SpecDecodeConfig moved to the backend layer (re-exported here for the
# public API).
from repro.engine.backend import SpecDecodeBackend, SpecDecodeConfig
from repro.engine.executor import OperatorExecutor
from repro.engine.inference import (
    DEFAULT_ENGINE_CONFIG,
    EngineConfig,
    InferenceSimulator,
)
from repro.engine.request import InferenceRequest
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig

__all__ = ["SpecDecodeConfig", "SpecDecodeEstimate", "SpeculativeDecoder"]


@dataclasses.dataclass(frozen=True)
class SpecDecodeEstimate:
    """Projected speculative-decoding performance.

    Attributes:
        baseline_tpot_s: Target-only autoregressive TPOT.
        draft_step_s: One draft-model decode step.
        verify_pass_s: One target verification pass over gamma+1 positions.
        cycle_s: Full cycle time.
        expected_tokens: Expected tokens per cycle.
    """

    baseline_tpot_s: float
    draft_step_s: float
    verify_pass_s: float
    cycle_s: float
    expected_tokens: float

    @property
    def effective_tpot_s(self) -> float:
        """Mean time per output token under speculation."""
        return self.cycle_s / self.expected_tokens

    @property
    def speedup(self) -> float:
        """TPOT improvement over plain autoregressive decode."""
        return self.baseline_tpot_s / self.effective_tpot_s


class SpeculativeDecoder:
    """Estimates speculative-decoding gains on one platform.

    Args:
        platform: Execution platform.
        target: Large model being served.
        draft: Small proposal model.
        config: Speculation parameters.
        engine_config: CPU NUMA/core configuration.
    """

    def __init__(self, platform: Platform, target: ModelConfig,
                 draft: ModelConfig,
                 config: SpecDecodeConfig = SpecDecodeConfig(),
                 engine_config: EngineConfig = DEFAULT_ENGINE_CONFIG):
        if draft.param_count() >= target.param_count():
            raise ValueError(
                f"draft ({draft.name}) must be smaller than target "
                f"({target.name})")
        self.platform = platform
        self.target = target
        self.draft = draft
        self.config = config
        self._simulator = InferenceSimulator(platform, engine_config)

    def _executor(self, model: ModelConfig,
                  request: InferenceRequest) -> OperatorExecutor:
        return self._simulator._executor(model, request)

    def backend(self, request: InferenceRequest) -> SpecDecodeBackend:
        """The folded per-token execution backend for this configuration."""
        return SpecDecodeBackend(draft=self.draft, spec=self.config,
                                 dtype=request.dtype)

    def estimate(self, request: InferenceRequest = InferenceRequest()
                 ) -> SpecDecodeEstimate:
        """Project speculative TPOT for *request* (kv at mid-generation).

        Draft steps and the verification pass price on *separate*
        executors (the draft's working set is far smaller, so its
        bandwidth derivation differs) — which is why this adapter prices
        the backend's unscaled components itself rather than delegating
        a folded decode graph to one simulator.
        """
        kv_len = request.input_len + request.decode_steps // 2
        batch = request.batch_size

        target_executor = self._executor(self.target, request)
        draft_executor = self._executor(self.draft, request)
        backend = self.backend(request)

        baseline_ops = target_executor.backend.decode_ops(
            self.target, batch, kv_len)
        baseline = sum(t.time_s
                       for t in target_executor.time_ops(baseline_ops))

        draft_ops = draft_executor.backend.decode_ops(
            self.draft, batch, kv_len)
        draft_step = sum(t.time_s for t in draft_executor.time_ops(draft_ops))

        # Verification: one target pass over gamma+1 positions per
        # sequence plus the cached-context KV read (the backend appends
        # it as a pure-memory op, so it prices to exactly
        # bytes / bandwidth).
        verify = sum(t.time_s for t in target_executor.time_ops(
            backend.verify_ops(self.target, batch, kv_len)))

        cycle = self.config.gamma * draft_step + verify
        return SpecDecodeEstimate(
            baseline_tpot_s=baseline,
            draft_step_s=draft_step,
            verify_pass_s=verify,
            cycle_s=cycle,
            expected_tokens=self.config.expected_tokens_per_cycle,
        )

    def best_gamma(self, request: InferenceRequest = InferenceRequest(),
                   candidates=(1, 2, 4, 6, 8, 12)) -> int:
        """Gamma with the highest projected speedup for *request*."""
        best, best_speedup = candidates[0], 0.0
        for gamma in candidates:
            config = dataclasses.replace(self.config, gamma=gamma)
            decoder = SpeculativeDecoder(self.platform, self.target,
                                         self.draft, config)
            speedup = decoder.estimate(request).speedup
            if speedup > best_speedup:
                best, best_speedup = gamma, speedup
        return best
