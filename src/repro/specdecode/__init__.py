"""Speculative-decoding extension (paper ref [37], SpecInfer)."""

from repro.specdecode.model import (
    SpecDecodeConfig,
    SpecDecodeEstimate,
    SpeculativeDecoder,
)

__all__ = [
    "SpecDecodeConfig",
    "SpecDecodeEstimate",
    "SpeculativeDecoder",
]
