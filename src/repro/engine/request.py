"""Inference request description.

The paper's main configuration is input 128 / output 32 tokens with batch
sizes 1-32 (Section IV-A); Section V additionally sweeps input length from
128 to 1024.
"""

import dataclasses

from repro.hardware.datatypes import DType
from repro.utils.validation import require_positive

#: Batch sizes swept throughout the paper's evaluation.
EVALUATED_BATCH_SIZES = (1, 2, 4, 8, 16, 32)

#: Input lengths swept in Section V-C (Figs. 20, 21).
EVALUATED_INPUT_LENGTHS = (128, 256, 512, 1024)


@dataclasses.dataclass(frozen=True)
class InferenceRequest:
    """One batched generation request.

    Attributes:
        batch_size: Number of sequences generated together.
        input_len: Prompt tokens per sequence.
        output_len: Tokens to generate per sequence (includes the first
            token produced by prefill).
        dtype: Compute/storage datatype (BF16 everywhere in the paper).
    """

    batch_size: int = 1
    input_len: int = 128
    output_len: int = 32
    dtype: DType = DType.BF16

    def __post_init__(self) -> None:
        require_positive(self.batch_size, "batch_size")
        require_positive(self.input_len, "input_len")
        require_positive(self.output_len, "output_len")

    @property
    def total_generated_tokens(self) -> int:
        """Tokens generated across the batch (throughput numerator)."""
        return self.batch_size * self.output_len

    @property
    def decode_steps(self) -> int:
        """Autoregressive steps after prefill (first token is prefill's)."""
        return self.output_len - 1

    @property
    def max_seq_len(self) -> int:
        """Longest sequence length reached during the request."""
        return self.input_len + self.output_len


PAPER_DEFAULT_REQUEST = InferenceRequest()
