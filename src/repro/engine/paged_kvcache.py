"""Paged KV-cache allocator (the vLLM mechanism, related work §VII-C).

The paper's related work credits vLLM's paged attention with "allow[ing]
the system to batch more sequences together". The mechanism: naive
serving reserves a *max-length contiguous* KV buffer per sequence, so
short sequences strand most of their reservation (internal
fragmentation); paging allocates fixed-size token blocks on demand from a
shared pool, so memory tracks *actual* cached tokens.

This module implements both disciplines over the same byte budget so the
batching-capacity gain can be measured on the simulator:

* :class:`BlockAllocator` — fixed-size block pool with a free list;
* :class:`PagedKVCacheManager` — per-sequence block tables, on-demand
  growth;
* :class:`ReservedKVCacheManager` — the naive baseline: max-length
  contiguous reservation per sequence.
"""

import dataclasses
from typing import Dict, List, Optional

from repro.hardware.datatypes import DType
from repro.models.config import ModelConfig
from repro.models.memory import kv_cache_bytes_per_token
from repro.utils.validation import require_positive


class OutOfBlocks(RuntimeError):
    """Raised when the block pool cannot satisfy an allocation."""


class BlockAllocator:
    """Fixed-size block pool with O(1) allocate/free.

    Args:
        num_blocks: Pool size in blocks.
        block_tokens: Tokens stored per block.
    """

    def __init__(self, num_blocks: int, block_tokens: int):
        require_positive(num_blocks, "num_blocks")
        require_positive(block_tokens, "block_tokens")
        self.num_blocks = num_blocks
        self.block_tokens = block_tokens
        self._free: List[int] = list(range(num_blocks - 1, -1, -1))

    @property
    def free_blocks(self) -> int:
        """Blocks currently available."""
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        """Blocks currently allocated."""
        return self.num_blocks - len(self._free)

    def allocate(self) -> int:
        """Take one block; raises :class:`OutOfBlocks` when exhausted."""
        if not self._free:
            raise OutOfBlocks(
                f"block pool exhausted ({self.num_blocks} blocks)")
        return self._free.pop()

    def free(self, block_id: int) -> None:
        """Return one block to the pool."""
        if not 0 <= block_id < self.num_blocks:
            raise ValueError(f"invalid block id {block_id}")
        self._free.append(block_id)


@dataclasses.dataclass
class _PagedSequence:
    tokens: int
    block_table: List[int]


class PagedKVCacheManager:
    """vLLM-style paged KV cache under a byte budget.

    Args:
        model: Model whose K/V geometry sizes blocks.
        capacity_bytes: Total KV budget.
        block_tokens: Tokens per block (vLLM default is 16).
        dtype: KV storage dtype.
    """

    def __init__(self, model: ModelConfig, capacity_bytes: float,
                 block_tokens: int = 16, dtype: DType = DType.BF16):
        require_positive(capacity_bytes, "capacity_bytes")
        self.model = model
        self.dtype = dtype
        self.block_tokens = block_tokens
        self.bytes_per_token = kv_cache_bytes_per_token(model, dtype)
        num_blocks = int(capacity_bytes
                         // (self.bytes_per_token * block_tokens))
        if num_blocks < 1:
            raise ValueError("capacity too small for even one block")
        self.allocator = BlockAllocator(num_blocks, block_tokens)
        self._sequences: Dict[int, _PagedSequence] = {}
        self._next_id = 0

    def _blocks_for(self, tokens: int) -> int:
        return -(-tokens // self.block_tokens)

    def can_admit(self, prompt_tokens: int) -> bool:
        """Whether a new sequence's prompt fits right now."""
        return self._blocks_for(prompt_tokens) <= self.allocator.free_blocks

    def allocate(self, prompt_tokens: int) -> int:
        """Admit one sequence; allocates exactly the blocks the prompt needs."""
        require_positive(prompt_tokens, "prompt_tokens")
        needed = self._blocks_for(prompt_tokens)
        if needed > self.allocator.free_blocks:
            raise OutOfBlocks(
                f"need {needed} blocks, only "
                f"{self.allocator.free_blocks} free")
        table = [self.allocator.allocate() for _ in range(needed)]
        seq_id = self._next_id
        self._next_id += 1
        self._sequences[seq_id] = _PagedSequence(prompt_tokens, table)
        return seq_id

    def append_token(self, seq_id: int) -> None:
        """Grow one sequence by a token, taking a new block on boundaries."""
        seq = self._sequences[seq_id]
        if seq.tokens % self.block_tokens == 0:
            seq.block_table.append(self.allocator.allocate())
        seq.tokens += 1

    def release(self, seq_id: int) -> None:
        """Free all of a finished sequence's blocks."""
        seq = self._sequences.pop(seq_id)
        for block_id in seq.block_table:
            self.allocator.free(block_id)

    def seq_len(self, seq_id: int) -> int:
        """Cached tokens for one sequence."""
        return self._sequences[seq_id].tokens

    @property
    def num_sequences(self) -> int:
        """Live sequences."""
        return len(self._sequences)

    @property
    def cached_tokens(self) -> int:
        """Actual tokens cached across sequences."""
        return sum(seq.tokens for seq in self._sequences.values())

    @property
    def allocated_bytes(self) -> float:
        """Bytes reserved by allocated blocks (>= useful bytes)."""
        return (self.allocator.used_blocks * self.block_tokens
                * self.bytes_per_token)

    @property
    def utilization(self) -> float:
        """Useful bytes over allocated bytes (1 - internal fragmentation)."""
        if self.allocator.used_blocks == 0:
            return 1.0
        return (self.cached_tokens * self.bytes_per_token
                / self.allocated_bytes)


class ReservedKVCacheManager:
    """Naive baseline: reserve max-length contiguous KV per sequence.

    Args:
        model: Model whose K/V geometry sizes entries.
        capacity_bytes: Total KV budget.
        max_seq_len: Reservation length per admitted sequence.
        dtype: KV storage dtype.
    """

    def __init__(self, model: ModelConfig, capacity_bytes: float,
                 max_seq_len: int, dtype: DType = DType.BF16):
        require_positive(capacity_bytes, "capacity_bytes")
        require_positive(max_seq_len, "max_seq_len")
        self.model = model
        self.max_seq_len = max_seq_len
        self.bytes_per_token = kv_cache_bytes_per_token(model, dtype)
        self.reservation_bytes = self.bytes_per_token * max_seq_len
        self.capacity_bytes = capacity_bytes
        self._sequences: Dict[int, int] = {}  # id -> actual tokens
        self._next_id = 0

    @property
    def max_sequences(self) -> int:
        """Hard admission cap implied by the reservation size."""
        return int(self.capacity_bytes // self.reservation_bytes)

    def can_admit(self, prompt_tokens: int) -> bool:
        """Whether one more max-length reservation fits."""
        if prompt_tokens > self.max_seq_len:
            return False
        return len(self._sequences) < self.max_sequences

    def allocate(self, prompt_tokens: int) -> int:
        """Admit one sequence, reserving the full max length."""
        require_positive(prompt_tokens, "prompt_tokens")
        if not self.can_admit(prompt_tokens):
            raise OutOfBlocks(
                f"cannot admit: {len(self._sequences)} of "
                f"{self.max_sequences} reservations used")
        seq_id = self._next_id
        self._next_id += 1
        self._sequences[seq_id] = prompt_tokens
        return seq_id

    def append_token(self, seq_id: int) -> None:
        """Grow one sequence (within its reservation)."""
        if self._sequences[seq_id] >= self.max_seq_len:
            raise OutOfBlocks(f"sequence {seq_id} hit its reservation")
        self._sequences[seq_id] += 1

    def release(self, seq_id: int) -> None:
        """Free a finished sequence's reservation."""
        del self._sequences[seq_id]

    @property
    def num_sequences(self) -> int:
        """Live sequences."""
        return len(self._sequences)

    @property
    def cached_tokens(self) -> int:
        """Actual tokens cached."""
        return sum(self._sequences.values())

    @property
    def allocated_bytes(self) -> float:
        """Reserved bytes (max-length per live sequence)."""
        return len(self._sequences) * self.reservation_bytes

    @property
    def utilization(self) -> float:
        """Useful bytes over reserved bytes."""
        if not self._sequences:
            return 1.0
        return (self.cached_tokens * self.bytes_per_token
                / self.allocated_bytes)


def max_admissible_sequences(manager, prompt_tokens: int,
                             limit: int = 10_000) -> int:
    """Admit identical sequences until the manager refuses; returns count."""
    admitted = 0
    while admitted < limit and manager.can_admit(prompt_tokens):
        manager.allocate(prompt_tokens)
        admitted += 1
    return admitted
