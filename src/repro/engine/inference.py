"""Inference simulation: prefill + autoregressive decode on one platform.

:class:`InferenceSimulator` is the library's main entry point for the
non-offloaded case (both CPUs, and GPUs whose memory holds the model).
It derives the platform's effective bandwidth and compute scale from the
requested NUMA/core configuration, builds the operator graphs, prices them
with the executor, and reports paper-style metrics.
"""

import dataclasses
from typing import Optional

from repro.engine.backend import BaselineBackend, ExecutionBackend
from repro.engine.executor import OperatorExecutor
from repro.engine.kvcache import KVCacheManager
from repro.engine.request import InferenceRequest
from repro.engine.results import (
    InferenceResult,
    PhaseStats,
    merge_phase_stats,
    phase_stats_from_timings,
)
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.memory import weight_bytes
from repro.numa.model import NumaCalibration, NumaModel, DEFAULT_NUMA_CALIBRATION
from repro.numa.modes import NumaConfig, QUAD_FLAT
from repro.scaling.cores import (
    CoreScalingModel,
    DEFAULT_SCALING_CALIBRATION,
    ScalingCalibration,
)
from repro.trace.spans import ENGINE_TRACK
from repro.trace.tracer import NOOP_TRACER, Tracer


class MemoryCapacityError(RuntimeError):
    """Raised when a model + KV cache cannot fit the platform's memory.

    GPU callers should fall back to :mod:`repro.offload`; CPU callers hit
    this only for models beyond even CPU capacity (e.g. OPT-175B in BF16 on
    one socket).
    """


@dataclasses.dataclass(frozen=True)
class EngineConfig:
    """Execution configuration for a simulation run.

    Attributes:
        cores: CPU cores to use; ``None`` = one full socket (the paper's
            tuned setting, 48 on SPR / 32 on ICL).
        numa: CPU NUMA configuration; ``None`` = quad_flat (the paper's
            best, Key Finding #2).
        numa_aware: Software performs NUMA-aware placement (Section VI).
        numa_calibration / scaling_calibration: Model constants.
    """

    cores: Optional[int] = None
    numa: Optional[NumaConfig] = None
    numa_aware: bool = False
    numa_calibration: NumaCalibration = DEFAULT_NUMA_CALIBRATION
    scaling_calibration: ScalingCalibration = DEFAULT_SCALING_CALIBRATION


DEFAULT_ENGINE_CONFIG = EngineConfig()


class InferenceSimulator:
    """Simulates LLM inference on one platform.

    Args:
        platform: Target platform (CPU or GPU).
        config: Execution configuration (NUMA/cores; ignored for GPUs).
        backend: Execution backend (quantized / tensor-parallel / ...);
            ``None`` means plain dense execution at each request's dtype —
            the historical behavior, bit-for-bit.
    """

    def __init__(self, platform: Platform,
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG,
                 backend: Optional[ExecutionBackend] = None):
        self.platform = platform
        self.config = config
        self.backend = backend
        if platform.is_cpu:
            topo = platform.topology
            self._cores = config.cores or topo.cores_per_socket
            self._numa = config.numa or QUAD_FLAT
            self._scaling = CoreScalingModel(
                platform, self._cores, config.scaling_calibration)
            self._numa_model = NumaModel(
                platform, self._numa, config.numa_calibration,
                numa_aware=config.numa_aware)
        else:
            self._cores = None
            self._numa = None
            self._scaling = None
            self._numa_model = None

    @property
    def config_label(self) -> str:
        """Human-readable configuration tag for results."""
        if self.platform.is_cpu:
            return f"{self._numa.label}/{self._cores}c"
        return "gpu"

    # -- capacity ----------------------------------------------------------

    def memory_capacity(self) -> float:
        """Usable memory bytes under the current configuration.

        A backend carrying its own memory-system placement
        (:class:`~repro.engine.backend.NumaBackend`, possibly wrapped)
        overrides the engine-config derivation; socket-spanning still
        multiplies on top, exactly as for the engine-config path.
        """
        if self.backend is not None:
            override = self.backend.memory_capacity_bytes(self.platform)
            if override is not None:
                if self.platform.is_cpu and self._scaling.spans_sockets:
                    override *= 2
                return override
        if self.platform.is_cpu:
            capacity = self._numa_model.capacity_bytes
            if self._scaling.spans_sockets:
                capacity *= 2
            return capacity
        return self.platform.memory_capacity

    def _backend_for(self, request: InferenceRequest) -> ExecutionBackend:
        """Configured backend, or the plain baseline at the request dtype."""
        if self.backend is not None:
            return self.backend
        return BaselineBackend(request.dtype)

    def fits(self, model: ModelConfig, request: InferenceRequest) -> bool:
        """Whether the request's peak footprint fits this configuration."""
        backend = self._backend_for(request)
        footprint = backend.footprint_bytes(model, request)
        return footprint <= self.memory_capacity() * backend.capacity_scale

    # -- bandwidth / compute derivation -------------------------------------

    def effective_bandwidth(self, footprint_bytes: float) -> float:
        """Sustained kernel bandwidth for this configuration, bytes/s.

        A backend with its own NUMA placement overrides the
        engine-config NUMA model; the core-scaling bandwidth factor
        still applies on top (CPUs), so backend-driven and
        engine-config-driven derivations stay term-for-term identical.
        """
        if self.backend is not None:
            override = self.backend.tier_bandwidth(self.platform,
                                                   footprint_bytes)
            if override is not None:
                if self.platform.is_cpu:
                    return override * self._scaling.bandwidth_factor
                return override
        if self.platform.is_cpu:
            numa_bw = self._numa_model.effective_bandwidth(footprint_bytes)
            return numa_bw * self._scaling.bandwidth_factor
        return (self.platform.peak_memory_bandwidth
                * self.platform.stream_efficiency)

    def compute_scale(self) -> float:
        """Multiplier on the platform's reference peak FLOPS."""
        if self.platform.is_cpu:
            return self._scaling.compute_factor
        return 1.0

    def _executor(self, model: ModelConfig, request: InferenceRequest,
                  footprint: Optional[float] = None) -> OperatorExecutor:
        backend = self._backend_for(request)
        if footprint is None:
            footprint = backend.footprint_bytes(model, request)
        return OperatorExecutor(
            self.platform, backend.compute_dtype,
            bandwidth=self.effective_bandwidth(footprint),
            compute_scale=self.compute_scale(),
            backend=backend)

    # -- simulation ----------------------------------------------------------

    def run(self, model: ModelConfig, request: InferenceRequest,
            exact: bool = False,
            tracer: Tracer = NOOP_TRACER) -> InferenceResult:
        """Simulate the full request; raises MemoryCapacityError if too big.

        By default the decode phase is priced analytically with
        :meth:`OperatorExecutor.time_decode_range` — per-op decode time is
        piecewise affine in ``kv_len``, so the whole phase sums in
        O(#ops + #breakpoints) instead of O(steps x ops x engines).
        ``exact=True`` keeps the original per-step loop; both agree to
        within floating-point noise (≤1e-9 relative, enforced by tests).

        A recording *tracer* receives phase spans on the ``engine`` track
        (t=0 at prefill start): one ``prefill`` span, one ``decode`` span
        with compute/memory busy attribution, and — under ``exact=True``
        only, where per-step times exist — one ``decode[i]`` span per
        token.
        """
        backend = self._backend_for(request)
        footprint = backend.footprint_bytes(model, request)
        capacity = self.memory_capacity() * backend.capacity_scale
        if footprint > capacity:
            raise MemoryCapacityError(
                f"{model.name} needs {footprint / 1e9:.1f} GB but "
                f"{self.platform.name} ({self.config_label}) has "
                f"{capacity / 1e9:.1f} GB; use the offloading "
                f"engine for over-capacity GPU runs")

        executor = self._executor(model, request, footprint)
        kv = KVCacheManager(model, capacity_bytes=None, dtype=request.dtype)
        seq_ids = kv.allocate_batch(request.batch_size, request.input_len)

        prefill_timings = executor.time_prefill_ops(
            model, request.batch_size, request.input_len)
        prefill = phase_stats_from_timings("prefill", prefill_timings)
        prefill_comm = executor.prefill_comm_s(
            model, request.batch_size, request.input_len)
        if prefill_comm:
            # Communication (TP allreduce) is wall time outside the
            # roofline legs.
            prefill = dataclasses.replace(
                prefill, time_s=prefill.time_s + prefill_comm)

        steps = request.decode_steps
        decode_comm = executor.decode_comm_s(model, request.batch_size)
        if steps == 0:
            decode = phase_stats_from_timings("decode", [])
        elif exact:
            decode_phases = []
            step_clock = prefill.time_s
            for step in range(steps):
                kv_len = request.input_len + step
                step_timings = executor.time_ops(
                    executor.backend.decode_ops(model, request.batch_size,
                                                kv_len))
                step_stats = phase_stats_from_timings(f"decode[{step}]",
                                                      step_timings)
                if decode_comm:
                    step_stats = dataclasses.replace(
                        step_stats, time_s=step_stats.time_s + decode_comm)
                decode_phases.append(step_stats)
                if tracer.enabled:
                    tracer.span(ENGINE_TRACK, f"decode[{step}]", step_clock,
                                step_clock + step_stats.time_s,
                                category="engine",
                                args={"kv_len": kv_len,
                                      "batch_size": request.batch_size})
                step_clock += step_stats.time_s
                kv.append_tokens(seq_ids, 1)
            decode = merge_phase_stats("decode", decode_phases)
        else:
            rng = executor.time_decode_range(
                model, request.batch_size, request.input_len,
                request.input_len + steps)
            decode = PhaseStats(
                name="decode",
                time_s=rng.time_s,
                flops=rng.flops,
                weight_bytes=rng.weight_bytes,
                activation_bytes=rng.activation_bytes,
                kv_bytes=rng.kv_read_bytes + rng.kv_write_bytes,
                compute_busy_s=rng.compute_s,
                memory_busy_s=rng.memory_s,
                op_times=dict(rng.op_times),
            )
            kv.append_tokens(seq_ids, steps)

        if tracer.enabled:
            tracer.span(ENGINE_TRACK, "prefill", 0.0, prefill.time_s,
                        category="engine",
                        args={"batch_size": request.batch_size,
                              "input_len": request.input_len,
                              "compute_busy_s": prefill.compute_busy_s,
                              "memory_busy_s": prefill.memory_busy_s})
            tracer.span(ENGINE_TRACK, "decode", prefill.time_s,
                        prefill.time_s + decode.time_s, category="engine",
                        args={"batch_size": request.batch_size,
                              "steps": steps,
                              "compute_busy_s": decode.compute_busy_s,
                              "memory_busy_s": decode.memory_busy_s})

        return InferenceResult(
            model_name=model.name,
            platform_name=self.platform.name,
            request=request,
            prefill=prefill,
            decode=decode,
            config_label=self.config_label,
        )

    def weight_footprint(self, model: ModelConfig,
                         request: InferenceRequest) -> float:
        """Resident model weight bytes under the active backend."""
        if self.backend is not None:
            return self.backend.weight_bytes(model)
        return weight_bytes(model, request.dtype)


def simulate(platform: Platform, model: ModelConfig,
             request: InferenceRequest = InferenceRequest(),
             config: EngineConfig = DEFAULT_ENGINE_CONFIG) -> InferenceResult:
    """One-call convenience wrapper: simulate *model* x *platform*."""
    return InferenceSimulator(platform, config).run(model, request)
