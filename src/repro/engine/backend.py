"""Execution backends: one abstraction for every engine variant.

Historically each engine variant (weight-only quantization, tensor
parallelism, speculative decoding, prefix caching) lived in its own
wrapper simulator that could only run single batch-to-completion
requests. What actually differs between the variants is small and
well-defined — and it is exactly what :class:`ExecutionBackend` owns:

* **op-graph construction** — the prefill / decode operator lists,
  including any rewrite (quantized weight streams, TP sharding,
  speculative draft+verify cycles, prefix-KV reuse);
* **compute dtype** — what the GEMM engines execute in (INT8 dispatch
  for full-INT8 quantization);
* **footprint accounting** — resident weight/KV/activation bytes, which
  feed capacity checks and NUMA bandwidth derivation;
* **post-pricing adjustment** — per-op timing rewrites that ride the
  roofline result (dequantization overhead on weight GEMMs);
* **communication** — per-pass constant costs outside the op graph
  (TP allreduce), charged to wall time but not the compute/memory legs;
* **signature** — a stable hashable key: two backends with equal
  signatures price identically, so shared cost tables
  (:mod:`repro.engine.stepcost`) key on it.

Backends are frozen dataclasses: hashable (so rewritten op graphs are
memoized per backend instance) and comparable (so equal configurations
share caches). Every execution layer threads them through — the
:class:`~repro.engine.executor.OperatorExecutor` closed-form decode
pricing, :class:`~repro.engine.stepcost.DecodeCostTable`,
:class:`~repro.engine.inference.InferenceSimulator`, the batching
policies, :class:`~repro.cluster.node.ReplicaNode` fast-forward, and
the cluster — which is what lets a fleet mix replicas running different
backends while routers compare costs from the same backend-keyed
tables. See ``docs/backends.md``.
"""

import dataclasses
import difflib
import functools
from typing import Optional, Tuple

from repro.hardware.datatypes import DType, parse_dtype
from repro.hardware.interconnect import Interconnect, upi_link
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.layers import Op, OpKind
from repro.models.memory import (
    inference_footprint_bytes,
    kv_cache_bytes,
    peak_activation_bytes,
    weight_bytes,
)
from repro.models.opgraph import _decode_step_ops_cached, _prefill_ops_cached
from repro.numa.model import (
    DEFAULT_NUMA_CALIBRATION,
    NumaCalibration,
    NumaModel,
)
from repro.numa.modes import NumaConfig, QUAD_FLAT, get_config
from repro.quant.weightonly import (
    QuantConfig,
    QuantScheme,
    quantize_ops,
    quantized_weight_bytes,
)
from repro.utils.validation import require_positive


# Rewritten op graphs are memoized per (backend, model, shape) — backends
# are frozen dataclasses, so equal configurations share entries. Wired
# into repro.experiments.clear_caches alongside the base opgraph caches.

@functools.lru_cache(maxsize=4096)
def _cached_prefill_ops(backend: "ExecutionBackend", model: ModelConfig,
                        batch_size: int, input_len: int) -> Tuple[Op, ...]:
    return tuple(backend._build_prefill_ops(model, batch_size, input_len))


@functools.lru_cache(maxsize=8192)
def _cached_decode_ops(backend: "ExecutionBackend", model: ModelConfig,
                       batch_size: int, kv_len: int) -> Tuple[Op, ...]:
    return tuple(backend._build_decode_ops(model, batch_size, kv_len))


def clear_backend_op_caches() -> None:
    """Drop memoized backend-rewritten op graphs and hybrid GPU legs."""
    _cached_prefill_ops.cache_clear()
    _cached_decode_ops.cache_clear()
    _HYBRID_EXECUTORS.clear()
    _hybrid_prefill_leg.cache_clear()


def scale_op(op: Op, factor: float) -> Op:
    """Scale an op so its priced time is *factor* x the original.

    Multiplies everything the roofline composes linearly — instance
    count, all byte traffic, extra FLOPs, and kernel launches — while
    leaving the per-instance GEMM shape (and hence the efficiency
    lookup) untouched, so ``time(scale_op(op, f)) == f * time(op)`` up
    to floating-point rounding. Speculative decoding uses this to fold
    "gamma draft steps + one verify pass per E[tokens] generated" into
    a single per-token op graph.
    """
    return dataclasses.replace(
        op,
        instances=op.instances * factor,
        weight_bytes=op.weight_bytes * factor,
        activation_bytes=op.activation_bytes * factor,
        kv_read_bytes=op.kv_read_bytes * factor,
        kv_write_bytes=op.kv_write_bytes * factor,
        extra_flops=op.extra_flops * factor,
        kernel_launches=op.kernel_launches * factor,
    )


def shard_op(op: Op, degree: int) -> Op:
    """Shard one operator's weights/compute across a TP group of *degree*.

    Weight GEMMs split along the output dimension: each shard does 1/S
    of the FLOPs and streams 1/S of the weights. Attention shards by
    heads. Activation traffic for the sharded portion scales likewise;
    the replicated hidden-state reads are a second-order term folded in
    with the same factor.
    """
    return dataclasses.replace(
        op,
        instances=op.instances,
        m=op.m, n=max(1, op.n // degree) if op.is_gemm else op.n, k=op.k,
        weight_bytes=op.weight_bytes / degree,
        activation_bytes=op.activation_bytes / degree,
        kv_read_bytes=op.kv_read_bytes / degree,
        kv_write_bytes=op.kv_write_bytes / degree,
        extra_flops=op.extra_flops / degree,
    )


@dataclasses.dataclass(frozen=True)
class TPConfig:
    """Tensor-parallel configuration.

    Attributes:
        degree: Shards (sockets). The SPR server supports 2.
        allreduce_efficiency: Achieved fraction of UPI bandwidth for the
            ring-allreduce pattern (latency-bound chunks, bidirectional).
    """

    degree: int = 2
    allreduce_efficiency: float = 0.7

    def __post_init__(self) -> None:
        require_positive(self.degree, "degree")
        if not 0 < self.allreduce_efficiency <= 1:
            raise ValueError("allreduce_efficiency must be in (0, 1]")


@dataclasses.dataclass(frozen=True)
class SpecDecodeConfig:
    """Speculative-decoding parameters.

    Attributes:
        gamma: Draft tokens proposed per cycle.
        acceptance_rate: Per-token probability the target accepts a draft
            token (depends on draft/target agreement; 0.7-0.9 is typical
            for a well-matched draft).
    """

    gamma: int = 4
    acceptance_rate: float = 0.8

    def __post_init__(self) -> None:
        require_positive(self.gamma, "gamma")
        if not 0 < self.acceptance_rate < 1:
            raise ValueError(
                f"acceptance_rate must be in (0, 1), got {self.acceptance_rate}")

    @property
    def expected_tokens_per_cycle(self) -> float:
        """E[accepted tokens + 1 bonus token] per verification cycle."""
        alpha, gamma = self.acceptance_rate, self.gamma
        return (1.0 - alpha ** (gamma + 1)) / (1.0 - alpha)


class ExecutionBackend:
    """Base execution backend: plain BF16-style pass-through semantics.

    Subclasses override the ``_build_*`` hooks (memoized through the
    module caches) plus whichever of dtype/footprint/adjust/comm hooks
    their technique changes. All subclasses must be frozen dataclasses —
    hashability is what keys the op-graph memo and, through
    :attr:`signature`, the shared cost tables.
    """

    #: Whether :meth:`adjust_timing` is non-identity. The executor skips
    #: the adjustment call entirely when this is False.
    adjusts: bool = False

    # -- identification -----------------------------------------------------

    @property
    def signature(self) -> tuple:
        """Hashable pricing identity: equal signature => equal timings."""
        raise NotImplementedError

    @property
    def label(self) -> str:
        """Short human-readable tag ("bf16", "int8-tp2", ...)."""
        raise NotImplementedError

    # -- dtype --------------------------------------------------------------

    @property
    def compute_dtype(self) -> DType:
        """Dtype the GEMM engines execute in (selects engine peaks)."""
        return self.dtype  # type: ignore[attr-defined]

    # -- op-graph construction ----------------------------------------------

    def prefill_ops(self, model: ModelConfig, batch_size: int,
                    input_len: int) -> Tuple[Op, ...]:
        """Memoized operator list for one prefill pass."""
        return _cached_prefill_ops(self, model, batch_size, input_len)

    def decode_ops(self, model: ModelConfig, batch_size: int,
                   kv_len: int) -> Tuple[Op, ...]:
        """Memoized operator list for one fused decode iteration."""
        return _cached_decode_ops(self, model, batch_size, kv_len)

    def _build_prefill_ops(self, model: ModelConfig, batch_size: int,
                           input_len: int) -> Tuple[Op, ...]:
        raise NotImplementedError

    def _build_decode_ops(self, model: ModelConfig, batch_size: int,
                          kv_len: int) -> Tuple[Op, ...]:
        raise NotImplementedError

    # -- footprint accounting -----------------------------------------------

    def weight_bytes(self, model: ModelConfig) -> float:
        """Resident model-weight bytes under this backend."""
        return weight_bytes(model, self.dtype)  # type: ignore[attr-defined]

    def footprint_bytes(self, model: ModelConfig, request) -> float:
        """Peak resident bytes for *request* (weights + KV + activations)."""
        dtype = self.dtype  # type: ignore[attr-defined]
        return inference_footprint_bytes(
            model, request.max_seq_len, request.batch_size, dtype)

    @property
    def capacity_scale(self) -> float:
        """Memory-capacity multiplier (TP spans multiple sockets)."""
        return 1.0

    # -- memory-system hooks ------------------------------------------------

    def tier_bandwidth(self, platform: Platform,
                       footprint_bytes: float) -> Optional[float]:
        """Sustained kernel bandwidth override, bytes/s (pre core-scaling).

        ``None`` (the default) keeps the simulator's own derivation —
        the engine-config NUMA model on CPUs, peak x stream efficiency
        on GPUs. :class:`NumaBackend` overrides this to price its own
        HBM/DDR placement; wrappers forward to their inner backend. On
        CPUs the simulator still applies the core-scaling bandwidth
        factor on top, exactly as for the engine-config path.
        """
        return None

    def memory_capacity_bytes(self, platform: Platform) -> Optional[float]:
        """Usable memory-capacity override, bytes (pre socket-spanning).

        ``None`` keeps the simulator's engine-config derivation.
        :class:`NumaBackend` overrides this with its configuration's
        software-visible capacity (HBM-only < cache < flat).
        """
        return None

    # -- pricing hooks ------------------------------------------------------

    def adjust_timing(self, timing):
        """Post-pricing rewrite of one winning OpTiming (identity here).

        Applied by the executor *after* engine selection, matching the
        select-uninflated-then-inflate order of the original quantized
        simulator. Must only touch ``compute_s``/``time_s`` — the
        memory leg stays the roofline's, so the closed-form decode
        analysis keeps its affine structure.
        """
        return timing

    def prefill_comm_s(self, model: ModelConfig, batch_size: int,
                       input_len: int) -> float:
        """Constant per-prefill-pass communication time (seconds)."""
        return 0.0

    def decode_comm_s(self, model: ModelConfig, batch_size: int) -> float:
        """Constant per-decode-iteration communication time (seconds)."""
        return 0.0


@dataclasses.dataclass(frozen=True)
class BaselineBackend(ExecutionBackend):
    """Plain dense execution at one dtype (the paper's BF16 baseline)."""

    dtype: DType = DType.BF16

    # The base op graphs are already memoized in repro.models.opgraph;
    # skip the second cache layer entirely.
    def prefill_ops(self, model: ModelConfig, batch_size: int,
                    input_len: int) -> Tuple[Op, ...]:
        return _prefill_ops_cached(model, batch_size, input_len,
                                   self.dtype, False)

    def decode_ops(self, model: ModelConfig, batch_size: int,
                   kv_len: int) -> Tuple[Op, ...]:
        return _decode_step_ops_cached(model, batch_size, kv_len, self.dtype)

    @property
    def signature(self) -> tuple:
        return ("baseline", self.dtype)

    @property
    def label(self) -> str:
        return self.dtype.label


@dataclasses.dataclass(frozen=True)
class QuantizedBackend(ExecutionBackend):
    """Weight-only / full-INT8 quantized execution.

    Applies the :func:`~repro.quant.weightonly.quantize_ops` rewrite to
    the base graphs, prices at the scheme's compute dtype, sizes the
    footprint with quantized weights and KV, and inflates the compute
    leg of weight GEMMs by the dequantization overhead (weight-only
    schemes) after engine selection.
    """

    quant: QuantConfig = QuantConfig()
    dtype: DType = DType.BF16  # activation dtype of the base graph

    @property
    def compute_dtype(self) -> DType:
        return self.quant.compute_dtype

    @property
    def adjusts(self) -> bool:  # type: ignore[override]
        weight_only = self.quant.scheme in (QuantScheme.WEIGHT_ONLY_INT8,
                                            QuantScheme.WEIGHT_ONLY_INT4)
        return bool(weight_only and self.quant.dequant_overhead)

    def adjust_timing(self, timing):
        op = timing.op
        if op.weight_bytes > 0 and op.is_gemm:
            # Dequantization rides the GEMM inner loop: inflate the
            # compute leg of weight GEMMs by the configured fraction.
            extra = timing.compute_s * self.quant.dequant_overhead
            return dataclasses.replace(
                timing,
                compute_s=timing.compute_s + extra,
                time_s=max(timing.compute_s + extra,
                           timing.memory_s) + timing.overhead_s)
        return timing

    def _build_prefill_ops(self, model: ModelConfig, batch_size: int,
                           input_len: int) -> Tuple[Op, ...]:
        base = _prefill_ops_cached(model, batch_size, input_len,
                                   self.dtype, False)
        return tuple(quantize_ops(base, self.quant))

    def _build_decode_ops(self, model: ModelConfig, batch_size: int,
                          kv_len: int) -> Tuple[Op, ...]:
        base = _decode_step_ops_cached(model, batch_size, kv_len, self.dtype)
        return tuple(quantize_ops(base, self.quant))

    def weight_bytes(self, model: ModelConfig) -> float:
        return quantized_weight_bytes(model, self.quant)

    def footprint_bytes(self, model: ModelConfig, request) -> float:
        return (quantized_weight_bytes(model, self.quant)
                + kv_cache_bytes(model, request.max_seq_len,
                                 request.batch_size, self.dtype)
                * self.quant.kv_bytes_ratio()
                + peak_activation_bytes(model, request.max_seq_len,
                                        request.batch_size, self.dtype))

    @property
    def signature(self) -> tuple:
        return ("quant", self.quant, self.dtype)

    @property
    def label(self) -> str:
        return {
            QuantScheme.NONE: self.dtype.label,
            QuantScheme.WEIGHT_ONLY_INT8: "int8",
            QuantScheme.WEIGHT_ONLY_INT4: "int4",
            QuantScheme.FULL_INT8: "w8a8",
        }[self.quant.scheme]


@dataclasses.dataclass(frozen=True)
class TensorParallelBackend(ExecutionBackend):
    """Tensor-parallel execution across CPU sockets.

    Shards every operator of the *inner* backend's graph (so TP
    composes with quantization: quantize first, then shard the shrunken
    weight stream) and charges the ring-allreduce on the hidden state —
    twice per layer — as per-pass communication time. Bandwidth derives
    from the full unsharded footprint, matching the original
    :class:`~repro.parallel.tensor_parallel.TensorParallelSimulator`;
    capacity scales by the degree (the shards span that many sockets).
    """

    tp: TPConfig = TPConfig()
    interconnect: Interconnect = dataclasses.field(default_factory=upi_link)
    inner: Optional[ExecutionBackend] = None
    dtype: DType = DType.BF16

    def _resolved_inner(self) -> ExecutionBackend:
        return self.inner if self.inner is not None \
            else BaselineBackend(self.dtype)

    @property
    def compute_dtype(self) -> DType:
        return self._resolved_inner().compute_dtype

    @property
    def adjusts(self) -> bool:  # type: ignore[override]
        return self._resolved_inner().adjusts

    def adjust_timing(self, timing):
        return self._resolved_inner().adjust_timing(timing)

    def _build_prefill_ops(self, model: ModelConfig, batch_size: int,
                           input_len: int) -> Tuple[Op, ...]:
        inner = self._resolved_inner()
        return tuple(shard_op(op, self.tp.degree)
                     for op in inner.prefill_ops(model, batch_size,
                                                 input_len))

    def _build_decode_ops(self, model: ModelConfig, batch_size: int,
                          kv_len: int) -> Tuple[Op, ...]:
        inner = self._resolved_inner()
        return tuple(shard_op(op, self.tp.degree)
                     for op in inner.decode_ops(model, batch_size, kv_len))

    def weight_bytes(self, model: ModelConfig) -> float:
        return self._resolved_inner().weight_bytes(model)

    def footprint_bytes(self, model: ModelConfig, request) -> float:
        return self._resolved_inner().footprint_bytes(model, request)

    @property
    def capacity_scale(self) -> float:
        return float(self.tp.degree)

    def allreduce_s(self, model: ModelConfig, rows: int,
                    dtype_bytes: int = 2) -> float:
        """Two hidden-state allreduces per layer (ring: 2(S-1)/S volume)."""
        s = self.tp.degree
        if s == 1:
            return 0.0
        payload = 2 * model.n_layers * rows * model.d_model * dtype_bytes
        ring_volume = payload * 2 * (s - 1) / s
        bandwidth = (self.interconnect.effective_bw
                     * self.tp.allreduce_efficiency)
        latency = 2 * model.n_layers * self.interconnect.latency_s
        return ring_volume / bandwidth + latency

    def prefill_comm_s(self, model: ModelConfig, batch_size: int,
                       input_len: int) -> float:
        inner = self._resolved_inner().prefill_comm_s(model, batch_size,
                                                      input_len)
        return self.allreduce_s(model, batch_size * input_len) + inner

    def decode_comm_s(self, model: ModelConfig, batch_size: int) -> float:
        inner = self._resolved_inner().decode_comm_s(model, batch_size)
        return self.allreduce_s(model, batch_size) + inner

    def tier_bandwidth(self, platform: Platform,
                       footprint_bytes: float) -> Optional[float]:
        return self._resolved_inner().tier_bandwidth(platform,
                                                     footprint_bytes)

    def memory_capacity_bytes(self, platform: Platform) -> Optional[float]:
        return self._resolved_inner().memory_capacity_bytes(platform)

    @property
    def signature(self) -> tuple:
        return ("tp", self.tp, self.interconnect,
                self._resolved_inner().signature)

    @property
    def label(self) -> str:
        return f"{self._resolved_inner().label}-tp{self.tp.degree}"


@dataclasses.dataclass(frozen=True)
class SpecDecodeBackend(ExecutionBackend):
    """Speculative decoding folded into a per-token decode graph.

    One speculation cycle is ``gamma`` draft-model decode steps plus one
    target verification pass (prefill-shaped over ``gamma + 1``
    positions plus the cached-context KV read) and yields
    ``E[tokens] = (1 - alpha^(gamma+1)) / (1 - alpha)`` tokens. The
    decode graph scales both pieces by ``1/E[tokens]`` via
    :func:`scale_op`, so one "decode iteration" prices to exactly the
    effective per-token cost — which is what lets a speculative replica
    run under the unchanged batching/cluster loops. Prefill is the
    plain target prefill.
    """

    draft: ModelConfig
    spec: SpecDecodeConfig = SpecDecodeConfig()
    dtype: DType = DType.BF16

    def verify_ops(self, model: ModelConfig, batch_size: int,
                   kv_len: int) -> Tuple[Op, ...]:
        """Unscaled target verification pass at *kv_len* cached tokens."""
        ops = list(_prefill_ops_cached(model, batch_size,
                                       self.spec.gamma + 1, self.dtype,
                                       False))
        kv_read = sum(op.kv_read_bytes
                      for op in _decode_step_ops_cached(model, batch_size,
                                                        kv_len, self.dtype))
        # Pure-memory op with zero launches: prices to bytes / bandwidth.
        ops.append(Op(name="verify_kv_read", kind=OpKind.ELEMENTWISE,
                      kv_read_bytes=kv_read, kernel_launches=0))
        return tuple(ops)

    def _build_prefill_ops(self, model: ModelConfig, batch_size: int,
                           input_len: int) -> Tuple[Op, ...]:
        return _prefill_ops_cached(model, batch_size, input_len,
                                   self.dtype, False)

    def _build_decode_ops(self, model: ModelConfig, batch_size: int,
                          kv_len: int) -> Tuple[Op, ...]:
        e_tokens = self.spec.expected_tokens_per_cycle
        draft_scale = self.spec.gamma / e_tokens
        ops = [dataclasses.replace(scale_op(op, draft_scale),
                                   name=f"draft/{op.name}")
               for op in _decode_step_ops_cached(self.draft, batch_size,
                                                 kv_len, self.dtype)]
        ops += [dataclasses.replace(scale_op(op, 1.0 / e_tokens),
                                    name=f"verify/{op.name}")
                for op in self.verify_ops(model, batch_size, kv_len)]
        return tuple(ops)

    def weight_bytes(self, model: ModelConfig) -> float:
        return (weight_bytes(model, self.dtype)
                + weight_bytes(self.draft, self.dtype))

    def footprint_bytes(self, model: ModelConfig, request) -> float:
        # Target working set plus the resident draft weights (draft KV
        # is second-order: the draft shares context length but is tiny).
        return (inference_footprint_bytes(model, request.max_seq_len,
                                          request.batch_size, self.dtype)
                + weight_bytes(self.draft, self.dtype))

    @property
    def signature(self) -> tuple:
        return ("specdecode", self.draft, self.spec, self.dtype)

    @property
    def label(self) -> str:
        return f"spec-{self.draft.name}-g{self.spec.gamma}"


@dataclasses.dataclass(frozen=True)
class PrefixCacheBackend(ExecutionBackend):
    """Shared-prefix (system-prompt) caching on the prefill path.

    A prompt of ``input_len`` tokens with the leading ``prefix_len``
    cached pays prefill over the unique suffix only, plus one read of
    the cached prefix's K/V per layer (the suffix still attends to it).
    Decode is unchanged. Prompts no longer than the prefix keep one
    uncached token so the pass stays well-formed.
    """

    prefix_len: int = 512
    dtype: DType = DType.BF16

    def __post_init__(self) -> None:
        require_positive(self.prefix_len, "prefix_len")

    def _build_prefill_ops(self, model: ModelConfig, batch_size: int,
                           input_len: int) -> Tuple[Op, ...]:
        prefix = min(self.prefix_len, input_len - 1)
        unique = input_len - prefix
        ops = list(_prefill_ops_cached(model, batch_size, unique,
                                       self.dtype, False))
        if prefix > 0:
            ops.append(Op(
                name="prefix_kv_read", kind=OpKind.ELEMENTWISE,
                kv_read_bytes=kv_cache_bytes(model, prefix, batch_size,
                                             self.dtype),
                kernel_launches=0))
        return tuple(ops)

    def _build_decode_ops(self, model: ModelConfig, batch_size: int,
                          kv_len: int) -> Tuple[Op, ...]:
        return _decode_step_ops_cached(model, batch_size, kv_len, self.dtype)

    @property
    def signature(self) -> tuple:
        return ("prefix", self.prefix_len, self.dtype)

    @property
    def label(self) -> str:
        return f"prefix{self.prefix_len}"


@dataclasses.dataclass(frozen=True)
class NumaBackend(ExecutionBackend):
    """NUMA placement as a composable backend (Section VI, optimization 1).

    Wraps an *inner* backend (plain dense by default; quantized when
    composed) and reprices its bandwidth-bound ops through
    :class:`~repro.numa.model.NumaModel`: the configured memory x
    clustering mode, optional NUMA-aware allocation, and — when
    *hot_fraction* is set — hot/cold weight placement across the
    HBM/DDR tiers (*hot_fraction* of memory traffic pinned to the fast
    tier, the rest spilling to DDR). Op graphs, dtype, footprint, and
    per-pass communication all delegate to the inner backend, so a
    ``NumaBackend`` replica prices identically to the legacy
    ``EngineConfig(numa=...)`` path bit-for-bit — that parity is what
    makes the engine-config route a thin adapter.

    The placement enters :attr:`signature`, so two placements on the
    same (platform, model) warm disjoint
    :class:`~repro.engine.stepcost.DecodeCostTable` entries.
    """

    numa: NumaConfig = QUAD_FLAT
    numa_aware: bool = False
    hot_fraction: Optional[float] = None
    calibration: NumaCalibration = DEFAULT_NUMA_CALIBRATION
    inner: Optional[ExecutionBackend] = None
    dtype: DType = DType.BF16

    def __post_init__(self) -> None:
        if self.hot_fraction is not None and \
                not 0 <= self.hot_fraction <= 1:
            raise ValueError(
                f"hot_fraction must be in [0, 1], got {self.hot_fraction}")

    def _resolved_inner(self) -> ExecutionBackend:
        return self.inner if self.inner is not None \
            else BaselineBackend(self.dtype)

    def _numa_model(self, platform: Platform) -> NumaModel:
        return NumaModel(platform, self.numa, self.calibration,
                         numa_aware=self.numa_aware)

    # -- memory system ------------------------------------------------------

    def tier_bandwidth(self, platform: Platform,
                       footprint_bytes: float) -> float:
        model = self._numa_model(platform)
        if self.hot_fraction is not None:
            return model.hot_cold_bandwidth(self.hot_fraction)
        return model.effective_bandwidth(footprint_bytes)

    def memory_capacity_bytes(self, platform: Platform) -> float:
        return self._numa_model(platform).capacity_bytes

    # -- everything else delegates to the inner backend ---------------------

    @property
    def compute_dtype(self) -> DType:
        return self._resolved_inner().compute_dtype

    @property
    def adjusts(self) -> bool:  # type: ignore[override]
        return self._resolved_inner().adjusts

    def adjust_timing(self, timing):
        return self._resolved_inner().adjust_timing(timing)

    def prefill_ops(self, model: ModelConfig, batch_size: int,
                    input_len: int) -> Tuple[Op, ...]:
        return self._resolved_inner().prefill_ops(model, batch_size,
                                                  input_len)

    def decode_ops(self, model: ModelConfig, batch_size: int,
                   kv_len: int) -> Tuple[Op, ...]:
        return self._resolved_inner().decode_ops(model, batch_size, kv_len)

    def weight_bytes(self, model: ModelConfig) -> float:
        return self._resolved_inner().weight_bytes(model)

    def footprint_bytes(self, model: ModelConfig, request) -> float:
        return self._resolved_inner().footprint_bytes(model, request)

    @property
    def capacity_scale(self) -> float:
        return self._resolved_inner().capacity_scale

    def prefill_comm_s(self, model: ModelConfig, batch_size: int,
                       input_len: int) -> float:
        return self._resolved_inner().prefill_comm_s(model, batch_size,
                                                     input_len)

    def decode_comm_s(self, model: ModelConfig, batch_size: int) -> float:
        return self._resolved_inner().decode_comm_s(model, batch_size)

    @property
    def signature(self) -> tuple:
        return ("numa", self.numa, self.numa_aware, self.hot_fraction,
                self.calibration, self._resolved_inner().signature)

    @property
    def label(self) -> str:
        tag = self.numa.label
        if self.numa_aware:
            tag += "-aware"
        if self.hot_fraction is not None:
            tag += f"-hot{self.hot_fraction:g}"
        return f"{self._resolved_inner().label}-{tag}"


# The hybrid backend's GPU-side executor and priced prefill legs are
# pure functions of frozen inputs; memoized here and dropped by
# clear_backend_op_caches (wired into repro.experiments.clear_caches).

_HYBRID_EXECUTORS: dict = {}


def _hybrid_gpu_executor(gpu: Platform, dtype: DType):
    # Keyed by name: Platform carries a tier list and is unhashable.
    key = (gpu.name, dtype)
    executor = _HYBRID_EXECUTORS.get(key)
    if executor is None:
        from repro.engine.executor import OperatorExecutor

        bandwidth = gpu.peak_memory_bandwidth * gpu.stream_efficiency
        executor = OperatorExecutor(gpu, dtype, bandwidth)
        _HYBRID_EXECUTORS[key] = executor
    return executor


@functools.lru_cache(maxsize=4096)
def _hybrid_prefill_leg(backend: "HybridBackend", model: ModelConfig,
                        batch_size: int, input_len: int) -> float:
    from repro.offload.engine import gpu_prefill_leg
    from repro.offload.policy import hybrid_streamed_weight_bytes
    from repro.offload.transfer import transfer_model_for

    executor = _hybrid_gpu_executor(backend.gpu, backend.dtype)
    transfer = transfer_model_for(backend.gpu, backend.calibration)
    streamed = hybrid_streamed_weight_bytes(
        backend.weight_bytes(model), backend.gpu, backend.calibration)
    time_s, _, _ = gpu_prefill_leg(
        executor, transfer, backend.calibration, model, batch_size,
        input_len, backend.dtype, streamed, kv_to_host=True)
    return time_s


@dataclasses.dataclass(frozen=True, eq=False)
class HybridBackend(ExecutionBackend):
    """CPU–GPU hybrid execution: GPU prefill, CPU decode (Section VI, opt. 2).

    Prefill — compute-bound, where the GPU wins — runs on *gpu*: the
    dense prefill graph priced on a GPU executor, non-resident weights
    streamed over PCIe (the offload policy's residency budget), and the
    freshly produced prompt K/V always handed off to host memory, since
    decode runs on the CPU against host-resident KV. The whole GPU leg
    is charged through :meth:`prefill_comm_s` as comm-as-wall-time
    (the backend's prefill op graph is empty), priced by the same
    :func:`repro.offload.engine.gpu_prefill_leg` the offload engine
    uses — so the transfer model and overlap behaviour match
    ``repro.offload`` by construction.

    Decode — bandwidth-bound, where the CPU's HBM competes — delegates
    entirely to the *inner* backend (plain, quantized, or NUMA-placed),
    so hybrid composes under ``TensorParallelBackend`` and over
    ``QuantizedBackend``/``NumaBackend`` like any other wrapper.
    """

    # calibration is an OffloadCalibration; ``None`` resolves to the
    # default lazily (repro.offload imports this module's executor
    # consumers, so the import cannot be at module scope).
    gpu: Platform
    calibration: Optional["OffloadCalibration"] = None
    inner: Optional[ExecutionBackend] = None
    dtype: DType = DType.BF16

    def __post_init__(self) -> None:
        if not self.gpu.is_gpu:
            raise ValueError(
                f"HybridBackend needs a GPU prefill platform, got "
                f"{self.gpu.name}")
        if self.calibration is None:
            from repro.offload.policy import DEFAULT_OFFLOAD_CALIBRATION

            object.__setattr__(self, "calibration",
                               DEFAULT_OFFLOAD_CALIBRATION)

    def _resolved_inner(self) -> ExecutionBackend:
        return self.inner if self.inner is not None \
            else BaselineBackend(self.dtype)

    # -- prefill: the GPU leg, charged as wall time -------------------------

    def _build_prefill_ops(self, model: ModelConfig, batch_size: int,
                           input_len: int) -> Tuple[Op, ...]:
        return ()

    def prefill_comm_s(self, model: ModelConfig, batch_size: int,
                       input_len: int) -> float:
        return _hybrid_prefill_leg(self, model, batch_size, input_len)

    # -- decode: delegates to the CPU-side inner backend --------------------

    def decode_ops(self, model: ModelConfig, batch_size: int,
                   kv_len: int) -> Tuple[Op, ...]:
        return self._resolved_inner().decode_ops(model, batch_size, kv_len)

    def decode_comm_s(self, model: ModelConfig, batch_size: int) -> float:
        return self._resolved_inner().decode_comm_s(model, batch_size)

    @property
    def compute_dtype(self) -> DType:
        return self._resolved_inner().compute_dtype

    @property
    def adjusts(self) -> bool:  # type: ignore[override]
        return self._resolved_inner().adjusts

    def adjust_timing(self, timing):
        return self._resolved_inner().adjust_timing(timing)

    def weight_bytes(self, model: ModelConfig) -> float:
        return self._resolved_inner().weight_bytes(model)

    def footprint_bytes(self, model: ModelConfig, request) -> float:
        # CPU-side working set: the host holds the full weights (source
        # of the PCIe stream), the KV cache, and decode activations.
        return self._resolved_inner().footprint_bytes(model, request)

    @property
    def capacity_scale(self) -> float:
        return self._resolved_inner().capacity_scale

    def tier_bandwidth(self, platform: Platform,
                       footprint_bytes: float) -> Optional[float]:
        return self._resolved_inner().tier_bandwidth(platform,
                                                     footprint_bytes)

    def memory_capacity_bytes(self, platform: Platform) -> Optional[float]:
        return self._resolved_inner().memory_capacity_bytes(platform)

    @property
    def signature(self) -> tuple:
        return ("hybrid", self.gpu.name, self.calibration, self.dtype,
                self._resolved_inner().signature)

    @property
    def label(self) -> str:
        gpu_tag = self.gpu.name.split("-")[0].lower()
        return f"{self._resolved_inner().label}-hyb.{gpu_tag}"

    # Platform carries an (unhashable) memory-tier list, so the
    # dataclass-generated __eq__/__hash__ would fail; identity lives in
    # the signature, which already names the GPU.
    def __eq__(self, other: object) -> bool:
        return (isinstance(other, HybridBackend)
                and self.signature == other.signature)

    def __hash__(self) -> int:
        return hash(self.signature)


#: Spec tokens understood by :func:`parse_backend`, for CLI help text.
BACKEND_SPEC_TOKENS = ("bf16", "fp16", "fp32", "int8", "w8", "int4", "w4",
                       "w8a8", "numa:CONFIG[,aware][,hot=F]", "hybrid:GPU",
                       "tpN")

#: Exact-match vocabulary for did-you-mean suggestions: every literal
#: base token plus the wrapper prefixes and representative examples.
_KNOWN_TOKENS = ("bf16", "fp16", "fp32", "int8", "w8", "int4", "w4",
                 "w8a8", "tp2", "tp4", "numa:quad_flat", "numa:snc_flat",
                 "numa:quad_cache", "numa:snc_cache", "hybrid:a100",
                 "hybrid:h100")


def _spec_error(token: str, spec: str, detail: str = "") -> ValueError:
    """Unknown-token error with a did-you-mean suggestion."""
    hint = ""
    matches = difflib.get_close_matches(token, _KNOWN_TOKENS, n=2,
                                        cutoff=0.5)
    if matches:
        hint = f" (did you mean {' or '.join(repr(m) for m in matches)}?)"
    if detail:
        detail = f": {detail}"
    return ValueError(
        f"unknown backend token {token!r} in spec {spec!r}{detail}{hint}; "
        f"valid tokens: {', '.join(BACKEND_SPEC_TOKENS)}")


def _parse_numa_token(token: str, spec: str) -> "NumaBackend":
    """``numa:<config>[,aware][,hot=<fraction>]`` (wrapper, inner set later)."""
    body = token[len("numa:"):]
    parts = [p for p in body.split(",") if p]
    if not parts:
        raise ValueError(
            f"backend token {token!r} in spec {spec!r} names no NUMA "
            f"config; expected numa:<config> with config one of "
            f"quad_flat, quad_cache, snc_flat, snc_cache, hbm_only_quad")
    try:
        numa = get_config(parts[0])
    except KeyError as error:
        raise _spec_error(token, spec, str(error.args[0])) from error
    aware = False
    hot: Optional[float] = None
    for option in parts[1:]:
        if option == "aware":
            aware = True
        elif option.startswith("hot="):
            value = option[len("hot="):]
            try:
                hot = float(value)
            except ValueError:
                raise ValueError(
                    f"malformed option {option!r} in backend token "
                    f"{token!r}: hot= expects a fraction in [0, 1], got "
                    f"{value!r}") from None
            if not 0 <= hot <= 1:
                raise ValueError(
                    f"malformed option {option!r} in backend token "
                    f"{token!r}: hot= expects a fraction in [0, 1]")
        else:
            raise ValueError(
                f"unknown option {option!r} in backend token {token!r} "
                f"(spec {spec!r}); valid options: aware, hot=<fraction>")
    return NumaBackend(numa=numa, numa_aware=aware, hot_fraction=hot)


def _parse_hybrid_token(token: str, spec: str) -> "HybridBackend":
    """``hybrid:<gpu>`` (wrapper; GPU resolved via the platform registry)."""
    from repro.hardware.registry import get_platform

    body = token[len("hybrid:"):]
    parts = [p for p in body.split(",") if p]
    if not parts:
        raise ValueError(
            f"backend token {token!r} in spec {spec!r} names no GPU; "
            f"expected hybrid:<gpu> (e.g. hybrid:a100)")
    if len(parts) > 1:
        raise ValueError(
            f"unknown option {parts[1]!r} in backend token {token!r} "
            f"(spec {spec!r}); hybrid takes only the GPU name")
    try:
        gpu = get_platform(parts[0])
    except KeyError as error:
        raise _spec_error(token, spec, str(error.args[0])) from error
    if not gpu.is_gpu:
        raise ValueError(
            f"backend token {token!r} in spec {spec!r}: {parts[0]!r} is "
            f"a CPU; hybrid needs a GPU prefill platform (a100, h100)")
    return HybridBackend(gpu=gpu)


def parse_backend(spec: str,
                  interconnect: Optional[Interconnect] = None
                  ) -> ExecutionBackend:
    """Parse a CLI backend spec like ``int8-tp2`` or ``hybrid:a100``.

    Tokens (joined with ``-`` or ``+``): a base — ``bf16`` / ``fp16`` /
    ``fp32`` (plain dense at that dtype), ``int8``/``w8`` (weight-only
    INT8), ``int4``/``w4`` (weight-only INT4), ``w8a8`` (full INT8) —
    plus optional wrappers: ``numa:<config>[,aware][,hot=<fraction>]``
    (NUMA placement: paper config labels like ``snc_flat``, NUMA-aware
    allocation, hot/cold HBM-DDR traffic placement),
    ``hybrid:<gpu>`` (GPU prefill + CPU decode, e.g. ``hybrid:a100``),
    and ``tpN`` for tensor parallelism of degree N. Composition order
    is fixed regardless of token order: quantization innermost, then
    NUMA, then hybrid, then TP — e.g. ``int8-numa:snc_flat,aware-tp2``.
    ``tp2`` alone means BF16 + TP2.

    Unknown tokens raise with a did-you-mean suggestion naming the
    valid vocabulary; malformed ``key=value`` options raise naming the
    offending token.
    """
    tokens = [t for t in spec.lower().replace("+", "-").split("-") if t]
    if not tokens:
        raise ValueError("empty backend spec")
    base: Optional[ExecutionBackend] = None
    numa: Optional[NumaBackend] = None
    hybrid: Optional[HybridBackend] = None
    tp_degree: Optional[int] = None
    for token in tokens:
        if token.startswith("tp") and token[2:].isdigit():
            if tp_degree is not None:
                raise ValueError(f"duplicate tp token in {spec!r}")
            tp_degree = int(token[2:])
            continue
        if token.startswith("numa:"):
            if numa is not None:
                raise ValueError(f"duplicate numa token in {spec!r}")
            numa = _parse_numa_token(token, spec)
            continue
        if token.startswith("hybrid:"):
            if hybrid is not None:
                raise ValueError(f"duplicate hybrid token in {spec!r}")
            hybrid = _parse_hybrid_token(token, spec)
            continue
        if base is not None:
            raise ValueError(f"more than one base backend in {spec!r}")
        if token in ("bf16", "fp16", "fp32"):
            base = BaselineBackend(parse_dtype(token))
        elif token in ("int8", "w8"):
            base = QuantizedBackend(
                QuantConfig(scheme=QuantScheme.WEIGHT_ONLY_INT8))
        elif token in ("int4", "w4"):
            base = QuantizedBackend(
                QuantConfig(scheme=QuantScheme.WEIGHT_ONLY_INT4))
        elif token == "w8a8":
            base = QuantizedBackend(QuantConfig(scheme=QuantScheme.FULL_INT8))
        else:
            raise _spec_error(token, spec)
    backend: Optional[ExecutionBackend] = base
    if numa is not None:
        backend = dataclasses.replace(numa, inner=backend)
    if hybrid is not None:
        backend = dataclasses.replace(hybrid, inner=backend)
    if backend is None:
        backend = BaselineBackend(DType.BF16)
    if tp_degree is not None:
        return TensorParallelBackend(tp=TPConfig(degree=tp_degree),
                                     interconnect=interconnect or upi_link(),
                                     inner=backend)
    return backend
