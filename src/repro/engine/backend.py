"""Execution backends: one abstraction for every engine variant.

Historically each engine variant (weight-only quantization, tensor
parallelism, speculative decoding, prefix caching) lived in its own
wrapper simulator that could only run single batch-to-completion
requests. What actually differs between the variants is small and
well-defined — and it is exactly what :class:`ExecutionBackend` owns:

* **op-graph construction** — the prefill / decode operator lists,
  including any rewrite (quantized weight streams, TP sharding,
  speculative draft+verify cycles, prefix-KV reuse);
* **compute dtype** — what the GEMM engines execute in (INT8 dispatch
  for full-INT8 quantization);
* **footprint accounting** — resident weight/KV/activation bytes, which
  feed capacity checks and NUMA bandwidth derivation;
* **post-pricing adjustment** — per-op timing rewrites that ride the
  roofline result (dequantization overhead on weight GEMMs);
* **communication** — per-pass constant costs outside the op graph
  (TP allreduce), charged to wall time but not the compute/memory legs;
* **signature** — a stable hashable key: two backends with equal
  signatures price identically, so shared cost tables
  (:mod:`repro.engine.stepcost`) key on it.

Backends are frozen dataclasses: hashable (so rewritten op graphs are
memoized per backend instance) and comparable (so equal configurations
share caches). Every execution layer threads them through — the
:class:`~repro.engine.executor.OperatorExecutor` closed-form decode
pricing, :class:`~repro.engine.stepcost.DecodeCostTable`,
:class:`~repro.engine.inference.InferenceSimulator`, the batching
policies, :class:`~repro.cluster.node.ReplicaNode` fast-forward, and
the cluster — which is what lets a fleet mix replicas running different
backends while routers compare costs from the same backend-keyed
tables. See ``docs/backends.md``.
"""

import dataclasses
import functools
from typing import Optional, Tuple

from repro.hardware.datatypes import DType, parse_dtype
from repro.hardware.interconnect import Interconnect, upi_link
from repro.models.config import ModelConfig
from repro.models.layers import Op, OpKind
from repro.models.memory import (
    inference_footprint_bytes,
    kv_cache_bytes,
    peak_activation_bytes,
    weight_bytes,
)
from repro.models.opgraph import _decode_step_ops_cached, _prefill_ops_cached
from repro.quant.weightonly import (
    QuantConfig,
    QuantScheme,
    quantize_ops,
    quantized_weight_bytes,
)
from repro.utils.validation import require_positive


# Rewritten op graphs are memoized per (backend, model, shape) — backends
# are frozen dataclasses, so equal configurations share entries. Wired
# into repro.experiments.clear_caches alongside the base opgraph caches.

@functools.lru_cache(maxsize=4096)
def _cached_prefill_ops(backend: "ExecutionBackend", model: ModelConfig,
                        batch_size: int, input_len: int) -> Tuple[Op, ...]:
    return tuple(backend._build_prefill_ops(model, batch_size, input_len))


@functools.lru_cache(maxsize=8192)
def _cached_decode_ops(backend: "ExecutionBackend", model: ModelConfig,
                       batch_size: int, kv_len: int) -> Tuple[Op, ...]:
    return tuple(backend._build_decode_ops(model, batch_size, kv_len))


def clear_backend_op_caches() -> None:
    """Drop memoized backend-rewritten operator graphs."""
    _cached_prefill_ops.cache_clear()
    _cached_decode_ops.cache_clear()


def scale_op(op: Op, factor: float) -> Op:
    """Scale an op so its priced time is *factor* x the original.

    Multiplies everything the roofline composes linearly — instance
    count, all byte traffic, extra FLOPs, and kernel launches — while
    leaving the per-instance GEMM shape (and hence the efficiency
    lookup) untouched, so ``time(scale_op(op, f)) == f * time(op)`` up
    to floating-point rounding. Speculative decoding uses this to fold
    "gamma draft steps + one verify pass per E[tokens] generated" into
    a single per-token op graph.
    """
    return dataclasses.replace(
        op,
        instances=op.instances * factor,
        weight_bytes=op.weight_bytes * factor,
        activation_bytes=op.activation_bytes * factor,
        kv_read_bytes=op.kv_read_bytes * factor,
        kv_write_bytes=op.kv_write_bytes * factor,
        extra_flops=op.extra_flops * factor,
        kernel_launches=op.kernel_launches * factor,
    )


def shard_op(op: Op, degree: int) -> Op:
    """Shard one operator's weights/compute across a TP group of *degree*.

    Weight GEMMs split along the output dimension: each shard does 1/S
    of the FLOPs and streams 1/S of the weights. Attention shards by
    heads. Activation traffic for the sharded portion scales likewise;
    the replicated hidden-state reads are a second-order term folded in
    with the same factor.
    """
    return dataclasses.replace(
        op,
        instances=op.instances,
        m=op.m, n=max(1, op.n // degree) if op.is_gemm else op.n, k=op.k,
        weight_bytes=op.weight_bytes / degree,
        activation_bytes=op.activation_bytes / degree,
        kv_read_bytes=op.kv_read_bytes / degree,
        kv_write_bytes=op.kv_write_bytes / degree,
        extra_flops=op.extra_flops / degree,
    )


@dataclasses.dataclass(frozen=True)
class TPConfig:
    """Tensor-parallel configuration.

    Attributes:
        degree: Shards (sockets). The SPR server supports 2.
        allreduce_efficiency: Achieved fraction of UPI bandwidth for the
            ring-allreduce pattern (latency-bound chunks, bidirectional).
    """

    degree: int = 2
    allreduce_efficiency: float = 0.7

    def __post_init__(self) -> None:
        require_positive(self.degree, "degree")
        if not 0 < self.allreduce_efficiency <= 1:
            raise ValueError("allreduce_efficiency must be in (0, 1]")


@dataclasses.dataclass(frozen=True)
class SpecDecodeConfig:
    """Speculative-decoding parameters.

    Attributes:
        gamma: Draft tokens proposed per cycle.
        acceptance_rate: Per-token probability the target accepts a draft
            token (depends on draft/target agreement; 0.7-0.9 is typical
            for a well-matched draft).
    """

    gamma: int = 4
    acceptance_rate: float = 0.8

    def __post_init__(self) -> None:
        require_positive(self.gamma, "gamma")
        if not 0 < self.acceptance_rate < 1:
            raise ValueError(
                f"acceptance_rate must be in (0, 1), got {self.acceptance_rate}")

    @property
    def expected_tokens_per_cycle(self) -> float:
        """E[accepted tokens + 1 bonus token] per verification cycle."""
        alpha, gamma = self.acceptance_rate, self.gamma
        return (1.0 - alpha ** (gamma + 1)) / (1.0 - alpha)


class ExecutionBackend:
    """Base execution backend: plain BF16-style pass-through semantics.

    Subclasses override the ``_build_*`` hooks (memoized through the
    module caches) plus whichever of dtype/footprint/adjust/comm hooks
    their technique changes. All subclasses must be frozen dataclasses —
    hashability is what keys the op-graph memo and, through
    :attr:`signature`, the shared cost tables.
    """

    #: Whether :meth:`adjust_timing` is non-identity. The executor skips
    #: the adjustment call entirely when this is False.
    adjusts: bool = False

    # -- identification -----------------------------------------------------

    @property
    def signature(self) -> tuple:
        """Hashable pricing identity: equal signature => equal timings."""
        raise NotImplementedError

    @property
    def label(self) -> str:
        """Short human-readable tag ("bf16", "int8-tp2", ...)."""
        raise NotImplementedError

    # -- dtype --------------------------------------------------------------

    @property
    def compute_dtype(self) -> DType:
        """Dtype the GEMM engines execute in (selects engine peaks)."""
        return self.dtype  # type: ignore[attr-defined]

    # -- op-graph construction ----------------------------------------------

    def prefill_ops(self, model: ModelConfig, batch_size: int,
                    input_len: int) -> Tuple[Op, ...]:
        """Memoized operator list for one prefill pass."""
        return _cached_prefill_ops(self, model, batch_size, input_len)

    def decode_ops(self, model: ModelConfig, batch_size: int,
                   kv_len: int) -> Tuple[Op, ...]:
        """Memoized operator list for one fused decode iteration."""
        return _cached_decode_ops(self, model, batch_size, kv_len)

    def _build_prefill_ops(self, model: ModelConfig, batch_size: int,
                           input_len: int) -> Tuple[Op, ...]:
        raise NotImplementedError

    def _build_decode_ops(self, model: ModelConfig, batch_size: int,
                          kv_len: int) -> Tuple[Op, ...]:
        raise NotImplementedError

    # -- footprint accounting -----------------------------------------------

    def weight_bytes(self, model: ModelConfig) -> float:
        """Resident model-weight bytes under this backend."""
        return weight_bytes(model, self.dtype)  # type: ignore[attr-defined]

    def footprint_bytes(self, model: ModelConfig, request) -> float:
        """Peak resident bytes for *request* (weights + KV + activations)."""
        dtype = self.dtype  # type: ignore[attr-defined]
        return inference_footprint_bytes(
            model, request.max_seq_len, request.batch_size, dtype)

    @property
    def capacity_scale(self) -> float:
        """Memory-capacity multiplier (TP spans multiple sockets)."""
        return 1.0

    # -- pricing hooks ------------------------------------------------------

    def adjust_timing(self, timing):
        """Post-pricing rewrite of one winning OpTiming (identity here).

        Applied by the executor *after* engine selection, matching the
        select-uninflated-then-inflate order of the original quantized
        simulator. Must only touch ``compute_s``/``time_s`` — the
        memory leg stays the roofline's, so the closed-form decode
        analysis keeps its affine structure.
        """
        return timing

    def prefill_comm_s(self, model: ModelConfig, batch_size: int,
                       input_len: int) -> float:
        """Constant per-prefill-pass communication time (seconds)."""
        return 0.0

    def decode_comm_s(self, model: ModelConfig, batch_size: int) -> float:
        """Constant per-decode-iteration communication time (seconds)."""
        return 0.0


@dataclasses.dataclass(frozen=True)
class BaselineBackend(ExecutionBackend):
    """Plain dense execution at one dtype (the paper's BF16 baseline)."""

    dtype: DType = DType.BF16

    # The base op graphs are already memoized in repro.models.opgraph;
    # skip the second cache layer entirely.
    def prefill_ops(self, model: ModelConfig, batch_size: int,
                    input_len: int) -> Tuple[Op, ...]:
        return _prefill_ops_cached(model, batch_size, input_len,
                                   self.dtype, False)

    def decode_ops(self, model: ModelConfig, batch_size: int,
                   kv_len: int) -> Tuple[Op, ...]:
        return _decode_step_ops_cached(model, batch_size, kv_len, self.dtype)

    @property
    def signature(self) -> tuple:
        return ("baseline", self.dtype)

    @property
    def label(self) -> str:
        return self.dtype.label


@dataclasses.dataclass(frozen=True)
class QuantizedBackend(ExecutionBackend):
    """Weight-only / full-INT8 quantized execution.

    Applies the :func:`~repro.quant.weightonly.quantize_ops` rewrite to
    the base graphs, prices at the scheme's compute dtype, sizes the
    footprint with quantized weights and KV, and inflates the compute
    leg of weight GEMMs by the dequantization overhead (weight-only
    schemes) after engine selection.
    """

    quant: QuantConfig = QuantConfig()
    dtype: DType = DType.BF16  # activation dtype of the base graph

    @property
    def compute_dtype(self) -> DType:
        return self.quant.compute_dtype

    @property
    def adjusts(self) -> bool:  # type: ignore[override]
        weight_only = self.quant.scheme in (QuantScheme.WEIGHT_ONLY_INT8,
                                            QuantScheme.WEIGHT_ONLY_INT4)
        return bool(weight_only and self.quant.dequant_overhead)

    def adjust_timing(self, timing):
        op = timing.op
        if op.weight_bytes > 0 and op.is_gemm:
            # Dequantization rides the GEMM inner loop: inflate the
            # compute leg of weight GEMMs by the configured fraction.
            extra = timing.compute_s * self.quant.dequant_overhead
            return dataclasses.replace(
                timing,
                compute_s=timing.compute_s + extra,
                time_s=max(timing.compute_s + extra,
                           timing.memory_s) + timing.overhead_s)
        return timing

    def _build_prefill_ops(self, model: ModelConfig, batch_size: int,
                           input_len: int) -> Tuple[Op, ...]:
        base = _prefill_ops_cached(model, batch_size, input_len,
                                   self.dtype, False)
        return tuple(quantize_ops(base, self.quant))

    def _build_decode_ops(self, model: ModelConfig, batch_size: int,
                          kv_len: int) -> Tuple[Op, ...]:
        base = _decode_step_ops_cached(model, batch_size, kv_len, self.dtype)
        return tuple(quantize_ops(base, self.quant))

    def weight_bytes(self, model: ModelConfig) -> float:
        return quantized_weight_bytes(model, self.quant)

    def footprint_bytes(self, model: ModelConfig, request) -> float:
        return (quantized_weight_bytes(model, self.quant)
                + kv_cache_bytes(model, request.max_seq_len,
                                 request.batch_size, self.dtype)
                * self.quant.kv_bytes_ratio()
                + peak_activation_bytes(model, request.max_seq_len,
                                        request.batch_size, self.dtype))

    @property
    def signature(self) -> tuple:
        return ("quant", self.quant, self.dtype)

    @property
    def label(self) -> str:
        return {
            QuantScheme.NONE: self.dtype.label,
            QuantScheme.WEIGHT_ONLY_INT8: "int8",
            QuantScheme.WEIGHT_ONLY_INT4: "int4",
            QuantScheme.FULL_INT8: "w8a8",
        }[self.quant.scheme]


@dataclasses.dataclass(frozen=True)
class TensorParallelBackend(ExecutionBackend):
    """Tensor-parallel execution across CPU sockets.

    Shards every operator of the *inner* backend's graph (so TP
    composes with quantization: quantize first, then shard the shrunken
    weight stream) and charges the ring-allreduce on the hidden state —
    twice per layer — as per-pass communication time. Bandwidth derives
    from the full unsharded footprint, matching the original
    :class:`~repro.parallel.tensor_parallel.TensorParallelSimulator`;
    capacity scales by the degree (the shards span that many sockets).
    """

    tp: TPConfig = TPConfig()
    interconnect: Interconnect = dataclasses.field(default_factory=upi_link)
    inner: Optional[ExecutionBackend] = None
    dtype: DType = DType.BF16

    def _resolved_inner(self) -> ExecutionBackend:
        return self.inner if self.inner is not None \
            else BaselineBackend(self.dtype)

    @property
    def compute_dtype(self) -> DType:
        return self._resolved_inner().compute_dtype

    @property
    def adjusts(self) -> bool:  # type: ignore[override]
        return self._resolved_inner().adjusts

    def adjust_timing(self, timing):
        return self._resolved_inner().adjust_timing(timing)

    def _build_prefill_ops(self, model: ModelConfig, batch_size: int,
                           input_len: int) -> Tuple[Op, ...]:
        inner = self._resolved_inner()
        return tuple(shard_op(op, self.tp.degree)
                     for op in inner.prefill_ops(model, batch_size,
                                                 input_len))

    def _build_decode_ops(self, model: ModelConfig, batch_size: int,
                          kv_len: int) -> Tuple[Op, ...]:
        inner = self._resolved_inner()
        return tuple(shard_op(op, self.tp.degree)
                     for op in inner.decode_ops(model, batch_size, kv_len))

    def weight_bytes(self, model: ModelConfig) -> float:
        return self._resolved_inner().weight_bytes(model)

    def footprint_bytes(self, model: ModelConfig, request) -> float:
        return self._resolved_inner().footprint_bytes(model, request)

    @property
    def capacity_scale(self) -> float:
        return float(self.tp.degree)

    def allreduce_s(self, model: ModelConfig, rows: int,
                    dtype_bytes: int = 2) -> float:
        """Two hidden-state allreduces per layer (ring: 2(S-1)/S volume)."""
        s = self.tp.degree
        if s == 1:
            return 0.0
        payload = 2 * model.n_layers * rows * model.d_model * dtype_bytes
        ring_volume = payload * 2 * (s - 1) / s
        bandwidth = (self.interconnect.effective_bw
                     * self.tp.allreduce_efficiency)
        latency = 2 * model.n_layers * self.interconnect.latency_s
        return ring_volume / bandwidth + latency

    def prefill_comm_s(self, model: ModelConfig, batch_size: int,
                       input_len: int) -> float:
        inner = self._resolved_inner().prefill_comm_s(model, batch_size,
                                                      input_len)
        return self.allreduce_s(model, batch_size * input_len) + inner

    def decode_comm_s(self, model: ModelConfig, batch_size: int) -> float:
        inner = self._resolved_inner().decode_comm_s(model, batch_size)
        return self.allreduce_s(model, batch_size) + inner

    @property
    def signature(self) -> tuple:
        return ("tp", self.tp, self.interconnect,
                self._resolved_inner().signature)

    @property
    def label(self) -> str:
        return f"{self._resolved_inner().label}-tp{self.tp.degree}"


@dataclasses.dataclass(frozen=True)
class SpecDecodeBackend(ExecutionBackend):
    """Speculative decoding folded into a per-token decode graph.

    One speculation cycle is ``gamma`` draft-model decode steps plus one
    target verification pass (prefill-shaped over ``gamma + 1``
    positions plus the cached-context KV read) and yields
    ``E[tokens] = (1 - alpha^(gamma+1)) / (1 - alpha)`` tokens. The
    decode graph scales both pieces by ``1/E[tokens]`` via
    :func:`scale_op`, so one "decode iteration" prices to exactly the
    effective per-token cost — which is what lets a speculative replica
    run under the unchanged batching/cluster loops. Prefill is the
    plain target prefill.
    """

    draft: ModelConfig
    spec: SpecDecodeConfig = SpecDecodeConfig()
    dtype: DType = DType.BF16

    def verify_ops(self, model: ModelConfig, batch_size: int,
                   kv_len: int) -> Tuple[Op, ...]:
        """Unscaled target verification pass at *kv_len* cached tokens."""
        ops = list(_prefill_ops_cached(model, batch_size,
                                       self.spec.gamma + 1, self.dtype,
                                       False))
        kv_read = sum(op.kv_read_bytes
                      for op in _decode_step_ops_cached(model, batch_size,
                                                        kv_len, self.dtype))
        # Pure-memory op with zero launches: prices to bytes / bandwidth.
        ops.append(Op(name="verify_kv_read", kind=OpKind.ELEMENTWISE,
                      kv_read_bytes=kv_read, kernel_launches=0))
        return tuple(ops)

    def _build_prefill_ops(self, model: ModelConfig, batch_size: int,
                           input_len: int) -> Tuple[Op, ...]:
        return _prefill_ops_cached(model, batch_size, input_len,
                                   self.dtype, False)

    def _build_decode_ops(self, model: ModelConfig, batch_size: int,
                          kv_len: int) -> Tuple[Op, ...]:
        e_tokens = self.spec.expected_tokens_per_cycle
        draft_scale = self.spec.gamma / e_tokens
        ops = [dataclasses.replace(scale_op(op, draft_scale),
                                   name=f"draft/{op.name}")
               for op in _decode_step_ops_cached(self.draft, batch_size,
                                                 kv_len, self.dtype)]
        ops += [dataclasses.replace(scale_op(op, 1.0 / e_tokens),
                                    name=f"verify/{op.name}")
                for op in self.verify_ops(model, batch_size, kv_len)]
        return tuple(ops)

    def weight_bytes(self, model: ModelConfig) -> float:
        return (weight_bytes(model, self.dtype)
                + weight_bytes(self.draft, self.dtype))

    def footprint_bytes(self, model: ModelConfig, request) -> float:
        # Target working set plus the resident draft weights (draft KV
        # is second-order: the draft shares context length but is tiny).
        return (inference_footprint_bytes(model, request.max_seq_len,
                                          request.batch_size, self.dtype)
                + weight_bytes(self.draft, self.dtype))

    @property
    def signature(self) -> tuple:
        return ("specdecode", self.draft, self.spec, self.dtype)

    @property
    def label(self) -> str:
        return f"spec-{self.draft.name}-g{self.spec.gamma}"


@dataclasses.dataclass(frozen=True)
class PrefixCacheBackend(ExecutionBackend):
    """Shared-prefix (system-prompt) caching on the prefill path.

    A prompt of ``input_len`` tokens with the leading ``prefix_len``
    cached pays prefill over the unique suffix only, plus one read of
    the cached prefix's K/V per layer (the suffix still attends to it).
    Decode is unchanged. Prompts no longer than the prefix keep one
    uncached token so the pass stays well-formed.
    """

    prefix_len: int = 512
    dtype: DType = DType.BF16

    def __post_init__(self) -> None:
        require_positive(self.prefix_len, "prefix_len")

    def _build_prefill_ops(self, model: ModelConfig, batch_size: int,
                           input_len: int) -> Tuple[Op, ...]:
        prefix = min(self.prefix_len, input_len - 1)
        unique = input_len - prefix
        ops = list(_prefill_ops_cached(model, batch_size, unique,
                                       self.dtype, False))
        if prefix > 0:
            ops.append(Op(
                name="prefix_kv_read", kind=OpKind.ELEMENTWISE,
                kv_read_bytes=kv_cache_bytes(model, prefix, batch_size,
                                             self.dtype),
                kernel_launches=0))
        return tuple(ops)

    def _build_decode_ops(self, model: ModelConfig, batch_size: int,
                          kv_len: int) -> Tuple[Op, ...]:
        return _decode_step_ops_cached(model, batch_size, kv_len, self.dtype)

    @property
    def signature(self) -> tuple:
        return ("prefix", self.prefix_len, self.dtype)

    @property
    def label(self) -> str:
        return f"prefix{self.prefix_len}"


#: Spec tokens understood by :func:`parse_backend`, for CLI help text.
BACKEND_SPEC_TOKENS = ("bf16", "fp16", "fp32", "int8", "w8", "int4", "w4",
                       "w8a8", "tpN")


def parse_backend(spec: str,
                  interconnect: Optional[Interconnect] = None
                  ) -> ExecutionBackend:
    """Parse a CLI backend spec like ``bf16``, ``int8``, or ``int8-tp2``.

    Tokens (joined with ``-`` or ``+``): a base — ``bf16`` / ``fp16`` /
    ``fp32`` (plain dense at that dtype), ``int8``/``w8`` (weight-only
    INT8), ``int4``/``w4`` (weight-only INT4), ``w8a8`` (full INT8) —
    and optionally ``tpN`` for tensor parallelism of degree N wrapped
    around it. ``tp2`` alone means BF16 + TP2.
    """
    tokens = [t for t in spec.lower().replace("+", "-").split("-") if t]
    if not tokens:
        raise ValueError("empty backend spec")
    base: Optional[ExecutionBackend] = None
    tp_degree: Optional[int] = None
    for token in tokens:
        if token.startswith("tp") and token[2:].isdigit():
            if tp_degree is not None:
                raise ValueError(f"duplicate tp token in {spec!r}")
            tp_degree = int(token[2:])
            continue
        if base is not None:
            raise ValueError(f"more than one base backend in {spec!r}")
        if token in ("bf16", "fp16", "fp32"):
            base = BaselineBackend(parse_dtype(token))
        elif token in ("int8", "w8"):
            base = QuantizedBackend(
                QuantConfig(scheme=QuantScheme.WEIGHT_ONLY_INT8))
        elif token in ("int4", "w4"):
            base = QuantizedBackend(
                QuantConfig(scheme=QuantScheme.WEIGHT_ONLY_INT4))
        elif token == "w8a8":
            base = QuantizedBackend(QuantConfig(scheme=QuantScheme.FULL_INT8))
        else:
            raise ValueError(
                f"unknown backend token {token!r} in {spec!r}; expected "
                f"one of {', '.join(BACKEND_SPEC_TOKENS)}")
    if base is None:
        base = BaselineBackend(DType.BF16)
    if tp_degree is not None:
        return TensorParallelBackend(tp=TPConfig(degree=tp_degree),
                                     interconnect=interconnect or upi_link(),
                                     inner=base)
    return base
