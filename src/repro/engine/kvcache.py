"""KV-cache manager.

Tracks per-sequence cached token counts and enforces a byte budget — the
substrate behind the capacity arguments of Section III (KV cache growing
past model size) and the offloading engine's placement decisions. The
manager is deliberately simple (contiguous per-sequence allocation, as
IPEX/FlexGen use) rather than paged.
"""

import dataclasses
from typing import Dict, Optional

from repro.hardware.datatypes import DType
from repro.models.config import ModelConfig
from repro.models.memory import kv_cache_bytes_per_token
from repro.utils.validation import require_positive


class KVCacheOverflow(RuntimeError):
    """Raised when an allocation would exceed the cache's byte budget."""


@dataclasses.dataclass
class _Sequence:
    tokens: int


class KVCacheManager:
    """Byte-budgeted KV cache for one model.

    Args:
        model: Model whose K/V geometry sizes entries.
        capacity_bytes: Budget; ``None`` means unbounded (pure accounting).
        dtype: KV storage dtype.
    """

    def __init__(self, model: ModelConfig,
                 capacity_bytes: Optional[float] = None,
                 dtype: DType = DType.BF16):
        if capacity_bytes is not None:
            require_positive(capacity_bytes, "capacity_bytes")
        self.model = model
        self.capacity_bytes = capacity_bytes
        self.dtype = dtype
        self._per_token = kv_cache_bytes_per_token(model, dtype)
        self._sequences: Dict[int, _Sequence] = {}
        self._next_id = 0

    @property
    def bytes_per_token(self) -> float:
        """KV bytes stored per cached token."""
        return self._per_token

    @property
    def num_sequences(self) -> int:
        """Currently allocated sequences."""
        return len(self._sequences)

    @property
    def cached_tokens(self) -> int:
        """Total cached tokens across sequences."""
        return sum(seq.tokens for seq in self._sequences.values())

    @property
    def bytes_used(self) -> float:
        """Current cache occupancy in bytes."""
        return self.cached_tokens * self._per_token

    def _check_budget(self, extra_tokens: int) -> None:
        if self.capacity_bytes is None:
            return
        needed = self.bytes_used + extra_tokens * self._per_token
        if needed > self.capacity_bytes:
            raise KVCacheOverflow(
                f"KV cache for {self.model.name} needs {needed:.3g} B "
                f"but budget is {self.capacity_bytes:.3g} B")

    def allocate(self, prompt_tokens: int) -> int:
        """Admit one sequence with *prompt_tokens* cached; returns its id."""
        require_positive(prompt_tokens, "prompt_tokens")
        self._check_budget(prompt_tokens)
        seq_id = self._next_id
        self._next_id += 1
        self._sequences[seq_id] = _Sequence(tokens=prompt_tokens)
        return seq_id

    def allocate_batch(self, batch_size: int, prompt_tokens: int) -> list:
        """Admit *batch_size* sequences at once; returns their ids."""
        require_positive(batch_size, "batch_size")
        self._check_budget(batch_size * prompt_tokens)
        return [self.allocate(prompt_tokens) for _ in range(batch_size)]

    def append_token(self, seq_id: int) -> None:
        """Cache the K/V of one newly generated token for *seq_id*."""
        if seq_id not in self._sequences:
            raise KeyError(f"unknown sequence id {seq_id}")
        self._check_budget(1)
        self._sequences[seq_id].tokens += 1

    def append_tokens(self, seq_ids, n_steps: int) -> None:
        """Cache *n_steps* generated tokens for each sequence in *seq_ids*.

        Batched equivalent of calling :meth:`append_token` once per
        sequence per step: the budget is checked for the whole batch up
        front (all-or-nothing), then every sequence grows by ``n_steps``.
        """
        require_positive(n_steps, "n_steps")
        seq_ids = list(seq_ids)
        for seq_id in seq_ids:
            if seq_id not in self._sequences:
                raise KeyError(f"unknown sequence id {seq_id}")
        self._check_budget(len(seq_ids) * n_steps)
        for seq_id in seq_ids:
            self._sequences[seq_id].tokens += n_steps

    def seq_len(self, seq_id: int) -> int:
        """Cached tokens for *seq_id*."""
        return self._sequences[seq_id].tokens

    def release(self, seq_id: int) -> None:
        """Free a finished sequence."""
        if seq_id not in self._sequences:
            raise KeyError(f"unknown sequence id {seq_id}")
        del self._sequences[seq_id]

    def would_fit(self, batch_size: int, total_tokens_per_seq: int) -> bool:
        """Whether a full request (prompt + generation) fits the budget."""
        if self.capacity_bytes is None:
            return True
        needed = batch_size * total_tokens_per_seq * self._per_token
        return self.bytes_used + needed <= self.capacity_bytes
