"""Inference-engine simulator: requests, KV cache, executor, results."""

from repro.engine.backend import (
    BaselineBackend,
    ExecutionBackend,
    PrefixCacheBackend,
    QuantizedBackend,
    SpecDecodeBackend,
    SpecDecodeConfig,
    TensorParallelBackend,
    TPConfig,
    clear_backend_op_caches,
    parse_backend,
)
from repro.engine.executor import OperatorExecutor, OpTiming
from repro.engine.inference import (
    DEFAULT_ENGINE_CONFIG,
    EngineConfig,
    InferenceSimulator,
    MemoryCapacityError,
    simulate,
)
from repro.engine.kvcache import KVCacheManager, KVCacheOverflow
from repro.engine.paged_kvcache import (
    BlockAllocator,
    OutOfBlocks,
    PagedKVCacheManager,
    ReservedKVCacheManager,
    max_admissible_sequences,
)
from repro.engine.request import (
    EVALUATED_BATCH_SIZES,
    EVALUATED_INPUT_LENGTHS,
    PAPER_DEFAULT_REQUEST,
    InferenceRequest,
)
from repro.engine.results import (
    InferenceResult,
    PhaseStats,
    merge_phase_stats,
    phase_stats_from_timings,
)

__all__ = [
    "BaselineBackend",
    "DEFAULT_ENGINE_CONFIG",
    "EVALUATED_BATCH_SIZES",
    "EVALUATED_INPUT_LENGTHS",
    "EngineConfig",
    "ExecutionBackend",
    "PrefixCacheBackend",
    "QuantizedBackend",
    "SpecDecodeBackend",
    "SpecDecodeConfig",
    "TPConfig",
    "TensorParallelBackend",
    "clear_backend_op_caches",
    "parse_backend",
    "InferenceRequest",
    "InferenceResult",
    "InferenceSimulator",
    "BlockAllocator",
    "KVCacheManager",
    "KVCacheOverflow",
    "OutOfBlocks",
    "PagedKVCacheManager",
    "ReservedKVCacheManager",
    "max_admissible_sequences",
    "MemoryCapacityError",
    "OpTiming",
    "OperatorExecutor",
    "PAPER_DEFAULT_REQUEST",
    "PhaseStats",
    "merge_phase_stats",
    "phase_stats_from_timings",
    "simulate",
]
