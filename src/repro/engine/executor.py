"""Operator executor: prices one :class:`~repro.models.layers.Op` on a platform.

The executor is where hardware meets workload: it selects the best engine
per op (AMX vs AVX-512 on SPR, mirroring IPEX dispatch), applies the
dimension-dependent GEMM efficiency, and composes the roofline
``max(compute, memory)`` with per-launch overhead.
"""

import dataclasses
from typing import List, Optional

from repro.gemm.efficiency import gemm_efficiency
from repro.hardware.compute import ComputeEngine, EngineKind
from repro.hardware.datatypes import DType
from repro.hardware.platform import Platform
from repro.models.layers import Op
from repro.utils.validation import require_positive

# Non-GEMM (bandwidth-bound) kernels run their arithmetic on vector units
# at a reduced fraction of peak — they are not blocked/fused like GEMMs.
_ELEMENTWISE_COMPUTE_EFFICIENCY = 0.35


@dataclasses.dataclass(frozen=True)
class OpTiming:
    """Priced execution of one operator.

    Attributes:
        op: The operator priced.
        time_s: Roofline time including launch overhead.
        compute_s: Compute leg (0 if the op has no FLOPs).
        memory_s: Memory leg.
        overhead_s: Launch/dispatch overhead charged.
        engine_name: Engine that executed the op's GEMM portion.
        efficiency: Compute efficiency applied.
        memory_bound: Whether the memory leg dominated.
    """

    op: Op
    time_s: float
    compute_s: float
    memory_s: float
    overhead_s: float
    engine_name: str
    efficiency: float
    memory_bound: bool


class OperatorExecutor:
    """Prices operators against one platform configuration.

    Args:
        platform: Target platform.
        dtype: Compute dtype.
        bandwidth: Effective memory bandwidth in bytes/s (already adjusted
            for NUMA configuration, core count, and stream efficiency).
        compute_scale: Multiplier on engine peaks (core-count scaling).
    """

    def __init__(self, platform: Platform, dtype: DType, bandwidth: float,
                 compute_scale: float = 1.0):
        require_positive(bandwidth, "bandwidth")
        require_positive(compute_scale, "compute_scale")
        self.platform = platform
        self.dtype = dtype
        self.bandwidth = bandwidth
        self.compute_scale = compute_scale
        self._engines = [e for e in platform.engines if e.supports(dtype)]
        if not self._engines:
            raise ValueError(f"{platform.name} has no engine for {dtype}")
        self._vector_like = self._pick_vector_like()

    def _pick_vector_like(self) -> ComputeEngine:
        """Engine used for elementwise arithmetic (lowest-peak available)."""
        vectors = [e for e in self._engines if e.kind is EngineKind.VECTOR]
        if vectors:
            return max(vectors, key=lambda e: e.peak(self.dtype))
        return min(self._engines, key=lambda e: e.peak(self.dtype))

    def time_op(self, op: Op) -> OpTiming:
        """Price *op*; GEMM ops try every engine and keep the fastest."""
        memory_s = op.memory_bytes / self.bandwidth if op.memory_bytes else 0.0
        if op.is_gemm:
            return self._time_gemm(op, memory_s)
        return self._time_bandwidth_op(op, memory_s)

    def _time_gemm(self, op: Op, memory_s: float) -> OpTiming:
        best: Optional[OpTiming] = None
        for engine in self._engines:
            eff = gemm_efficiency(engine, op.m, op.n, op.k)
            peak = engine.peak(self.dtype) * self.compute_scale
            compute_s = op.gemm_flops / (peak * eff)
            if op.extra_flops:
                compute_s += op.extra_flops / (
                    self._vector_peak() * _ELEMENTWISE_COMPUTE_EFFICIENCY)
            overhead_s = engine.launch_overhead_s * op.kernel_launches
            timing = OpTiming(
                op=op,
                time_s=max(compute_s, memory_s) + overhead_s,
                compute_s=compute_s,
                memory_s=memory_s,
                overhead_s=overhead_s,
                engine_name=engine.name,
                efficiency=eff,
                memory_bound=memory_s >= compute_s,
            )
            if best is None or timing.time_s < best.time_s:
                best = timing
        assert best is not None
        return best

    def _time_bandwidth_op(self, op: Op, memory_s: float) -> OpTiming:
        engine = self._vector_like
        compute_s = 0.0
        if op.extra_flops:
            compute_s = op.extra_flops / (
                self._vector_peak() * _ELEMENTWISE_COMPUTE_EFFICIENCY)
        overhead_s = engine.launch_overhead_s * op.kernel_launches
        return OpTiming(
            op=op,
            time_s=max(compute_s, memory_s) + overhead_s,
            compute_s=compute_s,
            memory_s=memory_s,
            overhead_s=overhead_s,
            engine_name=engine.name,
            efficiency=_ELEMENTWISE_COMPUTE_EFFICIENCY,
            memory_bound=memory_s >= compute_s,
        )

    def _vector_peak(self) -> float:
        return self._vector_like.peak(self.dtype) * self.compute_scale

    def time_ops(self, ops: List[Op]) -> List[OpTiming]:
        """Price a whole operator list (one pass)."""
        return [self.time_op(op) for op in ops]
