"""Operator executor: prices one :class:`~repro.models.layers.Op` on a platform.

The executor is where hardware meets workload: it selects the best engine
per op (AMX vs AVX-512 on SPR, mirroring IPEX dispatch), applies the
dimension-dependent GEMM efficiency, and composes the roofline
``max(compute, memory)`` with per-launch overhead.
"""

import dataclasses
from typing import Dict, List, Optional

from repro.engine.backend import BaselineBackend, ExecutionBackend
from repro.gemm.efficiency import _gemm_efficiency_cached
from repro.hardware.compute import ComputeEngine, EngineKind
from repro.hardware.datatypes import DType
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.layers import Op
from repro.utils.validation import require_positive

# Non-GEMM (bandwidth-bound) kernels run their arithmetic on vector units
# at a reduced fraction of peak — they are not blocked/fused like GEMMs.
_ELEMENTWISE_COMPUTE_EFFICIENCY = 0.35

_OP_FIELD_NAMES = tuple(f.name for f in dataclasses.fields(Op))


@dataclasses.dataclass(frozen=True)
class OpTiming:
    """Priced execution of one operator.

    Attributes:
        op: The operator priced.
        time_s: Roofline time including launch overhead.
        compute_s: Compute leg (0 if the op has no FLOPs).
        memory_s: Memory leg.
        overhead_s: Launch/dispatch overhead charged.
        engine_name: Engine that executed the op's GEMM portion.
        efficiency: Compute efficiency applied.
        memory_bound: Whether the memory leg dominated.
    """

    op: Op
    time_s: float
    compute_s: float
    memory_s: float
    overhead_s: float
    engine_name: str
    efficiency: float
    memory_bound: bool


class OperatorExecutor:
    """Prices operators against one platform configuration.

    Args:
        platform: Target platform.
        dtype: Compute dtype.
        bandwidth: Effective memory bandwidth in bytes/s (already adjusted
            for NUMA configuration, core count, and stream efficiency).
        compute_scale: Multiplier on engine peaks (core-count scaling).
        backend: Execution backend supplying decode/prefill op graphs,
            post-pricing timing adjustments, and per-pass communication.
            Defaults to the plain :class:`~repro.engine.backend.
            BaselineBackend` at *dtype*, which reproduces the historical
            behavior exactly. Callers building an executor for a backend
            should pass ``dtype=backend.compute_dtype``.
    """

    def __init__(self, platform: Platform, dtype: DType, bandwidth: float,
                 compute_scale: float = 1.0,
                 backend: Optional[ExecutionBackend] = None):
        require_positive(bandwidth, "bandwidth")
        require_positive(compute_scale, "compute_scale")
        self.platform = platform
        self.dtype = dtype
        self.bandwidth = bandwidth
        self.compute_scale = compute_scale
        self.backend = backend if backend is not None \
            else BaselineBackend(dtype)
        # Resolved once: the hot pricing loops skip the adjustment call
        # entirely for non-adjusting backends.
        self._adjust = self.backend.adjust_timing if self.backend.adjusts \
            else None
        self._engines = [e for e in platform.engines if e.supports(dtype)]
        if not self._engines:
            raise ValueError(f"{platform.name} has no engine for {dtype}")
        self._vector_like = self._pick_vector_like()
        # Hot-loop constants: scaled peaks and overheads resolved once so
        # per-op pricing is pure arithmetic plus one cached-curve lookup.
        self._scaled_peaks = [e.peak(dtype) * compute_scale
                              for e in self._engines]
        self._elementwise_peak = (self._vector_like.peak(dtype)
                                  * compute_scale
                                  * _ELEMENTWISE_COMPUTE_EFFICIENCY)

    @property
    def pricing_signature(self):
        """Hashable key identifying what this executor prices like.

        Two executors with equal signatures produce identical timings for
        identical ops: platform names map to fixed engine definitions, and
        pricing otherwise depends only on dtype, bandwidth, the compute
        scale, and the backend's op graphs/adjustments (captured by the
        backend signature). Cross-instance memo layers (the serving
        step-cost tables) key on this instead of executor identity.
        """
        return (self.platform.name, self.dtype, self.bandwidth,
                self.compute_scale, self.backend.signature)

    def _pick_vector_like(self) -> ComputeEngine:
        """Engine used for elementwise arithmetic (lowest-peak available)."""
        vectors = [e for e in self._engines if e.kind is EngineKind.VECTOR]
        if vectors:
            return max(vectors, key=lambda e: e.peak(self.dtype))
        return min(self._engines, key=lambda e: e.peak(self.dtype))

    def time_op(self, op: Op) -> OpTiming:
        """Price *op*; GEMM ops try every engine and keep the fastest.

        Engine selection races *unadjusted* candidates; the backend's
        post-pricing adjustment (e.g. dequantization overhead) is applied
        to the winner — the same select-then-inflate order the original
        quantized simulator used.
        """
        memory_s = op.memory_bytes / self.bandwidth if op.memory_bytes else 0.0
        if op.m > 0 and op.n > 0 and op.k > 0:  # op.is_gemm, inlined
            timing = self._time_gemm(op, memory_s)
        else:
            timing = self._time_bandwidth_op(op, memory_s)
        if self._adjust is not None:
            timing = self._adjust(timing)
        return timing

    def _gemm_candidates(self, op: Op, memory_s: float) -> List[OpTiming]:
        """One candidate timing per engine, in platform engine order."""
        candidates: List[OpTiming] = []
        gemm_flops = 2.0 * op.m * op.n * op.k * op.instances
        extra_s = op.extra_flops / self._elementwise_peak \
            if op.extra_flops else 0.0
        for engine, peak in zip(self._engines, self._scaled_peaks):
            eff = _gemm_efficiency_cached(engine.kind, engine.tile,
                                          op.m, op.n, op.k)
            compute_s = gemm_flops / (peak * eff) + extra_s
            overhead_s = engine.launch_overhead_s * op.kernel_launches
            candidates.append(OpTiming(
                op=op,
                time_s=max(compute_s, memory_s) + overhead_s,
                compute_s=compute_s,
                memory_s=memory_s,
                overhead_s=overhead_s,
                engine_name=engine.name,
                efficiency=eff,
                memory_bound=memory_s >= compute_s,
            ))
        return candidates

    def _time_gemm(self, op: Op, memory_s: float) -> OpTiming:
        # Scalar engine race, same first-strict-minimum tie-break as
        # ``min(_gemm_candidates(...), key=time_s)`` but building only the
        # winning OpTiming (this is the hottest call in grid sweeps).
        gemm_flops = 2.0 * op.m * op.n * op.k * op.instances
        extra_s = op.extra_flops / self._elementwise_peak \
            if op.extra_flops else 0.0
        best = None
        for engine, peak in zip(self._engines, self._scaled_peaks):
            eff = _gemm_efficiency_cached(engine.kind, engine.tile,
                                          op.m, op.n, op.k)
            compute_s = gemm_flops / (peak * eff) + extra_s
            overhead_s = engine.launch_overhead_s * op.kernel_launches
            time_s = max(compute_s, memory_s) + overhead_s
            if best is None or time_s < best[0]:
                best = (time_s, compute_s, overhead_s, engine, eff)
        assert best is not None
        time_s, compute_s, overhead_s, engine, eff = best
        return OpTiming(
            op=op,
            time_s=time_s,
            compute_s=compute_s,
            memory_s=memory_s,
            overhead_s=overhead_s,
            engine_name=engine.name,
            efficiency=eff,
            memory_bound=memory_s >= compute_s,
        )

    def _time_bandwidth_op(self, op: Op, memory_s: float) -> OpTiming:
        engine = self._vector_like
        compute_s = 0.0
        if op.extra_flops:
            compute_s = op.extra_flops / self._elementwise_peak
        overhead_s = engine.launch_overhead_s * op.kernel_launches
        return OpTiming(
            op=op,
            time_s=max(compute_s, memory_s) + overhead_s,
            compute_s=compute_s,
            memory_s=memory_s,
            overhead_s=overhead_s,
            engine_name=engine.name,
            efficiency=_ELEMENTWISE_COMPUTE_EFFICIENCY,
            memory_bound=memory_s >= compute_s,
        )

    def time_ops(self, ops: List[Op]) -> List[OpTiming]:
        """Price a whole operator list (one pass)."""
        return [self.time_op(op) for op in ops]

    def _candidates(self, op: Op) -> List[OpTiming]:
        """All engine-candidate timings for *op* (one entry for non-GEMMs).

        Candidates are unadjusted; pick winners with :meth:`_best` so the
        backend adjustment lands after engine selection, matching
        :meth:`time_op`.
        """
        memory_s = op.memory_bytes / self.bandwidth if op.memory_bytes else 0.0
        if op.is_gemm:
            return self._gemm_candidates(op, memory_s)
        return [self._time_bandwidth_op(op, memory_s)]

    def _best(self, candidates: List[OpTiming]) -> OpTiming:
        """Winning candidate with the backend adjustment applied."""
        best = min(candidates, key=lambda t: t.time_s)
        if self._adjust is not None:
            best = self._adjust(best)
        return best

    def _memory_dominated(self, cand_lo: List[OpTiming],
                          cand_hi: List[OpTiming]) -> bool:
        """Whether the roofline max() is memory everywhere in the range.

        Compares each engine's (adjusted) compute leg at the top of the
        range against its memory leg at the bottom — compute is monotone
        non-decreasing in kv and memory affine increasing, so this bounds
        the whole range. Adjustments never touch the memory leg, so using
        the adjusted compute keeps the check conservative for adjusting
        backends.
        """
        if self._adjust is None:
            return all(c1.compute_s <= c0.memory_s
                       for c0, c1 in zip(cand_lo, cand_hi))
        adjust = self._adjust
        return all(adjust(c1).compute_s <= c0.memory_s
                   for c0, c1 in zip(cand_lo, cand_hi))

    # -- prefill pricing -----------------------------------------------------

    def time_prefill_ops(self, model: ModelConfig, batch_size: int,
                         input_len: int) -> List[OpTiming]:
        """Price one prefill pass of the backend's op graph.

        Per-op timings only; the backend's per-pass communication
        (:meth:`prefill_comm_s`) is charged separately to wall time.
        """
        ops = self.backend.prefill_ops(model, batch_size, input_len)
        return [self.time_op(op) for op in ops]

    def prefill_comm_s(self, model: ModelConfig, batch_size: int,
                       input_len: int) -> float:
        """Backend communication time for one prefill pass (seconds)."""
        return self.backend.prefill_comm_s(model, batch_size, input_len)

    def decode_comm_s(self, model: ModelConfig, batch_size: int) -> float:
        """Backend communication time per decode iteration (seconds)."""
        return self.backend.decode_comm_s(model, batch_size)

    # -- closed-form decode-range pricing ------------------------------------

    def time_decode_range(self, model: ModelConfig, batch_size: int,
                          kv_start: int, kv_end: int) -> "DecodeRangeTiming":
        """Price every decode step with ``kv_len`` in ``[kv_start, kv_end)``.

        Equivalent to pricing :func:`~repro.models.opgraph.decode_step_ops`
        once per step and summing, but analytical: per-op decode time is
        piecewise affine in ``kv_len`` (memory leg linear, each engine's
        compute leg affine between tile-padding boundaries, weight streaming
        constant), so each affine segment is summed in closed form. Segment
        boundaries come from tile-quantization steps, compute/memory
        roofline crossovers, and best-engine flips; every segment sum is
        verified against probe evaluations of the exact per-step pricer and
        falls back to exact summation if the affine assumption fails, so
        results agree with the step loop to within floating-point noise
        (well under 1e-9 relative).

        Runs in O(#ops + #breakpoints) per-step pricings instead of
        O(steps x ops x engines).
        """
        steps = kv_end - kv_start
        if steps <= 0:
            return DecodeRangeTiming(steps=0, time_s=0.0, compute_s=0.0,
                                     memory_s=0.0, flops=0.0,
                                     weight_bytes=0.0, activation_bytes=0.0,
                                     kv_read_bytes=0.0, kv_write_bytes=0.0,
                                     op_times={})
        backend = self.backend
        ops_lo = backend.decode_ops(model, batch_size, kv_start)
        ops_hi = backend.decode_ops(model, batch_size, kv_end - 1)
        # One interior build validates the endpoint-interpolated op
        # reconstruction used by _sum_varying_op (see
        # _affine_op_factory); short ranges go through the dense path.
        kv_mid = kv_start + steps // 2
        ops_mid = backend.decode_ops(model, batch_size, kv_mid) \
            if steps > 8 else None
        time_s = compute_s = memory_s = 0.0
        flops = weight_b = act_b = kvr_b = kvw_b = 0.0
        op_times: Dict[str, float] = {}
        for index, (op_lo, op_hi) in enumerate(zip(ops_lo, ops_hi)):
            # Byte/FLOP accounting is affine in kv_len for every op, so the
            # whole range sums by trapezoid on the endpoint graphs.
            flops += steps * (op_lo.flops + op_hi.flops) / 2.0
            weight_b += steps * (op_lo.weight_bytes + op_hi.weight_bytes) / 2.0
            act_b += steps * (op_lo.activation_bytes + op_hi.activation_bytes) / 2.0
            kvr_b += steps * (op_lo.kv_read_bytes + op_hi.kv_read_bytes) / 2.0
            kvw_b += steps * (op_lo.kv_write_bytes + op_hi.kv_write_bytes) / 2.0
            if op_lo == op_hi:
                # kv_len-independent op: price once, multiply by step count.
                timing = self.time_op(op_lo)
                t_sum = steps * timing.time_s
                c_sum = steps * timing.compute_s
                m_sum = steps * timing.memory_s
            else:
                t_sum, c_sum, m_sum = self._sum_varying_op(
                    model, batch_size, index, op_lo, op_hi, kv_start, kv_end,
                    kv_mid, ops_mid[index] if ops_mid is not None else None)
            time_s += t_sum
            compute_s += c_sum
            memory_s += m_sum
            op_times[op_lo.name] = op_times.get(op_lo.name, 0.0) + t_sum
        comm = backend.decode_comm_s(model, batch_size)
        if comm:
            # Per-iteration communication (TP allreduce) is constant in
            # kv_len; charged to wall time only, like the step loop does.
            time_s += steps * comm
        return DecodeRangeTiming(
            steps=steps, time_s=time_s, compute_s=compute_s,
            memory_s=memory_s, flops=flops, weight_bytes=weight_b,
            activation_bytes=act_b, kv_read_bytes=kvr_b, kv_write_bytes=kvw_b,
            op_times=op_times)

    def _varying_op_pricer(self, model: ModelConfig, batch_size: int,
                           index: int, op_lo: Op, op_hi: Op,
                           kv_start: int, kv_end: int,
                           kv_mid: int, op_mid: Optional[Op]):
        """Shared analysis preamble for one kv-varying op.

        Returns ``(analyzable, varying, slope, offset, timing_at, op_at,
        memo)`` — the pieces both the range-sum and per-step-series walks
        build on, factored out so the two cannot drift apart.
        """
        span = kv_end - 1 - kv_start
        dims_lo = (op_lo.m, op_lo.n, op_lo.k)
        dims_hi = (op_hi.m, op_hi.n, op_hi.k)
        varying = [i for i in range(3) if dims_lo[i] != dims_hi[i]]
        analyzable = len(varying) <= 1
        slope = offset = 0
        if varying and analyzable:
            delta = dims_hi[varying[0]] - dims_lo[varying[0]]
            if delta % span != 0:
                analyzable = False  # non-integral dim growth: price densely
            else:
                slope = delta // span
                offset = dims_lo[varying[0]]

        def builder_op_at(kv: int) -> Op:
            return self.backend.decode_ops(model, batch_size, kv)[index]

        # Interior ops are reconstructed from the endpoints when the
        # reconstruction provably matches the builder (checked against the
        # builder's own midpoint op); otherwise every probe rebuilds the
        # full step graph.
        op_at = builder_op_at
        if analyzable:
            dim_field = ("m", "n", "k")[varying[0]] if varying else None
            synth = self._affine_op_factory(op_lo, op_hi, kv_start, span,
                                            dim_field, slope, offset)
            if (synth is not None and op_mid is not None
                    and synth(kv_mid) == op_mid):
                op_at = synth

        memo: Dict[int, OpTiming] = {}

        def timing_at(kv: int) -> OpTiming:
            cached = memo.get(kv)
            if cached is None:
                cached = self.time_op(op_at(kv))
                memo[kv] = cached
            return cached

        return analyzable, varying, slope, offset, timing_at, op_at, memo

    def _tile_cut_bounds(self, varying, slope: int, offset: int,
                         kv_start: int, kv_end: int) -> List[int]:
        """Sorted segment bounds at tile-quantization boundaries.

        Compute time steps up whenever the varying dimension enters a new
        native tile; cutting there leaves segments where every engine's
        legs are affine in ``kv_len``.
        """
        cuts = {kv_start, kv_end}
        if varying and slope > 0:
            for engine in self._engines:
                if engine.tile is None:
                    continue
                tile_dim = (engine.tile.m, engine.tile.n,
                            engine.tile.k)[varying[0]]
                # First block boundary strictly past the start dimension.
                block = (offset - 1) // tile_dim + 1
                while True:
                    # kv at which dim first exceeds block*tile_dim.
                    dim_target = block * tile_dim + 1
                    kv_b = kv_start + -(-(dim_target - offset) // slope)
                    if kv_b >= kv_end:
                        break
                    if kv_b > kv_start:
                        cuts.add(kv_b)
                    block += 1
        return sorted(cuts)

    def _sum_varying_op(self, model: ModelConfig, batch_size: int,
                        index: int, op_lo: Op, op_hi: Op,
                        kv_start: int, kv_end: int,
                        kv_mid: int = -1, op_mid: Optional[Op] = None):
        """Sum best-engine (time, compute, memory) of one kv-varying op."""
        acc = [0.0, 0.0, 0.0]
        analyzable, varying, slope, offset, timing_at, op_at, memo = \
            self._varying_op_pricer(model, batch_size, index, op_lo, op_hi,
                                    kv_start, kv_end, kv_mid, op_mid)
        if not analyzable:
            self._sum_exact(timing_at, kv_start, kv_end, acc)
            return tuple(acc)

        # Memory-dominated fast path: GEMM compute time is monotone
        # non-decreasing in every dimension (the gemm_efficiency
        # invariant) and the memory leg is affine increasing, so if every
        # engine's compute leg at the top of the range sits below its
        # memory leg at the bottom, the roofline max() never sees compute
        # anywhere in the range. All candidates then price as parallel
        # affine lines (shared memory leg + constant overhead): one
        # winner, one affine run, no tile cuts or crossovers. This is the
        # common case — decode attention is memory-bound on every
        # platform the paper evaluates. The probe check in
        # _sum_affine_run still verifies the conclusion.
        cand_lo = self._candidates(op_lo)
        cand_hi = self._candidates(op_hi)
        if self._memory_dominated(cand_lo, cand_hi):
            memo.setdefault(kv_start, self._best(cand_lo))
            memo.setdefault(kv_end - 1, self._best(cand_hi))
            self._sum_affine_run(timing_at, kv_start, kv_end, acc)
            return tuple(acc)

        bounds = self._tile_cut_bounds(varying, slope, offset,
                                       kv_start, kv_end)
        for lo, hi in zip(bounds, bounds[1:]):
            self._sum_tile_segment(timing_at, op_at, memo, lo, hi, acc)
        return tuple(acc)

    @staticmethod
    def _affine_op_factory(op_lo: Op, op_hi: Op, kv_start: int, span: int,
                           dim_field: Optional[str], slope: int, offset: int):
        """Build ``op_at(kv)`` reconstructing interior ops from endpoints.

        Decode-step op fields are affine in ``kv_len`` by construction of
        the op graph, so the op at any interior ``kv`` equals the endpoint
        op with its varying fields advanced by exact per-step deltas.
        Returns ``None`` when a field's per-step delta is not exactly
        representable (the caller then falls back to the graph builder);
        the caller additionally cross-checks the factory output against a
        builder-produced midpoint op before trusting it.
        """
        if (op_lo.name != op_hi.name or op_lo.kind is not op_hi.kind
                or op_lo.instances != op_hi.instances
                or op_lo.kernel_launches != op_hi.kernel_launches):
            return None
        deltas = []
        for field in ("weight_bytes", "activation_bytes", "kv_read_bytes",
                      "kv_write_bytes", "extra_flops"):
            lo_v = getattr(op_lo, field)
            hi_v = getattr(op_hi, field)
            if lo_v != hi_v:
                per_step = (hi_v - lo_v) / span
                if lo_v + per_step * span != hi_v:
                    return None
                deltas.append((field, lo_v, per_step))
        base = {name: getattr(op_lo, name) for name in _OP_FIELD_NAMES}

        def op_at(kv: int) -> Op:
            step = kv - kv_start
            if step == 0:
                return op_lo
            if step == span:
                return op_hi
            kwargs = dict(base)
            for field, lo_v, per_step in deltas:
                kwargs[field] = lo_v + per_step * step
            if dim_field is not None:
                kwargs[dim_field] = offset + slope * step
            return Op(**kwargs)

        return op_at

    def _sum_tile_segment(self, timing_at, op_at, memo: Dict[int, OpTiming],
                          lo: int, hi: int, acc: List[float]) -> None:
        """Sum one segment where every engine's legs are affine in kv_len.

        Within a tile-aligned segment each engine candidate is
        ``max(affine compute, affine memory) + overhead``; every breakpoint
        of the best-engine minimum lies at an intersection of two of those
        lines, so cutting at all pairwise intersections leaves purely
        affine runs.
        """
        count = hi - lo
        if count <= 4:
            self._sum_exact(timing_at, lo, hi, acc)
            return
        span = hi - 1 - lo
        cand_lo = self._candidates(op_at(lo))
        cand_hi = self._candidates(op_at(hi - 1))
        # The endpoint winners double as the affine-run endpoint pricings.
        memo.setdefault(lo, self._best(cand_lo))
        memo.setdefault(hi - 1, self._best(cand_hi))
        lines = []
        for c0, c1 in zip(cand_lo, cand_hi):
            lines.append((c0.compute_s + c0.overhead_s,
                          (c1.compute_s - c0.compute_s) / span))
            lines.append((c0.memory_s + c0.overhead_s,
                          (c1.memory_s - c0.memory_s) / span))
        cuts = {lo, hi}
        for i in range(len(lines)):
            a0, b0 = lines[i]
            for j in range(i + 1, len(lines)):
                a1, b1 = lines[j]
                if b0 == b1:
                    continue
                x = (a1 - a0) / (b0 - b1)
                if 0.0 < x < span:
                    kv_x = lo + int(x)
                    for kv_c in (kv_x, kv_x + 1):
                        if lo < kv_c < hi:
                            cuts.add(kv_c)
        bounds = sorted(cuts)
        for a, b in zip(bounds, bounds[1:]):
            self._sum_affine_run(timing_at, a, b, acc)

    def _sum_affine_run(self, timing_at, lo: int, hi: int,
                        acc: List[float]) -> None:
        """Closed-form arithmetic-series sum over one affine run.

        Verified against interior probe evaluations; bisects (and
        ultimately sums exactly) if the run turns out not to be affine —
        the guarantee that the fast path can never silently diverge from
        the per-step loop.
        """
        count = hi - lo
        if count <= 4:
            self._sum_exact(timing_at, lo, hi, acc)
            return
        t_lo, t_hi = timing_at(lo), timing_at(hi - 1)
        fields_lo = (t_lo.time_s, t_lo.compute_s, t_lo.memory_s)
        fields_hi = (t_hi.time_s, t_hi.compute_s, t_hi.memory_s)
        span = count - 1
        probe = lo + span // 2
        t_p = timing_at(probe)
        frac = (probe - lo) / span
        for got, f0, f1 in zip((t_p.time_s, t_p.compute_s, t_p.memory_s),
                               fields_lo, fields_hi):
            want = f0 + (f1 - f0) * frac
            if abs(got - want) > 1e-11 * max(abs(got), abs(want), 1e-30):
                mid = lo + count // 2
                self._sum_affine_run(timing_at, lo, mid, acc)
                self._sum_affine_run(timing_at, mid, hi, acc)
                return
        for i, (f0, f1) in enumerate(zip(fields_lo, fields_hi)):
            acc[i] += count * (f0 + f1) / 2.0

    @staticmethod
    def _sum_exact(timing_at, lo: int, hi: int, acc: List[float]) -> None:
        """Step-by-step fallback summation (short or irregular runs)."""
        for kv in range(lo, hi):
            t = timing_at(kv)
            acc[0] += t.time_s
            acc[1] += t.compute_s
            acc[2] += t.memory_s

    # -- closed-form per-step decode series ----------------------------------

    def time_decode_series(self, model: ModelConfig, batch_size: int,
                           kv_start: int, kv_end: int):
        """Per-step decode pricing for every ``kv_len`` in ``[kv_start, kv_end)``.

        Returns three lists of length ``kv_end - kv_start`` — per-step
        ``(time_s, compute_s, memory_s)`` — using the same
        piecewise-affine analysis as :meth:`time_decode_range`: each op's
        affine segments are located once, interior steps are filled by
        endpoint interpolation, and every affine run is verified against a
        probe evaluation of the exact pricer (falling back to dense
        pricing when the affine assumption fails). The serving layer's
        step-cost tables turn these into prefix sums, which is what lets
        a discrete-event simulator fast-forward whole decode intervals.

        Runs in O(#ops x #breakpoints) per-step pricings plus O(steps)
        arithmetic, instead of O(steps x ops x engines).
        """
        steps = kv_end - kv_start
        if steps <= 0:
            return [], [], []
        out_t = [0.0] * steps
        out_c = [0.0] * steps
        out_m = [0.0] * steps
        backend = self.backend
        ops_lo = backend.decode_ops(model, batch_size, kv_start)
        ops_hi = backend.decode_ops(model, batch_size, kv_end - 1)
        kv_mid = kv_start + steps // 2
        ops_mid = backend.decode_ops(model, batch_size, kv_mid) \
            if steps > 8 else None
        for index, (op_lo, op_hi) in enumerate(zip(ops_lo, ops_hi)):
            if op_lo == op_hi:
                # kv_len-independent op: price once, add to every step.
                timing = self.time_op(op_lo)
                t_s, c_s, m_s = timing.time_s, timing.compute_s, \
                    timing.memory_s
                for i in range(steps):
                    out_t[i] += t_s
                    out_c[i] += c_s
                    out_m[i] += m_s
                continue
            self._series_varying_op(
                model, batch_size, index, op_lo, op_hi, kv_start, kv_end,
                kv_mid, ops_mid[index] if ops_mid is not None else None,
                out_t, out_c, out_m)
        comm = backend.decode_comm_s(model, batch_size)
        if comm:
            # Per-iteration communication rides every step's wall time.
            for i in range(steps):
                out_t[i] += comm
        return out_t, out_c, out_m

    def _series_varying_op(self, model: ModelConfig, batch_size: int,
                           index: int, op_lo: Op, op_hi: Op,
                           kv_start: int, kv_end: int,
                           kv_mid: int, op_mid: Optional[Op],
                           out_t, out_c, out_m) -> None:
        """Fill per-step best-engine legs of one kv-varying op."""
        analyzable, varying, slope, offset, timing_at, op_at, memo = \
            self._varying_op_pricer(model, batch_size, index, op_lo, op_hi,
                                    kv_start, kv_end, kv_mid, op_mid)
        base = kv_start
        if not analyzable:
            self._series_exact(timing_at, kv_start, kv_end, base,
                               out_t, out_c, out_m)
            return
        # Memory-dominated fast path — see _sum_varying_op: when every
        # engine's compute leg at the top of the range sits below its
        # memory leg at the bottom, all candidates price as parallel
        # affine lines and the whole range is one affine run.
        cand_lo = self._candidates(op_lo)
        cand_hi = self._candidates(op_hi)
        if self._memory_dominated(cand_lo, cand_hi):
            memo.setdefault(kv_start, self._best(cand_lo))
            memo.setdefault(kv_end - 1, self._best(cand_hi))
            self._series_affine_run(timing_at, kv_start, kv_end, base,
                                    out_t, out_c, out_m)
            return
        bounds = self._tile_cut_bounds(varying, slope, offset,
                                       kv_start, kv_end)
        for lo, hi in zip(bounds, bounds[1:]):
            self._series_tile_segment(timing_at, op_at, memo, lo, hi, base,
                                      out_t, out_c, out_m)

    def _series_tile_segment(self, timing_at, op_at, memo: Dict[int, OpTiming],
                             lo: int, hi: int, base: int,
                             out_t, out_c, out_m) -> None:
        """Per-step fill of one tile-aligned segment (see _sum_tile_segment)."""
        count = hi - lo
        if count <= 4:
            self._series_exact(timing_at, lo, hi, base, out_t, out_c, out_m)
            return
        span = hi - 1 - lo
        cand_lo = self._candidates(op_at(lo))
        cand_hi = self._candidates(op_at(hi - 1))
        memo.setdefault(lo, self._best(cand_lo))
        memo.setdefault(hi - 1, self._best(cand_hi))
        lines = []
        for c0, c1 in zip(cand_lo, cand_hi):
            lines.append((c0.compute_s + c0.overhead_s,
                          (c1.compute_s - c0.compute_s) / span))
            lines.append((c0.memory_s + c0.overhead_s,
                          (c1.memory_s - c0.memory_s) / span))
        cuts = {lo, hi}
        for i in range(len(lines)):
            a0, b0 = lines[i]
            for j in range(i + 1, len(lines)):
                a1, b1 = lines[j]
                if b0 == b1:
                    continue
                x = (a1 - a0) / (b0 - b1)
                if 0.0 < x < span:
                    kv_x = lo + int(x)
                    for kv_c in (kv_x, kv_x + 1):
                        if lo < kv_c < hi:
                            cuts.add(kv_c)
        bounds = sorted(cuts)
        for a, b in zip(bounds, bounds[1:]):
            self._series_affine_run(timing_at, a, b, base,
                                    out_t, out_c, out_m)

    def _series_affine_run(self, timing_at, lo: int, hi: int, base: int,
                           out_t, out_c, out_m) -> None:
        """Interpolated per-step fill over one probe-verified affine run.

        Mirrors :meth:`_sum_affine_run`: the run's endpoints come from the
        exact per-step pricer, a midpoint probe verifies affinity (bisecting
        down to exact evaluation on failure), and interior steps linearly
        interpolate — so every filled value matches the exact pricer to
        within the probe tolerance (1e-11 relative).
        """
        count = hi - lo
        if count <= 4:
            self._series_exact(timing_at, lo, hi, base, out_t, out_c, out_m)
            return
        t_lo, t_hi = timing_at(lo), timing_at(hi - 1)
        fields_lo = (t_lo.time_s, t_lo.compute_s, t_lo.memory_s)
        fields_hi = (t_hi.time_s, t_hi.compute_s, t_hi.memory_s)
        span = count - 1
        probe = lo + span // 2
        t_p = timing_at(probe)
        frac = (probe - lo) / span
        for got, f0, f1 in zip((t_p.time_s, t_p.compute_s, t_p.memory_s),
                               fields_lo, fields_hi):
            want = f0 + (f1 - f0) * frac
            if abs(got - want) > 1e-11 * max(abs(got), abs(want), 1e-30):
                mid = lo + count // 2
                self._series_affine_run(timing_at, lo, mid, base,
                                        out_t, out_c, out_m)
                self._series_affine_run(timing_at, mid, hi, base,
                                        out_t, out_c, out_m)
                return
        t0, c0, m0 = fields_lo
        dt = (fields_hi[0] - t0) / span
        dc = (fields_hi[1] - c0) / span
        dm = (fields_hi[2] - m0) / span
        for i in range(count):
            idx = lo - base + i
            out_t[idx] += t0 + dt * i
            out_c[idx] += c0 + dc * i
            out_m[idx] += m0 + dm * i

    @staticmethod
    def _series_exact(timing_at, lo: int, hi: int, base: int,
                      out_t, out_c, out_m) -> None:
        """Dense per-step fill (short or irregular runs)."""
        for kv in range(lo, hi):
            t = timing_at(kv)
            idx = kv - base
            out_t[idx] += t.time_s
            out_c[idx] += t.compute_s
            out_m[idx] += t.memory_s


@dataclasses.dataclass(frozen=True)
class DecodeRangeTiming:
    """Aggregate pricing of a whole decode phase (all steps summed).

    Mirrors the sums a per-step loop would accumulate into
    :class:`~repro.engine.results.PhaseStats`.

    Attributes:
        steps: Decode steps priced.
        time_s: Total phase time.
        compute_s / memory_s: Busy-time sums of the chosen rooflines.
        flops: Total FLOPs executed.
        weight_bytes / activation_bytes / kv_read_bytes / kv_write_bytes:
            Memory traffic by category.
        op_times: Total time per operator name.
    """

    steps: int
    time_s: float
    compute_s: float
    memory_s: float
    flops: float
    weight_bytes: float
    activation_bytes: float
    kv_read_bytes: float
    kv_write_bytes: float
    op_times: Dict[str, float]
