"""Shared step-cost memoization for the serving and cluster layers.

The discrete-event serving simulators price the same two primitives over
and over: a single-sequence prefill at some prompt length, and one fused
decode iteration at some (batch size, mean kv length). Both are pure
functions of ``(platform pricing signature, model, shape)``, so a fleet
of replicas re-derives identical numbers millions of times.

:class:`DecodeCostTable` memoizes them once per
``(pricing_signature, model)`` and — the part that enables event-horizon
fast-forward (:meth:`repro.cluster.node.ReplicaNode.advance_to`) — keeps
per-batch-size *prefix-sum curves* of decode step cost, built lazily in
chunks from :meth:`~repro.engine.executor.OperatorExecutor.time_decode_series`:

``prefix_t[i]`` = total time of decode steps at ``kv_len`` 1..i, so

* one iteration at ``kv`` costs ``prefix_t[kv] - prefix_t[kv - 1]``,
* a whole run of ``k`` iterations starting at mean kv ``m`` costs
  ``prefix_t[m + k - 1] - prefix_t[m - 1]`` (one subtraction), and
* "how many iterations start before a deadline" is one binary search
  over the curve (:meth:`DecodeCostTable.steps_within`).

Tables are shared across every replica with an equal pricing signature
via the module registry (:func:`decode_cost_table`);
:func:`repro.experiments.clear_caches` empties the registry whenever
calibration constants change, which is the memo-invalidation rule — keys
capture platform, dtype, bandwidth, and compute scale, but *not* the
process-wide calibration tables those were derived from.
"""

import bisect
from typing import Dict, List, Tuple

try:  # Vectorizes the expected-demand convolution; loop fallback below.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

from repro.engine.executor import OperatorExecutor
from repro.models.config import ModelConfig

#: Minimum extension chunk: large enough to amortize the closed-form
#: series analysis, small enough not to over-price short workloads.
_MIN_CHUNK = 256


class _BatchCurve:
    """Prefix-sum decode cost curves for one batch size.

    ``prefix_t[i]`` sums step times for ``kv_len`` in ``[1, i]`` (index 0
    is the empty sum), with matching compute/memory-leg curves for trace
    attribution. Curves grow by doubling so a trace that decodes to kv
    4000 pays O(log) extension calls, each a closed-form series build.
    """

    __slots__ = ("_executor", "_model", "_batch",
                 "prefix_t", "prefix_c", "prefix_m")

    def __init__(self, executor: OperatorExecutor, model: ModelConfig,
                 batch: int):
        self._executor = executor
        self._model = model
        self._batch = batch
        self.prefix_t: List[float] = [0.0]
        self.prefix_c: List[float] = [0.0]
        self.prefix_m: List[float] = [0.0]

    def ensure(self, kv_end: int) -> None:
        """Extend the curves so every ``kv_len < kv_end`` is priced."""
        have = len(self.prefix_t)  # kv values 1..have-1 are priced
        if kv_end <= have:
            return
        target = max(kv_end, 2 * (have - 1), _MIN_CHUNK + 1)
        ts, cs, ms = self._executor.time_decode_series(
            self._model, self._batch, have, target)
        pt, pc, pm = self.prefix_t, self.prefix_c, self.prefix_m
        t, c, m = pt[-1], pc[-1], pm[-1]
        for dt, dc, dm in zip(ts, cs, ms):
            t += dt
            c += dc
            m += dm
            pt.append(t)
            pc.append(c)
            pm.append(m)


class DecodeCostTable:
    """Memoized serving-cost primitives for one (executor, model) pairing.

    Prices bit-identically to the executor it wraps (prefill values are
    cached verbatim; decode values come from the probe-verified
    closed-form series, which tests pin to the per-step loop at ≤1e-9
    relative). Obtain instances through :func:`decode_cost_table` so
    replicas with equal pricing signatures share one table.
    """

    def __init__(self, executor: OperatorExecutor, model: ModelConfig):
        self.executor = executor
        self.model = model
        self._curves: Dict[int, _BatchCurve] = {}
        self._prefill: Dict[Tuple[int, int], float] = {}
        self._prefill_split: Dict[Tuple[int, int],
                                  Tuple[float, float]] = {}
        self._expected: Dict[tuple, float] = {}

    def _curve(self, batch: int) -> _BatchCurve:
        curve = self._curves.get(batch)
        if curve is None:
            curve = _BatchCurve(self.executor, self.model, batch)
            self._curves[batch] = curve
        return curve

    # -- prefill -----------------------------------------------------------

    def prefill_time(self, batch: int, input_len: int) -> float:
        """Single prefill pass cost (memoized exact pricing).

        Ops come from the executor's backend (quantized / sharded / plain
        as configured), plus the backend's per-pass communication.
        """
        key = (batch, input_len)
        cached = self._prefill.get(key)
        if cached is None:
            timings = self.executor.time_prefill_ops(self.model, batch,
                                                     input_len)
            cached = sum(t.time_s for t in timings) \
                + self.executor.prefill_comm_s(self.model, batch, input_len)
            self._prefill[key] = cached
        return cached

    def prefill_split(self, batch: int, input_len: int):
        """Memoized (compute_s, memory_s) legs of one prefill pass.

        Communication is wall time, not a roofline leg, so it does not
        appear here — matching how the decode curves attribute it.
        """
        key = (batch, input_len)
        cached = self._prefill_split.get(key)
        if cached is None:
            timings = self.executor.time_prefill_ops(self.model, batch,
                                                     input_len)
            cached = (sum(t.compute_s for t in timings),
                      sum(t.memory_s for t in timings))
            self._prefill_split[key] = cached
        return cached

    # -- decode ------------------------------------------------------------

    def step_time(self, batch: int, kv_len: int) -> float:
        """One fused decode iteration at ``(batch, kv_len)``."""
        kv = max(1, kv_len)
        curve = self._curve(batch)
        curve.ensure(kv + 1)
        return curve.prefix_t[kv] - curve.prefix_t[kv - 1]

    def step_split(self, batch: int, kv_len: int):
        """(compute_s, memory_s) legs of one decode iteration."""
        kv = max(1, kv_len)
        curve = self._curve(batch)
        curve.ensure(kv + 1)
        return (curve.prefix_c[kv] - curve.prefix_c[kv - 1],
                curve.prefix_m[kv] - curve.prefix_m[kv - 1])

    def range_cost(self, batch: int, kv_start: int, kv_end: int):
        """(time, compute, memory) summed over ``kv_len`` in ``[kv_start, kv_end)``.

        One subtraction per leg — the closed-form pricing of a whole
        coalesced decode run.
        """
        curve = self._curve(batch)
        curve.ensure(kv_end)
        a, b = kv_start - 1, kv_end - 1
        return (curve.prefix_t[b] - curve.prefix_t[a],
                curve.prefix_c[b] - curve.prefix_c[a],
                curve.prefix_m[b] - curve.prefix_m[a])

    def prefix_times(self, batch: int, kv_end: int) -> List[float]:
        """The cumulative decode-time curve, ensured through ``kv_end``.

        Read-only access to the raw prefix list behind
        :meth:`step_times` / :meth:`range_cost`, for hot callers that
        difference consecutive entries in place instead of
        materializing a per-step list (entry ``kv`` minus entry
        ``kv - 1`` is the iteration cost at that KV length).
        """
        curve = self._curve(batch)
        curve.ensure(kv_end)
        return curve.prefix_t

    def step_times(self, batch: int, kv_start: int,
                   kv_end: int) -> List[float]:
        """Per-iteration times for ``kv_len`` in ``[kv_start, kv_end)``.

        Used to expand a coalesced run back into individual inter-token
        gaps when a caller collects the gap distribution.
        """
        curve = self._curve(batch)
        curve.ensure(kv_end)
        pt = curve.prefix_t
        # Slice-pair differencing: same values as indexing pt[kv]-pt[kv-1]
        # per kv, without a Python-level index computation per step.
        return [b - a for a, b in zip(pt[kv_start - 1:kv_end - 1],
                                      pt[kv_start:kv_end])]

    # -- expected demands (fluid solver) -----------------------------------

    def expected_prefill_time(self, input_range: Tuple[int, int],
                              samples: int = 17) -> float:
        """Mean single-sequence prefill time over a uniform prompt range.

        ``input_range`` is inclusive, matching the workload generators.
        Narrow ranges (at most *samples* lengths) are averaged exactly;
        wide ones integrate a trapezoid through *samples* evenly spaced
        lengths — prefill cost is piecewise smooth in the prompt length
        (affine weight traffic plus a quadratic attention term), so the
        sampled mean tracks the exact one to well under the fluid
        solver's validity envelope while pricing ~17 prefills instead
        of hundreds. Memoized per (range, samples).
        """
        lo, hi = input_range
        if lo < 1 or hi < lo:
            raise ValueError(f"bad input range {input_range}")
        key = ("prefill", lo, hi, samples)
        cached = self._expected.get(key)
        if cached is not None:
            return cached
        width = hi - lo + 1
        if width <= samples:
            mean = sum(self.prefill_time(1, length)
                       for length in range(lo, hi + 1)) / width
        else:
            span = hi - lo
            xs = sorted({lo + round(i * span / (samples - 1))
                         for i in range(samples)})
            ys = [self.prefill_time(1, x) for x in xs]
            area = sum((ys[i] + ys[i + 1]) / 2.0 * (xs[i + 1] - xs[i])
                       for i in range(len(xs) - 1))
            mean = area / span
        self._expected[key] = mean
        return mean

    def expected_decode_time(self, batch: int,
                             input_range: Tuple[int, int],
                             output_range: Tuple[int, int]) -> float:
        """Expected decode-phase wall seconds at a fixed batch size.

        For one request with shape ``(Lin, Lout)`` decoding in a batch
        of *batch*, the whole-batch iterations it lives through cost
        ``prefix_t[Lin + Lout - 1] - prefix_t[Lin]`` (its ``Lout - 1``
        steps at kv ``Lin + 1 .. Lin + Lout - 1``). This returns the
        exact expectation of that quantity over independent uniform
        integer draws from the two inclusive ranges: the start term is
        a slice mean, the end term a discrete convolution (trapezoidal
        sum-of-uniforms weights) against the prefix curve. Memoized per
        (batch, ranges) — the fluid solver's per-occupancy demand.
        """
        lo_in, hi_in = input_range
        lo_out, hi_out = output_range
        if lo_in < 1 or hi_in < lo_in:
            raise ValueError(f"bad input range {input_range}")
        if lo_out < 1 or hi_out < lo_out:
            raise ValueError(f"bad output range {output_range}")
        key = ("decode", batch, lo_in, hi_in, lo_out, hi_out)
        cached = self._expected.get(key)
        if cached is not None:
            return cached
        n_in = hi_in - lo_in + 1
        n_out = hi_out - lo_out + 1
        curve = self._curve(batch)
        curve.ensure(hi_in + hi_out)
        pt = curve.prefix_t
        mean_start = sum(pt[lo_in:hi_in + 1]) / n_in
        # S = Lin + Lout has trapezoidal weights; index the curve at
        # S - 1 (the request's last decode kv).
        lo_sum, hi_sum = lo_in + lo_out, hi_in + hi_out
        if _np is not None:
            weights = _np.convolve(_np.full(n_in, 1.0 / n_in),
                                   _np.full(n_out, 1.0 / n_out))
            mean_end = float(weights
                             @ _np.asarray(pt[lo_sum - 1:hi_sum]))
        else:
            total = 0.0
            for s in range(lo_sum, hi_sum + 1):
                count = min(s - lo_sum, hi_sum - s,
                            n_in - 1, n_out - 1) + 1
                total += count * pt[s - 1]
            mean_end = total / (n_in * n_out)
        value = mean_end - mean_start
        self._expected[key] = value
        return value

    def steps_within(self, batch: int, kv_start: int, budget: float,
                     limit: int) -> int:
        """Iterations (≤ *limit*) whose start falls strictly inside *budget*.

        Iteration ``j`` (0-based, kv ``kv_start + j``) starts after the
        cumulative cost of its predecessors; it runs iff that start is
        strictly below *budget* — the same strict comparison the step
        loop's event ordering applies, found by one ``bisect`` over the
        prefix curve instead of ``j`` additions.
        """
        curve = self._curve(batch)
        curve.ensure(kv_start + limit)
        base = kv_start - 1
        target = curve.prefix_t[base] + budget
        return bisect.bisect_left(curve.prefix_t, target, base,
                                  base + limit) - base


#: Registry of shared tables, keyed by (pricing signature, model). Model
#: configs are frozen dataclasses, so equal configs share even across
#: separately-built replicas.
_TABLES: Dict[tuple, DecodeCostTable] = {}


def decode_cost_table(executor: OperatorExecutor,
                      model: ModelConfig) -> DecodeCostTable:
    """The shared cost table for *executor*'s pricing signature and *model*."""
    key = (executor.pricing_signature, model)
    table = _TABLES.get(key)
    if table is None:
        table = DecodeCostTable(executor, model)
        _TABLES[key] = table
    return table


def clear_decode_cost_tables() -> None:
    """Empty the table registry (calibration constants changed)."""
    _TABLES.clear()
