"""Shared step-cost memoization for the serving and cluster layers.

The discrete-event serving simulators price the same two primitives over
and over: a single-sequence prefill at some prompt length, and one fused
decode iteration at some (batch size, mean kv length). Both are pure
functions of ``(platform pricing signature, model, shape)``, so a fleet
of replicas re-derives identical numbers millions of times.

:class:`DecodeCostTable` memoizes them once per
``(pricing_signature, model)`` and — the part that enables event-horizon
fast-forward (:meth:`repro.cluster.node.ReplicaNode.advance_to`) — keeps
per-batch-size *prefix-sum curves* of decode step cost, built lazily in
chunks from :meth:`~repro.engine.executor.OperatorExecutor.time_decode_series`:

``prefix_t[i]`` = total time of decode steps at ``kv_len`` 1..i, so

* one iteration at ``kv`` costs ``prefix_t[kv] - prefix_t[kv - 1]``,
* a whole run of ``k`` iterations starting at mean kv ``m`` costs
  ``prefix_t[m + k - 1] - prefix_t[m - 1]`` (one subtraction), and
* "how many iterations start before a deadline" is one binary search
  over the curve (:meth:`DecodeCostTable.steps_within`).

Tables are shared across every replica with an equal pricing signature
via the module registry (:func:`decode_cost_table`);
:func:`repro.experiments.clear_caches` empties the registry whenever
calibration constants change, which is the memo-invalidation rule — keys
capture platform, dtype, bandwidth, and compute scale, but *not* the
process-wide calibration tables those were derived from.
"""

import bisect
from typing import Dict, List, Tuple

from repro.engine.executor import OperatorExecutor
from repro.models.config import ModelConfig

#: Minimum extension chunk: large enough to amortize the closed-form
#: series analysis, small enough not to over-price short workloads.
_MIN_CHUNK = 256


class _BatchCurve:
    """Prefix-sum decode cost curves for one batch size.

    ``prefix_t[i]`` sums step times for ``kv_len`` in ``[1, i]`` (index 0
    is the empty sum), with matching compute/memory-leg curves for trace
    attribution. Curves grow by doubling so a trace that decodes to kv
    4000 pays O(log) extension calls, each a closed-form series build.
    """

    __slots__ = ("_executor", "_model", "_batch",
                 "prefix_t", "prefix_c", "prefix_m")

    def __init__(self, executor: OperatorExecutor, model: ModelConfig,
                 batch: int):
        self._executor = executor
        self._model = model
        self._batch = batch
        self.prefix_t: List[float] = [0.0]
        self.prefix_c: List[float] = [0.0]
        self.prefix_m: List[float] = [0.0]

    def ensure(self, kv_end: int) -> None:
        """Extend the curves so every ``kv_len < kv_end`` is priced."""
        have = len(self.prefix_t)  # kv values 1..have-1 are priced
        if kv_end <= have:
            return
        target = max(kv_end, 2 * (have - 1), _MIN_CHUNK + 1)
        ts, cs, ms = self._executor.time_decode_series(
            self._model, self._batch, have, target)
        pt, pc, pm = self.prefix_t, self.prefix_c, self.prefix_m
        t, c, m = pt[-1], pc[-1], pm[-1]
        for dt, dc, dm in zip(ts, cs, ms):
            t += dt
            c += dc
            m += dm
            pt.append(t)
            pc.append(c)
            pm.append(m)


class DecodeCostTable:
    """Memoized serving-cost primitives for one (executor, model) pairing.

    Prices bit-identically to the executor it wraps (prefill values are
    cached verbatim; decode values come from the probe-verified
    closed-form series, which tests pin to the per-step loop at ≤1e-9
    relative). Obtain instances through :func:`decode_cost_table` so
    replicas with equal pricing signatures share one table.
    """

    def __init__(self, executor: OperatorExecutor, model: ModelConfig):
        self.executor = executor
        self.model = model
        self._curves: Dict[int, _BatchCurve] = {}
        self._prefill: Dict[Tuple[int, int], float] = {}
        self._prefill_split: Dict[Tuple[int, int],
                                  Tuple[float, float]] = {}

    def _curve(self, batch: int) -> _BatchCurve:
        curve = self._curves.get(batch)
        if curve is None:
            curve = _BatchCurve(self.executor, self.model, batch)
            self._curves[batch] = curve
        return curve

    # -- prefill -----------------------------------------------------------

    def prefill_time(self, batch: int, input_len: int) -> float:
        """Single prefill pass cost (memoized exact pricing).

        Ops come from the executor's backend (quantized / sharded / plain
        as configured), plus the backend's per-pass communication.
        """
        key = (batch, input_len)
        cached = self._prefill.get(key)
        if cached is None:
            timings = self.executor.time_prefill_ops(self.model, batch,
                                                     input_len)
            cached = sum(t.time_s for t in timings) \
                + self.executor.prefill_comm_s(self.model, batch, input_len)
            self._prefill[key] = cached
        return cached

    def prefill_split(self, batch: int, input_len: int):
        """Memoized (compute_s, memory_s) legs of one prefill pass.

        Communication is wall time, not a roofline leg, so it does not
        appear here — matching how the decode curves attribute it.
        """
        key = (batch, input_len)
        cached = self._prefill_split.get(key)
        if cached is None:
            timings = self.executor.time_prefill_ops(self.model, batch,
                                                     input_len)
            cached = (sum(t.compute_s for t in timings),
                      sum(t.memory_s for t in timings))
            self._prefill_split[key] = cached
        return cached

    # -- decode ------------------------------------------------------------

    def step_time(self, batch: int, kv_len: int) -> float:
        """One fused decode iteration at ``(batch, kv_len)``."""
        kv = max(1, kv_len)
        curve = self._curve(batch)
        curve.ensure(kv + 1)
        return curve.prefix_t[kv] - curve.prefix_t[kv - 1]

    def step_split(self, batch: int, kv_len: int):
        """(compute_s, memory_s) legs of one decode iteration."""
        kv = max(1, kv_len)
        curve = self._curve(batch)
        curve.ensure(kv + 1)
        return (curve.prefix_c[kv] - curve.prefix_c[kv - 1],
                curve.prefix_m[kv] - curve.prefix_m[kv - 1])

    def range_cost(self, batch: int, kv_start: int, kv_end: int):
        """(time, compute, memory) summed over ``kv_len`` in ``[kv_start, kv_end)``.

        One subtraction per leg — the closed-form pricing of a whole
        coalesced decode run.
        """
        curve = self._curve(batch)
        curve.ensure(kv_end)
        a, b = kv_start - 1, kv_end - 1
        return (curve.prefix_t[b] - curve.prefix_t[a],
                curve.prefix_c[b] - curve.prefix_c[a],
                curve.prefix_m[b] - curve.prefix_m[a])

    def prefix_times(self, batch: int, kv_end: int) -> List[float]:
        """The cumulative decode-time curve, ensured through ``kv_end``.

        Read-only access to the raw prefix list behind
        :meth:`step_times` / :meth:`range_cost`, for hot callers that
        difference consecutive entries in place instead of
        materializing a per-step list (entry ``kv`` minus entry
        ``kv - 1`` is the iteration cost at that KV length).
        """
        curve = self._curve(batch)
        curve.ensure(kv_end)
        return curve.prefix_t

    def step_times(self, batch: int, kv_start: int,
                   kv_end: int) -> List[float]:
        """Per-iteration times for ``kv_len`` in ``[kv_start, kv_end)``.

        Used to expand a coalesced run back into individual inter-token
        gaps when a caller collects the gap distribution.
        """
        curve = self._curve(batch)
        curve.ensure(kv_end)
        pt = curve.prefix_t
        # Slice-pair differencing: same values as indexing pt[kv]-pt[kv-1]
        # per kv, without a Python-level index computation per step.
        return [b - a for a, b in zip(pt[kv_start - 1:kv_end - 1],
                                      pt[kv_start:kv_end])]

    def steps_within(self, batch: int, kv_start: int, budget: float,
                     limit: int) -> int:
        """Iterations (≤ *limit*) whose start falls strictly inside *budget*.

        Iteration ``j`` (0-based, kv ``kv_start + j``) starts after the
        cumulative cost of its predecessors; it runs iff that start is
        strictly below *budget* — the same strict comparison the step
        loop's event ordering applies, found by one ``bisect`` over the
        prefix curve instead of ``j`` additions.
        """
        curve = self._curve(batch)
        curve.ensure(kv_start + limit)
        base = kv_start - 1
        target = curve.prefix_t[base] + budget
        return bisect.bisect_left(curve.prefix_t, target, base,
                                  base + limit) - base


#: Registry of shared tables, keyed by (pricing signature, model). Model
#: configs are frozen dataclasses, so equal configs share even across
#: separately-built replicas.
_TABLES: Dict[tuple, DecodeCostTable] = {}


def decode_cost_table(executor: OperatorExecutor,
                      model: ModelConfig) -> DecodeCostTable:
    """The shared cost table for *executor*'s pricing signature and *model*."""
    key = (executor.pricing_signature, model)
    table = _TABLES.get(key)
    if table is None:
        table = DecodeCostTable(executor, model)
        _TABLES[key] = table
    return table


def clear_decode_cost_tables() -> None:
    """Empty the table registry (calibration constants changed)."""
    _TABLES.clear()
