"""Result dataclasses: per-phase statistics and whole-request metrics.

Field names follow the paper's metric vocabulary (Section II-C): TTFT,
TPOT, E2E latency, and tokens/second throughput per phase.
"""

import dataclasses
from typing import Dict, List

from repro.engine.executor import OpTiming
from repro.engine.request import InferenceRequest


@dataclasses.dataclass(frozen=True)
class PhaseStats:
    """Aggregated execution statistics for one inference phase.

    Attributes:
        name: "prefill" or "decode".
        time_s: Total simulated phase time.
        flops: FLOPs executed.
        weight_bytes / activation_bytes / kv_bytes: Memory traffic by
            category (decode's kv_bytes include reads of the whole cache
            every step — the phase's defining cost).
        compute_busy_s: Time the compute leg would need alone.
        memory_busy_s: Time the memory leg would need alone.
        op_times: Total time per operator name (breakdown analyses).
    """

    name: str
    time_s: float
    flops: float
    weight_bytes: float
    activation_bytes: float
    kv_bytes: float
    compute_busy_s: float
    memory_busy_s: float
    op_times: Dict[str, float]

    @property
    def total_bytes(self) -> float:
        """All memory traffic in the phase."""
        return self.weight_bytes + self.activation_bytes + self.kv_bytes

    @property
    def compute_utilization(self) -> float:
        """Fraction of phase time the compute units are busy."""
        if self.time_s == 0:
            return 0.0
        return min(1.0, self.compute_busy_s / self.time_s)

    @property
    def memory_utilization(self) -> float:
        """Fraction of phase time the memory system is busy."""
        if self.time_s == 0:
            return 0.0
        return min(1.0, self.memory_busy_s / self.time_s)

    @property
    def memory_bound(self) -> bool:
        """Whether the phase overall is memory-bound."""
        return self.memory_busy_s >= self.compute_busy_s

    @property
    def arithmetic_intensity(self) -> float:
        """Phase FLOPs per byte of traffic."""
        if self.total_bytes == 0:
            return 0.0
        return self.flops / self.total_bytes


def phase_stats_from_timings(name: str, timings: List[OpTiming]) -> PhaseStats:
    """Aggregate a list of op timings into one :class:`PhaseStats`."""
    op_times: Dict[str, float] = {}
    for t in timings:
        op_times[t.op.name] = op_times.get(t.op.name, 0.0) + t.time_s
    return PhaseStats(
        name=name,
        time_s=sum(t.time_s for t in timings),
        flops=sum(t.op.flops for t in timings),
        weight_bytes=sum(t.op.weight_bytes for t in timings),
        activation_bytes=sum(t.op.activation_bytes for t in timings),
        kv_bytes=sum(t.op.kv_read_bytes + t.op.kv_write_bytes for t in timings),
        compute_busy_s=sum(t.compute_s for t in timings),
        memory_busy_s=sum(t.memory_s for t in timings),
        op_times=op_times,
    )


def merge_phase_stats(name: str, phases: List[PhaseStats]) -> PhaseStats:
    """Sum several phases (e.g. all decode steps) into one aggregate."""
    op_times: Dict[str, float] = {}
    for phase in phases:
        for op_name, t in phase.op_times.items():
            op_times[op_name] = op_times.get(op_name, 0.0) + t
    return PhaseStats(
        name=name,
        time_s=sum(p.time_s for p in phases),
        flops=sum(p.flops for p in phases),
        weight_bytes=sum(p.weight_bytes for p in phases),
        activation_bytes=sum(p.activation_bytes for p in phases),
        kv_bytes=sum(p.kv_bytes for p in phases),
        compute_busy_s=sum(p.compute_busy_s for p in phases),
        memory_busy_s=sum(p.memory_busy_s for p in phases),
        op_times=op_times,
    )


@dataclasses.dataclass(frozen=True)
class InferenceResult:
    """Complete simulated execution of one request on one platform.

    All latency metrics are in (simulated) seconds.

    Attributes:
        model_name / platform_name: Identification.
        request: The request executed.
        prefill: Prefill-phase statistics (TTFT = prefill.time_s).
        decode: Aggregate of all decode steps.
        config_label: NUMA/core configuration label ("quad_flat/48c", or
            "" for GPUs).
    """

    model_name: str
    platform_name: str
    request: InferenceRequest
    prefill: PhaseStats
    decode: PhaseStats
    config_label: str = ""

    # -- latency metrics (Section II-C) -----------------------------------

    @property
    def ttft_s(self) -> float:
        """Time to first token: the prefill phase latency."""
        return self.prefill.time_s

    @property
    def tpot_s(self) -> float:
        """Time per output token: mean decode-step latency (0 if no steps)."""
        if self.request.decode_steps == 0:
            return 0.0
        return self.decode.time_s / self.request.decode_steps

    @property
    def e2e_s(self) -> float:
        """End-to-end latency: prefill + all decode steps."""
        return self.prefill.time_s + self.decode.time_s

    # -- throughput metrics ------------------------------------------------

    @property
    def e2e_throughput(self) -> float:
        """Generated tokens per second over the whole request."""
        return self.request.total_generated_tokens / self.e2e_s

    @property
    def prefill_throughput(self) -> float:
        """Prompt tokens processed per second during prefill."""
        return self.request.batch_size * self.request.input_len / self.ttft_s

    @property
    def decode_throughput(self) -> float:
        """Tokens generated per second during decode (0 if no steps)."""
        if self.decode.time_s == 0:
            return 0.0
        return (self.request.batch_size * self.request.decode_steps
                / self.decode.time_s)

    def summary(self) -> Dict[str, float]:
        """Flat dict of the six headline metrics (for tables/benchmarks)."""
        return {
            "ttft_s": self.ttft_s,
            "tpot_s": self.tpot_s,
            "e2e_s": self.e2e_s,
            "e2e_throughput": self.e2e_throughput,
            "prefill_throughput": self.prefill_throughput,
            "decode_throughput": self.decode_throughput,
        }
