"""Quantized-inference simulation on top of the base engine.

:class:`QuantizedInferenceSimulator` is a thin adapter over the unified
backend layer: it builds a
:class:`~repro.engine.backend.QuantizedBackend` and delegates to the
base :class:`~repro.engine.inference.InferenceSimulator`, which owns the
quantization rewrite, dtype dispatch (on SPR, FULL_INT8 reaches AMX's
INT8 tiles at twice the BF16 peak), footprint accounting, and the
dequantization-overhead adjustment. The same backend drops into the
batching policies and the cluster unchanged.
"""

import dataclasses

from repro.engine.backend import QuantizedBackend
from repro.engine.executor import OperatorExecutor
from repro.engine.inference import (
    DEFAULT_ENGINE_CONFIG,
    EngineConfig,
    InferenceSimulator,
    MemoryCapacityError,
)
from repro.engine.request import InferenceRequest
from repro.engine.results import InferenceResult
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.quant.weightonly import QuantConfig


class QuantizedInferenceSimulator:
    """Simulates weight-only / full INT8 quantized inference.

    Args:
        platform: Target platform (CPU or in-memory GPU).
        quant: Quantization configuration.
        config: Engine (NUMA/core) configuration.
    """

    def __init__(self, platform: Platform,
                 quant: QuantConfig = QuantConfig(),
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG):
        self.platform = platform
        self.quant = quant
        self.config = config
        self._base = InferenceSimulator(platform, config)

    def backend(self, request: InferenceRequest) -> QuantizedBackend:
        """The execution backend this simulator prices with."""
        return QuantizedBackend(quant=self.quant, dtype=request.dtype)

    def footprint(self, model: ModelConfig, request: InferenceRequest) -> float:
        """Resident bytes under quantization (weights and KV both scale)."""
        return self.backend(request).footprint_bytes(model, request)

    def fits(self, model: ModelConfig, request: InferenceRequest) -> bool:
        """Whether the quantized footprint fits this configuration."""
        return self.footprint(model, request) <= self._base.memory_capacity()

    def _executor(self, model: ModelConfig,
                  request: InferenceRequest) -> OperatorExecutor:
        backend = self.backend(request)
        return OperatorExecutor(
            self.platform, backend.compute_dtype,
            bandwidth=self._base.effective_bandwidth(
                backend.footprint_bytes(model, request)),
            compute_scale=self._base.compute_scale(),
            backend=backend)

    def run(self, model: ModelConfig,
            request: InferenceRequest = InferenceRequest()) -> InferenceResult:
        """Simulate the quantized request end to end."""
        if not self.fits(model, request):
            raise MemoryCapacityError(
                f"{model.name} (quantized) needs "
                f"{self.footprint(model, request) / 1e9:.1f} GB but "
                f"{self.platform.name} has "
                f"{self._base.memory_capacity() / 1e9:.1f} GB")
        simulator = InferenceSimulator(self.platform, self.config,
                                       self.backend(request))
        # exact=True keeps the per-step decode loop this simulator always
        # used, so results are bit-identical to the pre-backend revision.
        result = simulator.run(model, request, exact=True)
        return dataclasses.replace(
            result, model_name=f"{model.name}+{self.quant.scheme.value}")
