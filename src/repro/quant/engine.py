"""Quantized-inference simulation on top of the base engine.

:class:`QuantizedInferenceSimulator` reuses the whole in-memory pipeline
(operator graphs, NUMA/core configuration, executor) and applies the
quantization rewrite to each pass's operators before pricing. Compute is
priced at the scheme's compute dtype — on SPR, FULL_INT8 dispatches to
AMX's INT8 tiles at twice the BF16 peak.
"""

import dataclasses

from repro.engine.executor import OperatorExecutor
from repro.engine.inference import (
    DEFAULT_ENGINE_CONFIG,
    EngineConfig,
    InferenceSimulator,
    MemoryCapacityError,
)
from repro.engine.request import InferenceRequest
from repro.engine.results import (
    InferenceResult,
    merge_phase_stats,
    phase_stats_from_timings,
)
from repro.hardware.platform import Platform
from repro.models.config import ModelConfig
from repro.models.memory import (
    kv_cache_bytes,
    peak_activation_bytes,
)
from repro.models.opgraph import decode_step_ops, prefill_ops
from repro.quant.weightonly import (
    QuantConfig,
    QuantScheme,
    quantize_ops,
    quantized_weight_bytes,
)


class QuantizedInferenceSimulator:
    """Simulates weight-only / full INT8 quantized inference.

    Args:
        platform: Target platform (CPU or in-memory GPU).
        quant: Quantization configuration.
        config: Engine (NUMA/core) configuration.
    """

    def __init__(self, platform: Platform,
                 quant: QuantConfig = QuantConfig(),
                 config: EngineConfig = DEFAULT_ENGINE_CONFIG):
        self.platform = platform
        self.quant = quant
        self.config = config
        self._base = InferenceSimulator(platform, config)

    def footprint(self, model: ModelConfig, request: InferenceRequest) -> float:
        """Resident bytes under quantization (weights and KV both scale)."""
        return (quantized_weight_bytes(model, self.quant)
                + kv_cache_bytes(model, request.max_seq_len,
                                 request.batch_size, request.dtype)
                * self.quant.kv_bytes_ratio()
                + peak_activation_bytes(model, request.max_seq_len,
                                        request.batch_size, request.dtype))

    def fits(self, model: ModelConfig, request: InferenceRequest) -> bool:
        """Whether the quantized footprint fits this configuration."""
        return self.footprint(model, request) <= self._base.memory_capacity()

    def _executor(self, model: ModelConfig,
                  request: InferenceRequest) -> OperatorExecutor:
        bandwidth = self._base.effective_bandwidth(
            self.footprint(model, request))
        return OperatorExecutor(
            self.platform, self.quant.compute_dtype,
            bandwidth=bandwidth,
            compute_scale=self._base.compute_scale())

    def _price_pass(self, executor: OperatorExecutor, ops):
        ops = quantize_ops(ops, self.quant)
        timings = executor.time_ops(ops)
        weight_only = self.quant.scheme in (QuantScheme.WEIGHT_ONLY_INT8,
                                            QuantScheme.WEIGHT_ONLY_INT4)
        if weight_only and self.quant.dequant_overhead:
            # Dequantization rides the GEMM inner loop: inflate the compute
            # leg of weight GEMMs by the configured fraction.
            inflated = []
            for timing in timings:
                if timing.op.weight_bytes > 0 and timing.op.is_gemm:
                    extra = timing.compute_s * self.quant.dequant_overhead
                    timing = dataclasses.replace(
                        timing,
                        compute_s=timing.compute_s + extra,
                        time_s=max(timing.compute_s + extra,
                                   timing.memory_s) + timing.overhead_s)
                inflated.append(timing)
            timings = inflated
        return timings

    def run(self, model: ModelConfig,
            request: InferenceRequest = InferenceRequest()) -> InferenceResult:
        """Simulate the quantized request end to end."""
        if not self.fits(model, request):
            raise MemoryCapacityError(
                f"{model.name} (quantized) needs "
                f"{self.footprint(model, request) / 1e9:.1f} GB but "
                f"{self.platform.name} has "
                f"{self._base.memory_capacity() / 1e9:.1f} GB")
        executor = self._executor(model, request)

        prefill_timings = self._price_pass(
            executor, prefill_ops(model, request.batch_size,
                                  request.input_len, request.dtype))
        prefill = phase_stats_from_timings("prefill", prefill_timings)

        decode_phases = []
        for step in range(request.decode_steps):
            timings = self._price_pass(
                executor, decode_step_ops(model, request.batch_size,
                                          request.input_len + step,
                                          request.dtype))
            decode_phases.append(
                phase_stats_from_timings(f"decode[{step}]", timings))
        decode = (merge_phase_stats("decode", decode_phases)
                  if decode_phases else phase_stats_from_timings("decode", []))

        return InferenceResult(
            model_name=f"{model.name}+{self.quant.scheme.value}",
            platform_name=self.platform.name,
            request=request,
            prefill=prefill,
            decode=decode,
            config_label=self._base.config_label,
        )
