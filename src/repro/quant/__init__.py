"""Weight-only / INT8 quantization extension (paper Section VII-B)."""

from repro.quant.weightonly import (
    QuantConfig,
    QuantScheme,
    is_weight_gemm,
    quantize_op,
    quantize_ops,
    quantized_weight_bytes,
)

__all__ = [
    "QuantConfig",
    "QuantScheme",
    "QuantizedInferenceSimulator",
    "is_weight_gemm",
    "quantize_op",
    "quantize_ops",
    "quantized_weight_bytes",
]


def __getattr__(name):
    # Imported lazily: quant.engine depends on the engine package, which
    # itself imports repro.quant.weightonly (via the backend layer) while
    # initializing — an eager import here would be circular.
    if name == "QuantizedInferenceSimulator":
        from repro.quant.engine import QuantizedInferenceSimulator
        return QuantizedInferenceSimulator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
