"""Weight-only / INT8 quantization extension (paper Section VII-B)."""

from repro.quant.engine import QuantizedInferenceSimulator
from repro.quant.weightonly import (
    QuantConfig,
    QuantScheme,
    is_weight_gemm,
    quantize_op,
    quantize_ops,
    quantized_weight_bytes,
)

__all__ = [
    "QuantConfig",
    "QuantScheme",
    "QuantizedInferenceSimulator",
    "is_weight_gemm",
    "quantize_op",
    "quantize_ops",
    "quantized_weight_bytes",
]
