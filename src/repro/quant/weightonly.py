"""Weight-only quantization model (paper Section VII-B, ref [48]).

The paper's related work highlights weight-only INT8/INT4 quantization as
the practical route to efficient CPU inference: weights are stored in a
narrow integer format and dequantized to BF16 on the fly (or consumed
directly by AMX's INT8 tile path). The performance consequences the model
captures:

* **weight traffic shrinks** by the storage ratio — a direct win for the
  memory-bound decode phase;
* **KV cache and activations stay at the activation dtype** (weight-only);
* **compute either stays BF16** (dequant-then-BF16-GEMM, paying a small
  dequantization overhead) or uses the INT8 engine path at 2x AMX peak
  when both operands are quantized (full INT8, with activation
  quantization overhead instead).

This is an *extension* experiment: the paper does not evaluate
quantization, but its decode-bandwidth analysis predicts the outcome, and
the ablation bench verifies the prediction.
"""

import dataclasses
import enum

from repro.hardware.datatypes import DType
from repro.models.config import ModelConfig
from repro.models.layers import Op, OpKind
from repro.utils.validation import require_positive


class QuantScheme(enum.Enum):
    """Supported quantization schemes."""

    NONE = "none"                  # BF16 weights (the paper's baseline)
    WEIGHT_ONLY_INT8 = "w8"        # INT8 weights, BF16 activations/compute
    WEIGHT_ONLY_INT4 = "w4"        # INT4 weights, BF16 activations/compute
    FULL_INT8 = "w8a8"             # INT8 weights + activations, INT8 compute


@dataclasses.dataclass(frozen=True)
class QuantConfig:
    """Quantization configuration for a simulated run.

    Attributes:
        scheme: Quantization scheme.
        group_size: Elements per scale group (per-group scales add
            ``2 / group_size`` bytes per weight byte of overhead).
        dequant_overhead: Fractional compute-time overhead of on-the-fly
            dequantization in the weight-only scheme (fused into the GEMM
            inner loop, small but not free).
        kv_dtype: KV-cache storage dtype. INT8 KV halves cache traffic —
            the long-context decode lever (KV reads grow with context
            while weight reads stay fixed).
    """

    scheme: QuantScheme = QuantScheme.WEIGHT_ONLY_INT8
    group_size: int = 128
    dequant_overhead: float = 0.08
    kv_dtype: DType = DType.BF16

    def __post_init__(self) -> None:
        require_positive(self.group_size, "group_size")
        if not 0 <= self.dequant_overhead < 1:
            raise ValueError(
                f"dequant_overhead must be in [0, 1), got {self.dequant_overhead}")

    @property
    def weight_dtype(self) -> DType:
        """Storage dtype of the quantized weights."""
        if self.scheme is QuantScheme.NONE:
            return DType.BF16
        return DType.INT8

    @property
    def compute_dtype(self) -> DType:
        """Dtype the GEMM engine executes in."""
        if self.scheme is QuantScheme.FULL_INT8:
            return DType.INT8
        return DType.BF16

    def weight_bytes_ratio(self) -> float:
        """Quantized weight bytes per BF16 weight byte (scales included)."""
        if self.scheme is QuantScheme.NONE:
            return 1.0
        scale_overhead = 2.0 / self.group_size  # one BF16 scale per group
        if self.scheme is QuantScheme.WEIGHT_ONLY_INT4:
            return (0.5 + scale_overhead) / DType.BF16.nbytes
        return (DType.INT8.nbytes + scale_overhead) / DType.BF16.nbytes

    def kv_bytes_ratio(self) -> float:
        """Quantized KV bytes per BF16 KV byte."""
        return self.kv_dtype.nbytes / DType.BF16.nbytes


def quantize_op(op: Op, config: QuantConfig) -> Op:
    """Rewrite one operator's traffic/compute for the quantization scheme.

    Weight-carrying GEMMs shrink their weight stream; KV traffic scales by
    the KV-dtype ratio. Activations, norms, and elementwise ops run at the
    activation dtype regardless (weight-only quantization).
    """
    kv_ratio = config.kv_bytes_ratio()
    changed = op
    if config.scheme is not QuantScheme.NONE and op.weight_bytes > 0:
        changed = dataclasses.replace(
            changed, weight_bytes=op.weight_bytes
            * config.weight_bytes_ratio())
    if kv_ratio != 1.0 and (op.kv_read_bytes > 0 or op.kv_write_bytes > 0):
        changed = dataclasses.replace(
            changed,
            kv_read_bytes=changed.kv_read_bytes * kv_ratio,
            kv_write_bytes=changed.kv_write_bytes * kv_ratio)
    return changed


def quantize_ops(ops, config: QuantConfig):
    """Apply :func:`quantize_op` across an operator list."""
    return [quantize_op(op, config) for op in ops]


def quantized_weight_bytes(model: ModelConfig, config: QuantConfig) -> float:
    """Total weight bytes for *model* under *config*."""
    from repro.models.memory import weight_bytes  # local: avoid cycle
    return weight_bytes(model, DType.BF16) * config.weight_bytes_ratio()


def is_weight_gemm(op: Op) -> bool:
    """Whether an op is a weight-carrying GEMM (the quantization target)."""
    return op.kind is OpKind.LINEAR and op.weight_bytes > 0
