"""Command-line interface.

Usage::

    python -m repro run --platform spr --model opt-13b --batch 8
    python -m repro sweep --platforms icl,spr --models opt-13b,opt-66b
    python -m repro experiment fig8
    python -m repro experiment --all
    python -m repro cluster --platforms spr,spr,h100 --model llama2-7b
    python -m repro cluster --platforms spr,spr --model llama2-7b --trace out.json
    python -m repro cluster --platforms spr,spr --model llama2-7b --rate 4 --duration 3600
    python -m repro trace --out trace.json
    python -m repro roofline --platform spr --model llama2-13b
    python -m repro platforms
    python -m repro models
"""

import argparse
import math
import pathlib
import sys
from typing import List, Optional

from repro.analysis.roofline_chart import roofline_for_run
from repro.core.runner import CharacterizationSweep, is_offloaded, run_inference
from repro.engine.inference import EngineConfig, InferenceSimulator
from repro.engine.request import InferenceRequest
from repro.experiments import all_experiment_ids, run_experiment
from repro.hardware.registry import all_platforms, get_platform
from repro.models.registry import all_models, get_model
from repro.numa.modes import get_config
from repro.utils.formatting import format_table
from repro.utils.units import bytes_to_gb


def _engine_config(args: argparse.Namespace) -> EngineConfig:
    numa = get_config(args.numa) if getattr(args, "numa", None) else None
    cores = getattr(args, "cores", None)
    return EngineConfig(cores=cores, numa=numa)


def _cmd_run(args: argparse.Namespace) -> int:
    platform = get_platform(args.platform)
    model = get_model(args.model)
    request = InferenceRequest(batch_size=args.batch, input_len=args.input,
                               output_len=args.output)
    result = run_inference(platform, model, request, _engine_config(args))
    mode = "offload" if is_offloaded(result) else "in-memory"
    print(format_table(
        ["metric", "value"],
        [["platform", platform.name],
         ["model", model.name],
         ["mode", mode],
         ["TTFT ms", result.ttft_s * 1000],
         ["TPOT ms", result.tpot_s * 1000],
         ["E2E s", result.e2e_s],
         ["tokens/s", result.e2e_throughput],
         ["prefill tokens/s", result.prefill_throughput],
         ["decode tokens/s", result.decode_throughput]],
        title=f"{model.name} on {platform.name} "
              f"(batch={args.batch}, {args.input}/{args.output})"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    platforms = [get_platform(key) for key in args.platforms.split(",")]
    models = [get_model(key) for key in args.models.split(",")]
    batches = [int(b) for b in args.batches.split(",")]
    sweep = CharacterizationSweep(platforms, models, batches,
                                  input_len=args.input,
                                  output_len=args.output,
                                  config=_engine_config(args))
    rows = []
    for row in sweep.run(workers=args.workers, cache_dir=args.cache_dir):
        rows.append([row.model, row.platform, row.batch_size,
                     "off" if row.offloaded else "mem",
                     row.metrics["e2e_s"], row.metrics["e2e_throughput"]])
    print(format_table(
        ["model", "platform", "batch", "mode", "E2E s", "tokens/s"], rows,
        title="characterization sweep"))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ids = all_experiment_ids() if args.all else [args.experiment_id]
    if not args.all and args.experiment_id is None:
        print("specify an experiment id or --all; known ids:\n  "
              + " ".join(all_experiment_ids()), file=sys.stderr)
        return 2
    for experiment_id in ids:
        print(run_experiment(experiment_id).render())
        print()
    return 0


def _cmd_roofline(args: argparse.Namespace) -> int:
    platform = get_platform(args.platform)
    model = get_model(args.model)
    request = InferenceRequest(batch_size=args.batch, input_len=args.input,
                               output_len=args.output)
    result = InferenceSimulator(platform, _engine_config(args)).run(
        model, request)
    print(roofline_for_run(platform, result.prefill, result.decode))
    return 0


def _build_models(args: argparse.Namespace, replicas: int) -> list:
    """Per-replica models from ``--models`` / ``--model``.

    ``--models`` mirrors ``--backend``: one key broadcasts to every
    replica, otherwise the comma-separated list must match
    ``--platforms`` one-for-one — validated here with a clear error
    instead of a downstream IndexError.
    """
    spec = getattr(args, "models", None) or getattr(args, "model", None)
    if not spec:
        raise ValueError("pass --model KEY or --models KEY[,KEY...]")
    keys = spec.split(",")
    if len(keys) == 1:
        keys = keys * replicas
    if len(keys) != replicas:
        raise ValueError(
            f"--models lists {len(keys)} models but --platforms lists "
            f"{replicas} replicas (give one model, or one per replica)")
    return [get_model(key) for key in keys]


def _build_fleet(args: argparse.Namespace, models) -> list:
    from repro.cluster import ReplicaNode, make_scheduler

    keys = args.platforms.split(",")
    backends = _build_backends(args, len(keys))
    scheduler = getattr(args, "scheduler", None)
    nodes = []
    for index, (key, model, backend) in enumerate(zip(keys, models,
                                                      backends)):
        name = f"{key}-{index}"
        if backend is not None:
            name = f"{key}-{backend.label}-{index}"
        nodes.append(ReplicaNode(name, get_platform(key), model,
                                 max_batch=args.batch, backend=backend,
                                 admission=make_scheduler(scheduler)))
    return nodes


def _throttle_config(args: argparse.Namespace):
    """The ``--throttle`` door, or ``None`` when the door is open."""
    limit = getattr(args, "throttle", None)
    if limit is None:
        return None
    from repro.workloads import ThrottleConfig

    return ThrottleConfig(window_s=args.throttle_window,
                          max_user_requests=limit,
                          policy=args.throttle_policy)


def _tenant_stream(args: argparse.Namespace):
    """The ``--tenants`` workload as a splittable stream, or ``None``.

    Built once and handed to both the simulation (``.full()`` /
    ``.shard()``) and the scoring pass (``.decisions()`` regenerates
    door verdicts for throttled and admitted arrivals alike).
    """
    tenants = getattr(args, "tenants", None)
    if tenants is None:
        if getattr(args, "throttle", None) is not None:
            raise ValueError("--throttle needs --tenants (the door "
                             "windows are per-user/per-app)")
        return None
    from repro.workloads import TenantStream, TenantWorkloadSpec

    count = args.requests
    if count is None and args.duration is None:
        count = 32
    spec = TenantWorkloadSpec(users=tenants, apps=args.apps)
    return TenantStream(spec=spec, rate_per_s=args.rate, count=count,
                        duration_s=args.duration, seed=args.seed,
                        throttle=_throttle_config(args))


def _class_stream(args: argparse.Namespace):
    """The ``--classes``/``--class-mix`` workload, or ``None``.

    ``--class-mix simple:0.5,reasoning:0.5`` weights the classes;
    ``--classes simple,reasoning`` mixes them equally. ``--router
    tiered`` without either uses the stock mix — the tiered router
    needs a classified workload to route.
    """
    from repro.workloads import ClassMixStream, parse_class_mix

    mix_text = getattr(args, "class_mix", None)
    classes_text = getattr(args, "classes", None)
    if mix_text and classes_text:
        raise ValueError("pass --classes or --class-mix, not both")
    text = mix_text or classes_text
    if text is None:
        if getattr(args, "router", None) != "tiered":
            return None
        mix = None  # stock DEFAULT_CLASS_MIX
    else:
        mix = parse_class_mix(text)
    if getattr(args, "tenants", None) is not None:
        raise ValueError("--classes/--class-mix and --tenants are separate "
                         "workloads; pick one")
    count = args.requests
    if count is None and args.duration is None:
        count = 32
    kwargs = {} if mix is None else {"mix": mix}
    return ClassMixStream(rate_per_s=args.rate, count=count,
                          duration_s=args.duration, seed=args.seed,
                          **kwargs)


def _build_backends(args: argparse.Namespace, replicas: int) -> list:
    """Per-replica execution backends from ``--backend`` (or all-None).

    One spec broadcasts to every replica; otherwise the comma-separated
    list must match ``--platforms`` one-for-one. NUMA placement options
    (``numa:snc_flat,aware,hot=0.8``) also use commas, so fragments
    that are options rather than spec starts reattach to the spec
    before them — ``numa:snc_flat,aware,hybrid:a100`` is two replicas.
    """
    spec = getattr(args, "backend", None)
    if not spec:
        return [None] * replicas
    from repro.engine.backend import parse_backend

    specs: list = []
    for item in spec.split(","):
        if specs and (item == "aware" or item.startswith("hot=")):
            specs[-1] += "," + item
        else:
            specs.append(item)
    if len(specs) == 1:
        specs = specs * replicas
    if len(specs) != replicas:
        raise ValueError(
            f"--backend lists {len(specs)} specs but --platforms lists "
            f"{replicas} replicas (give one spec, or one per replica)")
    return [parse_backend(item) for item in specs]


def _cluster_config(args: argparse.Namespace, models):
    """The fleet as declarative specs (sharded + fluid paths).

    Same replicas :func:`_build_fleet` instantiates, but as a
    :class:`~repro.cluster.config.ClusterConfig` — worker processes
    rebuild nodes from pickled specs, and the fluid solver groups
    specs into tier stations without ever stepping a scheduler.
    """
    from repro.cluster import ClusterConfig, ReplicaSpec

    keys = args.platforms.split(",")
    backends = _build_backends(args, len(keys))
    return ClusterConfig([
        ReplicaSpec(get_platform(key), model, count=1, backend=backend,
                    max_batch=args.batch,
                    scheduler=getattr(args, "scheduler", None))
        for key, model, backend in zip(keys, models, backends)])


def _fluid_mix(args: argparse.Namespace):
    """The class mix for analytic solves, or ``None`` (class-less).

    Mirrors :func:`_class_stream`'s precedence without building a
    stream: ``--class-mix`` weights, ``--classes`` mixes equally, and
    ``--router tiered`` alone engages the stock mix.
    """
    from repro.workloads import parse_class_mix
    from repro.workloads.classes import DEFAULT_CLASS_MIX

    mix_text = getattr(args, "class_mix", None)
    classes_text = getattr(args, "classes", None)
    if mix_text and classes_text:
        raise ValueError("pass --classes or --class-mix, not both")
    text = mix_text or classes_text
    if text is not None:
        return parse_class_mix(text)
    if getattr(args, "router", None) == "tiered":
        return DEFAULT_CLASS_MIX
    return None


def _print_fluid_report(report, title: str) -> None:
    """Render one :class:`~repro.cluster.fluid.FluidReport`."""

    def ms(seconds: float) -> str:
        return "inf" if math.isinf(seconds) else f"{seconds * 1000:.0f}"

    station_rows = [
        [s.label, s.replicas, f"{s.rate_per_s:.2f}",
         "inf" if math.isinf(s.rho) else f"{s.rho:.2f}", s.regime,
         f"{s.utilization:.0%}", f"{s.mean_batch:.1f}",
         f"{s.p_wait:.0%}", ms(s.mean_wait_s), ms(s.tpot_s),
         f"{s.throughput_tokens_per_s:.1f}"]
        for s in report.stations]
    print(format_table(
        ["tier", "replicas", "req/s", "rho", "regime", "util",
         "mean batch", "p(wait)", "wait ms", "TPOT ms", "tok/s"],
        station_rows, title=title))
    percentile_text = "   ".join(
        f"p{int(q * 100)} TTFT: {ms(t)} ms"
        for q, t in sorted(report.ttft_percentiles.items()))
    print(f"\nregime: {report.regime}   "
          f"capacity: {report.capacity_req_per_s:.2f} req/s   "
          f"offered: {report.rate_per_s:.2f} req/s "
          f"(rho {report.max_rho:.2f})")
    print(f"throughput: {report.throughput_tokens_per_s:.1f} tok/s   "
          f"goodput: {report.goodput_tokens_per_s:.1f} tok/s   "
          f"attainment: {report.attainment:.0%}   "
          f"$/Mtok: {report.dollars_per_mtok:.2f}")
    print(f"mean TTFT: {ms(report.mean_ttft_s)} ms   {percentile_text}   "
          f"TPOT: {ms(report.tpot_s)} ms")
    if len(report.classes) > 1 or (report.classes
                                   and report.classes[0].name != "all"):
        class_rows = [
            [c.name, f"{c.share:.0%}", f"{c.rate_per_s:.2f}",
             f"{c.attainment:.0%}", f"{c.goodput_tokens_per_s:.1f}",
             ms(c.mean_ttft_s), ms(c.tpot_s),
             f"{c.spill_rate_per_s:.2f}"]
            for c in report.classes]
        print()
        print(format_table(
            ["class", "share", "req/s", "attainment", "goodput",
             "mean TTFT ms", "TPOT ms", "spill req/s"],
            class_rows, title="per-class (each scored on its own SLO)"))
    if not report.converged:
        print(f"\nwarning: tier-flow fixed point did not converge in "
              f"{report.iterations} iterations; treat shares as "
              f"approximate", file=sys.stderr)
    if report.overloaded:
        print("\nwarning: fleet is overloaded at this rate — queues grow "
              "without bound; waits are reported as inf, not "
              "extrapolated", file=sys.stderr)


def _router_factory(args: argparse.Namespace, slo, classifier=None):
    """Zero-arg factory for the ``--router`` policy.

    A factory rather than an instance so the sharded path can build one
    independent policy per replica group (``ShardRouter`` wraps the
    chosen policy as its per-group local). ``tiered`` needs the
    workload's *classifier* — the deterministic request→class hook the
    class-mix stream generated shapes with.
    """
    from repro.cluster import (
        JoinShortestQueueRouter,
        LeastOutstandingTokensRouter,
        PhaseAwareRouter,
        RoundRobinRouter,
        TieredRouter,
    )

    if args.router == "tiered" and classifier is None:
        raise ValueError("--router tiered needs a classified workload "
                         "(--classes / --class-mix)")
    return {
        "round_robin": lambda: RoundRobinRouter(),
        "jsq": lambda: JoinShortestQueueRouter(),
        "least_tokens": lambda: LeastOutstandingTokensRouter(),
        "phase_aware": lambda: PhaseAwareRouter(slo=slo),
        "tiered": lambda: TieredRouter(classifier),
    }[args.router]


def _build_router(args: argparse.Namespace, slo, classifier=None):
    return _router_factory(args, slo, classifier)()


def _build_arrivals(args: argparse.Namespace) -> list:
    from repro.serving.arrivals import bursty_arrivals, poisson_arrivals

    if args.burst_rate:
        return bursty_arrivals(args.rate, args.burst_rate,
                               args.requests, seed=args.seed)
    return poisson_arrivals(args.rate, args.requests, seed=args.seed)


def _arrival_factory(args: argparse.Namespace):
    """A zero-arg factory producing a fresh, identical arrival stream.

    The cluster command consumes arrivals lazily and regenerates the
    stream for SLO scoring rather than holding it, so ``--duration``
    runs of any length stay O(1) in workload memory.
    """
    from repro.serving.arrivals import (
        iter_bursty_arrivals,
        iter_poisson_arrivals,
    )

    count = args.requests
    if count is None and args.duration is None:
        count = 32
    if args.burst_rate:
        return lambda: iter_bursty_arrivals(
            args.rate, args.burst_rate, count=count,
            duration_s=args.duration, seed=args.seed)
    return lambda: iter_poisson_arrivals(
        args.rate, count=count, duration_s=args.duration, seed=args.seed)


def _progress_line(start_wall: float):
    """A ClusterSimulator progress callback writing one stderr line."""
    import time

    def progress(events: int, sim_s: float, completed: int) -> None:
        wall = max(time.perf_counter() - start_wall, 1e-9)
        print(f"\r{events:,} events  {events / wall:,.0f} ev/s  "
              f"sim {sim_s:,.1f}s ({sim_s / wall:,.0f}x real time)  "
              f"{completed:,} completed", end="", file=sys.stderr,
              flush=True)

    return progress


def _trace_destination(path: str) -> Optional[pathlib.Path]:
    """Resolve a trace output path, or None (with a message) if unusable."""
    destination = pathlib.Path(path)
    if not destination.parent.exists():
        print(f"error: cannot write trace to {destination}: directory "
              f"{destination.parent} does not exist (create it first, "
              f"e.g. mkdir -p {destination.parent})", file=sys.stderr)
        return None
    return destination


def _run_sharded_cluster(args: argparse.Namespace, models, slo, shards: int,
                         progress, class_stream=None):
    """The ``--workers``/``--shards`` cluster path: sharded simulation.

    Builds the fleet as a :class:`~repro.cluster.config.ClusterConfig`
    (worker processes rebuild replicas from pickled specs; mixed-model
    fleets warm disjoint cost tables), wraps the ``--router`` policy as
    the per-group local inside a
    :class:`~repro.cluster.router.ShardRouter`, and ships the workload
    as a splittable stream spec so each worker regenerates only its own
    arrival slice. Returns ``(report, make_arrivals)``.
    """
    from repro.cluster import ShardRouter, run_sharded
    from repro.workloads.streams import ShardableStream

    config = _cluster_config(args, models)
    classifier = (class_stream.classifier()
                  if class_stream is not None else None)
    router = ShardRouter(shards, local=_router_factory(args, slo,
                                                       classifier))
    stream = class_stream if class_stream is not None \
        else _tenant_stream(args)
    if stream is None:
        count = args.requests
        if count is None and args.duration is None:
            count = 32
        stream = ShardableStream(rate_per_s=args.rate, count=count,
                                 duration_s=args.duration,
                                 burst_rate_per_s=args.burst_rate or None,
                                 seed=args.seed)
    report = run_sharded(config, router, stream, workers=args.workers,
                         exact=args.exact, progress=progress)
    return report, stream.full


def _cmd_cluster_fluid(args: argparse.Namespace) -> int:
    """The ``--solver fluid`` cluster path: analytic steady state.

    Same fleet and workload flags as the simulation path, answered by
    the mean-field solver in microseconds instead of event stepping.
    Event-path-only features (traces, tenants, bursts, exact pricing)
    are rejected up front — the fluid model has no notion of them.
    """
    from repro.cluster import fluid
    from repro.serving.slo import SLO

    for flag, reason in (
            (args.trace, "--trace records event timelines"),
            (getattr(args, "tenants", None),
             "--tenants is a per-user transient workload"),
            (args.burst_rate, "--burst-rate is a transient; the fluid "
                              "model solves Poisson steady state"),
            (args.exact, "--exact prices scheduler iterations"),
            (args.workers > 1 or None, "--workers parallelizes event "
                                       "simulation"),
            (args.shards, "--shards groups replicas for event "
                          "simulation")):
        if flag:
            print(f"error: --solver fluid is analytic; {reason} "
                  f"(drop the flag or use --solver simulate)",
                  file=sys.stderr)
            return 2
    slo = SLO(ttft_s=args.ttft, tpot_s=args.tpot)
    try:
        models = _build_models(args, len(args.platforms.split(",")))
        mix = _fluid_mix(args)
        config = _cluster_config(args, models)
        router = "tiered" if args.router == "tiered" else "uniform"
        report = fluid.solve(config, args.rate, mix=mix, slo=slo,
                             router=router)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    model_names = sorted({model.name for model in models})
    _print_fluid_report(
        report,
        title=f"{' + '.join(model_names)} x "
              f"{sum(s.replicas for s in report.stations)} replicas, "
              f"fluid steady state at {args.rate:g} req/s")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterSimulator
    from repro.serving.slo import SLO
    from repro.trace import NOOP_TRACER, RecordingTracer, write_chrome_trace

    if args.exact not in (False, True, "step", "vectorized"):
        print(f"error: --exact takes 'step' or 'vectorized' (or nothing), "
              f"got {args.exact!r}", file=sys.stderr)
        return 2
    if args.solver == "fluid":
        return _cmd_cluster_fluid(args)
    sharded = args.workers > 1 or args.shards is not None
    shards = args.shards if args.shards is not None else args.workers
    tracer = NOOP_TRACER
    destination = None
    if args.trace:
        if sharded:
            # Worker processes cannot share one recording tracer.
            print("error: --trace requires the single-process path "
                  "(drop --workers/--shards)", file=sys.stderr)
            return 2
        # Fail before the simulation runs, not after minutes of work.
        destination = _trace_destination(args.trace)
        if destination is None:
            return 2
        tracer = RecordingTracer()
    slo = SLO(ttft_s=args.ttft, tpot_s=args.tpot)
    progress = None
    if args.progress or sys.stderr.isatty():
        import time

        progress = _progress_line(time.perf_counter())
    try:
        models = _build_models(args, len(args.platforms.split(",")))
        class_stream = _class_stream(args)
        tenant_stream = _tenant_stream(args)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if sharded:
        try:
            report, make_arrivals = _run_sharded_cluster(
                args, models, slo, shards, progress,
                class_stream=class_stream)
        except (TypeError, ValueError) as error:
            print(f"\nerror: {error}", file=sys.stderr)
            return 2
    else:
        try:
            nodes = _build_fleet(args, models)
            classifier = (class_stream.classifier()
                          if class_stream is not None else None)
            router = _build_router(args, slo, classifier)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        make_arrivals = (class_stream.full
                         if class_stream is not None
                         else tenant_stream.full
                         if tenant_stream is not None
                         else _arrival_factory(args))
        report = ClusterSimulator(nodes, router,
                                  tracer=tracer,
                                  exact=args.exact).run(make_arrivals(),
                                                        progress=progress)
    if progress is not None:
        print(file=sys.stderr)
    model_names = sorted({model.name for model in models})
    rows = [[s.name, s.platform, s.model, s.completed, s.utilization,
             s.peak_queue] for s in report.node_stats]
    print(format_table(
        ["replica", "platform", "model", "completed", "utilization",
         "peak queue"],
        rows,
        title=f"{' + '.join(model_names)} x {len(report.node_stats)} "
              f"replicas, router={report.router}, "
              f"{len(report.completed)} requests"))
    # Scoring regenerates the deterministic stream instead of holding it.
    print(f"\nthroughput: {report.throughput:.1f} tok/s   "
          f"mean TTFT: {report.mean_ttft_s * 1000:.0f} ms   "
          f"attainment: {report.attainment(make_arrivals(), slo):.0%}   "
          f"goodput: {report.goodput(make_arrivals(), slo):.1f} tok/s   "
          f"$/Mtok: {report.dollars_per_million_tokens():.2f}")
    if class_stream is not None:
        tiering = report.tiering(make_arrivals(),
                                 class_stream.classifier())
        class_rows = [
            [c.name, c.completed, f"{c.attainment:.0%}",
             f"{c.goodput:.1f}", f"{c.mean_ttft_s * 1000:.0f}",
             c.spills, c.fallbacks]
            for c in tiering.classes]
        print()
        print(format_table(
            ["class", "completed", "attainment", "goodput",
             "mean TTFT ms", "spills", "fallbacks"],
            class_rows, title="per-class (each scored on its own SLO)"))
        tier_rows = [
            [t.label, t.replicas, t.generated_tokens,
             f"{t.utilization:.0%}",
             "-" if t.generated_tokens == 0
             else f"{t.dollars_per_mtok:.2f}"]
            for t in tiering.tiers]
        print()
        print(format_table(
            ["tier", "replicas", "tokens", "utilization", "$/Mtok"],
            tier_rows, title="per-tier"))
        print(f"\nclass-SLO attainment: {tiering.attainment:.0%}   "
              f"class goodput: {tiering.goodput:.1f} tok/s   "
              f"spills: {tiering.spills}   "
              f"fallbacks: {tiering.fallbacks}")
    if tenant_stream is not None:
        fairness = report.fairness(tenant_stream.decisions(), slo=slo)
        tenant_rows = [
            [t.user_id, t.arrived, t.admitted, t.throttled, t.completed,
             f"{t.attainment:.0%}",
             "-" if t.mean_ttft_s is None else f"{t.mean_ttft_s * 1000:.0f}",
             t.wasted_tokens]
            for t in fairness.tenants]
        print()
        print(format_table(
            ["tenant", "arrived", "admitted", "throttled", "completed",
             "attainment", "mean TTFT ms", "wasted tok"],
            tenant_rows,
            title=f"{len(fairness.tenants)} tenants, "
                  f"scheduler={report.node_stats[0].scheduler}"))
        print(f"\njain index: {fairness.jain_index:.3f}   "
              f"throttle rate: {fairness.throttle_rate:.0%}   "
              f"wasted tokens: {fairness.wasted_tokens}")
    if destination is not None:
        write_chrome_trace(tracer.trace, destination)
        print(f"trace: {len(tracer.trace.spans)} spans -> {destination} "
              "(load in Perfetto / chrome://tracing)")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """``repro plan``: instant what-if sweeps over arrival rates.

    Solves the fleet's analytic steady state at every requested rate
    (one shared cost-table warmup, microseconds per point after) and
    prints the operating curve: regime, throughput, goodput,
    attainment, latency percentiles, $/Mtok. ``--confirm N`` replays
    chosen points through the exact simulator — the successive
    refinement loop from the provisioning advisor, on demand.
    """
    from repro.cluster import fluid
    from repro.serving.slo import SLO

    def ms(seconds: float) -> str:
        return "inf" if math.isinf(seconds) else f"{seconds * 1000:.0f}"

    slo = SLO(ttft_s=args.ttft, tpot_s=args.tpot)
    try:
        rates = sorted({float(r) for r in args.rates.split(",")})
        if any(rate <= 0 for rate in rates):
            raise ValueError("--rates must be positive")
        models = _build_models(args, len(args.platforms.split(",")))
        mix = _fluid_mix(args)
        config = _cluster_config(args, models)
        router = "tiered" if mix is not None else "uniform"
        reports = fluid.solve_grid(
            [fluid.FluidScenario(config=config, rate_per_s=rate,
                                 label=f"{rate:g} req/s")
             for rate in rates],
            mix=mix, slo=slo, router=router)
        capacity = fluid.saturation_rate(config, mix=mix, slo=slo,
                                         router=router)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    headers = ["req/s", "rho", "regime", "tok/s", "goodput",
               "attainment", "TTFT ms", "p99 ms", "TPOT ms", "$/Mtok"]
    rows = [
        [f"{report.rate_per_s:g}", f"{report.max_rho:.2f}", report.regime,
         f"{report.throughput_tokens_per_s:.1f}",
         f"{report.goodput_tokens_per_s:.1f}", f"{report.attainment:.0%}",
         ms(report.mean_ttft_s), ms(report.ttft_percentiles.get(0.99,
                                                                math.inf)),
         ms(report.tpot_s), f"{report.dollars_per_mtok:.2f}"]
        for report in reports]
    if args.confirm:
        from repro.optim.advisor import measure_fleet

        headers += ["sim attainment", "sim tok/s", "sim $/Mtok"]
        for row, report in zip(rows, reports):
            attainment, _goodput, throughput, dollars = measure_fleet(
                config, report.rate_per_s, mix=mix, slo=slo,
                count=args.confirm, seed=args.seed)
            row += [f"{attainment:.0%}", f"{throughput:.1f}",
                    f"{dollars:.2f}"]
    model_names = sorted({model.name for model in models})
    replicas = len(args.platforms.split(","))
    print(format_table(
        headers, rows,
        title=f"{' + '.join(model_names)} x {replicas} replicas, "
              f"fluid operating curve"))
    if math.isinf(capacity):
        print("\nsaturation: not found within the searched rate range")
    else:
        print(f"\nsaturation: {capacity:.2f} req/s "
              f"(fleet capacity at this workload shape)")
    if args.confirm:
        print(f"sim columns: exact fast-forward, {args.confirm} requests "
              f"per point, seed {args.seed}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterSimulator, NodeFailure
    from repro.serving.slo import SLO
    from repro.trace import (
        RecordingTracer,
        ascii_timeline,
        batch_occupancy_histogram,
        request_attribution,
        write_chrome_trace,
    )

    destination = None
    if args.out:
        destination = _trace_destination(args.out)
        if destination is None:
            return 2
    models = _build_models(args, len(args.platforms.split(",")))
    nodes = _build_fleet(args, models)
    slo = SLO(ttft_s=args.ttft, tpot_s=args.tpot)
    arrivals = _build_arrivals(args)
    events = []
    if args.fail_node:
        events.append(NodeFailure(time_s=args.fail_at, node=args.fail_node))
    tracer = RecordingTracer()
    report = ClusterSimulator(nodes, _build_router(args, slo),
                              events=events, tracer=tracer).run(arrivals)
    trace = tracer.trace

    print(ascii_timeline(trace, width=args.width))
    attribution = request_attribution(trace)
    rows = [[a.request_id, a.queue_s, a.prefill_s, a.decode_s,
             a.finalize_s + a.lost_s, a.wasted_s, a.total_s]
            for a in attribution.values()]
    print()
    print(format_table(
        ["request", "queue s", "prefill s", "decode s", "other s",
         "wasted s", "e2e s"], rows,
        title="per-request time attribution"))
    occupancy = batch_occupancy_histogram(trace)
    busy = sum(occupancy.values())
    print()
    print(format_table(
        ["batch size", "decode s", "share"],
        [[size, seconds, seconds / busy]
         for size, seconds in occupancy.items()],
        title="batch-occupancy histogram (decode time at each size)"))
    print(f"\n{len(trace.spans)} spans, {len(trace.instants)} instants, "
          f"{len(trace.counters)} counter samples over "
          f"{report.makespan_s:.2f}s; mean TTFT "
          f"{report.mean_ttft_s * 1000:.0f} ms")
    if destination is not None:
        write_chrome_trace(trace, destination)
        print(f"trace: {destination} (load in Perfetto / chrome://tracing)")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.optim.advisor import DeploymentAdvisor

    model = get_model(args.model)
    request = InferenceRequest(batch_size=args.batch, input_len=args.input,
                               output_len=args.output)
    recommendation = DeploymentAdvisor().recommend(model, request,
                                                   args.metric)
    rows = [[c.label, c.metric_value] for c in recommendation.ranked[:8]]
    print(format_table(
        ["configuration", args.metric], rows,
        title=f"advisor: {model.name}, batch={args.batch}, "
              f"optimize {args.metric}"))
    print(f"\nrecommended: {recommendation.best.label}")
    return 0


def _cmd_calibration(_args: argparse.Namespace) -> int:
    from repro.calibration.targets import check_all_targets

    rows = []
    for result in check_all_targets():
        rows.append([result.target.target_id, result.target.paper_value,
                     result.measured,
                     "OK" if result.in_band else "OUT"])
    print(format_table(["target", "paper", "measured", "verdict"], rows,
                       title="calibration targets (DESIGN.md section 5)"))
    failures = sum(1 for row in rows if row[3] == "OUT")
    return 1 if failures else 0


def _cmd_platforms(_args: argparse.Namespace) -> int:
    rows = []
    for key, platform in all_platforms().items():
        rows.append([
            key, platform.name, platform.kind.value,
            f"{bytes_to_gb(platform.memory_capacity):.0f}GB",
            f"{bytes_to_gb(platform.peak_memory_bandwidth):.0f}GB/s",
        ])
    print(format_table(["key", "name", "kind", "memory", "peak BW"], rows))
    return 0


def _cmd_models(_args: argparse.Namespace) -> int:
    rows = []
    for key, model in sorted(all_models().items(),
                             key=lambda kv: kv[1].param_count()):
        rows.append([
            key, model.name, model.n_layers, model.d_model,
            f"{model.param_count() / 1e9:.1f}B",
            "GQA" if model.uses_gqa else "MHA",
        ])
    print(format_table(
        ["key", "name", "layers", "d_model", "params", "attention"], rows))
    return 0


def _add_request_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--input", type=int, default=128)
    parser.add_argument("--output", type=int, default=32)
    parser.add_argument("--cores", type=int, default=None,
                        help="CPU cores (default: one socket)")
    parser.add_argument("--numa", default=None,
                        help="CPU NUMA config label (default: quad_flat)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulate LLM inference on CPUs/GPUs (IISWC 2024 repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="simulate one request")
    run_parser.add_argument("--platform", required=True)
    run_parser.add_argument("--model", required=True)
    _add_request_args(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = sub.add_parser("sweep", help="model x platform x batch grid")
    sweep_parser.add_argument("--platforms", required=True,
                              help="comma-separated platform keys")
    sweep_parser.add_argument("--models", required=True,
                              help="comma-separated model keys")
    sweep_parser.add_argument("--batches", default="1,8,32")
    sweep_parser.add_argument("--workers", type=int, default=None,
                              metavar="N",
                              help="price grid cells on N worker "
                                   "processes (default: serial; row "
                                   "order is identical either way)")
    sweep_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="cache sweep rows on disk keyed by "
                                   "the grid spec; re-running the same "
                                   "sweep loads instead of re-simulating")
    _add_request_args(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    experiment_parser = sub.add_parser("experiment",
                                       help="regenerate a paper figure/table")
    experiment_parser.add_argument("experiment_id", nargs="?")
    experiment_parser.add_argument("--all", action="store_true")
    experiment_parser.set_defaults(func=_cmd_experiment)

    roofline_parser = sub.add_parser("roofline",
                                     help="ASCII roofline with run phases")
    roofline_parser.add_argument("--platform", required=True)
    roofline_parser.add_argument("--model", required=True)
    _add_request_args(roofline_parser)
    roofline_parser.set_defaults(func=_cmd_roofline)

    cluster_parser = sub.add_parser(
        "cluster", help="simulate a multi-replica serving fleet")
    cluster_parser.add_argument("--platforms", required=True,
                                help="comma-separated replica platforms "
                                     "(one replica each, e.g. spr,spr,h100)")
    cluster_parser.add_argument("--model", default=None,
                                help="model served by every replica")
    cluster_parser.add_argument("--models", default=None,
                                help="per-replica models: one key "
                                     "broadcasts, or a comma-separated "
                                     "list matching --platforms (e.g. "
                                     "llama2-7b,llama2-7b,llama2-13b)")
    cluster_parser.add_argument("--router", default="phase_aware",
                                choices=["round_robin", "jsq",
                                         "least_tokens", "phase_aware",
                                         "tiered"])
    cluster_parser.add_argument("--classes", default=None,
                                help="equal-share request-class mix "
                                     "(e.g. simple,standard,reasoning)")
    cluster_parser.add_argument("--class-mix", default=None,
                                help="weighted request-class mix (e.g. "
                                     "simple:0.5,standard:0.35,"
                                     "reasoning:0.15)")
    cluster_parser.add_argument("--rate", type=float, default=1.0,
                                help="arrival rate, requests/s")
    cluster_parser.add_argument("--burst-rate", type=float, default=None,
                                help="burst arrival rate (enables a "
                                     "bursty on/off trace)")
    cluster_parser.add_argument("--requests", type=int, default=None,
                                help="number of requests (default 32; "
                                     "unbounded when --duration is set)")
    cluster_parser.add_argument("--duration", type=float, default=None,
                                metavar="S",
                                help="stream arrivals for S simulated "
                                     "seconds instead of a fixed count "
                                     "(combine with --requests to cap "
                                     "both)")
    cluster_parser.add_argument("--exact", nargs="?", const=True,
                                default=False, metavar="MODE",
                                help="price every scheduler iteration "
                                     "individually (reference loop; slow "
                                     "on large runs); pass 'vectorized' "
                                     "for the numpy-accelerated exact "
                                     "mode")
    cluster_parser.add_argument("--workers", type=int, default=1,
                                metavar="N",
                                help="run replica shard groups in N "
                                     "worker processes (default 1 = "
                                     "single-process; results are "
                                     "bit-identical either way)")
    cluster_parser.add_argument("--shards", type=int, default=None,
                                metavar="G",
                                help="number of replica shard groups "
                                     "(default: --workers); the --router "
                                     "policy routes locally within each "
                                     "group behind a stateless "
                                     "request-id hash")
    cluster_parser.add_argument("--progress", action="store_true",
                                help="force the progress line even when "
                                     "stderr is not a terminal")
    cluster_parser.add_argument("--batch", type=int, default=8,
                                help="per-replica max batch")
    cluster_parser.add_argument("--backend", default=None,
                                help="execution backend spec(s): one of "
                                     "bf16/fp16/fp32/int8/int4/w8a8, "
                                     "optionally combined with "
                                     "numa:CONFIG[,aware][,hot=F] "
                                     "(hot/cold HBM-DDR placement), "
                                     "hybrid:GPU (GPU prefill + CPU "
                                     "decode, e.g. hybrid:a100), and a "
                                     "tpN suffix (e.g. int8-tp2, "
                                     "int8-numa:snc_flat,aware-tp2). One "
                                     "value applies to every replica; a "
                                     "comma-separated list assigns per "
                                     "replica and must match --platforms")
    cluster_parser.add_argument("--tenants", type=int, default=None,
                                metavar="N",
                                help="serve a multi-tenant workload: N "
                                     "users with Zipf-skewed demand and "
                                     "multi-stage interactions (adds a "
                                     "per-tenant report section)")
    cluster_parser.add_argument("--apps", type=int, default=1,
                                help="apps in the tenant workload "
                                     "(default 1; needs --tenants)")
    cluster_parser.add_argument("--scheduler", default=None,
                                choices=["fcfs", "vtc", "wsc"],
                                help="admission scheduler per replica "
                                     "(default: built-in FCFS; vtc/wsc "
                                     "are fair schedulers)")
    cluster_parser.add_argument("--throttle", type=int, nargs="?",
                                const=8, default=None, metavar="MAX",
                                help="door throttling: at most MAX "
                                     "admitted requests per user per "
                                     "window (default 8 when given "
                                     "without a value; needs --tenants)")
    cluster_parser.add_argument("--throttle-window", type=float,
                                default=60.0, metavar="SECONDS",
                                help="sliding throttle window "
                                     "(default 60)")
    cluster_parser.add_argument("--throttle-policy", default="interaction",
                                choices=["interaction", "request"],
                                help="decide at interaction start "
                                     "(never aborts mid-chain) or per "
                                     "request (naive; aborts waste "
                                     "completed stages)")
    cluster_parser.add_argument("--ttft", type=float, default=2.0,
                                help="SLO: seconds to first token")
    cluster_parser.add_argument("--tpot", type=float, default=0.2,
                                help="SLO: seconds per output token")
    cluster_parser.add_argument("--seed", type=int, default=0)
    cluster_parser.add_argument("--trace", default=None, metavar="PATH",
                                help="write a Chrome trace-event JSON of "
                                     "the fleet timeline (open in Perfetto)")
    cluster_parser.add_argument("--solver", default="simulate",
                                choices=["simulate", "fluid"],
                                help="simulate (default): event-driven "
                                     "simulation; fluid: analytic "
                                     "mean-field steady state — same "
                                     "fleet/workload flags, microseconds "
                                     "instead of event stepping")
    cluster_parser.set_defaults(func=_cmd_cluster)

    plan_parser = sub.add_parser(
        "plan", help="analytic what-if sweep over arrival rates "
                     "(fluid steady-state solver)")
    plan_parser.add_argument("--platforms", required=True,
                             help="comma-separated replica platforms "
                                  "(one replica each, e.g. spr,spr,h100)")
    plan_parser.add_argument("--model", default=None,
                             help="model served by every replica")
    plan_parser.add_argument("--models", default=None,
                             help="per-replica models: one key "
                                  "broadcasts, or a comma-separated list "
                                  "matching --platforms")
    plan_parser.add_argument("--rates", required=True,
                             help="comma-separated arrival rates to "
                                  "solve, requests/s (e.g. 1,2,4,8)")
    plan_parser.add_argument("--classes", default=None,
                             help="equal-share request-class mix "
                                  "(engages tiered class->tier flows)")
    plan_parser.add_argument("--class-mix", default=None,
                             help="weighted request-class mix (e.g. "
                                  "simple:0.5,standard:0.35,"
                                  "reasoning:0.15)")
    plan_parser.add_argument("--batch", type=int, default=8,
                             help="per-replica max batch")
    plan_parser.add_argument("--backend", default=None,
                             help="execution backend spec(s), as in "
                                  "the cluster command")
    plan_parser.add_argument("--ttft", type=float, default=2.0,
                             help="SLO: seconds to first token")
    plan_parser.add_argument("--tpot", type=float, default=0.2,
                             help="SLO: seconds per output token")
    plan_parser.add_argument("--confirm", type=int, nargs="?", const=2000,
                             default=None, metavar="N",
                             help="replay each rate point through the "
                                  "exact simulator with N requests "
                                  "(default 2000) and add measured "
                                  "columns")
    plan_parser.add_argument("--seed", type=int, default=0,
                             help="seed for --confirm simulations")
    plan_parser.set_defaults(func=_cmd_plan)

    trace_parser = sub.add_parser(
        "trace", help="record and render a fleet timeline trace")
    trace_parser.add_argument("--platforms", default="spr,spr",
                              help="comma-separated replica platforms")
    trace_parser.add_argument("--model", default="llama2-7b")
    trace_parser.add_argument("--router", default="phase_aware",
                              choices=["round_robin", "jsq",
                                       "least_tokens", "phase_aware"])
    trace_parser.add_argument("--rate", type=float, default=0.4,
                              help="baseline arrival rate, requests/s")
    trace_parser.add_argument("--burst-rate", type=float, default=4.0,
                              help="burst arrival rate (0 disables bursts)")
    trace_parser.add_argument("--requests", type=int, default=16)
    trace_parser.add_argument("--batch", type=int, default=4,
                              help="per-replica max batch")
    trace_parser.add_argument("--ttft", type=float, default=2.0)
    trace_parser.add_argument("--tpot", type=float, default=0.2)
    trace_parser.add_argument("--seed", type=int, default=23)
    trace_parser.add_argument("--fail-node", default=None, metavar="NAME",
                              help="inject a failure of this replica "
                                   "(e.g. spr-0)")
    trace_parser.add_argument("--fail-at", type=float, default=10.0,
                              help="failure injection time, seconds")
    trace_parser.add_argument("--width", type=int, default=72,
                              help="ASCII timeline width, characters")
    trace_parser.add_argument("--out", default=None, metavar="PATH",
                              help="also write Chrome trace-event JSON here")
    trace_parser.set_defaults(func=_cmd_trace)

    advise_parser = sub.add_parser("advise",
                                   help="recommend a deployment config")
    advise_parser.add_argument("--model", required=True)
    advise_parser.add_argument("--metric", default="e2e_throughput",
                               choices=["ttft_s", "tpot_s", "e2e_s",
                                        "e2e_throughput"])
    _add_request_args(advise_parser)
    advise_parser.set_defaults(func=_cmd_advise)

    sub.add_parser("calibration",
                   help="check all paper calibration targets").set_defaults(
        func=_cmd_calibration)

    sub.add_parser("platforms", help="list platforms").set_defaults(
        func=_cmd_platforms)
    sub.add_parser("models", help="list models").set_defaults(
        func=_cmd_models)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. head);
        # that is not an error for a CLI.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
